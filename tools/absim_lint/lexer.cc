#include "lexer.hh"

#include <cctype>

namespace absim_lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuation we keep as one token (the rules only
 *  care about a handful: ::, ->, and the shift/compare family so that
 *  template-argument scanning can treat >> as two closers). */
bool
isTwoCharPunct(char a, char b)
{
    switch (a) {
    case ':': return b == ':';
    case '-': return b == '>';
    case '<': return b == '=';
    case '>': return b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '&': return b == '&';
    case '|': return b == '|';
    case '+': return b == '+';
    default: return false;
    }
}

} // namespace

LexedFile
lex(const std::string &source)
{
    LexedFile out;
    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;
    int lastCodeLine = 0; // Line of the most recent code token.

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k, ++i)
            if (source[i] == '\n')
                ++line;
    };

    auto pushToken = [&](TokKind kind, std::string text, int atLine) {
        out.tokens.push_back(Token{kind, std::move(text), atLine});
        lastCodeLine = atLine;
    };

    while (i < n) {
        const char c = source[i];

        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' ||
            c == '\v' || c == '\f') {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            const int at = line;
            std::size_t j = i + 2;
            while (j < n && source[j] != '\n')
                ++j;
            out.comments.push_back(
                Comment{at, lastCodeLine != at,
                        source.substr(i + 2, j - (i + 2))});
            advance(j - i);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            const int at = line;
            std::size_t j = i + 2;
            while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/'))
                ++j;
            const std::size_t end = (j + 1 < n) ? j + 2 : n;
            out.comments.push_back(
                Comment{at, lastCodeLine != at,
                        source.substr(i + 2, j - (i + 2))});
            advance(end - i);
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && source[j] != '(' && source[j] != '\n')
                delim += source[j++];
            if (j < n && source[j] == '(') {
                const int at = line;
                const std::string closer = ")" + delim + "\"";
                const std::size_t body = j + 1;
                const std::size_t close = source.find(closer, body);
                const std::size_t end =
                    close == std::string::npos ? n : close + closer.size();
                pushToken(TokKind::String,
                          source.substr(body, (close == std::string::npos
                                                   ? n
                                                   : close) -
                                                  body),
                          at);
                advance(end - i);
                continue;
            }
            // 'R' not starting a raw string: fall through as identifier.
        }

        // String / char literal (with escapes).
        if (c == '"' || c == '\'') {
            const int at = line;
            const char quote = c;
            std::size_t j = i + 1;
            std::string inner;
            while (j < n && source[j] != quote) {
                if (source[j] == '\\' && j + 1 < n) {
                    inner += source[j];
                    inner += source[j + 1];
                    j += 2;
                } else if (source[j] == '\n') {
                    break; // Unterminated on this line; close it.
                } else {
                    inner += source[j++];
                }
            }
            const std::size_t end = (j < n && source[j] == quote) ? j + 1 : j;
            pushToken(quote == '"' ? TokKind::String : TokKind::Char,
                      std::move(inner), at);
            advance(end - i);
            continue;
        }

        // Identifier (possibly a literal prefix like u8"...").
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(source[j]))
                ++j;
            // String prefixes (u8, u, U, L) glued to a quote: let the
            // next iteration lex the literal; drop the prefix.
            if (j < n && (source[j] == '"' || source[j] == '\'')) {
                const std::string word = source.substr(i, j - i);
                if (word == "u8" || word == "u" || word == "U" ||
                    word == "L" || word == "LR" || word == "uR" ||
                    word == "UR" || word == "u8R") {
                    if (word.back() == 'R') {
                        // Re-enter as a raw literal by rewriting i to
                        // the 'R'.
                        advance(j - i - 1);
                        continue;
                    }
                    advance(j - i);
                    continue;
                }
            }
            pushToken(TokKind::Ident, source.substr(i, j - i), line);
            advance(j - i);
            continue;
        }

        // pp-number (good enough: digits, dots, idents, exponent signs).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t j = i + 1;
            while (j < n &&
                   (isIdentChar(source[j]) || source[j] == '.' ||
                    source[j] == '\'' ||
                    ((source[j] == '+' || source[j] == '-') &&
                     (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                      source[j - 1] == 'p' || source[j - 1] == 'P'))))
                ++j;
            pushToken(TokKind::Number, source.substr(i, j - i), line);
            advance(j - i);
            continue;
        }

        // Punctuation.
        if (i + 1 < n && isTwoCharPunct(c, source[i + 1])) {
            pushToken(TokKind::Punct, source.substr(i, 2), line);
            advance(2);
            continue;
        }
        pushToken(TokKind::Punct, std::string(1, c), line);
        advance(1);
    }

    return out;
}

} // namespace absim_lint
