/**
 * @file
 * Internal interface between the scanner (lint.cc) and the rule
 * implementations (rules.cc).  Not installed; the public surface is
 * lint.hh.
 */

#ifndef ABSIM_LINT_RULES_HH
#define ABSIM_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lexer.hh"
#include "lint.hh"

namespace absim_lint {

/** One file, lexed, with its root-relative path. */
struct FileUnit
{
    std::string path; ///< '/'-separated, root-relative.
    LexedFile lex;
};

/**
 * Rule R1 pass 1: record the names of functions declared (in headers)
 * as returning a Result-family type, so pass 2 can flag discarded
 * calls in any scanned file.
 */
void collectResultNames(const FileUnit &unit,
                        std::set<std::string> &names);

/** Names R1 always treats as Result-returning, independent of what the
 *  scan saw (keeps single-file lints and fixtures honest). */
const std::set<std::string> &seedResultNames();

/**
 * Run every enabled rule on @p unit, appending diagnostics.  @p enabled
 * is empty for "all rules".  Suppression filtering happens later in
 * lint.cc.
 */
void runRules(const FileUnit &unit,
              const std::set<std::string> &resultNames,
              const std::set<std::string> &enabled,
              std::vector<Diagnostic> &out);

} // namespace absim_lint

#endif // ABSIM_LINT_RULES_HH
