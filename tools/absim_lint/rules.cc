/**
 * @file
 * The absim_lint rule catalog: D1, D2, G1, C1, L1, R1 (see lint.hh and
 * docs/CHECKING.md for the rationale of each rule).
 *
 * All rules work on the comment/string-stripped token stream from
 * lexer.cc, so identifiers inside literals or comments never trip
 * them.  The implementations are deliberately heuristic — this is a
 * convention linter, not a compiler — but every heuristic errs toward
 * "no false positive on the real tree" and is pinned by the fixture
 * self-tests under tools/absim_lint/fixtures/.
 */

#include "rules.hh"

#include <algorithm>
#include <map>

namespace absim_lint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
ruleEnabled(const std::set<std::string> &enabled, const char *rule)
{
    return enabled.empty() || enabled.count(rule) != 0;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

/**
 * True if the identifier at @p i is in call position: followed by '('
 * and not a member access (x.time(), x->clock()) or a qualified name
 * whose qualifier is something other than std (Foo::time() is Foo's
 * business; std::time() is the libc primitive).
 */
bool
isBareCall(const std::vector<Token> &toks, std::size_t i)
{
    if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "("))
        return false;
    if (i == 0)
        return true;
    const Token &prev = toks[i - 1];
    if (isPunct(prev, ".") || isPunct(prev, "->"))
        return false;
    if (isPunct(prev, "::"))
        return i >= 2 && isIdent(toks[i - 2], "std");
    // `Tick time(...)` declares a function named time: the identifier
    // is preceded by its return type, not by an expression.  Keywords
    // that introduce an expression are not type names.
    if (prev.kind == TokKind::Ident) {
        static const std::set<std::string> kExprKeywords = {
            "return",  "throw", "else",     "do",
            "case",    "goto",  "co_return", "co_yield",
            "co_await"};
        return kExprKeywords.count(prev.text) != 0;
    }
    if (isPunct(prev, "*") || isPunct(prev, "&") || isPunct(prev, ">"))
        return false;
    return true;
}

// ---------------------------------------------------------------- D1

/** Identifiers that are nondeterministic in any position. */
const std::set<std::string> &
d1AlwaysBanned()
{
    static const std::set<std::string> kSet = {
        "srand",          "rand_r",        "drand48",
        "lrand48",        "mrand48",       "random_device",
        "mt19937",        "mt19937_64",    "minstd_rand",
        "minstd_rand0",   "default_random_engine",
        "system_clock",   "steady_clock",  "high_resolution_clock",
        "gettimeofday",   "clock_gettime", "localtime",
        "gmtime",         "timespec_get",
    };
    return kSet;
}

/** Identifiers banned only in call position (common English words). */
const std::set<std::string> &
d1CallBanned()
{
    static const std::set<std::string> kSet = {"rand", "random", "clock",
                                              "time"};
    return kSet;
}

void
ruleD1(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    if (!startsWith(unit.path, "src/"))
        return;
    for (const AllowlistEntry &entry : allowlist())
        if (std::string(entry.rule) == "D1" && unit.path == entry.file)
            return;

    const auto &toks = unit.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const std::string &name = toks[i].text;
        const bool always = d1AlwaysBanned().count(name) != 0;
        const bool call =
            d1CallBanned().count(name) != 0 && isBareCall(toks, i);
        if (!always && !call)
            continue;
        // `steady_clock` etc. as a member access (profile.steady_clock?)
        // does not exist in this tree; keep the always-set unconditional.
        out.push_back(Diagnostic{
            "D1", unit.path, toks[i].line,
            "nondeterminism primitive '" + name +
                "': simulations must be bit-reproducible; use the "
                "run's seeded sim::Rng or simulated time instead "
                "(wall-clock budgets belong in the D1 allowlist)"});
    }
}

// ---------------------------------------------------------------- D2

/** Files whose bytes end up in journals / figure JSON / CSV (or, for
 *  trace_replay, in trace files and replayed profiles). */
bool
d2OutputPath(const std::string &path)
{
    return startsWith(path, "src/core/") ||
           startsWith(path, "src/serve/") ||
           startsWith(path, "src/stats/") ||
           startsWith(path, "src/trace_replay/") ||
           startsWith(path, "bench/");
}

/**
 * Find `unordered_map<K, ...>` / `unordered_set<K>` template-ids whose
 * key type K mentions a pointer.  Returns the token index one past the
 * template-id's closing '>' via @p end, and the declared variable name
 * (if the next token is an identifier) via @p varName.
 */
bool
pointerKeyedAt(const std::vector<Token> &toks, std::size_t i,
               std::size_t &end, std::string &varName)
{
    if (toks[i].kind != TokKind::Ident ||
        (toks[i].text != "unordered_map" &&
         toks[i].text != "unordered_set"))
        return false;
    if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "<"))
        return false;

    bool pointerKey = false;
    int depth = 1;
    bool inKey = true;
    std::size_t j = i + 2;
    for (; j < toks.size() && depth > 0; ++j) {
        const Token &t = toks[j];
        if (isPunct(t, "<"))
            ++depth;
        else if (isPunct(t, ">"))
            --depth;
        else if (isPunct(t, ";") || isPunct(t, "{"))
            return false; // Malformed / not a template-id.
        else if (isPunct(t, ",") && depth == 1)
            inKey = false;
        else if (inKey && isPunct(t, "*"))
            pointerKey = true;
    }
    if (!pointerKey)
        return false;
    end = j;
    varName.clear();
    if (j < toks.size() && toks[j].kind == TokKind::Ident)
        varName = toks[j].text;
    return true;
}

void
ruleD2(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    if (!d2OutputPath(unit.path))
        return;

    const auto &toks = unit.lex.tokens;
    std::set<std::string> pointerKeyedVars;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        std::size_t end = 0;
        std::string var;
        if (!pointerKeyedAt(toks, i, end, var))
            continue;
        if (!var.empty())
            pointerKeyedVars.insert(var);
        out.push_back(Diagnostic{
            "D2", unit.path, toks[i].line,
            "pointer-keyed " + toks[i].text +
                " in a byte-emitting file: its iteration order varies "
                "run to run and would poison journal/JSON/CSV "
                "byte-determinism; key by a stable id or use std::map"});
    }

    // Range-for over a variable declared above with a pointer key.
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "for") || !isPunct(toks[i + 1], "("))
            continue;
        int depth = 1;
        std::size_t colon = 0;
        for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")"))
                --depth;
            else if (isPunct(toks[j], ";") && depth == 1)
                break; // Classic for-loop.
            else if (isPunct(toks[j], ":") && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        int d = 1;
        for (std::size_t j = colon + 1; j < toks.size() && d > 0; ++j) {
            if (isPunct(toks[j], "("))
                ++d;
            else if (isPunct(toks[j], ")")) {
                if (--d == 0)
                    break;
            } else if (toks[j].kind == TokKind::Ident &&
                       pointerKeyedVars.count(toks[j].text) != 0) {
                out.push_back(Diagnostic{
                    "D2", unit.path, toks[j].line,
                    "iteration over pointer-keyed container '" +
                        toks[j].text +
                        "' in a byte-emitting file: the visit order is "
                        "address-dependent and nondeterministic"});
                break;
            }
        }
    }
}

// ---------------------------------------------------------------- G1

const std::set<std::string> &
g1Banned()
{
    static const std::set<std::string> kSet = {
        "getenv",  "secure_getenv", "atoi",    "atol",   "atoll",
        "atof",    "strtol",        "strtoul", "strtoll", "strtoull",
        "strtod",  "strtof",        "strtold", "sscanf",
    };
    return kSet;
}

void
ruleG1(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    if (unit.path == "src/core/env.hh" || unit.path == "src/core/env.cc")
        return; // The one sanctioned funnel.

    const auto &toks = unit.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            g1Banned().count(toks[i].text) == 0 || !isBareCall(toks, i))
            continue;
        out.push_back(Diagnostic{
            "G1", unit.path, toks[i].line,
            "bare '" + toks[i].text +
                "': route environment and number parsing through "
                "core/env (envUint/envDouble/envString/parseUint/"
                "parseDouble) so malformed input fails loudly with a "
                "named diagnostic instead of silently becoming 0"});
    }
}

// ---------------------------------------------------------------- C1

void
ruleC1(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    if (!startsWith(unit.path, "src/") ||
        startsWith(unit.path, "src/check/"))
        return;

    const auto &toks = unit.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "assert") || !isBareCall(toks, i))
            continue;
        out.push_back(Diagnostic{
            "C1", unit.path, toks[i].line,
            "bare assert(): use ABSIM_CHECK / ABSIM_DCHECK (src/check) "
            "so the failure carries context, stays on in release "
            "builds, and degrades to a structured RunError under "
            "runOneSafe"});
    }
}

// ---------------------------------------------------------------- L1

/** Grandfathered file-level exceptions to the directory DAG. */
struct LayerException
{
    const char *file;
    const char *dir; ///< Extra directory this file may include.
};

const std::vector<LayerException> &
layerExceptions()
{
    // The coherence checker speaks block addresses and cache state, so
    // these two files (and only these) may reach up into mem/; the
    // macro layer check/check.hh stays dependency-free.
    static const std::vector<LayerException> kExceptions = {
        {"src/check/coherence.hh", "mem"},
        {"src/check/coherence.cc", "mem"},
    };
    return kExceptions;
}

} // namespace

/**
 * The include-layering DAG over src/ directories, lowest layer first.
 * A file in directory d may include its own directory plus exactly
 * the listed rows.  The order is the proof of acyclicity: every
 * allowed edge points at an earlier entry (asserted by the self-tests).
 */
const std::vector<Layer> &
layerTable()
{
    static const std::vector<Layer> kTable = {
        {"fault", {}},
        {"check", {}}, // + the coherence exception below.
        {"sim", {"check", "fault"}},
        {"net", {"check", "sim"}},
        {"mem", {"check", "net", "sim"}},
        {"logp", {"check", "mem", "net", "sim"}},
        {"machines", {"check", "logp", "mem", "net", "sim"}},
        {"stats", {"check", "machines", "sim"}},
        {"runtime",
         {"check", "fault", "logp", "machines", "mem", "net", "sim",
          "stats"}},
        {"msg", {"check", "logp", "mem", "net", "runtime", "sim"}},
        {"apps", {"check", "msg", "runtime", "sim", "stats"}},
        {"trace_replay",
         {"apps", "check", "fault", "logp", "machines", "mem", "net",
          "runtime", "sim", "stats"}},
        {"core",
         {"apps", "check", "fault", "logp", "machines", "mem", "msg",
          "net", "runtime", "sim", "stats", "trace_replay"}},
        {"serve",
         {"apps", "check", "core", "fault", "logp", "machines", "mem",
          "msg", "net", "runtime", "sim", "stats", "trace_replay"}},
    };
    return kTable;
}

namespace {

void
ruleL1(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    if (!startsWith(unit.path, "src/"))
        return;
    const std::size_t dirEnd = unit.path.find('/', 4);
    if (dirEnd == std::string::npos)
        return;
    const std::string fromDir = unit.path.substr(4, dirEnd - 4);

    const Layer *fromLayer = nullptr;
    for (const Layer &layer : layerTable())
        if (fromDir == layer.dir)
            fromLayer = &layer;
    if (fromLayer == nullptr)
        return; // Unknown directory: not layered (yet).

    const auto &toks = unit.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isPunct(toks[i], "#") || !isIdent(toks[i + 1], "include") ||
            toks[i + 2].kind != TokKind::String)
            continue;
        const std::string &target = toks[i + 2].text;
        const std::size_t slash = target.find('/');
        if (slash == std::string::npos)
            continue; // Same-directory or local include.
        const std::string toDir = target.substr(0, slash);
        if (toDir == fromDir)
            continue;

        bool known = false;
        for (const Layer &layer : layerTable())
            known = known || toDir == layer.dir;
        if (!known)
            continue; // Not one of the layered src/ directories.

        bool allowed = false;
        for (const char *dir : fromLayer->allowed)
            allowed = allowed || toDir == dir;
        for (const LayerException &ex : layerExceptions())
            allowed = allowed ||
                      (unit.path == ex.file && toDir == ex.dir);
        if (allowed)
            continue;

        out.push_back(Diagnostic{
            "L1", unit.path, toks[i + 2].line,
            "layering violation: " + fromDir + "/ may not include \"" +
                target + "\" (" + toDir +
                "/ is not below it in the include DAG; see "
                "docs/CHECKING.md and the table in "
                "tools/absim_lint/rules.cc)"});
    }
}

// ---------------------------------------------------------------- R1

/** Type names whose values must not be dropped on the floor. */
const std::set<std::string> &
resultTypeNames()
{
    static const std::set<std::string> kSet = {"Result", "RunResult",
                                              "MergeResult", "RunError"};
    return kSet;
}

bool
isHeader(const std::string &path)
{
    return path.size() > 3 &&
           (path.compare(path.size() - 3, 3, ".hh") == 0 ||
            path.compare(path.size() - 4, 4, ".hpp") == 0);
}

/** Tokens that terminate a backwards scan for the declaration start. */
bool
isDeclBoundary(const Token &t)
{
    return isPunct(t, ";") || isPunct(t, "{") || isPunct(t, "}") ||
           isPunct(t, "#");
}

/**
 * Find header declarations of functions returning a Result-family
 * type: an identifier f followed by '(', where the token span back to
 * the previous declaration boundary names a Result type, contains no
 * expression markers (=, return, ., ->), and f is not itself the type
 * (that would be a constructor).  Reports whether [[nodiscard]]
 * appears in the span and f's name.
 */
template <typename Callback>
void
scanResultDecls(const FileUnit &unit, Callback &&callback)
{
    const auto &toks = unit.lex.tokens;
    for (std::size_t i = 1; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident || i + 1 >= toks.size() ||
            !isPunct(toks[i + 1], "("))
            continue;
        if (resultTypeNames().count(toks[i].text) != 0)
            continue; // Constructor of the type itself.

        bool sawResultType = false;
        bool sawNodiscard = false;
        bool expression = false;
        for (std::size_t j = i; j-- > 0;) {
            const Token &t = toks[j];
            if (isDeclBoundary(t))
                break;
            if (t.kind == TokKind::Ident) {
                if (resultTypeNames().count(t.text) != 0)
                    sawResultType = true;
                else if (t.text == "nodiscard")
                    sawNodiscard = true;
                else if (t.text == "return" || t.text == "new" ||
                         t.text == "throw" || t.text == "co_return")
                    expression = true;
            } else if (isPunct(t, "=") || isPunct(t, ".") ||
                       isPunct(t, "->") || isPunct(t, "(")) {
                expression = true;
            }
        }
        if (sawResultType && !expression)
            callback(toks[i].text, toks[i].line, sawNodiscard);
    }
}

void
collectR1Names(const FileUnit &unit, std::set<std::string> &names)
{
    if (!isHeader(unit.path))
        return;
    scanResultDecls(unit, [&](const std::string &name, int, bool) {
        names.insert(name);
    });
}

void
ruleR1Decl(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    if (!startsWith(unit.path, "src/") || !isHeader(unit.path))
        return;
    scanResultDecls(unit,
                    [&](const std::string &name, int line, bool nodiscard) {
                        if (nodiscard)
                            return;
                        out.push_back(Diagnostic{
                            "R1", unit.path, line,
                            "'" + name +
                                "' returns a Result/RunError type but is "
                                "not [[nodiscard]]: a silently dropped "
                                "error is how sweeps lose failed points"});
                    });
}

void
ruleR1Use(const FileUnit &unit, const std::set<std::string> &names,
          std::vector<Diagnostic> &out)
{
    const auto &toks = unit.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            names.count(toks[i].text) == 0 || i + 1 >= toks.size() ||
            !isPunct(toks[i + 1], "("))
            continue;

        // Walk back over `ident ::` qualifiers to the statement start.
        std::size_t start = i;
        while (start >= 2 && isPunct(toks[start - 1], "::") &&
               toks[start - 2].kind == TokKind::Ident)
            start -= 2;
        if (start != 0 && !isDeclBoundary(toks[start - 1]))
            continue; // Value is consumed (assignment, argument, ...).

        // The call must be the whole statement: `... );` at depth 0.
        int depth = 1;
        std::size_t j = i + 2;
        for (; j < toks.size() && depth > 0; ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")"))
                --depth;
        }
        if (depth != 0 || j >= toks.size() || !isPunct(toks[j], ";"))
            continue;

        out.push_back(Diagnostic{
            "R1", unit.path, toks[i].line,
            "discarded result of '" + toks[i].text +
                "': the call returns a Result/RunError that must be "
                "checked (or explicitly voided with a suppression "
                "naming the reason)"});
    }
}

} // namespace

const std::set<std::string> &
seedResultNames()
{
    static const std::set<std::string> kSeeds = {
        "runOneSafe", "runManySafe", "mergeJournals"};
    return kSeeds;
}

void
collectResultNames(const FileUnit &unit, std::set<std::string> &names)
{
    collectR1Names(unit, names);
}

void
runRules(const FileUnit &unit, const std::set<std::string> &resultNames,
         const std::set<std::string> &enabled,
         std::vector<Diagnostic> &out)
{
    if (ruleEnabled(enabled, "D1"))
        ruleD1(unit, out);
    if (ruleEnabled(enabled, "D2"))
        ruleD2(unit, out);
    if (ruleEnabled(enabled, "G1"))
        ruleG1(unit, out);
    if (ruleEnabled(enabled, "C1"))
        ruleC1(unit, out);
    if (ruleEnabled(enabled, "L1"))
        ruleL1(unit, out);
    if (ruleEnabled(enabled, "R1")) {
        ruleR1Decl(unit, out);
        ruleR1Use(unit, resultNames, out);
    }
}

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> kCatalog = {
        {"D1", "no nondeterminism primitives in src/ (seeded sim::Rng "
               "and simulated time only; wall-clock budget files are "
               "allowlisted)"},
        {"D2", "no pointer-keyed unordered_map/unordered_set in files "
               "that emit journal/JSON/CSV bytes"},
        {"G1", "no bare getenv/atoi/strto*/sscanf outside core/env"},
        {"C1", "no bare assert() outside src/check (use ABSIM_CHECK)"},
        {"L1", "src/ include edges must follow the layering DAG"},
        {"R1", "Result/RunError-returning APIs are [[nodiscard]] and "
               "call sites may not discard them"},
        {"SUP", "absim-lint suppression comments must be well-formed: "
                "// absim-lint: <rule> ok(<reason>)"},
    };
    return kCatalog;
}

const std::vector<AllowlistEntry> &
allowlist()
{
    static const std::vector<AllowlistEntry> kAllowlist = {
        {"D1", "src/sim/event_queue.hh",
         "watchdog wall-clock budget: RunBudget.maxWallSeconds needs a "
         "monotonic host clock; never feeds simulated time or output "
         "bytes"},
        {"D1", "src/sim/event_queue.cc",
         "watchdog wall-clock budget deadline checks (same contract as "
         "event_queue.hh)"},
        // D1 scans src/ only, so this entry is documentary: it records
        // that the bench harness timer is sanctioned, should D1's scope
        // ever widen.
        {"D1", "bench/bench_common.hh",
         "sanctioned bench timer: wallNow() measures host performance "
         "of the simulator itself; results go to BENCH_*.json, never "
         "into figure bytes"},
    };
    return kAllowlist;
}

} // namespace absim_lint
