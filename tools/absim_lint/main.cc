/**
 * @file
 * absim_lint CLI.
 *
 * Usage:
 *   absim_lint [--root DIR] [--json] [--rules D1,G1,...] PATH...
 *   absim_lint --list-rules
 *
 * Exit status (the run_cli contract):
 *   0  clean
 *   1  internal/IO error (unreadable path)
 *   2  violations found, or invalid usage (named diagnostic on stderr)
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "lint.hh"

namespace {

int
usage(const char *argv0, const std::string &problem)
{
    if (!problem.empty())
        std::cerr << argv0 << ": error: " << problem << "\n";
    std::cerr << "usage: " << argv0
              << " [--root DIR] [--json] [--rules R1,R2,...] PATH...\n"
              << "       " << argv0 << " --list-rules\n"
              << "PATHs are files or directories relative to --root "
                 "(default: .).\n";
    return 2;
}

bool
validRule(const std::string &id)
{
    for (const absim_lint::RuleInfo &info : absim_lint::ruleCatalog())
        if (id == info.id)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    absim_lint::LintOptions options;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const absim_lint::RuleInfo &info :
                 absim_lint::ruleCatalog())
                std::cout << info.id << "  " << info.summary << "\n";
            std::cout << "\nD1 allowlist (file, reason):\n";
            for (const absim_lint::AllowlistEntry &entry :
                 absim_lint::allowlist())
                std::cout << "  " << entry.file << "  (" << entry.reason
                          << ")\n";
            return 0;
        } else if (arg == "--root") {
            if (i + 1 >= argc)
                return usage(argv[0], "--root needs a directory");
            options.root = argv[++i];
        } else if (arg == "--rules") {
            if (i + 1 >= argc)
                return usage(argv[0],
                             "--rules needs a comma-separated list");
            std::stringstream list(argv[++i]);
            std::string id;
            while (std::getline(list, id, ',')) {
                if (!validRule(id))
                    return usage(argv[0], "unknown rule '" + id +
                                              "' (see --list-rules)");
                options.rules.insert(id);
            }
        } else if (arg.rfind("--", 0) == 0) {
            return usage(argv[0], "unknown flag '" + arg + "'");
        } else {
            options.paths.push_back(arg);
        }
    }
    if (options.paths.empty())
        return usage(argv[0], "no paths to lint");

    const absim_lint::LintResult result = absim_lint::runLint(options);

    if (json)
        std::cout << absim_lint::encodeJson(result);
    else
        std::cout << absim_lint::formatText(result);

    if (!result.errors.empty()) {
        for (const std::string &error : result.errors)
            std::cerr << argv[0] << ": error: " << error << "\n";
        return 1;
    }
    return result.diagnostics.empty() ? 0 : 2;
}
