// Fixture scaffolding: a net/ header so mem/ok_c1.hh has a legal
// lower-layer include target.
#ifndef ABSIM_FIXTURE_TOPOLOGY_HH
#define ABSIM_FIXTURE_TOPOLOGY_HH

namespace absim::net {

using NodeId = unsigned;

} // namespace absim::net

#endif
