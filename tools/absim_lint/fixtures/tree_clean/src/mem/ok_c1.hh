// Fixture: rule C1 negatives — static_assert and the ABSIM_CHECK
// family are fine; only bare assert() is banned.  Also an L1 negative:
// mem/ may include net/ (a lower layer).
#ifndef ABSIM_FIXTURE_OK_C1_HH
#define ABSIM_FIXTURE_OK_C1_HH

#include "net/topology_fixture.hh" // Not L1: net/ is below mem/.

#define ABSIM_FIXTURE_CHECK(cond) ((void)(cond))

namespace absim::mem {

template <typename T>
T
clampIndex(T index, T size)
{
    static_assert(sizeof(T) <= 8, "index type fits a register");
    ABSIM_FIXTURE_CHECK(size > 0);
    return index < size ? index : size - 1;
}

} // namespace absim::mem

#endif
