// Fixture: rule D2 negatives — unordered containers in a byte-emitting
// file are fine when keyed by a stable value type, and pointer-keyed
// ones are fine outside the output path (see ../runtime/ok_g1.cc's
// directory, which D2 does not cover).
#include <cstdint>
#include <cstdio>
#include <unordered_map>

namespace absim::core {

class Tally
{
  public:
    void
    bump(std::uint64_t id)
    {
        ++byId_[id];
    }

    void
    emit() const
    {
        // Not D2: value-keyed; order is still unspecified, but no
        // pointer makes it address-dependent run to run.  (Real output
        // code sorts before emitting; the rule targets the class of
        // bug PR 3 actually hit: pointer keys.)
        std::uint64_t total = 0;
        for (const auto &entry : byId_)
            total += entry.second;
        std::printf("%llu\n", static_cast<unsigned long long>(total));
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> byId_;
};

} // namespace absim::core
