// Fixture: rule R1 negatives — annotated declarations, constructors,
// and consumed call sites.
#ifndef ABSIM_FIXTURE_OK_R1_HH
#define ABSIM_FIXTURE_OK_R1_HH

#include <utility>

namespace absim::core {

struct FixtureError
{
    int code = 0;
};

template <typename T, typename E>
class [[nodiscard]] Result
{
  public:
    // Not R1: constructors of the Result type itself.
    Result(T value) : value_(std::move(value)), ok_(true) {}
    Result(E error) : error_(std::move(error)), ok_(false) {}

    bool ok() const { return ok_; }

  private:
    T value_{};
    E error_{};
    bool ok_ = false;
};

// Not R1: annotated as required.
[[nodiscard]] Result<int, FixtureError> tryAnnotatedThing(int input);

inline int
consume()
{
    // Not R1: the result is consumed, not discarded.
    auto result = tryAnnotatedThing(3);
    return result.ok() ? 0 : 1;
}

} // namespace absim::core

#endif
