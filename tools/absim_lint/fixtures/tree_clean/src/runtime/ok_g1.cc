// Fixture: rule G1 negatives — parsing routed through core/env, and
// identifiers that merely resemble the banned ones.
#include <cstdint>
#include <string>

namespace absim::core {
// Mirrors the real funnel's surface for the fixture build.
std::uint64_t envUint(const char *name, std::uint64_t fallback);
const char *envString(const char *name);
} // namespace absim::core

namespace absim::rt {

struct Env
{
    // Not G1: member named getenv is this type's business.
    const char *getenv(const char *) const { return nullptr; }
};

std::uint64_t
readKnob(const Env &env)
{
    // Not G1: the sanctioned funnel.
    const std::uint64_t budget = core::envUint("ABSIM_FIXTURE_KNOB", 8);
    const char *dir = core::envString("ABSIM_FIXTURE_DIR");

    // Not G1: member call, not the libc primitive.
    const char *other = env.getenv("X");

    return budget + (dir != nullptr ? 1 : 0) + (other != nullptr);
}

} // namespace absim::rt
