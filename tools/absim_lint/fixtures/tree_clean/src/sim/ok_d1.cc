// Fixture: rule D1 negatives — things that look like nondeterminism
// primitives but are not, plus one real primitive silenced by a
// well-formed suppression.
#include <cstdint>
#include <cstdlib>
#include <string>

namespace absim::sim {

struct Profile
{
    double timeValue = 0.0;

    // Not D1: member function named time() is this type's business.
    double time() const { return timeValue; }
};

double
sample(const Profile &profile)
{
    // Not D1: member access, not the libc primitive.
    const double t = profile.time();

    // Not D1: identifiers inside strings and comments are not code.
    const std::string label = "steady_clock rand() time(nullptr)";

    // D1 primitive, but justified and suppressed with the grammar.
    const int jitter = rand(); // absim-lint: D1 ok(fixture exercising a well-formed suppression)

    return t + jitter + static_cast<double>(label.size());
}

} // namespace absim::sim
