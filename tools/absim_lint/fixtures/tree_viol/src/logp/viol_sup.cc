// Fixture: rule SUP positives — malformed suppression comments.  Each
// marker below fails the grammar a different way and must surface as
// its own SUP diagnostic (a suppression that fails to parse must never
// silently suppress nothing).

namespace absim::logp {

int
fixtureValue()
{
    int v = 1; // absim-lint: D9 ok(unknown rule id)
    v += 1;    // absim-lint: D1 okay-this-is-not-the-clause
    v += 2;    // absim-lint: D1 ok()
    return v;
}

} // namespace absim::logp
