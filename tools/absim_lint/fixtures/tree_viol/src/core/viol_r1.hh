// Fixture: rule R1 declaration positive — a Result-returning API
// without [[nodiscard]].
#ifndef ABSIM_FIXTURE_VIOL_R1_HH
#define ABSIM_FIXTURE_VIOL_R1_HH

namespace absim::core {

template <typename T, typename E>
class Result;

struct FixtureError
{
    int code = 0;
};

// R1: returns Result but is not [[nodiscard]].
Result<int, FixtureError> tryFixtureThing(int input);

} // namespace absim::core

#endif
