// Fixture: rule D2 positives — pointer-keyed unordered containers in a
// byte-emitting (src/core/) file, declared and then iterated.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace absim::core {

struct Node
{
    std::string name;
};

class Emitter
{
  public:
    void
    emit()
    {
        // D2: iteration order is address-dependent.
        for (const auto &entry : byNode_)
            std::printf("%s\n", entry.first->name.c_str());
    }

  private:
    std::unordered_map<const Node *, int> byNode_; // D2: pointer key.
};

} // namespace absim::core
