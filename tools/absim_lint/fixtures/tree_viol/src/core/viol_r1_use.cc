// Fixture: rule R1 call-site positive — discarding a Result-returning
// call as a whole statement.
#include "core/viol_r1.hh"

namespace absim::core {

void
fixtureDriver()
{
    tryFixtureThing(7); // R1: result dropped on the floor.
}

} // namespace absim::core
