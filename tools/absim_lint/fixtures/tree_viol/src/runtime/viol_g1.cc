// Fixture: rule G1 positives — bare env/number parsing outside core/env.
#include <cstdlib>

namespace absim::rt {

int
readKnob()
{
    const char *text = std::getenv("ABSIM_FIXTURE_KNOB"); // G1.
    if (text == nullptr)
        return 0;
    return atoi(text); // G1: silently becomes 0 on garbage.
}

} // namespace absim::rt
