// Fixture: rule D1 positives — nondeterminism primitives in src/.
#include <chrono>
#include <cstdlib>

namespace absim::apps {

int
shuffleSeed()
{
    return rand(); // D1: bare rand() in call position.
}

double
wallNow()
{
    // D1: host clock read outside the allowlisted watchdog files.
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

} // namespace absim::apps
