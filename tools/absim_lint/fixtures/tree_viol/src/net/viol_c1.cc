// Fixture: rule C1 positive — bare assert() outside src/check.
#include <cassert>
#include <cstdint>

namespace absim::net {

std::uint32_t
hopCount(std::uint32_t src, std::uint32_t dst)
{
    assert(src != dst); // C1: no context, off in NDEBUG builds.
    return src < dst ? dst - src : src - dst;
}

} // namespace absim::net
