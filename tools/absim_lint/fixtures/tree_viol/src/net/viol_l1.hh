// Fixture: rule L1 positive — net/ reaching up into runtime/.
#ifndef ABSIM_FIXTURE_VIOL_L1_HH
#define ABSIM_FIXTURE_VIOL_L1_HH

#include "runtime/context.hh" // L1: runtime/ is above net/ in the DAG.

#endif
