/**
 * @file
 * absim_lint driver: file collection, suppression parsing, diagnostic
 * filtering and the human/JSON encoders.  The rules themselves live in
 * rules.cc.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "rules.hh"

namespace absim_lint {

namespace fs = std::filesystem;

namespace {

/** A parsed, well-formed suppression: @p rule is silenced on @p line. */
struct Suppression
{
    std::string rule;
    int line = 0;
};

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

bool
knownSuppressibleRule(const std::string &id)
{
    for (const RuleInfo &info : ruleCatalog())
        if (id == info.id)
            return id != "SUP"; // SUP itself cannot be suppressed.
    return false;
}

/**
 * Parse every `absim-lint:` marker in @p unit's comments.  Well-formed
 * ones land in @p out; anything else (bad grammar, unknown rule, empty
 * reason) becomes a SUP diagnostic — a suppression that silently fails
 * to parse would un-suppress nothing and hide its own typo.
 */
void
parseSuppressions(const FileUnit &unit, std::vector<Suppression> &out,
                  std::vector<Diagnostic> &diagnostics)
{
    static const std::string kMarker = "absim-lint";

    for (const Comment &comment : unit.lex.comments) {
        const std::size_t at = comment.text.find(kMarker);
        if (at == std::string::npos)
            continue;

        const int commentLines = static_cast<int>(
            std::count(comment.text.begin(), comment.text.end(), '\n'));
        const int target =
            comment.ownLine ? comment.line + commentLines + 1
                            : comment.line;

        auto malformed = [&](const std::string &why) {
            diagnostics.push_back(Diagnostic{
                "SUP", unit.path, comment.line,
                "malformed absim-lint suppression (" + why +
                    "); expected `absim-lint: <rule> ok(<reason>)` "
                    "with a rule from --list-rules and a non-empty "
                    "reason"});
        };

        std::string rest = comment.text.substr(at + kMarker.size());
        if (rest.empty() || rest[0] != ':') {
            malformed("missing ':' after absim-lint");
            continue;
        }
        rest = trim(rest.substr(1));

        const std::size_t space = rest.find_first_of(" \t");
        if (space == std::string::npos) {
            malformed("missing ok(<reason>) clause");
            continue;
        }
        const std::string rule = rest.substr(0, space);
        if (!knownSuppressibleRule(rule)) {
            malformed("unknown rule '" + rule + "'");
            continue;
        }

        const std::string clause = trim(rest.substr(space));
        const std::size_t close = clause.rfind(')');
        if (clause.rfind("ok(", 0) != 0 || close == std::string::npos ||
            close < 3) {
            malformed("missing ok(<reason>) clause");
            continue;
        }
        if (!trim(clause.substr(close + 1)).empty()) {
            malformed("trailing text after ok(...)");
            continue;
        }
        const std::string reason = trim(clause.substr(3, close - 3));
        if (reason.empty()) {
            malformed("empty reason");
            continue;
        }

        out.push_back(Suppression{rule, target});
    }
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

/** Lint one lexed unit (rules + suppressions) into @p diagnostics. */
void
lintUnit(const FileUnit &unit, const std::set<std::string> &resultNames,
         const std::set<std::string> &enabled,
         std::vector<Diagnostic> &diagnostics)
{
    std::vector<Diagnostic> raw;
    runRules(unit, resultNames, enabled, raw);

    std::vector<Suppression> suppressions;
    parseSuppressions(unit, suppressions, diagnostics);

    for (Diagnostic &diagnostic : raw) {
        const bool suppressed = std::any_of(
            suppressions.begin(), suppressions.end(),
            [&](const Suppression &s) {
                return s.rule == diagnostic.rule &&
                       s.line == diagnostic.line;
            });
        if (!suppressed)
            diagnostics.push_back(std::move(diagnostic));
    }
}

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".cxx" || ext == ".hxx" ||
           ext == ".h";
}

std::string
jsonEscapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Extract "key":"string" from a flat JSON object body. */
bool
extractJsonString(const std::string &object, const std::string &key,
                  std::string &out)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t at = object.find(needle);
    if (at == std::string::npos)
        return false;
    std::string value;
    for (std::size_t i = at + needle.size(); i < object.size(); ++i) {
        const char c = object[i];
        if (c == '\\' && i + 1 < object.size()) {
            const char next = object[++i];
            switch (next) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case 'r': value += '\r'; break;
            case 'u':
                if (i + 4 < object.size()) {
                    value += static_cast<char>(
                        std::stoi(object.substr(i + 1, 4), nullptr, 16));
                    i += 4;
                }
                break;
            default: value += next;
            }
        } else if (c == '"') {
            out = value;
            return true;
        } else {
            value += c;
        }
    }
    return false;
}

bool
extractJsonInt(const std::string &object, const std::string &key,
               int &out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = object.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    std::size_t end = i;
    while (end < object.size() &&
           std::isdigit(static_cast<unsigned char>(object[end])))
        ++end;
    if (end == i)
        return false;
    out = std::stoi(object.substr(i, end - i));
    return true;
}

} // namespace

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &source)
{
    FileUnit unit{path, lex(source)};

    std::set<std::string> names = seedResultNames();
    collectResultNames(unit, names);

    std::vector<Diagnostic> diagnostics;
    lintUnit(unit, names, /*enabled=*/{}, diagnostics);
    sortDiagnostics(diagnostics);
    return diagnostics;
}

LintResult
runLint(const LintOptions &options)
{
    LintResult result;
    const fs::path root = options.root;

    // Collect the file list, sorted for deterministic output.
    std::vector<std::string> files;
    for (const std::string &arg : options.paths) {
        const fs::path path = root / arg;
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            for (auto it = fs::recursive_directory_iterator(path, ec);
                 it != fs::recursive_directory_iterator();
                 it.increment(ec)) {
                if (ec)
                    break;
                if (it->path().filename().string().rfind(".", 0) == 0) {
                    if (it->is_directory())
                        it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() &&
                    lintableExtension(it->path()))
                    files.push_back(
                        fs::relative(it->path(), root).generic_string());
            }
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(fs::relative(path, root).generic_string());
        } else {
            result.errors.push_back("cannot read '" + path.string() +
                                    "'");
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Lex everything up front: rule R1's discarded-call pass needs the
    // full set of Result-returning names before any file is judged.
    std::vector<FileUnit> units;
    units.reserve(files.size());
    for (const std::string &file : files) {
        std::ifstream in(root / file, std::ios::binary);
        if (!in) {
            result.errors.push_back("cannot read '" + file + "'");
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        units.push_back(FileUnit{file, lex(text.str())});
    }

    std::set<std::string> names = seedResultNames();
    for (const FileUnit &unit : units)
        collectResultNames(unit, names);

    for (const FileUnit &unit : units)
        lintUnit(unit, names, options.rules, result.diagnostics);

    result.filesScanned = static_cast<int>(units.size());
    sortDiagnostics(result.diagnostics);
    return result;
}

std::string
encodeJson(const LintResult &result)
{
    std::ostringstream out;
    out << "{\"absim_lint\":1,\"files_scanned\":" << result.filesScanned
        << ",\"count\":" << result.diagnostics.size()
        << ",\"violations\":[";
    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const Diagnostic &d = result.diagnostics[i];
        out << (i == 0 ? "" : ",") << "\n{\"file\":\""
            << jsonEscapeString(d.file) << "\",\"line\":" << d.line
            << ",\"rule\":\"" << jsonEscapeString(d.rule)
            << "\",\"message\":\"" << jsonEscapeString(d.message)
            << "\"}";
    }
    out << "]}\n";
    return out.str();
}

bool
decodeJson(const std::string &json, LintResult &out)
{
    out = LintResult{};
    if (json.find("\"absim_lint\":1") == std::string::npos)
        return false;
    if (!extractJsonInt(json, "files_scanned", out.filesScanned))
        return false;

    const std::size_t array = json.find("\"violations\":[");
    if (array == std::string::npos)
        return false;

    // Objects are flat (no nesting), so brace-matching is trivial.
    std::size_t i = array;
    while (true) {
        const std::size_t open = json.find('{', i);
        if (open == std::string::npos)
            break;
        const std::size_t close = json.find('}', open);
        if (close == std::string::npos)
            return false;
        const std::string object = json.substr(open, close - open + 1);
        Diagnostic d;
        if (!extractJsonString(object, "file", d.file) ||
            !extractJsonInt(object, "line", d.line) ||
            !extractJsonString(object, "rule", d.rule) ||
            !extractJsonString(object, "message", d.message))
            return false;
        out.diagnostics.push_back(std::move(d));
        i = close + 1;
    }

    int count = 0;
    if (!extractJsonInt(json, "count", count) ||
        count != static_cast<int>(out.diagnostics.size()))
        return false;
    return true;
}

std::string
formatText(const LintResult &result)
{
    std::ostringstream out;
    for (const Diagnostic &d : result.diagnostics)
        out << d.file << ":" << d.line << ": [" << d.rule << "] "
            << d.message << "\n";
    for (const std::string &error : result.errors)
        out << "error: " << error << "\n";
    if (result.diagnostics.empty() && result.errors.empty())
        out << "absim_lint: clean (" << result.filesScanned
            << " files)\n";
    else
        out << "absim_lint: " << result.diagnostics.size()
            << " violation(s) in " << result.filesScanned << " files\n";
    return out.str();
}

} // namespace absim_lint
