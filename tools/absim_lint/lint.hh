/**
 * @file
 * absim_lint: project-specific static analysis for absim.
 *
 * Enforces the invariants the generic toolchain cannot express (see
 * docs/CHECKING.md, "absim_lint rule catalog"):
 *
 *   D1  no nondeterminism primitives in src/ outside the allowlist
 *   D2  no pointer-keyed unordered containers in byte-emitting files
 *   G1  no bare getenv/atoi/strto* outside core/env
 *   C1  no bare assert() outside src/check
 *   L1  include-layering DAG over src/ directories
 *   R1  Result/RunError-returning APIs are [[nodiscard]] and never
 *       silently discarded at call sites
 *   SUP malformed `// absim-lint:` suppression comments
 *
 * Diagnostics may be suppressed inline:
 *
 *   foo();  // absim-lint: D1 ok(reason the exception is sound)
 *
 * A suppression on a comment-only line applies to the next line.  The
 * rule id must be one of the catalog above (not SUP) and the reason
 * must be non-empty; anything else is itself a SUP diagnostic.
 */

#ifndef ABSIM_LINT_LINT_HH
#define ABSIM_LINT_LINT_HH

#include <set>
#include <string>
#include <vector>

namespace absim_lint {

struct Diagnostic
{
    std::string rule;    ///< "D1", ..., "SUP".
    std::string file;    ///< Root-relative path, '/'-separated.
    int line = 0;        ///< 1-based.
    std::string message;

    bool operator==(const Diagnostic &other) const
    {
        return rule == other.rule && file == other.file &&
               line == other.line && message == other.message;
    }
};

/** One catalog entry, for --list-rules and the suppression parser. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** The rule catalog (stable order; SUP last). */
const std::vector<RuleInfo> &ruleCatalog();

/** A built-in D1 allowlist entry (file-scoped, with its rationale). */
struct AllowlistEntry
{
    const char *rule;
    const char *file;
    const char *reason;
};

const std::vector<AllowlistEntry> &allowlist();

/**
 * One layer of rule L1's include DAG: a src/ directory and the
 * directories it may include (its own is always allowed).  The table
 * is ordered lowest layer first, and every allowed entry refers to an
 * earlier row — that ordering is the acyclicity proof, asserted by the
 * self-tests.
 */
struct Layer
{
    const char *dir;
    std::vector<const char *> allowed;
};

const std::vector<Layer> &layerTable();

struct LintOptions
{
    /** Repository root all paths are resolved against and reported
     *  relative to. */
    std::string root = ".";

    /** Files or directories (root-relative) to scan. */
    std::vector<std::string> paths;

    /** When non-empty, only run these rules (SUP always runs). */
    std::set<std::string> rules;
};

struct LintResult
{
    std::vector<Diagnostic> diagnostics; ///< Sorted (file, line, rule).
    int filesScanned = 0;
    std::vector<std::string> errors; ///< I/O problems (exit 1).
};

/** Scan and lint per @p options. */
LintResult runLint(const LintOptions &options);

/**
 * Lint a single in-memory file (unit-test entry point).  @p path is
 * the root-relative path used for rule scoping.  Cross-file state
 * (rule R1's name registry) sees only this file plus the built-in
 * seeds.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &source);

/** Render diagnostics as the stable --json document. */
std::string encodeJson(const LintResult &result);

/**
 * Parse a document produced by encodeJson (fixture round-trips and CI
 * tooling).  @return false on malformed input.
 */
bool decodeJson(const std::string &json, LintResult &out);

/** Human-readable "file:line: rule: message" lines + summary. */
std::string formatText(const LintResult &result);

} // namespace absim_lint

#endif // ABSIM_LINT_LINT_HH
