/**
 * @file
 * Comment/string-aware C++ lexer for absim_lint.
 *
 * This is not a full C++ front end: the rules in rules.cc only need a
 * faithful token stream (identifiers, numbers, literals, punctuation,
 * line numbers) with comments and string contents separated out, so
 * that `rand` inside a string literal or a comment never trips a rule,
 * while `// absim-lint: ...` suppression comments are still visible to
 * the suppression parser.
 */

#ifndef ABSIM_LINT_LEXER_HH
#define ABSIM_LINT_LEXER_HH

#include <string>
#include <vector>

namespace absim_lint {

enum class TokKind
{
    Ident,  ///< Identifiers and keywords.
    Number, ///< Numeric literals (pp-numbers).
    String, ///< String literal; text holds the *inner* characters.
    Char,   ///< Character literal; text holds the inner characters.
    Punct,  ///< Operators and punctuation, one token per maximal glyph.
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0; ///< 1-based line of the token's first character.
};

/** One comment, kept for suppression parsing only. */
struct Comment
{
    int line = 0;      ///< 1-based line where the comment starts.
    bool ownLine = false; ///< No code token precedes it on its line.
    std::string text;  ///< Body without the // or enclosing slash-star.
};

struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Lex @p source.  Never fails: unterminated literals/comments are
 * closed at end of file (the rules prefer a best-effort stream over
 * hard errors on files the compiler itself would reject).
 */
LexedFile lex(const std::string &source);

} // namespace absim_lint

#endif // ABSIM_LINT_LEXER_HH
