/**
 * @file
 * Tests for the sweep checkpoint journal: record encoding, crash
 * tolerance, and the headline guarantee — a sweep interrupted between
 * points resumes from its journal and produces byte-identical final
 * JSON to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/figures.hh"
#include "core/journal.hh"
#include "core/journal_merge.hh"

namespace {

using namespace absim;

TEST(Journal, EscapeRoundTripsControlAndQuoteCharacters)
{
    const std::string nasty = "a \"quoted\\path\"\nwith\ttabs\rand \x01";
    EXPECT_EQ(core::jsonUnescape(core::jsonEscape(nasty)), nasty);
    EXPECT_EQ(core::jsonEscape("plain"), "plain");
}

TEST(Journal, FormatDoubleRoundTripsExactly)
{
    for (const double v : {1.0, 0.1, 1.0 / 3.0, 12345.6789e-7, 2.5e300}) {
        const std::string text = core::formatDouble(v);
        EXPECT_EQ(std::stod(text), v) << text;
    }
}

TEST(Journal, RecordEncodeDecodeRoundTrips)
{
    core::JournalRecord success;
    success.procs = 8;
    success.values = {1.0 / 3.0, 2.75, 1e-9};
    core::JournalRecord out;
    ASSERT_TRUE(core::decodeRecord(core::encodeRecord(success), out));
    EXPECT_FALSE(out.failed);
    EXPECT_EQ(out.procs, 8u);
    EXPECT_EQ(out.values, success.values);

    core::JournalRecord failure;
    failure.procs = 16;
    failure.failed = true;
    failure.machine = "logp";
    failure.error = "Deadlock";
    failure.message = "clock stuck at \"0 ns\"";
    ASSERT_TRUE(core::decodeRecord(core::encodeRecord(failure), out));
    EXPECT_TRUE(out.failed);
    EXPECT_EQ(out.procs, 16u);
    EXPECT_EQ(out.machine, "logp");
    EXPECT_EQ(out.error, "Deadlock");
    EXPECT_EQ(out.message, failure.message);
}

TEST(Journal, FailureRecordCarriesOptionalTraceExcerpt)
{
    core::JournalRecord failure;
    failure.procs = 16;
    failure.failed = true;
    failure.machine = "logp";
    failure.error = "Deadlock";
    failure.message = "clock stuck";
    failure.trace = "[5] send p0 -> p1\n[9] recv p1\n";

    const std::string line = core::encodeRecord(failure);
    core::JournalRecord out;
    ASSERT_TRUE(core::decodeRecord(line, out));
    EXPECT_EQ(out.trace, failure.trace);

    // A traceless failure encodes without the field at all, so journals
    // written before trace capture existed keep their exact bytes.
    failure.trace.clear();
    EXPECT_EQ(core::encodeRecord(failure).find("\"trace\""),
              std::string::npos);
    ASSERT_TRUE(core::decodeRecord(core::encodeRecord(failure), out));
    EXPECT_TRUE(out.trace.empty());
}

TEST(Journal, FsyncIntervalDefaultsToCompiledConstant)
{
    // With ABSIM_FSYNC_INTERVAL unset the knob is the compiled default;
    // the garbage/zero path (exit 2) is pinned by a bench ctest.
    EXPECT_EQ(core::journalFsyncInterval(), core::kJournalFsyncInterval);
}

TEST(Journal, DecodeRejectsTornLines)
{
    core::JournalRecord out;
    EXPECT_FALSE(core::decodeRecord("", out));
    EXPECT_FALSE(core::decodeRecord("{\"procs\":8,\"target\":1.5", out));
    EXPECT_FALSE(core::decodeRecord("{\"procs\":8}", out));
    EXPECT_FALSE(
        core::decodeRecord("{\"procs\":8,\"machine\":\"logp", out));
}

TEST(ShardSpec, ParsesValidSpecsAndRejectsGarbage)
{
    core::ShardSpec spec;
    ASSERT_TRUE(core::ShardSpec::parse("0/2", spec));
    EXPECT_EQ(spec.index, 0u);
    EXPECT_EQ(spec.count, 2u);
    EXPECT_TRUE(spec.sharded());
    EXPECT_EQ(spec.str(), "0/2");
    EXPECT_TRUE(spec.owns(0));
    EXPECT_FALSE(spec.owns(1));
    EXPECT_TRUE(spec.owns(4));

    ASSERT_TRUE(core::ShardSpec::parse("3/8", spec));
    EXPECT_EQ(spec.index, 3u);
    EXPECT_EQ(spec.count, 8u);

    ASSERT_TRUE(core::ShardSpec::parse("0/1", spec));
    EXPECT_FALSE(spec.sharded());

    for (const char *bad : {"", "2/2", "3/2", "a/2", "1/b", "-1/2",
                            "1/-2", "1/0", "1/", "/2", "1/2/3", "1 /2",
                            "1/2 ", "0x1/2"})
        EXPECT_FALSE(core::ShardSpec::parse(bad, spec)) << bad;
}

TEST(Journal, HeaderStampsShardSpecAndKeepsLegacyBytes)
{
    const std::string path = testing::TempDir() + "absim_shard_hdr.jsonl";

    // An unsharded classic-trio header keeps the exact legacy line.
    core::startJournal(path, {"t", "fft", "full", "exec_time"});
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line,
              "{\"absim_journal\":1,\"title\":\"t\",\"app\":\"fft\","
              "\"topology\":\"full\",\"metric\":\"exec_time\"}");
    in.close();

    // A shard header round-trips machines and the spec.
    core::JournalHeader header{"t", "fft", "full", "exec_time",
                               {"target", "logp", "logpc"},
                               core::ShardSpec{1, 2}};
    core::startJournal(path, header);
    std::ifstream in2(path);
    ASSERT_TRUE(std::getline(in2, line));
    core::JournalHeader decoded;
    ASSERT_TRUE(core::decodeHeader(line, decoded));
    EXPECT_EQ(decoded, header);
    EXPECT_EQ(decoded.shard.str(), "1/2");
}

TEST(Journal, LoadSkipsTornTrailingWrite)
{
    const std::string path = testing::TempDir() + "absim_torn.jsonl";
    const core::JournalHeader header{"t", "fft", "full", "exec_time"};
    core::startJournal(path, header);
    core::appendJournal(path, {4, false, {1.5, 2.5, 3.5}, "", "", ""});
    {
        // Simulate a crash mid-write: a truncated trailing line.
        std::ofstream out(path, std::ios::app);
        out << "{\"procs\":8,\"target\":9";
    }
    std::vector<core::JournalRecord> records;
    ASSERT_TRUE(core::loadJournal(path, header, records));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].procs, 4u);
}

TEST(Journal, LoadReportsTornTailAndResumeTruncatesIt)
{
    const std::string path = testing::TempDir() + "absim_tear.jsonl";
    const core::JournalHeader header{"t", "fft", "full", "exec_time"};
    core::startJournal(path, header);
    core::appendJournal(path, {4, false, {1.5, 2.5, 3.5}, "", "", ""});

    std::uint64_t intact = 0;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        intact = static_cast<std::uint64_t>(in.tellg());
    }
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"procs\":8,\"target\":9";
    }

    std::vector<core::JournalRecord> records;
    core::JournalResume info;
    ASSERT_TRUE(core::loadJournal(path, header,
                                  core::defaultJournalColumns(), records,
                                  &info));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(info.tornTail);
    EXPECT_EQ(info.cleanBytes, intact);

    // Resume welds nothing onto the tear: the writer truncates to the
    // clean prefix before appending.
    core::JournalWriter writer;
    ASSERT_TRUE(writer.resume(path, info.cleanBytes));
    writer.append({8, false, {4.5, 5.5, 6.5}, "", "", ""});
    writer.close();

    records.clear();
    ASSERT_TRUE(core::loadJournal(path, header,
                                  core::defaultJournalColumns(), records,
                                  &info));
    ASSERT_EQ(records.size(), 2u);
    EXPECT_FALSE(info.tornTail);
    EXPECT_EQ(records[1].procs, 8u);
}

TEST(Journal, UnterminatedFinalRecordIsTornEvenIfParseable)
{
    const std::string path = testing::TempDir() + "absim_noeol.jsonl";
    const core::JournalHeader header{"t", "fft", "full", "exec_time"};
    core::startJournal(path, header);
    core::appendJournal(path, {4, false, {1.0, 2.0, 3.0}, "", "", ""});
    core::appendJournal(path, {8, false, {4.0, 5.0, 6.0}, "", "", ""});

    // Chop the final newline: the last record still parses, but without
    // its terminator it may be half of a longer write — drop it.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    ASSERT_EQ(bytes.back(), '\n');
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << bytes.substr(0, bytes.size() - 1);
    }

    std::vector<core::JournalRecord> records;
    core::JournalResume info;
    ASSERT_TRUE(core::loadJournal(path, header,
                                  core::defaultJournalColumns(), records,
                                  &info));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(info.tornTail);
    EXPECT_LT(info.cleanBytes, bytes.size());
}

TEST(Journal, HeaderMismatchIgnoresJournal)
{
    const std::string path = testing::TempDir() + "absim_header.jsonl";
    core::startJournal(path, {"t", "fft", "full", "exec_time"});
    core::appendJournal(path, {4, false, {1.0, 2.0, 3.0}, "", "", ""});
    std::vector<core::JournalRecord> records;
    EXPECT_FALSE(core::loadJournal(
        path, {"t", "cg", "full", "exec_time"}, records));
    EXPECT_TRUE(records.empty());
    EXPECT_FALSE(core::loadJournal(path + ".does-not-exist",
                                   {"t", "fft", "full", "exec_time"},
                                   records));
}

// ---- The resilient sweep as a drop-in for the raw sweep ----------------

namespace {

core::RunConfig
smallConfig()
{
    core::RunConfig base;
    base.app = "is";
    base.params.n = 256;
    return base;
}

} // namespace

TEST(SweepSafe, MatchesRawSweepWhenNothingFails)
{
    const core::RunConfig base = smallConfig();
    const auto raw = core::sweepFigure("t", base, net::TopologyKind::Full,
                                       core::Metric::ExecTime, {1, 2});
    const auto safe =
        core::sweepFigureSafe("t", base, net::TopologyKind::Full,
                              core::Metric::ExecTime, {1, 2}, {});
    EXPECT_TRUE(safe.complete());
    ASSERT_EQ(safe.figure.points.size(), raw.points.size());
    for (std::size_t i = 0; i < raw.points.size(); ++i) {
        EXPECT_EQ(safe.figure.points[i].procs, raw.points[i].procs);
        EXPECT_EQ(safe.figure.points[i].values, raw.points[i].values);
    }
}

TEST(SweepSafe, InterruptedSweepResumesByteIdentical)
{
    const core::RunConfig base = smallConfig();
    const std::string path = testing::TempDir() + "absim_resume.jsonl";
    std::remove(path.c_str());
    core::SweepOptions options;
    options.journalPath = path;

    // Full run, journaling every point.
    const auto full = core::sweepFigureSafe(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(full.complete());
    std::ostringstream json_full;
    core::writeFigureJson(json_full, full);

    // Simulate a SIGKILL after the first completed point: keep the
    // journal's header and first record, drop the rest.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 4u); // Header + three points.
    {
        std::ofstream out(path, std::ios::trunc);
        out << lines[0] << "\n" << lines[1] << "\n";
    }

    // Re-run: points 2 and 4 are recomputed, point 1 is replayed.
    const auto resumed = core::sweepFigureSafe(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(resumed.complete());
    std::ostringstream json_resumed;
    core::writeFigureJson(json_resumed, resumed);

    EXPECT_EQ(json_full.str(), json_resumed.str());

    // Another run resumes everything without recomputing: the journal
    // now holds all three points again.
    std::vector<core::JournalRecord> records;
    ASSERT_TRUE(core::loadJournal(
        path, {"resume", base.app, "full", "exec_time"}, records));
    EXPECT_EQ(records.size(), 3u);
}

TEST(SweepSafe, TornTailResumesByteIdentical)
{
    const core::RunConfig base = smallConfig();
    const std::string path = testing::TempDir() + "absim_tear_resume.jsonl";
    std::remove(path.c_str());
    core::SweepOptions options;
    options.journalPath = path;

    const auto full = core::sweepFigureSafe(
        "tear", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(full.complete());
    std::ostringstream json_full;
    core::writeFigureJson(json_full, full);
    std::string journal_full;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        journal_full = buf.str();
    }

    // Simulate a crash mid-write of the last record: cut into the
    // middle of its line, leaving no trailing newline.
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << journal_full.substr(0, journal_full.size() - 7);
    }

    const auto resumed = core::sweepFigureSafe(
        "tear", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(resumed.complete());
    std::ostringstream json_resumed;
    core::writeFigureJson(json_resumed, resumed);
    EXPECT_EQ(json_full.str(), json_resumed.str());

    // The resumed journal truncated the tear and rewrote the record:
    // byte-identical to the uninterrupted journal, no torn tail left.
    std::string journal_resumed;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        journal_resumed = buf.str();
    }
    EXPECT_EQ(journal_resumed, journal_full);
}

TEST(SweepSafe, MismatchedJournalIsRewrittenNotTrusted)
{
    const core::RunConfig base = smallConfig();
    const std::string path = testing::TempDir() + "absim_stale.jsonl";
    // A journal from a different figure, with a bogus cached point that
    // must NOT leak into this sweep.
    core::startJournal(path, {"other", "fft", "cube", "latency"});
    core::appendJournal(path,
                        {1, false, {999.0, 999.0, 999.0}, "", "", ""});

    core::SweepOptions options;
    options.journalPath = path;
    const auto result = core::sweepFigureSafe(
        "stale", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1}, options);
    ASSERT_TRUE(result.complete());
    ASSERT_EQ(result.figure.points.size(), 1u);
    EXPECT_NE(result.figure.points[0].values[0], 999.0);

    // The stale journal was replaced by this sweep's own.
    std::vector<core::JournalRecord> records;
    ASSERT_TRUE(core::loadJournal(
        path, {"stale", base.app, "full", "exec_time"}, records));
    ASSERT_EQ(records.size(), 1u);
}

// ---- Shard-journal merge ----------------------------------------------

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Write a shard journal: header + one single-column record per line. */
std::string
writeShard(const std::string &name, const core::JournalHeader &header,
           const std::vector<core::JournalRecord> &records,
           const std::vector<std::string> &record_columns)
{
    const std::string path = testing::TempDir() + name;
    core::JournalWriter writer;
    EXPECT_TRUE(writer.start(path, header));
    for (std::size_t i = 0; i < records.size(); ++i)
        writer.append(records[i],
                      records[i].failed
                          ? core::defaultJournalColumns()
                          : std::vector<std::string>{record_columns[i]});
    writer.close();
    return path;
}

/** A one-machine sweep header ("m1") stamped for shard K/N. */
core::JournalHeader
oneColumnHeader(std::uint32_t index, std::uint32_t count)
{
    return {"t",   "fft", "full", "exec_time",
            {"m1"}, core::ShardSpec{index, count}};
}

} // namespace

TEST(JournalMerge, ReassemblesSerialJournalBytes)
{
    // One machine, points P = 1,2,4,8 split across two shards.
    const std::string s0 = writeShard(
        "absim_merge_s0.jsonl", oneColumnHeader(0, 2),
        {{1, false, {0.5}, "", "", ""}, {4, false, {1.5}, "", "", ""}},
        {"m1", "m1"});
    const std::string s1 = writeShard(
        "absim_merge_s1.jsonl", oneColumnHeader(1, 2),
        {{2, false, {1.0}, "", "", ""}, {8, false, {2.0}, "", "", ""}},
        {"m1", "m1"});

    // Shard order on the command line must not matter.
    const core::MergeResult merge = core::mergeJournals({s1, s0});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    EXPECT_TRUE(merge.warnings.empty());
    ASSERT_EQ(merge.records.size(), 4u);
    EXPECT_EQ(merge.records[0].procs, 1u);
    EXPECT_EQ(merge.records[3].procs, 8u);
    EXPECT_FALSE(merge.header.shard.sharded());

    const std::string merged_path =
        testing::TempDir() + "absim_merge_out.jsonl";
    ASSERT_TRUE(core::writeMergedJournal(merged_path, merge));

    // The serial sweep would have journaled the same bytes.
    const std::string serial_path =
        testing::TempDir() + "absim_merge_serial.jsonl";
    core::JournalHeader serial = oneColumnHeader(0, 1);
    serial.shard = {};
    core::startJournal(serial_path, serial);
    const std::vector<std::pair<std::uint32_t, double>> points = {
        {1, 0.5}, {2, 1.0}, {4, 1.5}, {8, 2.0}};
    for (const auto &[p, v] : points)
        core::appendJournal(serial_path, {p, false, {v}, "", "", ""},
                            {"m1"});
    EXPECT_EQ(slurp(merged_path), slurp(serial_path));
}

TEST(JournalMerge, ClassicTrioMergeRestoresLegacyHeader)
{
    // The classic trio, points P = 2,4: six items interleaved mod 2.
    const std::vector<std::string> trio = core::defaultJournalColumns();
    core::JournalHeader h0{"t", "is", "full", "exec_time", trio,
                           core::ShardSpec{0, 2}};
    core::JournalHeader h1{"t", "is", "full", "exec_time", trio,
                           core::ShardSpec{1, 2}};
    const std::string s0 = writeShard(
        "absim_trio_s0.jsonl", h0,
        {{2, false, {1.0}, "", "", ""}, {2, false, {3.0}, "", "", ""},
         {4, false, {5.0}, "", "", ""}},
        {"target", "logpc", "logp"});
    const std::string s1 = writeShard(
        "absim_trio_s1.jsonl", h1,
        {{2, false, {2.0}, "", "", ""}, {4, false, {4.0}, "", "", ""},
         {4, false, {6.0}, "", "", ""}},
        {"logp", "target", "logpc"});

    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    const std::string merged_path =
        testing::TempDir() + "absim_trio_out.jsonl";
    ASSERT_TRUE(core::writeMergedJournal(merged_path, merge));

    const std::string serial_path =
        testing::TempDir() + "absim_trio_serial.jsonl";
    core::startJournal(serial_path, {"t", "is", "full", "exec_time"});
    core::appendJournal(serial_path,
                        {2, false, {1.0, 2.0, 3.0}, "", "", ""});
    core::appendJournal(serial_path,
                        {4, false, {4.0, 5.0, 6.0}, "", "", ""});
    EXPECT_EQ(slurp(merged_path), slurp(serial_path));
}

TEST(JournalMerge, ReproducesSerialFailureRecordLayout)
{
    const std::string s0 = writeShard(
        "absim_fail_s0.jsonl", oneColumnHeader(0, 2),
        {{1, false, {0.5}, "", "", ""},
         {4, true, {}, "logp", "Deadlock", "stuck"}},
        {"m1", "m1"});
    const std::string s1 = writeShard("absim_fail_s1.jsonl",
                                      oneColumnHeader(1, 2),
                                      {{2, false, {1.0}, "", "", ""}},
                                      {"m1"});

    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    ASSERT_EQ(merge.records.size(), 3u);
    EXPECT_TRUE(merge.records[2].failed);
    EXPECT_EQ(merge.records[2].machine, "logp");
    EXPECT_EQ(merge.records[2].error, "Deadlock");
}

TEST(JournalMerge, RejectsMismatchedHeaders)
{
    core::JournalHeader other = oneColumnHeader(1, 2);
    other.app = "cg";
    const std::string s0 = writeShard("absim_mm_s0.jsonl",
                                      oneColumnHeader(0, 2),
                                      {{1, false, {0.5}, "", "", ""}},
                                      {"m1"});
    const std::string s1 = writeShard("absim_mm_s1.jsonl", other,
                                      {{2, false, {1.0}, "", "", ""}},
                                      {"m1"});
    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_FALSE(merge.ok());
    EXPECT_NE(merge.errors[0].find("shard-header-mismatch"),
              std::string::npos)
        << merge.errors[0];
}

TEST(JournalMerge, RejectsWrongShardCountAndDuplicateIndex)
{
    const std::string s0 = writeShard("absim_cnt_s0.jsonl",
                                      oneColumnHeader(0, 2),
                                      {{1, false, {0.5}, "", "", ""}},
                                      {"m1"});
    const core::MergeResult alone = core::mergeJournals({s0});
    ASSERT_FALSE(alone.ok());
    EXPECT_NE(alone.errors[0].find("shard-count-mismatch"),
              std::string::npos)
        << alone.errors[0];

    const core::MergeResult twice = core::mergeJournals({s0, s0});
    ASSERT_FALSE(twice.ok());
    EXPECT_NE(twice.errors[0].find("shard-duplicate-index"),
              std::string::npos)
        << twice.errors[0];
}

TEST(JournalMerge, DetectsGapInShortShard)
{
    // Shard 1 reached item 3 but shard 0 only recorded item 0: item 2
    // is missing — shard 0 must be rerun, not papered over.
    const std::string s0 = writeShard("absim_gap_s0.jsonl",
                                      oneColumnHeader(0, 2),
                                      {{1, false, {0.5}, "", "", ""}},
                                      {"m1"});
    const std::string s1 = writeShard(
        "absim_gap_s1.jsonl", oneColumnHeader(1, 2),
        {{2, false, {1.0}, "", "", ""}, {8, false, {2.0}, "", "", ""}},
        {"m1", "m1"});
    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_FALSE(merge.ok());
    EXPECT_NE(merge.errors[0].find("merge-gap"), std::string::npos)
        << merge.errors[0];
    EXPECT_TRUE(merge.records.empty());
}

TEST(JournalMerge, DetectsDuplicatedRecord)
{
    // A duplicated line in a one-machine shard still *parses* at every
    // position — only the (procs, machine) seen-set can catch it.
    const std::string s0 = writeShard(
        "absim_dup_s0.jsonl", oneColumnHeader(0, 2),
        {{1, false, {0.5}, "", "", ""}, {4, false, {1.5}, "", "", ""},
         {4, false, {1.5}, "", "", ""}},
        {"m1", "m1", "m1"});
    const std::string s1 = writeShard(
        "absim_dup_s1.jsonl", oneColumnHeader(1, 2),
        {{2, false, {1.0}, "", "", ""}, {8, false, {2.0}, "", "", ""}},
        {"m1", "m1"});
    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_FALSE(merge.ok());
    EXPECT_NE(merge.errors[0].find("merge-duplicate"), std::string::npos)
        << merge.errors[0];
}

TEST(JournalMerge, DetectsProcsMismatchAcrossShards)
{
    // Two machines, one point: the shards disagree on what P the point
    // sweeps — they came from different grids.
    core::JournalHeader h0{"t", "fft", "full", "exec_time",
                           {"m1", "m2"}, core::ShardSpec{0, 2}};
    core::JournalHeader h1{"t", "fft", "full", "exec_time",
                           {"m1", "m2"}, core::ShardSpec{1, 2}};
    const std::string s0 = writeShard("absim_pm_s0.jsonl", h0,
                                      {{1, false, {0.5}, "", "", ""}},
                                      {"m1"});
    const std::string s1 = writeShard("absim_pm_s1.jsonl", h1,
                                      {{2, false, {1.0}, "", "", ""}},
                                      {"m2"});
    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_FALSE(merge.ok());
    EXPECT_NE(merge.errors[0].find("merge-procs-mismatch"),
              std::string::npos)
        << merge.errors[0];
}

TEST(JournalMerge, TornTailIsAWarningWhenNothingIsMissing)
{
    const std::string s0 = writeShard(
        "absim_warn_s0.jsonl", oneColumnHeader(0, 2),
        {{1, false, {0.5}, "", "", ""}, {4, false, {1.5}, "", "", ""}},
        {"m1", "m1"});
    const std::string s1 = writeShard(
        "absim_warn_s1.jsonl", oneColumnHeader(1, 2),
        {{2, false, {1.0}, "", "", ""}, {8, false, {2.0}, "", "", ""}},
        {"m1", "m1"});
    {
        // A crash left half a record beyond shard 0's complete set.
        std::ofstream out(s0, std::ios::app | std::ios::binary);
        out << "{\"procs\":16,\"m1\":9";
    }
    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    ASSERT_EQ(merge.warnings.size(), 1u);
    EXPECT_NE(merge.warnings[0].find("shard-torn-tail"),
              std::string::npos)
        << merge.warnings[0];
    EXPECT_EQ(merge.records.size(), 4u);
}

TEST(SweepSafe, FigureJsonIsWellFormedAndDeterministic)
{
    core::SweepResult result;
    result.figure.title = "fig \"X\"";
    result.figure.app = "fft";
    result.figure.points.push_back({2, {0.5, 1.0 / 3.0, 2.0}});
    result.failures.push_back({4, "logp", "Deadlock", "stuck"});
    std::ostringstream a;
    std::ostringstream b;
    core::writeFigureJson(a, result);
    core::writeFigureJson(b, result);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("\"title\":\"fig \\\"X\\\"\""),
              std::string::npos)
        << a.str();
    EXPECT_NE(a.str().find("\"complete\":false"), std::string::npos);
    EXPECT_NE(a.str().find(core::formatDouble(1.0 / 3.0)),
              std::string::npos)
        << a.str();
}

} // namespace
