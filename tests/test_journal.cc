/**
 * @file
 * Tests for the sweep checkpoint journal: record encoding, crash
 * tolerance, and the headline guarantee — a sweep interrupted between
 * points resumes from its journal and produces byte-identical final
 * JSON to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/figures.hh"
#include "core/journal.hh"

namespace {

using namespace absim;

TEST(Journal, EscapeRoundTripsControlAndQuoteCharacters)
{
    const std::string nasty = "a \"quoted\\path\"\nwith\ttabs\rand \x01";
    EXPECT_EQ(core::jsonUnescape(core::jsonEscape(nasty)), nasty);
    EXPECT_EQ(core::jsonEscape("plain"), "plain");
}

TEST(Journal, FormatDoubleRoundTripsExactly)
{
    for (const double v : {1.0, 0.1, 1.0 / 3.0, 12345.6789e-7, 2.5e300}) {
        const std::string text = core::formatDouble(v);
        EXPECT_EQ(std::stod(text), v) << text;
    }
}

TEST(Journal, RecordEncodeDecodeRoundTrips)
{
    core::JournalRecord success;
    success.procs = 8;
    success.values = {1.0 / 3.0, 2.75, 1e-9};
    core::JournalRecord out;
    ASSERT_TRUE(core::decodeRecord(core::encodeRecord(success), out));
    EXPECT_FALSE(out.failed);
    EXPECT_EQ(out.procs, 8u);
    EXPECT_EQ(out.values, success.values);

    core::JournalRecord failure;
    failure.procs = 16;
    failure.failed = true;
    failure.machine = "logp";
    failure.error = "Deadlock";
    failure.message = "clock stuck at \"0 ns\"";
    ASSERT_TRUE(core::decodeRecord(core::encodeRecord(failure), out));
    EXPECT_TRUE(out.failed);
    EXPECT_EQ(out.procs, 16u);
    EXPECT_EQ(out.machine, "logp");
    EXPECT_EQ(out.error, "Deadlock");
    EXPECT_EQ(out.message, failure.message);
}

TEST(Journal, DecodeRejectsTornLines)
{
    core::JournalRecord out;
    EXPECT_FALSE(core::decodeRecord("", out));
    EXPECT_FALSE(core::decodeRecord("{\"procs\":8,\"target\":1.5", out));
    EXPECT_FALSE(core::decodeRecord("{\"procs\":8}", out));
    EXPECT_FALSE(
        core::decodeRecord("{\"procs\":8,\"machine\":\"logp", out));
}

TEST(Journal, LoadSkipsTornTrailingWrite)
{
    const std::string path = testing::TempDir() + "absim_torn.jsonl";
    const core::JournalHeader header{"t", "fft", "full", "exec_time"};
    core::startJournal(path, header);
    core::appendJournal(path, {4, false, {1.5, 2.5, 3.5}, "", "", ""});
    {
        // Simulate a crash mid-write: a truncated trailing line.
        std::ofstream out(path, std::ios::app);
        out << "{\"procs\":8,\"target\":9";
    }
    std::vector<core::JournalRecord> records;
    ASSERT_TRUE(core::loadJournal(path, header, records));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].procs, 4u);
}

TEST(Journal, HeaderMismatchIgnoresJournal)
{
    const std::string path = testing::TempDir() + "absim_header.jsonl";
    core::startJournal(path, {"t", "fft", "full", "exec_time"});
    core::appendJournal(path, {4, false, {1.0, 2.0, 3.0}, "", "", ""});
    std::vector<core::JournalRecord> records;
    EXPECT_FALSE(core::loadJournal(
        path, {"t", "cg", "full", "exec_time"}, records));
    EXPECT_TRUE(records.empty());
    EXPECT_FALSE(core::loadJournal(path + ".does-not-exist",
                                   {"t", "fft", "full", "exec_time"},
                                   records));
}

// ---- The resilient sweep as a drop-in for the raw sweep ----------------

namespace {

core::RunConfig
smallConfig()
{
    core::RunConfig base;
    base.app = "is";
    base.params.n = 256;
    return base;
}

} // namespace

TEST(SweepSafe, MatchesRawSweepWhenNothingFails)
{
    const core::RunConfig base = smallConfig();
    const auto raw = core::sweepFigure("t", base, net::TopologyKind::Full,
                                       core::Metric::ExecTime, {1, 2});
    const auto safe =
        core::sweepFigureSafe("t", base, net::TopologyKind::Full,
                              core::Metric::ExecTime, {1, 2}, {});
    EXPECT_TRUE(safe.complete());
    ASSERT_EQ(safe.figure.points.size(), raw.points.size());
    for (std::size_t i = 0; i < raw.points.size(); ++i) {
        EXPECT_EQ(safe.figure.points[i].procs, raw.points[i].procs);
        EXPECT_EQ(safe.figure.points[i].values, raw.points[i].values);
    }
}

TEST(SweepSafe, InterruptedSweepResumesByteIdentical)
{
    const core::RunConfig base = smallConfig();
    const std::string path = testing::TempDir() + "absim_resume.jsonl";
    std::remove(path.c_str());
    core::SweepOptions options;
    options.journalPath = path;

    // Full run, journaling every point.
    const auto full = core::sweepFigureSafe(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(full.complete());
    std::ostringstream json_full;
    core::writeFigureJson(json_full, full);

    // Simulate a SIGKILL after the first completed point: keep the
    // journal's header and first record, drop the rest.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 4u); // Header + three points.
    {
        std::ofstream out(path, std::ios::trunc);
        out << lines[0] << "\n" << lines[1] << "\n";
    }

    // Re-run: points 2 and 4 are recomputed, point 1 is replayed.
    const auto resumed = core::sweepFigureSafe(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(resumed.complete());
    std::ostringstream json_resumed;
    core::writeFigureJson(json_resumed, resumed);

    EXPECT_EQ(json_full.str(), json_resumed.str());

    // Another run resumes everything without recomputing: the journal
    // now holds all three points again.
    std::vector<core::JournalRecord> records;
    ASSERT_TRUE(core::loadJournal(
        path, {"resume", base.app, "full", "exec_time"}, records));
    EXPECT_EQ(records.size(), 3u);
}

TEST(SweepSafe, MismatchedJournalIsRewrittenNotTrusted)
{
    const core::RunConfig base = smallConfig();
    const std::string path = testing::TempDir() + "absim_stale.jsonl";
    // A journal from a different figure, with a bogus cached point that
    // must NOT leak into this sweep.
    core::startJournal(path, {"other", "fft", "cube", "latency"});
    core::appendJournal(path,
                        {1, false, {999.0, 999.0, 999.0}, "", "", ""});

    core::SweepOptions options;
    options.journalPath = path;
    const auto result = core::sweepFigureSafe(
        "stale", base, net::TopologyKind::Full, core::Metric::ExecTime,
        {1}, options);
    ASSERT_TRUE(result.complete());
    ASSERT_EQ(result.figure.points.size(), 1u);
    EXPECT_NE(result.figure.points[0].values[0], 999.0);

    // The stale journal was replaced by this sweep's own.
    std::vector<core::JournalRecord> records;
    ASSERT_TRUE(core::loadJournal(
        path, {"stale", base.app, "full", "exec_time"}, records));
    ASSERT_EQ(records.size(), 1u);
}

TEST(SweepSafe, FigureJsonIsWellFormedAndDeterministic)
{
    core::SweepResult result;
    result.figure.title = "fig \"X\"";
    result.figure.app = "fft";
    result.figure.points.push_back({2, {0.5, 1.0 / 3.0, 2.0}});
    result.failures.push_back({4, "logp", "Deadlock", "stuck"});
    std::ostringstream a;
    std::ostringstream b;
    core::writeFigureJson(a, result);
    core::writeFigureJson(b, result);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("\"title\":\"fig \\\"X\\\"\""),
              std::string::npos)
        << a.str();
    EXPECT_NE(a.str().find("\"complete\":false"), std::string::npos);
    EXPECT_NE(a.str().find(core::formatDouble(1.0 / 3.0)),
              std::string::npos)
        << a.str();
}

} // namespace
