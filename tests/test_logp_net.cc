/**
 * @file
 * Unit tests for the LogP gates and network timing: the g-gap semantics
 * under both usage policies, and the latency/contention split of
 * messages and round trips.
 */

#include <gtest/gtest.h>

#include "logp/gate.hh"
#include "logp/logp_net.hh"

namespace {

using namespace absim;
using logp::GapPolicy;
using logp::GateSet;
using logp::LogPNetwork;
using logp::LogPParams;

TEST(GateSet, FirstReservationIsNeverGated)
{
    GateSet gates(2, 1000, GapPolicy::Single);
    const auto r = gates.reserveSend(0, 500);
    EXPECT_EQ(r.when, 500u);
    EXPECT_EQ(r.waited, 0u);
}

TEST(GateSet, ConsecutiveOpsSpacedByG)
{
    GateSet gates(2, 1000, GapPolicy::Single);
    gates.reserveSend(0, 0);
    const auto r2 = gates.reserveSend(0, 100);
    EXPECT_EQ(r2.when, 1000u);
    EXPECT_EQ(r2.waited, 900u);
    const auto r3 = gates.reserveSend(0, 5000); // Past the gate: free.
    EXPECT_EQ(r3.when, 5000u);
    EXPECT_EQ(r3.waited, 0u);
}

TEST(GateSet, SinglePolicyGatesSendsAgainstReceives)
{
    GateSet gates(2, 1000, GapPolicy::Single);
    gates.reserveRecv(0, 0);
    const auto send = gates.reserveSend(0, 1);
    EXPECT_EQ(send.when, 1000u); // The LogP-definition pessimism.
}

TEST(GateSet, PerDirectionPolicyDoesNot)
{
    GateSet gates(2, 1000, GapPolicy::PerDirection);
    gates.reserveRecv(0, 0);
    const auto send = gates.reserveSend(0, 1);
    EXPECT_EQ(send.when, 1u); // Section 7 relaxation.
    const auto send2 = gates.reserveSend(0, 2);
    EXPECT_EQ(send2.when, 1001u); // Same-kind ops still gated.
}

TEST(GateSet, NodesAreIndependent)
{
    GateSet gates(3, 1000, GapPolicy::Single);
    gates.reserveSend(0, 0);
    const auto other = gates.reserveSend(1, 1);
    EXPECT_EQ(other.when, 1u);
}

TEST(LogPNet, UncontendedMessageCostsL)
{
    LogPParams params{.l = 1600, .o = 0, .g = 400, .p = 4};
    LogPNetwork net(params, GapPolicy::Single);
    const auto t = net.message(0, 1, 0);
    EXPECT_EQ(t.deliveredAt, 1600u);
    EXPECT_EQ(t.latency, 1600u);
    EXPECT_EQ(t.contention, 0u);
    EXPECT_EQ(t.messages, 1u);
}

TEST(LogPNet, OverheadAddsToDeliveryNotLatency)
{
    LogPParams params{.l = 1600, .o = 100, .g = 0, .p = 4};
    LogPNetwork net(params, GapPolicy::Single);
    const auto t = net.message(0, 1, 0);
    EXPECT_EQ(t.deliveredAt, 1800u); // o + L + o.
    EXPECT_EQ(t.latency, 1600u);
}

TEST(LogPNet, RoundTripReplyGatedBehindReceive)
{
    // Single policy: after B receives at L, its reply send waits g.
    LogPParams params{.l = 1600, .o = 0, .g = 400, .p = 4};
    LogPNetwork net(params, GapPolicy::Single);
    const auto t = net.roundTrip(0, 1, 0);
    // req: send 0, arrive 1600; reply: send 2000 (g after recv),
    // arrive 3600; A's recv gate: last was its send at 0 -> 3600 ok.
    EXPECT_EQ(t.deliveredAt, 3600u);
    EXPECT_EQ(t.latency, 3200u);
    EXPECT_EQ(t.contention, 400u);
    EXPECT_EQ(t.messages, 2u);
}

TEST(LogPNet, RoundTripPerDirectionAvoidsReplyGate)
{
    LogPParams params{.l = 1600, .o = 0, .g = 400, .p = 4};
    LogPNetwork net(params, GapPolicy::PerDirection);
    const auto t = net.roundTrip(0, 1, 0);
    EXPECT_EQ(t.deliveredAt, 3200u);
    EXPECT_EQ(t.contention, 0u);
}

TEST(LogPNet, ConcurrentSendersQueueAtReceiverGate)
{
    LogPParams params{.l = 1600, .o = 0, .g = 1000, .p = 4};
    LogPNetwork net(params, GapPolicy::Single);
    const auto first = net.message(0, 2, 0);
    const auto second = net.message(1, 2, 0);
    EXPECT_EQ(first.deliveredAt, 1600u);
    // Receiver gate holds the second delivery g after the first.
    EXPECT_EQ(second.deliveredAt, 2600u);
    EXPECT_EQ(second.contention, 1000u);
}

TEST(LogPNet, StatsAccumulate)
{
    LogPParams params{.l = 1600, .o = 0, .g = 100, .p = 2};
    LogPNetwork net(params, GapPolicy::Single);
    net.roundTrip(0, 1, 0);
    net.roundTrip(0, 1, 10000);
    EXPECT_EQ(net.stats().messages, 4u);
    EXPECT_EQ(net.stats().latency, 4 * 1600u);
}

TEST(GateSet, BisectionOnlyPolicyUsesTheSingleGate)
{
    GateSet gates(2, 1000, GapPolicy::BisectionOnly);
    gates.reserveRecv(0, 0);
    const auto send = gates.reserveSend(0, 1);
    EXPECT_EQ(send.when, 1000u); // Shared per-node gate, like Single.
}

TEST(CrossesBisection, AddressHalvesOnFullAndCube)
{
    for (const auto kind :
         {net::TopologyKind::Full, net::TopologyKind::Hypercube}) {
        EXPECT_TRUE(logp::crossesBisection(kind, 8, 0, 4));
        EXPECT_TRUE(logp::crossesBisection(kind, 8, 7, 3));
        EXPECT_FALSE(logp::crossesBisection(kind, 8, 0, 3));
        EXPECT_FALSE(logp::crossesBisection(kind, 8, 4, 7));
    }
}

TEST(CrossesBisection, MeshCutsBetweenMiddleColumns)
{
    // 4x4 mesh: columns 0-1 vs 2-3.
    EXPECT_TRUE(logp::crossesBisection(net::TopologyKind::Mesh2D, 16,
                                       1, 2));
    EXPECT_FALSE(logp::crossesBisection(net::TopologyKind::Mesh2D, 16,
                                        0, 5)); // Cols 0 and 1.
    EXPECT_FALSE(logp::crossesBisection(net::TopologyKind::Mesh2D, 16,
                                        2, 15)); // Cols 2 and 3.
    // Neighbors within a column never cross.
    EXPECT_FALSE(logp::crossesBisection(net::TopologyKind::Mesh2D, 16,
                                        0, 4));
}

TEST(CrossesBisection, SingleNodeNeverCrosses)
{
    EXPECT_FALSE(
        logp::crossesBisection(net::TopologyKind::Full, 1, 0, 0));
}

TEST(LogPNet, BisectionOnlyPolicySkipsGatesForLocalTraffic)
{
    LogPParams params = logp::paramsFor(net::TopologyKind::Hypercube, 8);
    LogPNetwork net(params, GapPolicy::BisectionOnly);
    // Nodes 0 and 1 are on the same side of the cut: no gating at all.
    const auto t1 = net.roundTrip(0, 1, 0);
    EXPECT_EQ(t1.contention, 0u);
    const auto t2 = net.roundTrip(0, 1, t1.deliveredAt);
    EXPECT_EQ(t2.contention, 0u);
    // Crossing traffic is still gated (reply waits g after receive).
    const auto t3 = net.roundTrip(0, 4, t2.deliveredAt);
    EXPECT_EQ(t3.contention, params.g);
}

/** Parameterized property: contention is always when-earliest and the
 *  same node is never granted two slots closer than g (single policy). */
class GateSequence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GateSequence, GrantsRespectMinimumSpacing)
{
    const std::uint64_t g = GetParam();
    GateSet gates(1, g, GapPolicy::Single);
    std::uint64_t last = 0;
    bool first = true;
    std::uint64_t ask = 0;
    for (int i = 0; i < 100; ++i) {
        ask += (i * 37) % 523; // Irregular request times.
        const auto r = gates.reserveSend(0, ask);
        EXPECT_GE(r.when, ask);
        EXPECT_EQ(r.waited, r.when - ask);
        if (!first)
            EXPECT_GE(r.when - last, g);
        last = r.when;
        first = false;
    }
}

INSTANTIATE_TEST_SUITE_P(Gaps, GateSequence,
                         ::testing::Values(0u, 100u, 800u, 1600u, 6400u));

} // namespace
