/**
 * @file
 * Tests for the serve daemon's content-addressed cache key
 * (core/cache_key.hh): the canonical rendering must be stable under
 * request-field reordering and machine-name aliasing, and distinct
 * whenever any result-determining input differs.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/cache_key.hh"
#include "core/figures.hh"
#include "machines/registry.hh"
#include "serve/protocol.hh"

namespace {

using namespace absim;

core::RunConfig
baseConfig()
{
    core::RunConfig config;
    config.app = "is";
    config.params.n = 256;
    config.procs = 8;
    return config;
}

TEST(CacheKey, HashMatchesCanonicalString)
{
    const core::RunConfig config = baseConfig();
    const sim::RunBudget budget;
    const std::string canon = core::canonicalRunKey(config, budget);
    EXPECT_EQ(core::runKeyHash(config, budget), core::fnv1a64(canon));
    EXPECT_NE(canon.find("app=is;"), std::string::npos);
    EXPECT_NE(canon.find(";procs=8;"), std::string::npos);
}

TEST(CacheKey, RequestFieldOrderDoesNotSplitTheCache)
{
    // Two spellings of the same request, fields shuffled: the key is
    // rendered from the parsed config in canonical order, so the wire
    // order can never split the cache.
    const std::string a = "{\"op\":\"run\",\"app\":\"is\","
                          "\"machine\":\"logp+c\",\"procs\":8,"
                          "\"size\":256,\"seed\":7}";
    const std::string b = "{\"seed\":7,\"size\":256,\"procs\":8,"
                          "\"machine\":\"logp+c\",\"app\":\"is\","
                          "\"op\":\"run\"}";
    serve::Request ra;
    serve::Request rb;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(a, core::RunPolicy{}, ra, error))
        << error;
    ASSERT_TRUE(serve::parseRequest(b, core::RunPolicy{}, rb, error))
        << error;
    EXPECT_EQ(core::canonicalRunKey(ra.config, ra.policy.budget),
              core::canonicalRunKey(rb.config, rb.policy.budget));
}

TEST(CacheKey, MachineAliasesCollapseToTheCanonicalName)
{
    // The registry accepts both the canonical machine name ("logp+c")
    // and its '+'-stripped figure-column spelling ("logpc"); the key
    // must collapse them so the same run never caches twice.
    core::RunConfig canonical = baseConfig();
    core::RunConfig alias = baseConfig();
    ASSERT_TRUE(mach::parseMachineKind("logp+c", canonical.machine));
    ASSERT_TRUE(mach::parseMachineKind("logpc", alias.machine));
    const sim::RunBudget budget;
    EXPECT_EQ(core::canonicalRunKey(canonical, budget),
              core::canonicalRunKey(alias, budget));
    EXPECT_NE(core::canonicalRunKey(canonical, budget)
                  .find("machine=logp+c;"),
              std::string::npos);
}

TEST(CacheKey, SeedAndSizeChangesProduceDistinctKeys)
{
    const sim::RunBudget budget;
    core::RunConfig config = baseConfig();
    const std::uint64_t base = core::runKeyHash(config, budget);

    config.params.seed += 1;
    const std::uint64_t seeded = core::runKeyHash(config, budget);
    EXPECT_NE(base, seeded);

    config = baseConfig();
    config.params.n *= 2;
    EXPECT_NE(base, core::runKeyHash(config, budget));

    config = baseConfig();
    config.procs = 16;
    EXPECT_NE(base, core::runKeyHash(config, budget));
}

TEST(CacheKey, DeterministicBudgetFieldsAreKeyedWallClockIsNot)
{
    const core::RunConfig config = baseConfig();
    sim::RunBudget budget;
    const std::uint64_t base = core::runKeyHash(config, budget);

    // Event/sim-time/stall budgets change which result a run produces
    // (a tighter budget can fail a run that would have finished), so
    // they key the cache.
    budget.maxEvents = 1000;
    EXPECT_NE(base, core::runKeyHash(config, budget));

    budget = sim::RunBudget{};
    budget.stallDispatchLimit = 5000;
    EXPECT_NE(base, core::runKeyHash(config, budget));

    // The wall-clock deadline is host-dependent: it decides whether a
    // deterministic result is produced in time, never which result.
    // Keying it would split the cache across hosts for nothing.
    budget = sim::RunBudget{};
    budget.maxWallSeconds = 5.0;
    EXPECT_EQ(base, core::runKeyHash(config, budget));
}

TEST(CacheKey, HexKeyFormatsAndParsesRoundTrip)
{
    const std::uint64_t key = 0x0123456789abcdefull;
    const std::string hex = core::formatKeyHex(key);
    EXPECT_EQ(hex, "0123456789abcdef");
    std::uint64_t parsed = 0;
    ASSERT_TRUE(core::parseKeyHex(hex, parsed));
    EXPECT_EQ(parsed, key);
    EXPECT_FALSE(core::parseKeyHex("0123", parsed));
    EXPECT_FALSE(core::parseKeyHex("0123456789abcdeg", parsed));
    EXPECT_FALSE(core::parseKeyHex("0123456789abcdef0", parsed));
}

} // namespace
