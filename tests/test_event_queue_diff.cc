/**
 * @file
 * Differential test of the calendar-queue EventQueue against a
 * reference std::priority_queue model.
 *
 * The production queue is a two-tier calendar/overflow structure with
 * pooled nodes (see sim/event_queue.hh); the reference model is the
 * textbook binary heap ordered by (tick, seq) that the queue replaced.
 * Both execute the same self-expanding workload — every dispatched
 * event derives its children (count and tick deltas) purely from its
 * own id via a seeded Rng, so the workload is identical across
 * implementations *if and only if* they dispatch in the same order.
 * Any divergence (bucket-window bug, overflow re-base bug, FIFO-tie
 * break) desynchronizes the logs at the first wrong event.
 */

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace {

using absim::sim::EventQueue;
using absim::sim::Rng;
using absim::sim::Tick;

/// One dispatched event in an execution log: (tick, event id).
using LogEntry = std::pair<Tick, std::uint64_t>;

/**
 * Children of event @p id: 0-2 events with mixed tick deltas chosen to
 * cover every queue tier — same-tick ties (delta 0), near-now buckets,
 * deltas straddling the 4096-tick calendar window, and far-future
 * overflow events.  Depends only on (seed, id).
 */
std::vector<Tick>
childDeltas(std::uint64_t seed, std::uint64_t id)
{
    Rng rng(seed ^ (id * 0x9e3779b97f4a7c15ULL));
    const std::uint64_t count = rng.below(3); // Avg 1: stable frontier.
    std::vector<Tick> deltas;
    deltas.reserve(count);
    for (std::uint64_t c = 0; c < count; ++c) {
        const std::uint64_t shape = rng.below(100);
        Tick delta = 0;
        if (shape < 40)
            delta = rng.below(8); // Includes exact same-tick ties.
        else if (shape < 75)
            delta = rng.below(512);
        else if (shape < 95)
            delta = rng.below(8192); // Straddles the calendar window.
        else
            delta = rng.below(1'000'000); // Overflow tier.
        deltas.push_back(delta);
    }
    return deltas;
}

/** The production queue driving the self-expanding workload. */
struct RealRun
{
    std::uint64_t seed;
    std::uint64_t maxEvents;
    /** After this many dispatches, the dispatching callback calls
     *  requestStop() — a faithful mid-run stop.  0: never. */
    std::uint64_t stopAfter = 0;

    EventQueue eq;
    std::vector<LogEntry> log;
    std::uint64_t nextId = 0;

    void
    spawn(Tick when)
    {
        const std::uint64_t id = nextId++;
        eq.schedule(when, [this, id] { onDispatch(id); });
    }

    void
    onDispatch(std::uint64_t id)
    {
        log.emplace_back(eq.now(), id);
        for (const Tick delta : childDeltas(seed, id))
            if (nextId < maxEvents)
                spawn(eq.now() + delta);
        if (stopAfter != 0 && log.size() == stopAfter)
            eq.requestStop();
    }

    void
    seedRoots(std::uint64_t roots)
    {
        Rng rng(seed);
        for (std::uint64_t r = 0; r < roots; ++r)
            spawn(rng.below(1024));
    }
};

/** The reference model: a (tick, seq)-ordered binary heap. */
struct RefRun
{
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t id;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when > b.when ||
                   (a.when == b.when && a.seq > b.seq);
        }
    };

    std::uint64_t seed;
    std::uint64_t maxEvents;
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::vector<LogEntry> log;
    std::uint64_t nextId = 0;
    std::uint64_t nextSeq = 0;
    Tick now = 0;

    void
    spawn(Tick when)
    {
        queue.push(Event{when, nextSeq++, nextId++});
    }

    void
    seedRoots(std::uint64_t roots)
    {
        Rng rng(seed);
        for (std::uint64_t r = 0; r < roots; ++r)
            spawn(rng.below(1024));
    }

    /** Pop + expand one event; mirrors one EventQueue dispatch. */
    void
    step()
    {
        const Event ev = queue.top();
        queue.pop();
        now = ev.when;
        log.emplace_back(ev.when, ev.id);
        for (const Tick delta : childDeltas(seed, ev.id))
            if (nextId < maxEvents)
                spawn(now + delta);
    }

    void
    run()
    {
        while (!queue.empty())
            step();
    }
};

void
expectSameLogs(const std::vector<LogEntry> &real,
               const std::vector<LogEntry> &ref)
{
    ASSERT_EQ(real.size(), ref.size());
    for (std::size_t i = 0; i < real.size(); ++i) {
        ASSERT_EQ(real[i].first, ref[i].first)
            << "dispatch " << i << " fired at the wrong tick";
        ASSERT_EQ(real[i].second, ref[i].second)
            << "dispatch " << i << " fired the wrong event";
    }
}

TEST(EventQueueDiff, MatchesReferenceHeapOnMixedWorkload)
{
    constexpr std::uint64_t kEvents = 1'000'000;
    constexpr std::uint64_t kRoots = 4096;
    constexpr std::uint64_t kSeed = 0xD1FF;

    RealRun real{kSeed, kEvents};
    real.seedRoots(kRoots);
    real.eq.run();

    RefRun ref{kSeed, kEvents};
    ref.seedRoots(kRoots);
    ref.run();

    EXPECT_EQ(real.log.size(), kEvents);
    expectSameLogs(real.log, ref.log);
    EXPECT_EQ(real.eq.pending(), 0u);
    EXPECT_EQ(real.eq.dispatched(), ref.log.size());
}

TEST(EventQueueDiff, SameTickBurstsKeepFifoOrder)
{
    // Heavy same-tick contention: ~20k events over 16k ticks, so FIFO
    // ties are resolved in buckets, in the overflow heap, and across
    // the window re-base refill.
    EventQueue eq;
    std::vector<std::uint64_t> order;
    std::uint64_t id = 0;
    Rng rng(42);
    for (int round = 0; round < 20'000; ++round) {
        eq.schedule(rng.below(16'384),
                    [&order, my = id] { order.push_back(my); });
        ++id;
    }
    eq.run();

    // Reference: pop ids in (when, insertion) order from the heap.
    std::vector<std::uint64_t> expect;
    {
        RefRun ref{0, 0};
        Rng rng2(42);
        for (int round = 0; round < 20'000; ++round)
            ref.spawn(rng2.below(16'384));
        while (!ref.queue.empty()) {
            expect.push_back(ref.queue.top().id);
            ref.queue.pop();
        }
    }
    ASSERT_EQ(order.size(), expect.size());
    EXPECT_EQ(order, expect);
}

TEST(EventQueueDiff, RequestStopMidRunAgreesWithReference)
{
    constexpr std::uint64_t kEvents = 200'000;
    constexpr std::uint64_t kStopAfter = 60'000;
    constexpr std::uint64_t kSeed = 0x57CF;

    RealRun real{kSeed, kEvents, kStopAfter};
    real.seedRoots(1024);
    real.eq.run();
    const std::size_t pending_at_stop = real.eq.pending();
    real.eq.run(); // Sticky: dispatches nothing further.

    RefRun ref{kSeed, kEvents};
    ref.seedRoots(1024);
    while (ref.log.size() < kStopAfter && !ref.queue.empty())
        ref.step();

    ASSERT_EQ(real.log.size(), kStopAfter);
    expectSameLogs(real.log, ref.log);
    EXPECT_TRUE(real.eq.stopRequested());
    EXPECT_EQ(real.eq.pending(), pending_at_stop);
    EXPECT_EQ(real.eq.pending(), ref.queue.size());
    EXPECT_EQ(real.eq.dispatched(), kStopAfter);
}

TEST(EventQueueDiff, RunUntilWindowsMatchReference)
{
    constexpr std::uint64_t kEvents = 100'000;
    constexpr std::uint64_t kSeed = 0xFACE;

    RealRun real{kSeed, kEvents};
    RefRun ref{kSeed, kEvents};
    real.seedRoots(1024);
    ref.seedRoots(1024);

    constexpr Tick kStep = 1000;
    Tick limit = kStep;
    bool drained = false;
    while (!drained) {
        drained = real.eq.runUntil(limit);
        while (!ref.queue.empty() && ref.queue.top().when <= limit)
            ref.step();

        // Cross-check queue introspection at every window boundary.
        ASSERT_EQ(real.eq.pending(), ref.queue.size());
        if (!ref.queue.empty())
            ASSERT_EQ(real.eq.nextEventTime(), ref.queue.top().when);
        limit += kStep;
    }
    EXPECT_TRUE(ref.queue.empty());
    expectSameLogs(real.log, ref.log);
}

} // namespace
