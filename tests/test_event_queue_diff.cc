/**
 * @file
 * Differential test of the calendar-queue EventQueue against a
 * reference std::priority_queue model.
 *
 * The production queue is a two-tier calendar/overflow structure with
 * pooled nodes (see sim/event_queue.hh); the reference model is the
 * textbook binary heap ordered by (tick, seq) that the queue replaced.
 * Both execute the same self-expanding workload — every dispatched
 * event derives its children (count and tick deltas) purely from its
 * own id via a seeded Rng, so the workload is identical across
 * implementations *if and only if* they dispatch in the same order.
 * Any divergence (bucket-window bug, overflow re-base bug, FIFO-tie
 * break) desynchronizes the logs at the first wrong event.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace {

using absim::sim::EventQueue;
using absim::sim::Rng;
using absim::sim::Tick;

namespace check = absim::check;

/// One dispatched event in an execution log: (tick, event id).
using LogEntry = std::pair<Tick, std::uint64_t>;

/**
 * Children of event @p id: 0-2 events with mixed tick deltas chosen to
 * cover every queue tier — same-tick ties (delta 0), near-now buckets,
 * deltas straddling the 4096-tick calendar window, and far-future
 * overflow events.  Depends only on (seed, id).
 */
std::vector<Tick>
childDeltas(std::uint64_t seed, std::uint64_t id)
{
    Rng rng(seed ^ (id * 0x9e3779b97f4a7c15ULL));
    const std::uint64_t count = rng.below(3); // Avg 1: stable frontier.
    std::vector<Tick> deltas;
    deltas.reserve(count);
    for (std::uint64_t c = 0; c < count; ++c) {
        const std::uint64_t shape = rng.below(100);
        Tick delta = 0;
        if (shape < 40)
            delta = rng.below(8); // Includes exact same-tick ties.
        else if (shape < 75)
            delta = rng.below(512);
        else if (shape < 95)
            delta = rng.below(8192); // Straddles the calendar window.
        else
            delta = rng.below(1'000'000); // Overflow tier.
        deltas.push_back(delta);
    }
    return deltas;
}

/** The production queue driving the self-expanding workload. */
struct RealRun
{
    std::uint64_t seed;
    std::uint64_t maxEvents;
    /** After this many dispatches, the dispatching callback calls
     *  requestStop() — a faithful mid-run stop.  0: never. */
    std::uint64_t stopAfter = 0;

    EventQueue eq;
    std::vector<LogEntry> log;
    std::uint64_t nextId = 0;

    void
    spawn(Tick when)
    {
        const std::uint64_t id = nextId++;
        eq.schedule(when, [this, id] { onDispatch(id); });
    }

    void
    onDispatch(std::uint64_t id)
    {
        log.emplace_back(eq.now(), id);
        for (const Tick delta : childDeltas(seed, id))
            if (nextId < maxEvents)
                spawn(eq.now() + delta);
        if (stopAfter != 0 && log.size() == stopAfter)
            eq.requestStop();
    }

    void
    seedRoots(std::uint64_t roots)
    {
        Rng rng(seed);
        for (std::uint64_t r = 0; r < roots; ++r)
            spawn(rng.below(1024));
    }
};

/** The reference model: a (tick, seq)-ordered binary heap. */
struct RefRun
{
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t id;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when > b.when ||
                   (a.when == b.when && a.seq > b.seq);
        }
    };

    std::uint64_t seed;
    std::uint64_t maxEvents;
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::vector<LogEntry> log;
    std::uint64_t nextId = 0;
    std::uint64_t nextSeq = 0;
    Tick now = 0;

    void
    spawn(Tick when)
    {
        queue.push(Event{when, nextSeq++, nextId++});
    }

    void
    seedRoots(std::uint64_t roots)
    {
        Rng rng(seed);
        for (std::uint64_t r = 0; r < roots; ++r)
            spawn(rng.below(1024));
    }

    /** Pop + expand one event; mirrors one EventQueue dispatch. */
    void
    step()
    {
        const Event ev = queue.top();
        queue.pop();
        now = ev.when;
        log.emplace_back(ev.when, ev.id);
        for (const Tick delta : childDeltas(seed, ev.id))
            if (nextId < maxEvents)
                spawn(now + delta);
    }

    void
    run()
    {
        while (!queue.empty())
            step();
    }
};

void
expectSameLogs(const std::vector<LogEntry> &real,
               const std::vector<LogEntry> &ref)
{
    ASSERT_EQ(real.size(), ref.size());
    for (std::size_t i = 0; i < real.size(); ++i) {
        ASSERT_EQ(real[i].first, ref[i].first)
            << "dispatch " << i << " fired at the wrong tick";
        ASSERT_EQ(real[i].second, ref[i].second)
            << "dispatch " << i << " fired the wrong event";
    }
}

TEST(EventQueueDiff, MatchesReferenceHeapOnMixedWorkload)
{
    constexpr std::uint64_t kEvents = 1'000'000;
    constexpr std::uint64_t kRoots = 4096;
    constexpr std::uint64_t kSeed = 0xD1FF;

    RealRun real{kSeed, kEvents};
    real.seedRoots(kRoots);
    real.eq.run();

    RefRun ref{kSeed, kEvents};
    ref.seedRoots(kRoots);
    ref.run();

    EXPECT_EQ(real.log.size(), kEvents);
    expectSameLogs(real.log, ref.log);
    EXPECT_EQ(real.eq.pending(), 0u);
    EXPECT_EQ(real.eq.dispatched(), ref.log.size());
}

TEST(EventQueueDiff, SameTickBurstsKeepFifoOrder)
{
    // Heavy same-tick contention: ~20k events over 16k ticks, so FIFO
    // ties are resolved in buckets, in the overflow heap, and across
    // the window re-base refill.
    EventQueue eq;
    std::vector<std::uint64_t> order;
    std::uint64_t id = 0;
    Rng rng(42);
    for (int round = 0; round < 20'000; ++round) {
        eq.schedule(rng.below(16'384),
                    [&order, my = id] { order.push_back(my); });
        ++id;
    }
    eq.run();

    // Reference: pop ids in (when, insertion) order from the heap.
    std::vector<std::uint64_t> expect;
    {
        RefRun ref{0, 0};
        Rng rng2(42);
        for (int round = 0; round < 20'000; ++round)
            ref.spawn(rng2.below(16'384));
        while (!ref.queue.empty()) {
            expect.push_back(ref.queue.top().id);
            ref.queue.pop();
        }
    }
    ASSERT_EQ(order.size(), expect.size());
    EXPECT_EQ(order, expect);
}

TEST(EventQueueDiff, RequestStopMidRunAgreesWithReference)
{
    constexpr std::uint64_t kEvents = 200'000;
    constexpr std::uint64_t kStopAfter = 60'000;
    constexpr std::uint64_t kSeed = 0x57CF;

    RealRun real{kSeed, kEvents, kStopAfter};
    real.seedRoots(1024);
    real.eq.run();
    const std::size_t pending_at_stop = real.eq.pending();
    real.eq.run(); // Sticky: dispatches nothing further.

    RefRun ref{kSeed, kEvents};
    ref.seedRoots(1024);
    while (ref.log.size() < kStopAfter && !ref.queue.empty())
        ref.step();

    ASSERT_EQ(real.log.size(), kStopAfter);
    expectSameLogs(real.log, ref.log);
    EXPECT_TRUE(real.eq.stopRequested());
    EXPECT_EQ(real.eq.pending(), pending_at_stop);
    EXPECT_EQ(real.eq.pending(), ref.queue.size());
    EXPECT_EQ(real.eq.dispatched(), kStopAfter);
}

TEST(EventQueueDiff, RunUntilWindowsMatchReference)
{
    constexpr std::uint64_t kEvents = 100'000;
    constexpr std::uint64_t kSeed = 0xFACE;

    RealRun real{kSeed, kEvents};
    RefRun ref{kSeed, kEvents};
    real.seedRoots(1024);
    ref.seedRoots(1024);

    constexpr Tick kStep = 1000;
    Tick limit = kStep;
    bool drained = false;
    while (!drained) {
        drained = real.eq.runUntil(limit);
        while (!ref.queue.empty() && ref.queue.top().when <= limit)
            ref.step();

        // Cross-check queue introspection at every window boundary.
        ASSERT_EQ(real.eq.pending(), ref.queue.size());
        if (!ref.queue.empty())
            ASSERT_EQ(real.eq.nextEventTime(), ref.queue.top().when);
        limit += kStep;
    }
    EXPECT_TRUE(ref.queue.empty());
    expectSameLogs(real.log, ref.log);
}

// ---------------------------------------------------------------------------
// Calendar-window edge suite.
//
// These tests pin the exact seams of the two-tier structure: the
// window re-base boundary, the bucket/overflow-heap crossover for
// same-tick FIFO ties, and far-past events (legal with causality
// checks off) arriving after the window has re-based beyond them.
// The window width mirrors EventQueue::kBuckets (private); if the
// calendar is ever resized these tests must move with it.
// ---------------------------------------------------------------------------

constexpr Tick kWindow = 4096;

TEST(EventQueueDiff, RebaseBoundaryTickDispatchesInOrder)
{
    // Events at kWindow-1 (last bucket of the initial window), kWindow
    // (first overflow tick), and kWindow+1.  Draining the calendar
    // must re-base the window onto the overflow front and pull the
    // boundary events across without reordering; while dispatching at
    // the boundary, newly scheduled events land on both sides of the
    // *new* window limit.
    EventQueue eq;
    std::vector<LogEntry> log;
    const auto note = [&log, &eq](std::uint64_t id) {
        log.emplace_back(eq.now(), id);
    };
    eq.schedule(kWindow - 1, [&] {
        note(0);
        // New window after re-base is [kWindow, 2*kWindow): one event
        // in its last bucket, one just past its limit.
        eq.schedule(2 * kWindow - 1, [&] { note(4); });
        eq.schedule(2 * kWindow, [&] { note(5); });
    });
    eq.schedule(kWindow, [&] { note(1); });
    eq.schedule(kWindow, [&] { note(2); }); // Same-tick tie at boundary.
    eq.schedule(kWindow + 1, [&] { note(3); });
    eq.run();

    const std::vector<LogEntry> expect{
        {kWindow - 1, 0}, {kWindow, 1},        {kWindow, 2},
        {kWindow + 1, 3}, {2 * kWindow - 1, 4}, {2 * kWindow, 5}};
    EXPECT_EQ(log, expect);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueueDiff, SameTickFifoAcrossBucketOverflowSeam)
{
    // Five events at the same tick T reach the queue through both
    // tiers: ids 0-2 are scheduled while T is beyond the window limit
    // (overflow heap), the window then re-bases so T is bucketed, and
    // ids 3-4 are scheduled straight into T's bucket.  FIFO order must
    // hold across the seam: the heap drains same-tick events in seq
    // order ahead of any new bucket appends.
    constexpr Tick kT = 5000;
    EventQueue eq;
    std::vector<std::uint64_t> order;
    eq.schedule(kT, [&] { order.push_back(0); }); // Overflow (T >= 4096).
    eq.schedule(kT, [&] { order.push_back(1); });
    eq.schedule(10, [&] {
        eq.schedule(kT, [&] { order.push_back(2); }); // Still overflow.
    });
    // Dispatched at 4500 *after* the re-base put kT inside the window,
    // so these two append directly to the bucket behind ids 0-2.
    eq.schedule(4500, [&] {
        eq.schedule(kT, [&] { order.push_back(3); });
        eq.schedule(kT, [&] { order.push_back(4); });
    });
    eq.run();
    EXPECT_EQ(order,
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(EventQueueDiff, FarPastEventsAfterRebaseMatchReference)
{
    // With causality checks off (a legal configuration: trace replay
    // and some fault-injection harnesses schedule behind the clock),
    // past-dated events must ride the overflow heap — bucketing them
    // would hide them behind the circular scan start — and still
    // dispatch in global (tick, seq) order.  The scenario forces the
    // nasty case: the window has re-based far beyond the past tick
    // before the past event is scheduled, and popNext must not re-base
    // backwards onto it.
    check::State relaxed;
    relaxed.options.causality = false;
    check::ScopedState scope(relaxed);

    EventQueue eq;
    std::vector<LogEntry> log;
    const auto note = [&log, &eq](std::uint64_t id) {
        log.emplace_back(eq.now(), id);
    };
    eq.schedule(20'000, [&] { // Window long since re-based past 5.
        note(0);
        eq.schedule(5, [&] { note(1); });     // Far past.
        eq.schedule(5, [&] { note(2); });     // Same-tick past tie.
        eq.schedule(19'000, [&] { note(3); }); // Past, below windowBase.
        eq.schedule(20'001, [&] { note(4); }); // Normal future event.
    });
    eq.schedule(30'000, [&] { note(5); });
    eq.run();

    // The clock runs backwards to serve the past events, then forward
    // again; order is global (tick, seq) exactly as the reference heap
    // would produce.
    const std::vector<LogEntry> expect{{20'000, 0}, {5, 1},
                                       {5, 2},      {19'000, 3},
                                       {20'001, 4}, {30'000, 5}};
    EXPECT_EQ(log, expect);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.dispatched(), expect.size());
}

TEST(EventQueueDiff, WindowStraddlingWorkloadMatchesReference)
{
    // Adversarial differential run: every child delta lands within a
    // few ticks of the kWindow boundary (just inside, exactly at, just
    // past), so nearly every dispatch stresses the enqueue-side
    // window test and the drain-side re-base.  The generic mixed
    // workload rarely concentrates here; this one does nothing else.
    constexpr std::uint64_t kEvents = 50'000;
    constexpr std::uint64_t kSeed = 0xB0DE;

    EventQueue eq;
    std::vector<LogEntry> real_log;
    std::uint64_t next_id = 0;
    std::function<void(std::uint64_t)> dispatch =
        [&](std::uint64_t id) {
            real_log.emplace_back(eq.now(), id);
            Rng rng(kSeed ^ (id * 0x9e3779b97f4a7c15ULL));
            for (std::uint64_t c = 0; c < 2; ++c)
                if (next_id < kEvents) {
                    const std::uint64_t child = next_id++;
                    const Tick when =
                        eq.now() + kWindow - 2 + rng.below(5);
                    eq.schedule(when,
                                [&dispatch, child] { dispatch(child); });
                }
        };
    {
        const std::uint64_t root = next_id++;
        eq.schedule(0, [&dispatch, root] { dispatch(root); });
    }
    eq.run();

    // Reference heap replaying the identical derivation rule.
    RefRun ref{kSeed, kEvents};
    std::vector<LogEntry> ref_log;
    {
        ref.spawn(0);
        while (!ref.queue.empty()) {
            const auto ev = ref.queue.top();
            ref.queue.pop();
            ref.now = ev.when;
            ref_log.emplace_back(ev.when, ev.id);
            Rng rng(kSeed ^ (ev.id * 0x9e3779b97f4a7c15ULL));
            for (std::uint64_t c = 0; c < 2; ++c)
                if (ref.nextId < kEvents)
                    ref.spawn(ref.now + kWindow - 2 + rng.below(5));
        }
    }
    EXPECT_EQ(real_log.size(), kEvents);
    expectSameLogs(real_log, ref_log);
}

} // namespace
