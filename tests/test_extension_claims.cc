/**
 * @file
 * Mechanical checks of the extension results recorded in EXPERIMENTS.md:
 * the locality-aware gap policy's effect on the stencil, and profile
 * consistency properties that every extension workload must satisfy.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace absim;

double
stencilContention(logp::GapPolicy policy, mach::MachineKind machine)
{
    core::RunConfig config;
    config.app = "stencil";
    config.params.n = 32;
    config.params.iterations = 3;
    config.machine = machine;
    config.gapPolicy = policy;
    config.topology = net::TopologyKind::Mesh2D;
    config.procs = 16;
    return core::runOne(config).meanContention();
}

TEST(ExtensionClaims, LocalityAwareGateRepairsStencilPessimism)
{
    const double target = stencilContention(logp::GapPolicy::Single,
                                            mach::MachineKind::Target);
    const double single = stencilContention(logp::GapPolicy::Single,
                                            mach::MachineKind::LogPC);
    const double bisect = stencilContention(
        logp::GapPolicy::BisectionOnly, mach::MachineKind::LogPC);
    // Standard g: heavy pessimism.  Locality-aware: a large recovery.
    EXPECT_GT(single, 2.0 * target);
    EXPECT_LT(bisect, single / 2.0);
}

TEST(ExtensionClaims, ExtensionAppsSatisfyTimingInvariant)
{
    for (const auto &app : apps::extensionAppNames()) {
        core::RunConfig config;
        config.app = app;
        config.params.n = app == "stencil" ? 32 : 512;
        config.params.iterations = 2;
        config.machine = mach::MachineKind::Target;
        config.procs = 4;
        const auto profile = core::runOne(config);
        for (const auto &s : profile.procs)
            EXPECT_EQ(s.finishTime,
                      s.busy + s.latency + s.contention + s.wait)
                << app;
        // Phase partition: phases must cover the totals exactly.
        for (std::size_t n = 0; n < profile.procs.size(); ++n) {
            sim::Duration busy = 0, lat = 0, cont = 0;
            for (const auto &phase : profile.procPhases[n]) {
                busy += phase.busy;
                lat += phase.latency;
                cont += phase.contention;
            }
            EXPECT_EQ(busy, profile.procs[n].busy) << app;
            EXPECT_EQ(lat, profile.procs[n].latency) << app;
            EXPECT_EQ(cont, profile.procs[n].contention) << app;
        }
    }
}

TEST(ExtensionClaims, StencilCommunicationIsNearNeighborOnly)
{
    // With blocked rows, a stencil processor only ever touches its two
    // neighbours' partitions: on the LogP machine with bisection-only
    // gating on the *hypercube* (address-halves cut), only the two
    // processors adjacent to the cut produce gated traffic.
    core::RunConfig config;
    config.app = "stencil";
    config.params.n = 32;
    config.params.iterations = 2;
    config.machine = mach::MachineKind::LogP;
    config.gapPolicy = logp::GapPolicy::BisectionOnly;
    config.topology = net::TopologyKind::Hypercube;
    config.procs = 8;
    const auto profile = core::runOne(config);
    std::uint32_t gated_procs = 0;
    for (const auto &s : profile.procs)
        if (s.contention > 0)
            ++gated_procs;
    // Nodes 3 and 4 straddle the cut (plus barrier traffic to node 0's
    // sync words, which crosses for nodes 4..7).  The key claim: far
    // fewer processors pay contention than under the single gate.
    config.gapPolicy = logp::GapPolicy::Single;
    const auto single = core::runOne(config);
    std::uint32_t single_gated = 0;
    for (const auto &s : single.procs)
        if (s.contention > 0)
            ++single_gated;
    EXPECT_LT(gated_procs, single_gated);
}

TEST(ExtensionClaims, RadixHeavierThanIsPerKey)
{
    // RADIX does two passes of IS-like work: per key, its remote
    // traffic on the LogP machine must exceed single-pass IS's.
    auto messages_per_key = [](const char *app, std::uint64_t n) {
        core::RunConfig config;
        config.app = app;
        config.params.n = n;
        config.machine = mach::MachineKind::LogP;
        config.procs = 4;
        return static_cast<double>(
                   core::runOne(config).machine.messages) /
               static_cast<double>(n);
    };
    EXPECT_GT(messages_per_key("radix", 1024),
              messages_per_key("is", 1024));
}

} // namespace
