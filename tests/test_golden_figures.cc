/**
 * @file
 * Golden equivalence suite for the machine-layer refactor.
 *
 * The figure JSON for the three paper machines is the repository's
 * ground truth: any change to the machine layer must keep these bytes
 * exactly as the monolithic pre-refactor machines produced them
 * (cycle-identical models => identical metric values => identical
 * "%.17g" renderings).  The goldens under tests/golden/ were generated
 * from the pre-refactor tree; regenerate deliberately with
 *
 *   ABSIM_REGEN_GOLDENS=1 ./absim_tests --gtest_filter='GoldenFigures.*'
 *
 * and audit the diff — a changed golden means changed simulated cycles.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/env.hh"
#include "core/figures.hh"

namespace {

using namespace absim;

#ifndef ABSIM_GOLDEN_DIR
#error "ABSIM_GOLDEN_DIR must point at tests/golden"
#endif

std::string
goldenPath(const std::string &name)
{
    return std::string(ABSIM_GOLDEN_DIR) + "/" + name + ".json";
}

/** Run one small three-machine sweep and render its figure JSON. */
std::string
sweepJson(const std::string &app, std::uint64_t size,
          net::TopologyKind topology, core::Metric metric)
{
    core::RunConfig base;
    base.app = app;
    base.params.n = size;
    const core::SweepResult result = core::sweepFigureSafe(
        "Golden: " + app + " on " + net::toString(topology) + ": " +
            core::toString(metric),
        base, topology, metric, {1, 2, 4});
    std::ostringstream os;
    core::writeFigureJson(os, result);
    return os.str();
}

void
expectGolden(const std::string &name, const std::string &json)
{
    const std::string path = goldenPath(name);
    if (core::envString("ABSIM_REGEN_GOLDENS") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << json;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (regenerate with ABSIM_REGEN_GOLDENS=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(json, want.str())
        << "figure JSON drifted from the pre-refactor golden " << path;
}

TEST(GoldenFigures, IsFullExec)
{
    expectGolden("is_full_exec",
                 sweepJson("is", 256, net::TopologyKind::Full,
                           core::Metric::ExecTime));
}

TEST(GoldenFigures, EpMeshContention)
{
    expectGolden("ep_mesh_contention",
                 sweepJson("ep", 1024, net::TopologyKind::Mesh2D,
                           core::Metric::Contention));
}

TEST(GoldenFigures, FftFullLatency)
{
    expectGolden("fft_full_latency",
                 sweepJson("fft", 128, net::TopologyKind::Full,
                           core::Metric::Latency));
}

TEST(GoldenFigures, CgCubeExec)
{
    expectGolden("cg_cube_exec",
                 sweepJson("cg", 64, net::TopologyKind::Hypercube,
                           core::Metric::ExecTime));
}

} // namespace
