/**
 * @file
 * Unit tests for the curve-agreement metrics and the Profile statistics.
 */

#include <gtest/gtest.h>

#include "core/compare.hh"
#include "stats/overheads.hh"

namespace {

using namespace absim;

TEST(TrendAgreement, IdenticalCurvesScoreOne)
{
    const std::vector<double> v{1, 3, 2, 8, 5};
    EXPECT_DOUBLE_EQ(core::trendAgreement(v, v), 1.0);
}

TEST(TrendAgreement, ScaledCurvesScoreOne)
{
    const std::vector<double> a{1, 3, 2, 8, 5};
    const std::vector<double> b{10, 30, 20, 80, 50};
    EXPECT_DOUBLE_EQ(core::trendAgreement(a, b), 1.0);
}

TEST(TrendAgreement, ReversedCurvesScoreMinusOne)
{
    const std::vector<double> a{1, 2, 3, 4};
    const std::vector<double> b{4, 3, 2, 1};
    EXPECT_DOUBLE_EQ(core::trendAgreement(a, b), -1.0);
}

TEST(TrendAgreement, FlatCurveAgreesWithAnything)
{
    const std::vector<double> flat{5, 5, 5};
    const std::vector<double> rising{1, 2, 3};
    EXPECT_DOUBLE_EQ(core::trendAgreement(flat, rising), 1.0);
}

TEST(TrendAgreement, ShortCurvesTriviallyAgree)
{
    EXPECT_DOUBLE_EQ(core::trendAgreement({1}, {9}), 1.0);
    EXPECT_DOUBLE_EQ(core::trendAgreement({}, {}), 1.0);
}

TEST(MeanRatio, ComputesAverageOfPointwiseRatios)
{
    const std::vector<double> a{1, 2, 4};
    const std::vector<double> b{2, 4, 8};
    EXPECT_DOUBLE_EQ(core::meanRatio(a, b), 2.0);
}

TEST(MeanRatio, SkipsZeroBaselines)
{
    const std::vector<double> a{0, 2};
    const std::vector<double> b{7, 6};
    EXPECT_DOUBLE_EQ(core::meanRatio(a, b), 3.0);
}

TEST(MaxRelGap, FindsWorstPoint)
{
    const std::vector<double> a{10, 10, 10};
    const std::vector<double> b{10, 5, 9};
    EXPECT_DOUBLE_EQ(core::maxRelGap(a, b), 0.5);
}

TEST(Profile, ExecTimeIsMaxFinish)
{
    stats::Profile p;
    p.procs.resize(3);
    p.procs[0].finishTime = 100;
    p.procs[1].finishTime = 300;
    p.procs[2].finishTime = 200;
    EXPECT_EQ(p.execTime(), 300u);
}

TEST(Profile, MeansAndTotals)
{
    stats::Profile p;
    p.procs.resize(2);
    p.procs[0].busy = 10;
    p.procs[0].latency = 20;
    p.procs[0].contention = 30;
    p.procs[1].busy = 30;
    p.procs[1].latency = 40;
    p.procs[1].contention = 50;
    EXPECT_DOUBLE_EQ(p.meanBusy(), 20.0);
    EXPECT_DOUBLE_EQ(p.meanLatency(), 30.0);
    EXPECT_DOUBLE_EQ(p.meanContention(), 40.0);
    EXPECT_EQ(p.totalLatency(), 60u);
    EXPECT_EQ(p.totalContention(), 80u);
}

TEST(Profile, EmptyProfileIsZero)
{
    stats::Profile p;
    EXPECT_EQ(p.execTime(), 0u);
    EXPECT_DOUBLE_EQ(p.meanBusy(), 0.0);
}

TEST(ProcStats, TotalSumsBuckets)
{
    stats::ProcStats s;
    s.busy = 1;
    s.latency = 2;
    s.contention = 3;
    EXPECT_EQ(s.total(), 6u);
}

} // namespace
