/**
 * @file
 * Tests for the synthetic access-pattern workloads, including the
 * analytic cross-checks the patterns make possible (closed-form LogP
 * expectations).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace absim;

core::RunConfig
configFor(const std::string &variant, mach::MachineKind machine,
          std::uint32_t procs, std::uint64_t ops = 128)
{
    core::RunConfig config;
    config.app = "synthetic";
    config.params.variant = variant;
    config.params.n = ops;
    config.machine = machine;
    config.topology = net::TopologyKind::Hypercube;
    config.procs = procs;
    return config;
}

TEST(Synthetic, AllVariantsCountAllUpdatesOnAllMachines)
{
    for (const char *variant :
         {"private", "neighbor", "uniform", "hotspot"}) {
        for (const auto machine :
             {mach::MachineKind::Target, mach::MachineKind::LogP,
              mach::MachineKind::LogPC}) {
            EXPECT_NO_THROW(
                core::runOne(configFor(variant, machine, 4)))
                << variant << " on " << mach::toString(machine);
        }
    }
}

TEST(Synthetic, UnknownVariantThrows)
{
    EXPECT_THROW(core::runOne(configFor("zigzag",
                                        mach::MachineKind::LogPC, 2)),
                 std::invalid_argument);
}

TEST(Synthetic, PrivatePatternNeverCommunicates)
{
    for (const auto machine :
         {mach::MachineKind::Target, mach::MachineKind::LogP,
          mach::MachineKind::LogPC}) {
        const auto profile =
            core::runOne(configFor("private", machine, 4));
        EXPECT_EQ(profile.machine.messages, 0u)
            << mach::toString(machine);
    }
}

TEST(Synthetic, LogPNeighborCostIsAnalytic)
{
    // Analytic check of the LogP machine stack on the "neighbor"
    // pattern (every op one remote RMW round trip):
    //  - latency is exactly 2L per op,
    //  - busy is exactly the inter-op compute,
    //  - each node's single gate carries four events per op (its own
    //    request send + reply receive, plus its predecessor's request
    //    receive + the reply send), so the steady-state op period — and
    //    hence per-op contention — is bounded below by 4g minus the
    //    engine-time parts accounted elsewhere.
    constexpr std::uint64_t kOps = 64;
    const auto profile = core::runOne(
        configFor("neighbor", mach::MachineKind::LogP, 4, kOps));
    const sim::Duration g = 1600; // Cube.
    for (const auto &s : profile.procs) {
        EXPECT_EQ(s.latency, kOps * 3200u);
        EXPECT_EQ(s.busy, kOps * sim::cycles(20));
        EXPECT_GE(s.contention, kOps * g); // Reply-send gate alone.
        EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention);
    }
    EXPECT_GE(profile.execTime(), kOps * 4 * g);
}

TEST(Synthetic, LogPHotspotThroughputIsGateBound)
{
    // All P-1 remote processors hammer node 0: the aggregate service
    // rate at node 0's gate is one event per g, two events per round
    // trip, so the makespan is at least 2 * ops * (P-1) * g.
    constexpr std::uint64_t kOps = 32;
    constexpr std::uint32_t kProcs = 8;
    const auto profile = core::runOne(
        configFor("hotspot", mach::MachineKind::LogP, kProcs, kOps));
    const sim::Duration g = 1600; // Cube.
    EXPECT_GE(profile.execTime(), 2 * kOps * (kProcs - 1) * g);
}

TEST(Synthetic, NeighborPessimismExceedsUniform)
{
    // The bisection g charges neighbor traffic it should not: the
    // LogP+C-vs-target contention ratio must be worse for "neighbor"
    // than for "uniform" (mesh, where locality matters most).
    auto ratio = [](const char *variant) {
        auto base = configFor(variant, mach::MachineKind::Target, 16,
                              256);
        base.topology = net::TopologyKind::Mesh2D;
        const double target =
            core::runOne(base).meanContention() + 1.0;
        base.machine = mach::MachineKind::LogPC;
        const double logpc = core::runOne(base).meanContention();
        return logpc / target;
    };
    EXPECT_GT(ratio("neighbor"), ratio("uniform"));
}

} // namespace
