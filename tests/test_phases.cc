/**
 * @file
 * Tests for SPASM-style per-phase overhead isolation.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "machine_fixture.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

TEST(Phases, DefaultEverythingInMain)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    h.run([&](rt::Proc &p) { p.compute(100); });
    const auto &phases = h.runtime->proc(0).phases();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].name, "main");
    EXPECT_EQ(phases[0].busy, sim::cycles(100));
}

TEST(Phases, PartitionTotalsExactly)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 16, rt::Placement::OnNode,
                                     1);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        p.compute(10);
        p.beginPhase("alpha");
        a.read(p, 0);
        p.compute(20);
        p.beginPhase("beta");
        a.write(p, 8, 1);
        p.beginPhase("alpha"); // Re-entering accumulates.
        p.compute(5);
    });
    const auto &proc = h.runtime->proc(0);
    const auto &phases = proc.phases();
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_EQ(phases[0].name, "main");
    EXPECT_EQ(phases[1].name, "alpha");
    EXPECT_EQ(phases[2].name, "beta");

    sim::Duration busy = 0, latency = 0, contention = 0;
    for (const auto &phase : phases) {
        busy += phase.busy;
        latency += phase.latency;
        contention += phase.contention;
    }
    EXPECT_EQ(busy, proc.stats().busy);
    EXPECT_EQ(latency, proc.stats().latency);
    EXPECT_EQ(contention, proc.stats().contention);
    EXPECT_EQ(phases[0].busy, sim::cycles(10));
    // alpha: compute 20 + 5 plus the read's trailing cache-hit cost.
    EXPECT_EQ(phases[1].busy, sim::cycles(25) + mach::kCacheHitNs);
    EXPECT_EQ(phases[2].busy, mach::kCacheHitNs);
    EXPECT_GT(phases[1].latency, 0u); // The read miss.
    EXPECT_GT(phases[2].latency, 0u); // The write miss.
}

TEST(Phases, AppsReportTheirPhases)
{
    const struct
    {
        const char *app;
        std::uint64_t n;
        std::vector<std::string> expect;
    } cases[] = {
        {"ep", 2048, {"generate", "reduce"}},
        {"fft", 256, {"bit-reverse", "butterflies"}},
        {"is", 1024, {"histogram", "scan", "rank"}},
        {"cg", 128, {"spmv", "dot", "axpy"}},
        {"cholesky", 64, {"schedule", "factor"}},
        {"radix", 512, {"histogram", "scan", "permute"}},
    };
    for (const auto &c : cases) {
        core::RunConfig config;
        config.app = c.app;
        config.params.n = c.n;
        config.params.iterations = 3;
        config.machine = MachineKind::LogPC;
        config.procs = 4;
        const auto profile = core::runOne(config);
        const auto summary = profile.phaseSummary();
        for (const auto &want : c.expect) {
            bool found = false;
            for (const auto &phase : summary)
                found = found || phase.name == want;
            EXPECT_TRUE(found) << c.app << " missing phase " << want;
        }
    }
}

TEST(Phases, SerialFractionVisibleInScan)
{
    // IS's scan runs on processor 0 only: other processors' "scan"
    // phase is nearly all barrier spinning (busy), processor 0 has the
    // work; aggregate busy in scan must be positive and the phase's
    // share must be small relative to rank.
    core::RunConfig config;
    config.app = "is";
    config.params.n = 2048;
    config.machine = MachineKind::Target;
    config.procs = 4;
    const auto profile = core::runOne(config);
    const auto summary = profile.phaseSummary();
    const stats::PhaseStats *scan = nullptr, *rank = nullptr;
    for (const auto &phase : summary) {
        if (phase.name == "scan")
            scan = &phase;
        if (phase.name == "rank")
            rank = &phase;
    }
    ASSERT_NE(scan, nullptr);
    ASSERT_NE(rank, nullptr);
    EXPECT_GT(scan->total(), 0u);
    EXPECT_GT(rank->latency, scan->latency);
}

} // namespace
