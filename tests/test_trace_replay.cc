/**
 * @file
 * The trace capture & replay equivalence suite: a recorded reference
 * stream replayed through any machine must produce the profile the
 * execution-driven simulator produces — bit-identical, including the
 * engine event count (the schedule fingerprint).  Plus the durability
 * contract of the trace store (torn/corrupt files are cache misses,
 * record-on-miss self-primes) and the divergence-report arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/experiment.hh"
#include "core/figures.hh"
#include "machines/null_machine.hh"
#include "msg/msg_world.hh"
#include "runtime/context.hh"
#include "stats/overheads.hh"
#include "trace_replay/divergence.hh"
#include "trace_replay/format.hh"
#include "trace_replay/recorder.hh"
#include "trace_replay/replay.hh"

namespace {

using namespace absim;

class TempTraceDir
{
  public:
    TempTraceDir()
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("absim-trace-test-" +
                std::to_string(::getpid()) + "-" +
                std::to_string(counter_++));
        std::filesystem::create_directories(dir_);
    }

    ~TempTraceDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string path() const { return dir_.string(); }

  private:
    static inline int counter_ = 0;
    std::filesystem::path dir_;
};

/** Every simulated quantity must match; wallSeconds is host time. */
void
expectProfilesEqual(const stats::Profile &exec, const stats::Profile &rep,
                    const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_EQ(exec.procs.size(), rep.procs.size());
    for (std::size_t i = 0; i < exec.procs.size(); ++i) {
        SCOPED_TRACE("proc " + std::to_string(i));
        const stats::ProcStats &e = exec.procs[i];
        const stats::ProcStats &r = rep.procs[i];
        EXPECT_EQ(e.busy, r.busy);
        EXPECT_EQ(e.latency, r.latency);
        EXPECT_EQ(e.contention, r.contention);
        EXPECT_EQ(e.wait, r.wait);
        EXPECT_EQ(e.accesses, r.accesses);
        EXPECT_EQ(e.networkAccesses, r.networkAccesses);
        EXPECT_EQ(e.finishTime, r.finishTime);
    }
    ASSERT_EQ(exec.procPhases.size(), rep.procPhases.size());
    for (std::size_t i = 0; i < exec.procPhases.size(); ++i) {
        ASSERT_EQ(exec.procPhases[i].size(), rep.procPhases[i].size())
            << "proc " << i;
        for (std::size_t p = 0; p < exec.procPhases[i].size(); ++p) {
            SCOPED_TRACE("proc " + std::to_string(i) + " phase " +
                         std::to_string(p));
            const stats::PhaseStats &e = exec.procPhases[i][p];
            const stats::PhaseStats &r = rep.procPhases[i][p];
            EXPECT_EQ(e.name, r.name);
            EXPECT_EQ(e.busy, r.busy);
            EXPECT_EQ(e.latency, r.latency);
            EXPECT_EQ(e.contention, r.contention);
            EXPECT_EQ(e.wait, r.wait);
        }
    }
    for (std::uint32_t b = 0; b < stats::Histogram::kBuckets; ++b)
        EXPECT_EQ(exec.remoteLatency.count(b), rep.remoteLatency.count(b))
            << "histogram bucket " << b;
    EXPECT_EQ(exec.remoteLatency.samples(), rep.remoteLatency.samples());
    EXPECT_EQ(exec.remoteLatency.max(), rep.remoteLatency.max());

    EXPECT_EQ(exec.machine.accesses, rep.machine.accesses);
    EXPECT_EQ(exec.machine.cacheHits, rep.machine.cacheHits);
    EXPECT_EQ(exec.machine.localMem, rep.machine.localMem);
    EXPECT_EQ(exec.machine.networkAccesses, rep.machine.networkAccesses);
    EXPECT_EQ(exec.machine.messages, rep.machine.messages);
    EXPECT_EQ(exec.machine.readMisses, rep.machine.readMisses);
    EXPECT_EQ(exec.machine.writeMisses, rep.machine.writeMisses);
    EXPECT_EQ(exec.machine.upgrades, rep.machine.upgrades);
    EXPECT_EQ(exec.machine.invalidations, rep.machine.invalidations);
    EXPECT_EQ(exec.machine.writebacks, rep.machine.writebacks);
    EXPECT_EQ(exec.machine.memTime, rep.machine.memTime);

    EXPECT_EQ(exec.netModel, rep.netModel);
    EXPECT_EQ(exec.memModel, rep.memModel);
    EXPECT_EQ(exec.engineEvents, rep.engineEvents)
        << "event-schedule fingerprint diverged";
}

core::RunConfig
smallConfig(const std::string &app, std::uint64_t n, std::uint32_t procs,
            mach::MachineKind machine)
{
    core::RunConfig config;
    config.app = app;
    config.params.n = n;
    config.params.seed = 4242;
    config.machine = machine;
    config.topology = net::TopologyKind::Mesh2D;
    config.procs = procs;
    return config;
}

constexpr mach::MachineKind kAllMachines[] = {
    mach::MachineKind::Target, mach::MachineKind::LogP,
    mach::MachineKind::LogPC, mach::MachineKind::TargetIC,
    mach::MachineKind::LogPDir,
};

/** Record on one run, replay the trace, expect identical profiles. */
void
roundTrip(const std::string &app, std::uint64_t n, std::uint32_t procs,
          mach::MachineKind machine)
{
    TempTraceDir dir;
    core::RunConfig config = smallConfig(app, n, procs, machine);
    config.mode = core::RunMode::Record;
    config.traceDir = dir.path();
    const stats::Profile exec = core::runOne(config);

    trace::Trace recorded;
    ASSERT_TRUE(trace::loadTrace(
        dir.path() + "/" +
            trace::traceFileName(config.app, config.params, config.procs),
        recorded));
    ASSERT_TRUE(recorded.replayable) << recorded.untraceableWhy;

    trace::ReplaySpec spec;
    spec.machine = config.machine;
    spec.topology = config.topology;
    spec.gapPolicy = config.gapPolicy;
    spec.cache = config.cache;
    spec.protocol = config.protocol;
    const stats::Profile rep = trace::replayTrace(recorded, spec);

    expectProfilesEqual(exec, rep,
                        app + " x " + mach::toString(machine) + " x p" +
                            std::to_string(procs));
}

TEST(TraceReplay, EpMatchesExecutionOnEveryMachine)
{
    for (const mach::MachineKind machine : kAllMachines)
        roundTrip("ep", 2048, 4, machine);
}

TEST(TraceReplay, IsMatchesExecutionOnEveryMachine)
{
    for (const mach::MachineKind machine : kAllMachines)
        roundTrip("is", 1024, 4, machine);
}

TEST(TraceReplay, SyncHeavyAppsMatchExecution)
{
    // Stencil (barriers every sweep) and CG (locks + reductions)
    // exercise the regenerated synchronization algorithms.
    roundTrip("stencil", 64, 4, mach::MachineKind::Target);
    roundTrip("cg", 64, 4, mach::MachineKind::Target);
    roundTrip("stencil", 64, 4, mach::MachineKind::LogPC);
    roundTrip("cg", 64, 4, mach::MachineKind::LogP);
}

TEST(TraceReplay, EightProcessorsMatch)
{
    roundTrip("ep", 2048, 8, mach::MachineKind::Target);
    roundTrip("is", 1024, 8, mach::MachineKind::LogPDir);
}

TEST(TraceReplay, TraceIsMachineIndependent)
{
    // One trace recorded under Target replays correctly on every other
    // machine: against each, the replayed profile equals that machine's
    // own execution-driven profile.
    TempTraceDir dir;
    core::RunConfig config =
        smallConfig("is", 1024, 4, mach::MachineKind::Target);
    config.mode = core::RunMode::Record;
    config.traceDir = dir.path();
    core::runOne(config);

    trace::Trace recorded;
    ASSERT_TRUE(trace::loadTrace(
        dir.path() + "/" +
            trace::traceFileName(config.app, config.params, config.procs),
        recorded));

    for (const mach::MachineKind machine : kAllMachines) {
        core::RunConfig exec_config = config;
        exec_config.mode = core::RunMode::Execute;
        exec_config.machine = machine;
        const stats::Profile exec = core::runOne(exec_config);

        trace::ReplaySpec spec;
        spec.machine = machine;
        spec.topology = config.topology;
        const stats::Profile rep = trace::replayTrace(recorded, spec);
        expectProfilesEqual(exec, rep,
                            "target-recorded trace on " +
                                mach::toString(machine));
    }
}

TEST(TraceReplay, RecordOnMissThenReplayHit)
{
    TempTraceDir dir;
    core::RunConfig config =
        smallConfig("ep", 2048, 4, mach::MachineKind::LogPC);
    const stats::Profile exec = core::runOne(config);

    config.mode = core::RunMode::Replay;
    config.traceDir = dir.path();
    // First call misses: executes, records, returns the executed
    // profile.
    const stats::Profile first = core::runOne(config);
    expectProfilesEqual(exec, first, "record-on-miss execution");
    const std::string path =
        dir.path() + "/" +
        trace::traceFileName(config.app, config.params, config.procs);
    EXPECT_TRUE(std::filesystem::exists(path));

    // Second call replays the recorded trace.
    const stats::Profile second = core::runOne(config);
    expectProfilesEqual(exec, second, "replay hit");
}

TEST(TraceReplay, TornTraceFileIsACacheMiss)
{
    TempTraceDir dir;
    core::RunConfig config =
        smallConfig("ep", 2048, 4, mach::MachineKind::LogPC);
    config.mode = core::RunMode::Record;
    config.traceDir = dir.path();
    const stats::Profile exec = core::runOne(config);

    const std::string path =
        dir.path() + "/" +
        trace::traceFileName(config.app, config.params, config.procs);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Truncate: simulates a crash mid-write that bypassed the atomic
    // rename (e.g. a torn copy).  Must load as false, never garbage.
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full / 2);
    trace::Trace torn;
    EXPECT_FALSE(trace::loadTrace(path, torn));

    // And the driver treats it as a miss: re-executes and re-records.
    config.mode = core::RunMode::Replay;
    const stats::Profile healed = core::runOne(config);
    expectProfilesEqual(exec, healed, "torn-file record-on-miss");
    trace::Trace reloaded;
    EXPECT_TRUE(trace::loadTrace(path, reloaded));

    // Corrupt one body byte: the checksum catches it.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(full / 2));
        const char byte = 0x7f;
        f.write(&byte, 1);
    }
    trace::Trace corrupt;
    EXPECT_FALSE(trace::loadTrace(path, corrupt));
}

TEST(TraceReplay, FormatRoundTripPreservesEverything)
{
    TempTraceDir dir;
    core::RunConfig config =
        smallConfig("is", 1024, 4, mach::MachineKind::Target);
    config.mode = core::RunMode::Record;
    config.traceDir = dir.path();
    core::runOne(config);

    const std::string path =
        dir.path() + "/" +
        trace::traceFileName(config.app, config.params, config.procs);
    trace::Trace a;
    ASSERT_TRUE(trace::loadTrace(path, a));

    // Save the loaded trace again; the reload must be identical.
    const std::string copy = dir.path() + "/copy.abt";
    trace::saveTrace(a, copy);
    trace::Trace b;
    ASSERT_TRUE(trace::loadTrace(copy, b));

    EXPECT_EQ(a.procs, b.procs);
    EXPECT_EQ(a.replayable, b.replayable);
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.phaseNames, b.phaseNames);
    ASSERT_EQ(a.setup.size(), b.setup.size());
    for (std::size_t i = 0; i < a.setup.size(); ++i)
        EXPECT_TRUE(a.setup[i] == b.setup[i]) << "setup op " << i;
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t p = 0; p < a.streams.size(); ++p) {
        ASSERT_EQ(a.streams[p].size(), b.streams[p].size())
            << "proc " << p;
        for (std::size_t i = 0; i < a.streams[p].size(); ++i)
            EXPECT_TRUE(a.streams[p][i] == b.streams[p][i])
                << "proc " << p << " op " << i;
    }
}

TEST(TraceReplay, MessagePassingRunsRecordAsNonReplayable)
{
    // Message-passing platforms run outside the shared-memory driver
    // (null machine + transport + MsgWorld); a recorder observing such
    // a run must mark the trace non-replayable at the first send/recv.
    sim::EventQueue eq;
    rt::SharedHeap heap(2);
    mach::NullMachine machine(2, heap);
    msg::LogPTransport transport(eq, net::TopologyKind::Full, 2);
    msg::MsgWorld world(eq, transport, 2);
    rt::Runtime runtime(eq, machine, 2);

    trace::Recorder recorder(2);
    heap.bindSink(&recorder);
    runtime.bindSink(&recorder);
    runtime.spawn([&world](rt::Proc &p) {
        if (p.node() == 0)
            world.sendValue<std::uint64_t>(p, 1, 7, 0xABCD);
        else
            world.recvValue<std::uint64_t>(p, 0, 7);
    });
    runtime.run();

    apps::AppParams params;
    const trace::Trace recorded = recorder.take("msg-smoke", params);
    EXPECT_FALSE(recorded.replayable);
    EXPECT_FALSE(recorded.untraceableWhy.empty());
    trace::ReplaySpec spec;
    EXPECT_THROW(trace::replayTrace(recorded, spec), trace::ReplayError);

    // And a non-replayable trace in the store makes Replay mode fall
    // back to plain execution (exercised through saveTrace/loadTrace).
    TempTraceDir dir;
    trace::saveTrace(recorded, dir.path() + "/fallback.abt");
    trace::Trace reloaded;
    ASSERT_TRUE(trace::loadTrace(dir.path() + "/fallback.abt", reloaded));
    EXPECT_FALSE(reloaded.replayable);
    EXPECT_EQ(reloaded.untraceableWhy, recorded.untraceableWhy);
}

TEST(TraceReplay, ReplaySpeedupIsReal)
{
    // The whole point: replay must be much cheaper than execution.
    // This asserts only a conservative > 1x here (CI noise); the
    // committed benchmark baseline pins the >= 10x sweep-level claim.
    TempTraceDir dir;
    core::RunConfig config =
        smallConfig("ep", 65536, 8, mach::MachineKind::Target);
    config.mode = core::RunMode::Record;
    config.traceDir = dir.path();
    const stats::Profile exec = core::runOne(config);

    config.mode = core::RunMode::Replay;
    const stats::Profile rep = core::runOne(config);
    expectProfilesEqual(exec, rep, "speedup run equivalence");
    EXPECT_LT(rep.wallSeconds, exec.wallSeconds);
}

TEST(TraceReplay, ReplayedFigureJsonIsByteIdentical)
{
    // The figure-level contract: a replayed sweep's JSON document is
    // byte-for-byte the execution-driven one (EP and IS latency
    // figures — the timing-feedback-negligible class).
    for (const std::string app : {"ep", "is"}) {
        TempTraceDir dir;
        core::RunConfig base;
        base.app = app;
        base.params.n = app == "ep" ? 2048 : 1024;
        base.params.seed = 4242;
        const std::vector<std::uint32_t> procs = {2, 4, 8};
        core::SweepOptions options;

        const core::SweepResult exec = core::sweepFigureParallel(
            "replay-pin " + app, base, net::TopologyKind::Full,
            core::Metric::Latency, procs, options);
        ASSERT_TRUE(exec.complete());

        base.mode = core::RunMode::Replay;
        base.traceDir = dir.path();
        // First replay sweep records on miss, second replays from the
        // trace store; both must serialize identically.
        for (int round = 0; round < 2; ++round) {
            const core::SweepResult rep = core::sweepFigureParallel(
                "replay-pin " + app, base, net::TopologyKind::Full,
                core::Metric::Latency, procs, options);
            ASSERT_TRUE(rep.complete());
            std::ostringstream exec_json;
            std::ostringstream rep_json;
            core::writeFigureJson(exec_json, exec);
            core::writeFigureJson(rep_json, rep);
            EXPECT_EQ(exec_json.str(), rep_json.str())
                << app << " round " << round;

            const trace::DivergenceReport report =
                core::compareFigures(exec.figure, rep.figure);
            EXPECT_TRUE(report.identical) << app << " round " << round;
            EXPECT_EQ(report.points.size(), procs.size() * 3);
        }
    }
}

TEST(DivergenceReport, AggregatesAndSerializes)
{
    trace::DivergenceReport report;
    report.figure = "fig16_radix_feedback";
    report.metric = "total_time";
    report.add("target", 4, 100.0, 100.0);
    report.add("logpc", 4, 200.0, 190.0);
    report.add("logp", 8, 0.0, 0.5); // Zero executed: epsilon guard.
    report.finalize();

    EXPECT_FALSE(report.identical);
    EXPECT_DOUBLE_EQ(report.maxAbs, 10.0);
    EXPECT_DOUBLE_EQ(report.meanAbs, 10.5 / 3.0);
    // The zero-executed point's relative delta is huge but finite.
    EXPECT_TRUE(std::isfinite(report.maxRel));
    EXPECT_GT(report.maxRel, 1.0);

    const std::string json = trace::toJson(report);
    EXPECT_NE(json.find("\"format\":\"absim-divergence\""),
              std::string::npos);
    EXPECT_NE(json.find("\"identical\":false"), std::string::npos);
    EXPECT_NE(json.find("\"column\":\"logpc\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');

    trace::DivergenceReport clean;
    clean.figure = "fig";
    clean.metric = "m";
    clean.add("target", 4, 7.0, 7.0);
    clean.finalize();
    EXPECT_TRUE(clean.identical);
    EXPECT_DOUBLE_EQ(clean.maxAbs, 0.0);
}

} // namespace
