/**
 * @file
 * Shared fixture for machine-model tests: builds engine + heap + machine
 * + runtime and runs scripted per-processor workloads.
 */

#ifndef ABSIM_TESTS_MACHINE_FIXTURE_HH
#define ABSIM_TESTS_MACHINE_FIXTURE_HH

#include <functional>
#include <memory>
#include <vector>

#include "machines/composed_machine.hh"
#include "machines/logp_c_machine.hh"
#include "machines/logp_machine.hh"
#include "machines/registry.hh"
#include "machines/target_machine.hh"
#include "runtime/context.hh"
#include "runtime/shared.hh"
#include "sim/event_queue.hh"

namespace absim::test {

class MachineHarness
{
  public:
    MachineHarness(mach::MachineKind kind, net::TopologyKind topo,
                   std::uint32_t procs,
                   logp::GapPolicy policy = logp::GapPolicy::Single)
        : heap(procs)
    {
        machine = mach::makeMachine(kind, eq, topo, procs, heap, policy);
        runtime = std::make_unique<rt::Runtime>(eq, *machine, procs);
    }

    /** Run @p body on every processor to completion. */
    void
    run(std::function<void(rt::Proc &)> body)
    {
        runtime->spawn(std::move(body));
        runtime->run();
    }

    mach::TargetMachine &
    target()
    {
        return dynamic_cast<mach::TargetMachine &>(*machine);
    }

    mach::LogPCMachine &
    logpc()
    {
        return dynamic_cast<mach::LogPCMachine &>(*machine);
    }

    /** Any registry-built machine, for model-level accessors. */
    mach::ComposedMachine &
    composed()
    {
        return dynamic_cast<mach::ComposedMachine &>(*machine);
    }

    sim::EventQueue eq;
    rt::SharedHeap heap;
    std::unique_ptr<mach::Machine> machine;
    std::unique_ptr<rt::Runtime> runtime;
};

} // namespace absim::test

#endif // ABSIM_TESTS_MACHINE_FIXTURE_HH
