/**
 * @file
 * Unit tests for the runtime layer: shared-heap placement, shared-array
 * semantics (linearizable reads/writes/RMWs), processor clocks, and the
 * shared-memory synchronization primitives.
 */

#include <gtest/gtest.h>

#include "machine_fixture.hh"
#include "runtime/sync.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

TEST(SharedHeap, BlockedPlacementSplitsEvenly)
{
    rt::SharedHeap heap(4);
    const mem::Addr base = heap.allocate(4 * 256, rt::Placement::Blocked);
    for (std::uint32_t n = 0; n < 4; ++n) {
        EXPECT_EQ(heap.homeOf(base + n * 256), n);
        EXPECT_EQ(heap.homeOf(base + n * 256 + 255), n);
    }
}

TEST(SharedHeap, BlockedChunksAreBlockAligned)
{
    rt::SharedHeap heap(4);
    // 100 bytes over 4 nodes: 25-byte chunks round up to one block each.
    const mem::Addr base = heap.allocate(100, rt::Placement::Blocked);
    EXPECT_EQ(heap.homeOf(base + 31), 0u);
    EXPECT_EQ(heap.homeOf(base + 32), 1u);
}

TEST(SharedHeap, InterleavedPlacementRoundRobinsBlocks)
{
    rt::SharedHeap heap(4);
    const mem::Addr base =
        heap.allocate(8 * mem::kBlockBytes, rt::Placement::Interleaved);
    for (std::uint32_t b = 0; b < 8; ++b)
        EXPECT_EQ(heap.homeOf(base + b * mem::kBlockBytes), b % 4);
}

TEST(SharedHeap, OnNodePlacement)
{
    rt::SharedHeap heap(4);
    const mem::Addr base =
        heap.allocate(1024, rt::Placement::OnNode, 2);
    EXPECT_EQ(heap.homeOf(base), 2u);
    EXPECT_EQ(heap.homeOf(base + 1023), 2u);
}

TEST(SharedHeap, SegmentsDoNotOverlapAndStayBlockAligned)
{
    rt::SharedHeap heap(2);
    const mem::Addr a = heap.allocate(33, rt::Placement::OnNode, 0);
    const mem::Addr b = heap.allocate(1, rt::Placement::OnNode, 1);
    EXPECT_EQ(a % mem::kBlockBytes, 0u);
    EXPECT_EQ(b % mem::kBlockBytes, 0u);
    EXPECT_GE(b, a + 33);
    EXPECT_EQ(heap.homeOf(a), 0u);
    EXPECT_EQ(heap.homeOf(b), 1u);
}

TEST(SharedHeap, RejectsBadArguments)
{
    rt::SharedHeap heap(2);
    EXPECT_THROW(heap.allocate(0, rt::Placement::Blocked),
                 std::invalid_argument);
    EXPECT_THROW(heap.allocate(8, rt::Placement::OnNode, 5),
                 std::invalid_argument);
    EXPECT_THROW(heap.homeOf(0), std::out_of_range);
}

TEST(Proc, ComputeAdvancesLocalClockOnly)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    h.run([&](rt::Proc &p) {
        p.compute(100); // 100 cycles = 3000 ns.
    });
    EXPECT_EQ(h.runtime->proc(0).stats().busy, 3000u);
    EXPECT_EQ(h.runtime->proc(0).stats().finishTime, 3000u);
    EXPECT_EQ(h.runtime->proc(0).stats().accesses, 0u);
}

TEST(Proc, AccessesAreGloballyOrderedDespiteLocalClocks)
{
    // Proc 1 computes ahead, then writes; proc 0 spins reading.  The
    // read at a local time after the write's completion must see it.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 0);
    std::uint64_t seen_at_end = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            p.compute(1000);
            a.write(p, 0, 42);
        } else {
            while (a.read(p, 0) != 42)
                p.compute(50);
            seen_at_end = 42;
        }
    });
    EXPECT_EQ(seen_at_end, 42u);
}

TEST(SharedArray, RmwIsAtomicAcrossProcessors)
{
    // N procs x K increments with fetchAdd: no update may be lost, on
    // any machine model.
    for (const auto kind : {MachineKind::Target, MachineKind::LogP,
                            MachineKind::LogPC}) {
        MachineHarness h(kind, TopologyKind::Mesh2D, 4);
        rt::SharedArray<std::uint64_t> counter(h.heap, 1,
                                               rt::Placement::OnNode, 0);
        counter.raw(0) = 0;
        h.run([&](rt::Proc &p) {
            for (int i = 0; i < 25; ++i)
                counter.fetchAdd(p, 0, 1);
        });
        EXPECT_EQ(counter.raw(0), 100u) << mach::toString(kind);
    }
}

TEST(SpinLock, MutualExclusionUnderContention)
{
    // Unprotected read-modify-write sequences under a lock: lost updates
    // would prove a mutual-exclusion violation.
    for (const auto kind : {MachineKind::Target, MachineKind::LogP,
                            MachineKind::LogPC}) {
        MachineHarness h(kind, TopologyKind::Full, 4);
        rt::SharedArray<std::uint64_t> value(h.heap, 1,
                                             rt::Placement::OnNode, 1);
        rt::SpinLock lock(h.heap, 0);
        value.raw(0) = 0;
        h.run([&](rt::Proc &p) {
            for (int i = 0; i < 10; ++i) {
                lock.lock(p);
                const std::uint64_t v = value.read(p, 0);
                p.compute(20); // Widen the race window.
                value.write(p, 0, v + 1);
                lock.unlock(p);
            }
        });
        EXPECT_EQ(value.raw(0), 40u) << mach::toString(kind);
    }
}

TEST(SpinLock, PlainTestAndSetAlsoCorrect)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> value(h.heap, 1,
                                         rt::Placement::OnNode, 0);
    rt::SpinLock lock(h.heap, 0, rt::LockKind::TestAndSet);
    value.raw(0) = 0;
    h.run([&](rt::Proc &p) {
        for (int i = 0; i < 10; ++i) {
            lock.lock(p);
            const std::uint64_t v = value.read(p, 0);
            value.write(p, 0, v + 1);
            lock.unlock(p);
        }
    });
    EXPECT_EQ(value.raw(0), 20u);
}

TEST(Barrier, NoProcessorPassesEarly)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 4);
    rt::Barrier barrier(h.heap, 4);
    rt::SharedArray<std::uint64_t> arrived(h.heap, 1,
                                           rt::Placement::OnNode, 0);
    arrived.raw(0) = 0;
    bool violated = false;
    h.run([&](rt::Proc &p) {
        // Stagger arrivals widely.
        p.compute(p.node() * 100000);
        arrived.fetchAdd(p, 0, 1);
        barrier.arrive(p);
        if (arrived.read(p, 0) != 4)
            violated = true;
    });
    EXPECT_FALSE(violated);
}

TEST(Barrier, ReusableAcrossPhases)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    rt::Barrier barrier(h.heap, 4);
    rt::SharedArray<std::uint64_t> phase_sum(h.heap, 8,
                                             rt::Placement::OnNode, 0);
    for (std::size_t i = 0; i < 8; ++i)
        phase_sum.raw(i) = 0;
    bool ok = true;
    h.run([&](rt::Proc &p) {
        for (std::uint64_t phase = 0; phase < 8; ++phase) {
            phase_sum.fetchAdd(p, phase, 1);
            barrier.arrive(p);
            if (phase_sum.read(p, phase) != 4)
                ok = false;
            barrier.arrive(p);
        }
    });
    EXPECT_TRUE(ok);
}

TEST(Flag, WaitForSeesPublishedValue)
{
    MachineHarness h(MachineKind::LogP, TopologyKind::Full, 2);
    rt::Flag flag(h.heap, 0);
    std::uint64_t order = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            p.compute(50000);
            order = 1;
            flag.set(p, 7);
        } else {
            flag.waitFor(p, 7);
            EXPECT_EQ(order, 1u);
            order = 2;
        }
    });
    EXPECT_EQ(order, 2u);
}

TEST(Runtime, ProfileCollectsAllProcs)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    h.run([&](rt::Proc &p) { p.compute(10 + p.node()); });
    const auto profile = h.runtime->collect();
    ASSERT_EQ(profile.procs.size(), 4u);
    EXPECT_EQ(profile.execTime(), sim::cycles(13));
    EXPECT_GT(profile.engineEvents, 0u);
}

TEST(Runtime, ProcCountVisibleToWorkers)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 8);
    std::uint32_t seen = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() == 3)
            seen = p.procs();
    });
    EXPECT_EQ(seen, 8u);
}

} // namespace
