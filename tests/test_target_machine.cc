/**
 * @file
 * Scripted scenarios for the detailed target machine: cache hits/misses,
 * the Berkeley directory transactions (owner-supplied data, upgrades,
 * invalidations, writebacks) and their message/timing accounting.
 *
 * Workers order themselves with compute() delays: accesses execute in
 * global time order, so a processor computing longer acts later.
 */

#include <gtest/gtest.h>

#include "machine_fixture.hh"
#include "mem/addr.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using mem::LineState;
using net::TopologyKind;

constexpr std::uint64_t kAfter = 1'000'000; // Cycles: "act second".

TEST(TargetMachine, LocalMissThenHit)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 8, rt::Placement::OnNode, 0);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        a.read(p, 0); // Local miss: memory access, no messages.
        a.read(p, 1); // Same block: hit.
    });
    const auto &stats = h.machine->stats();
    EXPECT_EQ(stats.accesses, 2u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.readMisses, 1u);
    EXPECT_EQ(stats.messages, 0u);
    EXPECT_EQ(stats.localMem, 1u);
    EXPECT_EQ(stats.networkAccesses, 0u);
    EXPECT_EQ(h.target().cache(0).stateOf(mem::blockOf(a.addrOf(0))),
              LineState::Valid);
}

TEST(TargetMachine, RemoteReadMissCostsRequestPlusData)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        a.read(p, 0);
    });
    const auto &proc = h.runtime->proc(0).stats();
    // 8 B request (400 ns) + 32 B data (1600 ns), uncontended.
    EXPECT_EQ(proc.latency, 2000u);
    EXPECT_EQ(proc.contention, 0u);
    EXPECT_EQ(h.machine->stats().messages, 2u);
    EXPECT_EQ(h.machine->stats().networkAccesses, 1u);
}

TEST(TargetMachine, SpatialLocalityFourItemsPerBlock)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 8, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        for (std::size_t i = 0; i < 8; ++i)
            a.read(p, i); // 8-byte items: 4 per 32-byte block.
    });
    EXPECT_EQ(h.machine->stats().readMisses, 2u);
    EXPECT_EQ(h.machine->stats().cacheHits, 6u);
}

TEST(TargetMachine, BerkeleyOwnerSuppliesData)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 7); // Node 1 becomes Dirty owner.
        } else if (p.node() == 0) {
            p.compute(kAfter);
            EXPECT_EQ(a.read(p, 0), 7u); // Served by the owner.
        }
    });
    // Owner degraded to SharedDirty, reader Valid, ownership kept.
    EXPECT_EQ(h.target().cache(1).stateOf(blk), LineState::SharedDirty);
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Valid);
    ASSERT_NE(h.target().directory().peek(blk), nullptr);
    EXPECT_EQ(h.target().directory().peek(blk)->owner, 1);
    EXPECT_TRUE(h.target().directory().peek(blk)->isSharer(0));

    // The 3-hop read: req(8) to home 2, forward(8) to owner 1,
    // data(32) owner->reader.
    const auto &reader = h.runtime->proc(0).stats();
    EXPECT_EQ(reader.latency, 400u + 400u + 1600u);
}

TEST(TargetMachine, UpgradeInvalidatesSharers)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 3);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() <= 1) {
            a.read(p, 0); // Nodes 0 and 1 share the block.
            if (p.node() == 0) {
                p.compute(kAfter);
                a.write(p, 0, 9); // Upgrade: invalidate node 1.
            }
        }
    });
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Dirty);
    EXPECT_EQ(h.target().cache(1).stateOf(blk), LineState::Invalid);
    EXPECT_EQ(h.machine->stats().upgrades, 1u);
    EXPECT_EQ(h.machine->stats().invalidations, 1u);
    const auto *entry = h.target().directory().peek(blk);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, 0);
    EXPECT_FALSE(entry->isSharer(1));
}

TEST(TargetMachine, WriteMissStealsOwnership)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 5);
        } else if (p.node() == 0) {
            p.compute(kAfter);
            a.write(p, 0, 6);
        }
    });
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Dirty);
    EXPECT_EQ(h.target().cache(1).stateOf(blk), LineState::Invalid);
    EXPECT_EQ(h.target().directory().peek(blk)->owner, 0);
    EXPECT_EQ(a.raw(0), 6u);
}

TEST(TargetMachine, ConflictEvictionWritesBackDirtyVictim)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    // Three blocks 64 KB apart land in the same set of the 2-way cache.
    const std::uint64_t stride = 64 * 1024 / 8; // uint64 elements.
    rt::SharedArray<std::uint64_t> a(h.heap, 3 * stride,
                                     rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        a.write(p, 0 * stride, 1);
        a.write(p, 1 * stride, 2);
        a.write(p, 2 * stride, 3); // Evicts block 0 (dirty).
        a.read(p, 0 * stride);     // Re-fetch; evicts block 1 (dirty).
    });
    EXPECT_EQ(h.machine->stats().writebacks, 2u);
    const auto blk0 = mem::blockOf(a.addrOf(0));
    const auto *entry = h.target().directory().peek(blk0);
    ASSERT_NE(entry, nullptr);
    // After writeback + re-read, memory owns and node 0 is a sharer.
    EXPECT_EQ(entry->owner, mem::DirectoryEntry::kNoOwner);
    EXPECT_TRUE(entry->isSharer(0));
    EXPECT_EQ(h.target().cache(0).stateOf(blk0), LineState::Valid);
}

TEST(TargetMachine, RmwTakesExclusiveOwnership)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            a.fetchAdd(p, 0, 1);
    });
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Dirty);
    EXPECT_EQ(h.machine->stats().writeMisses, 1u);
    EXPECT_EQ(a.raw(0), 1u);
}

TEST(TargetMachine, SequentialConsistencySingleLocation)
{
    // Two writers, one location: the final value is the later write, and
    // an interleaved reader can never observe a value that was not
    // written.
    MachineHarness h(MachineKind::Target, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 3);
    std::vector<std::uint64_t> seen;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            a.write(p, 0, 1);
        } else if (p.node() == 1) {
            p.compute(kAfter);
            a.write(p, 0, 2);
        } else if (p.node() == 2) {
            for (int i = 0; i < 10; ++i) {
                seen.push_back(a.read(p, 0));
                p.compute(kAfter / 5);
            }
        }
    });
    EXPECT_EQ(a.raw(0), 2u);
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_LE(seen[i - 1], seen[i]) << "reader saw values go back";
}

TEST(TargetMachine, InvalidationOfStaleSharerIsHarmless)
{
    // A clean (silently replaced) sharer stays in the directory; a later
    // write sends it a spurious invalidation that must be a no-op.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    const std::uint64_t stride = 64 * 1024 / 8;
    rt::SharedArray<std::uint64_t> a(h.heap, 3 * stride,
                                     rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            a.read(p, 0);          // Share block 0.
            a.read(p, stride);     // Fill the set ...
            a.read(p, 2 * stride); // ... and silently evict block 0.
        } else {
            p.compute(kAfter);
            a.write(p, 0, 1); // Spurious invalidation to node 0.
        }
    });
    EXPECT_EQ(h.machine->stats().invalidations, 1u);
    EXPECT_EQ(a.raw(0), 1u);
    EXPECT_EQ(h.target().directory().peek(mem::blockOf(a.addrOf(0)))->owner,
              1);
}

TEST(TargetMachine, ConfigurableCacheGeometry)
{
    // A 4 KB cache can only hold 128 blocks: streaming 256 distinct
    // blocks must evict, while the default 64 KB cache holds them all.
    rt::SharedHeap heap_small(2), heap_big(2);
    sim::EventQueue eq_small, eq_big;
    mach::TargetMachine small(eq_small, TopologyKind::Full, 2, heap_small,
                              {.bytes = 4 * 1024, .ways = 2});
    mach::TargetMachine big(eq_big, TopologyKind::Full, 2, heap_big, {});
    EXPECT_EQ(small.cache(0).sets() * small.cache(0).ways(), 128u);
    EXPECT_EQ(big.cache(0).sets() * big.cache(0).ways(), 2048u);
}

TEST(TargetMachine, SmallCacheEvictsWorkingSet)
{
    sim::EventQueue eq;
    rt::SharedHeap heap(2);
    mach::TargetMachine machine(eq, TopologyKind::Full, 2, heap,
                                {.bytes = 1024, .ways = 2});
    rt::Runtime runtime(eq, machine, 2);
    // 64 blocks stream through a 32-line cache, twice: the second pass
    // misses again (capacity), unlike the default geometry.
    rt::SharedArray<std::uint64_t> a(heap, 64 * 4,
                                     rt::Placement::OnNode, 0);
    runtime.spawn([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        for (int pass = 0; pass < 2; ++pass)
            for (std::size_t b = 0; b < 64; ++b)
                a.read(p, b * 4);
    });
    runtime.run();
    EXPECT_EQ(machine.stats().readMisses, 128u);
    EXPECT_EQ(machine.stats().cacheHits, 0u);
}

TEST(TargetMachine, TimingInvariantBusyLatencyContention)
{
    // Every tick of a processor's finish time is categorized.
    MachineHarness h(MachineKind::Target, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 256,
                                     rt::Placement::Interleaved);
    h.run([&](rt::Proc &p) {
        for (std::size_t i = 0; i < 64; ++i) {
            a.fetchAdd(p, (i * 7 + p.node() * 13) % 256, 1);
            p.compute(11);
        }
    });
    for (std::uint32_t n = 0; n < 4; ++n) {
        const auto &s = h.runtime->proc(n).stats();
        EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention)
            << "proc " << n;
    }
}

} // namespace
