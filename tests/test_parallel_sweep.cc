/**
 * @file
 * Tests for the parallel sweep engine: core::runManySafe and
 * core::sweepFigureParallel.  The headline guarantee under test is
 * determinism — any --jobs value must produce byte-identical figure
 * JSON and journal contents to the serial sweep, and journal resume
 * must compose with parallel execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/figures.hh"

namespace {

using namespace absim;

core::RunConfig
smallConfig(std::uint32_t procs)
{
    core::RunConfig config;
    config.app = "is";
    config.params.n = 512;
    config.procs = procs;
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
jsonFor(const core::SweepResult &result)
{
    std::ostringstream os;
    core::writeFigureJson(os, result);
    return os.str();
}

TEST(RunManySafe, ParallelResultsMatchSerialInConfigOrder)
{
    std::vector<core::RunConfig> configs;
    for (const std::uint32_t p : {1u, 2u, 4u, 1u, 2u, 4u})
        configs.push_back(smallConfig(p));
    configs[3].machine = mach::MachineKind::LogP;
    configs[4].machine = mach::MachineKind::LogPC;

    const auto serial = core::runManySafe(configs, {}, 1);
    const auto parallel = core::runManySafe(configs, {}, 4);
    ASSERT_EQ(serial.size(), configs.size());
    ASSERT_EQ(parallel.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ASSERT_TRUE(serial[i].ok()) << i;
        ASSERT_TRUE(parallel[i].ok()) << i;
        EXPECT_EQ(serial[i].value().execTime(),
                  parallel[i].value().execTime())
            << i;
        EXPECT_EQ(serial[i].value().machine.messages,
                  parallel[i].value().machine.messages)
            << i;
    }
}

TEST(RunManySafe, CallbackFiresExactlyOncePerIndexSerialized)
{
    std::vector<core::RunConfig> configs;
    for (const std::uint32_t p : {1u, 2u, 4u, 8u})
        configs.push_back(smallConfig(p));

    std::set<std::size_t> seen;
    std::atomic<int> in_callback{0};
    const auto results = core::runManySafe(
        configs, {}, 4, [&](std::size_t i, const core::RunResult &run) {
            // The callback contract: serialized under a mutex.
            EXPECT_EQ(in_callback.fetch_add(1), 0);
            EXPECT_TRUE(run.ok());
            EXPECT_TRUE(seen.insert(i).second) << "duplicate " << i;
            in_callback.fetch_sub(1);
        });
    EXPECT_EQ(results.size(), configs.size());
    EXPECT_EQ(seen.size(), configs.size());
}

TEST(RunManySafe, JobsZeroRunsSerially)
{
    const auto results =
        core::runManySafe({smallConfig(2)}, {}, 0);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok());
}

TEST(ParallelSweep, ByteIdenticalJsonAndJournalAcrossJobCounts)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> procs{1, 2, 4, 8};

    core::SweepOptions serial_options;
    serial_options.jobs = 1;
    serial_options.journalPath =
        testing::TempDir() + "parallel_sweep_serial.journal.jsonl";
    std::remove(serial_options.journalPath.c_str());
    const auto serial = core::sweepFigureSafe(
        "determinism", base, net::TopologyKind::Full,
        core::Metric::ExecTime, procs, serial_options);

    core::SweepOptions parallel_options;
    parallel_options.jobs = 8;
    parallel_options.journalPath =
        testing::TempDir() + "parallel_sweep_jobs8.journal.jsonl";
    std::remove(parallel_options.journalPath.c_str());
    const auto parallel = core::sweepFigureParallel(
        "determinism", base, net::TopologyKind::Full,
        core::Metric::ExecTime, procs, parallel_options);

    ASSERT_TRUE(serial.complete());
    ASSERT_TRUE(parallel.complete());
    EXPECT_EQ(jsonFor(serial), jsonFor(parallel));
    const std::string serial_journal = slurp(serial_options.journalPath);
    EXPECT_FALSE(serial_journal.empty());
    EXPECT_EQ(serial_journal, slurp(parallel_options.journalPath));
}

TEST(ParallelSweep, JournalResumeComposesWithParallelExecution)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> all{1, 2, 4, 8};

    // Reference: one uninterrupted serial sweep.
    core::SweepOptions reference_options;
    reference_options.journalPath =
        testing::TempDir() + "parallel_resume_reference.journal.jsonl";
    std::remove(reference_options.journalPath.c_str());
    const auto reference = core::sweepFigureSafe(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        all, reference_options);

    // Interrupted run: the first two points land in the journal...
    core::SweepOptions resumed_options;
    resumed_options.journalPath =
        testing::TempDir() + "parallel_resume.journal.jsonl";
    std::remove(resumed_options.journalPath.c_str());
    (void)core::sweepFigureSafe("resume", base, net::TopologyKind::Full,
                                core::Metric::ExecTime, {1, 2},
                                resumed_options);

    // ...and a parallel re-run completes the rest from the checkpoint.
    resumed_options.jobs = 8;
    const auto resumed = core::sweepFigureParallel(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        all, resumed_options);

    ASSERT_TRUE(reference.complete());
    ASSERT_TRUE(resumed.complete());
    EXPECT_EQ(jsonFor(reference), jsonFor(resumed));
    EXPECT_EQ(slurp(reference_options.journalPath),
              slurp(resumed_options.journalPath));
}

} // namespace
