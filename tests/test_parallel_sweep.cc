/**
 * @file
 * Tests for the parallel sweep engine: core::runManySafe and
 * core::sweepFigureParallel.  The headline guarantee under test is
 * determinism — any --jobs value must produce byte-identical figure
 * JSON and journal contents to the serial sweep, and journal resume
 * must compose with parallel execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/figures.hh"
#include "core/journal_merge.hh"

namespace {

using namespace absim;

core::RunConfig
smallConfig(std::uint32_t procs)
{
    core::RunConfig config;
    config.app = "is";
    config.params.n = 512;
    config.procs = procs;
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
jsonFor(const core::SweepResult &result)
{
    std::ostringstream os;
    core::writeFigureJson(os, result);
    return os.str();
}

TEST(RunManySafe, ParallelResultsMatchSerialInConfigOrder)
{
    std::vector<core::RunConfig> configs;
    for (const std::uint32_t p : {1u, 2u, 4u, 1u, 2u, 4u})
        configs.push_back(smallConfig(p));
    configs[3].machine = mach::MachineKind::LogP;
    configs[4].machine = mach::MachineKind::LogPC;

    const auto serial = core::runManySafe(configs, {}, 1);
    const auto parallel = core::runManySafe(configs, {}, 4);
    ASSERT_EQ(serial.size(), configs.size());
    ASSERT_EQ(parallel.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ASSERT_TRUE(serial[i].ok()) << i;
        ASSERT_TRUE(parallel[i].ok()) << i;
        EXPECT_EQ(serial[i].value().execTime(),
                  parallel[i].value().execTime())
            << i;
        EXPECT_EQ(serial[i].value().machine.messages,
                  parallel[i].value().machine.messages)
            << i;
    }
}

TEST(RunManySafe, CallbackFiresExactlyOncePerIndexSerialized)
{
    std::vector<core::RunConfig> configs;
    for (const std::uint32_t p : {1u, 2u, 4u, 8u})
        configs.push_back(smallConfig(p));

    std::set<std::size_t> seen;
    std::atomic<int> in_callback{0};
    const auto results = core::runManySafe(
        configs, {}, 4, [&](std::size_t i, const core::RunResult &run) {
            // The callback contract: serialized under a mutex.
            EXPECT_EQ(in_callback.fetch_add(1), 0);
            EXPECT_TRUE(run.ok());
            EXPECT_TRUE(seen.insert(i).second) << "duplicate " << i;
            in_callback.fetch_sub(1);
        });
    EXPECT_EQ(results.size(), configs.size());
    EXPECT_EQ(seen.size(), configs.size());
}

TEST(RunManySafe, JobsZeroRunsSerially)
{
    const auto results =
        core::runManySafe({smallConfig(2)}, {}, 0);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok());
}

TEST(ParallelSweep, ByteIdenticalJsonAndJournalAcrossJobCounts)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> procs{1, 2, 4, 8};

    core::SweepOptions serial_options;
    serial_options.jobs = 1;
    serial_options.journalPath =
        testing::TempDir() + "parallel_sweep_serial.journal.jsonl";
    std::remove(serial_options.journalPath.c_str());
    const auto serial = core::sweepFigureSafe(
        "determinism", base, net::TopologyKind::Full,
        core::Metric::ExecTime, procs, serial_options);

    core::SweepOptions parallel_options;
    parallel_options.jobs = 8;
    parallel_options.journalPath =
        testing::TempDir() + "parallel_sweep_jobs8.journal.jsonl";
    std::remove(parallel_options.journalPath.c_str());
    const auto parallel = core::sweepFigureParallel(
        "determinism", base, net::TopologyKind::Full,
        core::Metric::ExecTime, procs, parallel_options);

    ASSERT_TRUE(serial.complete());
    ASSERT_TRUE(parallel.complete());
    EXPECT_EQ(jsonFor(serial), jsonFor(parallel));
    const std::string serial_journal = slurp(serial_options.journalPath);
    EXPECT_FALSE(serial_journal.empty());
    EXPECT_EQ(serial_journal, slurp(parallel_options.journalPath));
}

TEST(ParallelSweep, JournalResumeComposesWithParallelExecution)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> all{1, 2, 4, 8};

    // Reference: one uninterrupted serial sweep.
    core::SweepOptions reference_options;
    reference_options.journalPath =
        testing::TempDir() + "parallel_resume_reference.journal.jsonl";
    std::remove(reference_options.journalPath.c_str());
    const auto reference = core::sweepFigureSafe(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        all, reference_options);

    // Interrupted run: the first two points land in the journal...
    core::SweepOptions resumed_options;
    resumed_options.journalPath =
        testing::TempDir() + "parallel_resume.journal.jsonl";
    std::remove(resumed_options.journalPath.c_str());
    (void)core::sweepFigureSafe("resume", base, net::TopologyKind::Full,
                                core::Metric::ExecTime, {1, 2},
                                resumed_options);

    // ...and a parallel re-run completes the rest from the checkpoint.
    resumed_options.jobs = 8;
    const auto resumed = core::sweepFigureParallel(
        "resume", base, net::TopologyKind::Full, core::Metric::ExecTime,
        all, resumed_options);

    ASSERT_TRUE(reference.complete());
    ASSERT_TRUE(resumed.complete());
    EXPECT_EQ(jsonFor(reference), jsonFor(resumed));
    EXPECT_EQ(slurp(reference_options.journalPath),
              slurp(resumed_options.journalPath));
}

// ---- Sharded sweeps ----------------------------------------------------

namespace {

/** Run shard K/N of the sweep into its own journal; returns the path. */
std::string
runShard(const std::string &tag, const core::RunConfig &base,
         const std::vector<std::uint32_t> &procs, std::uint32_t index,
         std::uint32_t count, const core::RunPolicy &policy = {})
{
    core::SweepOptions options;
    options.policy = policy;
    options.shard = {index, count};
    options.journalPath = testing::TempDir() + tag + ".shard" +
                          std::to_string(index) + "of" +
                          std::to_string(count) + ".journal.jsonl";
    std::remove(options.journalPath.c_str());
    (void)core::sweepFigureParallel(tag, base, net::TopologyKind::Full,
                                    core::Metric::ExecTime, procs,
                                    options);
    return options.journalPath;
}

/** Serial reference sweep journaling into <tag>.journal.jsonl. */
core::SweepResult
runSerial(const std::string &tag, const core::RunConfig &base,
          const std::vector<std::uint32_t> &procs, std::string &path,
          const core::RunPolicy &policy = {})
{
    core::SweepOptions options;
    options.policy = policy;
    options.journalPath = testing::TempDir() + tag + ".journal.jsonl";
    std::remove(options.journalPath.c_str());
    path = options.journalPath;
    return core::sweepFigureParallel(tag, base, net::TopologyKind::Full,
                                     core::Metric::ExecTime, procs,
                                     options);
}

} // namespace

TEST(ShardedSweep, TwoShardsMergeByteIdenticalToSerial)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> procs{1, 2, 4, 8};

    std::string serial_path;
    const auto serial =
        runSerial("sharded", base, procs, serial_path);
    ASSERT_TRUE(serial.complete());

    const std::string s0 = runShard("sharded", base, procs, 0, 2);
    const std::string s1 = runShard("sharded", base, procs, 1, 2);

    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    const std::string merged_path =
        testing::TempDir() + "sharded_merged.journal.jsonl";
    ASSERT_TRUE(core::writeMergedJournal(merged_path, merge));
    EXPECT_EQ(slurp(merged_path), slurp(serial_path));

    // Replaying the merged journal reproduces the serial run end to
    // end: every point comes from the journal, and the figure JSON —
    // the artifact the figure writers emit — is byte-identical.
    core::SweepOptions replay_options;
    replay_options.journalPath = merged_path;
    const auto replayed = core::sweepFigureParallel(
        "sharded", base, net::TopologyKind::Full, core::Metric::ExecTime,
        procs, replay_options);
    ASSERT_TRUE(replayed.complete());
    EXPECT_EQ(jsonFor(serial), jsonFor(replayed));
    EXPECT_EQ(slurp(merged_path), slurp(serial_path));
}

TEST(ShardedSweep, ShardResumeComposesWithMerge)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> procs{1, 2, 4, 8};

    std::string serial_path;
    const auto serial =
        runSerial("shard_resume", base, procs, serial_path);
    ASSERT_TRUE(serial.complete());

    // Shard 0 is interrupted twice: first it only sees a truncated
    // proc list (fewer owned items), then its journal tail is torn.
    const std::string s0_partial =
        runShard("shard_resume", base, {1, 2}, 0, 2);
    {
        std::string bytes = slurp(s0_partial);
        ASSERT_GT(bytes.size(), 5u);
        std::ofstream out(s0_partial,
                          std::ios::trunc | std::ios::binary);
        out << bytes.substr(0, bytes.size() - 5);
    }
    const std::string s0 = runShard("shard_resume", base, procs, 0, 2);
    ASSERT_EQ(s0, s0_partial);
    const std::string s1 = runShard("shard_resume", base, procs, 1, 2);

    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    const std::string merged_path =
        testing::TempDir() + "shard_resume_merged.journal.jsonl";
    ASSERT_TRUE(core::writeMergedJournal(merged_path, merge));
    EXPECT_EQ(slurp(merged_path), slurp(serial_path));
}

TEST(ShardedSweep, MergeReproducesSerialFailureRecords)
{
    const core::RunConfig base = smallConfig(1);
    const std::vector<std::uint32_t> procs{1, 2, 4};

    // A tiny event budget fails the big points the same way in the
    // serial run and in every shard (the budget is per run).
    core::RunPolicy policy;
    policy.budget.maxEvents = 300;
    policy.maxAttempts = 1;

    std::string serial_path;
    const auto serial =
        runSerial("shard_fail", base, procs, serial_path, policy);
    ASSERT_FALSE(serial.complete());

    const std::string s0 =
        runShard("shard_fail", base, procs, 0, 2, policy);
    const std::string s1 =
        runShard("shard_fail", base, procs, 1, 2, policy);

    const core::MergeResult merge = core::mergeJournals({s0, s1});
    ASSERT_TRUE(merge.ok()) << (merge.errors.empty()
                                    ? ""
                                    : merge.errors[0]);
    const std::string merged_path =
        testing::TempDir() + "shard_fail_merged.journal.jsonl";
    ASSERT_TRUE(core::writeMergedJournal(merged_path, merge));
    EXPECT_EQ(slurp(merged_path), slurp(serial_path));
}

TEST(ShardedSweep, InvalidShardSpecThrows)
{
    core::SweepOptions options;
    options.shard = {2, 2};
    EXPECT_THROW((void)core::sweepFigureParallel(
                     "bad", smallConfig(1), net::TopologyKind::Full,
                     core::Metric::ExecTime, {1}, options),
                 std::invalid_argument);
}

} // namespace
