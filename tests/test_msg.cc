/**
 * @file
 * Tests for the message-passing substrate: transports, blocking
 * send/recv semantics, FIFO channels, typed helpers, and the
 * wait-bucket accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "machines/null_machine.hh"
#include "msg/msg_world.hh"
#include "runtime/shared.hh"

namespace {

using namespace absim;

/** Message-passing fixture: null machine + transport + world. */
struct MsgHarness
{
    MsgHarness(std::uint32_t nodes, bool logp,
               net::TopologyKind topo = net::TopologyKind::Full)
        : heap(nodes), machine(nodes, heap)
    {
        if (logp)
            transport =
                std::make_unique<msg::LogPTransport>(eq, topo, nodes);
        else
            transport = std::make_unique<msg::DetailedTransport>(eq, topo,
                                                                 nodes);
        world = std::make_unique<msg::MsgWorld>(eq, *transport, nodes);
        runtime = std::make_unique<rt::Runtime>(eq, machine, nodes);
    }

    void
    run(std::function<void(rt::Proc &)> body)
    {
        runtime->spawn(std::move(body));
        runtime->run();
    }

    sim::EventQueue eq;
    rt::SharedHeap heap;
    mach::NullMachine machine;
    std::unique_ptr<msg::Transport> transport;
    std::unique_ptr<msg::MsgWorld> world;
    std::unique_ptr<rt::Runtime> runtime;
};

TEST(MsgWorld, ValueRoundTrip)
{
    for (const bool logp : {false, true}) {
        MsgHarness h(2, logp);
        std::uint64_t got = 0;
        h.run([&](rt::Proc &p) {
            if (p.node() == 0)
                h.world->sendValue<std::uint64_t>(p, 1, 7, 0xDEADBEEF);
            else
                got = h.world->recvValue<std::uint64_t>(p, 0, 7);
        });
        EXPECT_EQ(got, 0xDEADBEEFu) << (logp ? "logp" : "detailed");
        EXPECT_EQ(h.world->messagesSent(), 1u);
    }
}

TEST(MsgWorld, DetailedSenderBlockedForFullTransfer)
{
    MsgHarness h(2, false);
    sim::Tick sender_done = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            std::uint8_t data[32] = {};
            h.world->send(p, 1, 0, data, 32);
            sender_done = p.localTime();
        } else {
            h.world->recv(p, 0, 0);
        }
    });
    EXPECT_EQ(sender_done, 1600u); // 32 B at 20 MB/s.
    const auto &s = h.runtime->proc(0).stats();
    EXPECT_EQ(s.latency, 1600u);
    EXPECT_EQ(s.wait, 0u);
}

TEST(MsgWorld, LogPSenderFreedAtSendSlot)
{
    MsgHarness h(2, true);
    sim::Tick sender_done = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            std::uint8_t data[32] = {};
            h.world->send(p, 1, 0, data, 32);
            sender_done = p.localTime();
        } else {
            h.world->recv(p, 0, 0);
        }
    });
    // First message: no gate wait, o = 0: the sender continues at once
    // while the message is in flight for L.
    EXPECT_EQ(sender_done, 0u);
    // The blocked receiver absorbs the flight time as latency.
    EXPECT_EQ(h.runtime->proc(1).stats().latency, 1600u);
}

TEST(MsgWorld, ReceiverWaitsForLateSender)
{
    MsgHarness h(2, false);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            p.compute(10000); // 300 us of work before sending.
            std::uint8_t data[8] = {};
            h.world->send(p, 1, 3, data, 8);
        } else {
            h.world->recv(p, 0, 3);
        }
    });
    const auto &receiver = h.runtime->proc(1).stats();
    // Receiver idled for the sender's compute; detailed-transport
    // delivery charges no latency to the receiver.
    EXPECT_EQ(receiver.wait, sim::cycles(10000) + 400);
    EXPECT_EQ(receiver.finishTime,
              receiver.busy + receiver.latency + receiver.contention +
                  receiver.wait);
}

TEST(MsgWorld, EarlyMessageCostsReceiverNothing)
{
    MsgHarness h(2, false);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            std::uint8_t data[8] = {};
            h.world->send(p, 1, 3, data, 8);
        } else {
            p.compute(100000); // Message long since delivered.
            h.world->recv(p, 0, 3);
        }
    });
    const auto &receiver = h.runtime->proc(1).stats();
    EXPECT_EQ(receiver.wait, 0u);
    EXPECT_EQ(receiver.latency, 0u);
}

TEST(MsgWorld, ChannelsAreFifoAndTagSeparated)
{
    MsgHarness h(2, false);
    std::vector<std::uint64_t> got;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            h.world->sendValue<std::uint64_t>(p, 1, /*tag=*/1, 10);
            h.world->sendValue<std::uint64_t>(p, 1, /*tag=*/2, 99);
            h.world->sendValue<std::uint64_t>(p, 1, /*tag=*/1, 11);
            h.world->sendValue<std::uint64_t>(p, 1, /*tag=*/1, 12);
        } else {
            got.push_back(h.world->recvValue<std::uint64_t>(p, 0, 1));
            got.push_back(h.world->recvValue<std::uint64_t>(p, 0, 1));
            got.push_back(h.world->recvValue<std::uint64_t>(p, 0, 1));
            got.push_back(h.world->recvValue<std::uint64_t>(p, 0, 2));
        }
    });
    EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 11, 12, 99}));
}

TEST(MsgWorld, RingPassesTokenAroundAllNodes)
{
    for (const bool logp : {false, true}) {
        MsgHarness h(8, logp, net::TopologyKind::Hypercube);
        std::uint64_t final_token = 0;
        h.run([&](rt::Proc &p) {
            const std::uint32_t n = p.procs();
            const net::NodeId next = (p.node() + 1) % n;
            const net::NodeId prev = (p.node() + n - 1) % n;
            if (p.node() == 0) {
                h.world->sendValue<std::uint64_t>(p, next, 0, 1);
                final_token =
                    h.world->recvValue<std::uint64_t>(p, prev, 0);
            } else {
                const auto token =
                    h.world->recvValue<std::uint64_t>(p, prev, 0);
                h.world->sendValue<std::uint64_t>(p, next, 0, token + 1);
            }
        });
        EXPECT_EQ(final_token, 8u);
        EXPECT_EQ(h.world->messagesSent(), 8u);
    }
}

TEST(MsgWorld, AccountingInvariantAcrossBusyTraffic)
{
    MsgHarness h(4, true, net::TopologyKind::Mesh2D);
    h.run([&](rt::Proc &p) {
        // All-to-all exchange rounds with skewed compute.
        for (int round = 0; round < 5; ++round) {
            p.compute(100 * (p.node() + 1));
            for (std::uint32_t d = 0; d < 4; ++d) {
                if (d == p.node())
                    continue;
                h.world->sendValue<std::uint32_t>(
                    p, d, static_cast<msg::Tag>(round),
                    p.node() * 100 + d);
            }
            for (std::uint32_t s = 0; s < 4; ++s) {
                if (s == p.node())
                    continue;
                const auto v = h.world->recvValue<std::uint32_t>(
                    p, s, static_cast<msg::Tag>(round));
                EXPECT_EQ(v, s * 100 + p.node());
            }
        }
    });
    for (std::uint32_t n = 0; n < 4; ++n) {
        const auto &s = h.runtime->proc(n).stats();
        EXPECT_EQ(s.finishTime,
                  s.busy + s.latency + s.contention + s.wait)
            << "proc " << n;
    }
}

TEST(NullMachine, RejectsSharedMemoryAccess)
{
    MsgHarness h(2, false);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 0);
    EXPECT_THROW(h.run([&](rt::Proc &p) { a.read(p, 0); }),
                 std::logic_error);
}

} // namespace
