/**
 * @file
 * Scripted scenarios for the LogP and LogP+C machines: local vs remote
 * reference costs, the ideal-cache semantics (free coherence, charged
 * true communication), and the paper's canonical upgrade example.
 */

#include <gtest/gtest.h>

#include "machine_fixture.hh"
#include "mem/addr.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using mem::LineState;
using net::TopologyKind;

constexpr std::uint64_t kAfter = 1'000'000;

TEST(LogPMachine, LocalReferencesNeverTouchTheNetwork)
{
    MachineHarness h(MachineKind::LogP, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 8, rt::Placement::OnNode, 0);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        for (std::size_t i = 0; i < 8; ++i)
            a.read(p, i);
    });
    EXPECT_EQ(h.machine->stats().messages, 0u);
    EXPECT_EQ(h.machine->stats().localMem, 8u);
    EXPECT_EQ(h.runtime->proc(0).stats().busy,
              8 * mach::kLocalMemNs);
}

TEST(LogPMachine, EveryRemoteReferenceIsARoundTrip)
{
    // No cache: 8 reads of the same remote word are 8 round trips —
    // the paper's NUMA (Butterfly GP-1000) behaviour.
    MachineHarness h(MachineKind::LogP, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 8, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        for (int i = 0; i < 8; ++i)
            a.read(p, 0);
    });
    EXPECT_EQ(h.machine->stats().messages, 16u);
    EXPECT_EQ(h.machine->stats().networkAccesses, 8u);
    // Latency is 2L per reference regardless of message size.
    EXPECT_EQ(h.runtime->proc(0).stats().latency, 8 * 3200u);
}

TEST(LogPMachine, RoundTripGatedBySinglePolicy)
{
    // Full network at P=2: g = 1600.  Reply send waits g after the
    // receive at the same node.
    MachineHarness h(MachineKind::LogP, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            a.read(p, 0);
    });
    const auto &s = h.runtime->proc(0).stats();
    EXPECT_EQ(s.latency, 3200u);
    EXPECT_EQ(s.contention, 1600u); // g between recv and reply send.
}

TEST(LogPMachine, PerDirectionPolicyRemovesReplyGate)
{
    MachineHarness h(MachineKind::LogP, TopologyKind::Full, 2,
                     logp::GapPolicy::PerDirection);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            a.read(p, 0);
    });
    EXPECT_EQ(h.runtime->proc(0).stats().contention, 0u);
}

TEST(LogPCMachine, CacheHitsAfterFirstMiss)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 8, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        for (int i = 0; i < 8; ++i)
            a.read(p, 0); // 1 miss + 7 hits.
        for (std::size_t i = 1; i < 4; ++i)
            a.read(p, i); // Same block: hits (spatial locality).
    });
    EXPECT_EQ(h.machine->stats().messages, 2u);
    EXPECT_EQ(h.machine->stats().cacheHits, 10u);
    EXPECT_EQ(h.machine->stats().readMisses, 1u);
}

TEST(LogPCMachine, PaperUpgradeExampleNoNetworkAccess)
{
    // Section 3.2's example: a block valid in two caches; one processor
    // writes.  Target sends invalidations; LogP+C performs the same
    // state change with NO network access.  A read by the other
    // processor afterwards is a network access on both.
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    std::uint64_t msgs_after_write = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() <= 1) {
            a.read(p, 0); // Both cache the block.
            if (p.node() == 0) {
                p.compute(kAfter);
                a.write(p, 0, 3); // Upgrade: free and instantaneous.
                msgs_after_write = h.machine->stats().messages;
            } else {
                p.compute(2 * kAfter);
                EXPECT_EQ(a.read(p, 0), 3u); // Re-fetch from owner.
            }
        }
    });
    // Two read misses to home 2, then node 1's re-fetch from owner 0:
    // the upgrade added nothing.
    EXPECT_EQ(msgs_after_write, 4u);
    EXPECT_EQ(h.machine->stats().messages, 6u);
    EXPECT_EQ(h.machine->stats().upgrades, 1u);
    EXPECT_EQ(h.machine->stats().invalidations, 1u);
    // Berkeley transitions maintained: owner degraded to SharedDirty.
    EXPECT_EQ(h.logpc().cache(0).stateOf(blk), LineState::SharedDirty);
    EXPECT_EQ(h.logpc().cache(1).stateOf(blk), LineState::Valid);
}

TEST(LogPCMachine, LocalMissCostsLocalMemoryOnly)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 0);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            a.read(p, 0);
    });
    EXPECT_EQ(h.machine->stats().messages, 0u);
    EXPECT_EQ(h.machine->stats().localMem, 1u);
    EXPECT_EQ(h.runtime->proc(0).stats().latency, 0u);
}

TEST(LogPCMachine, RemoteDirtyFetchIsChargedEvenFromHomeNode)
{
    // True communication must cost even in the ideal model: the home
    // node's own miss goes to the remote owner.
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 0);
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 11); // Remote write miss; node 1 owns dirty.
        } else {
            p.compute(kAfter);
            EXPECT_EQ(a.read(p, 0), 11u); // Home must fetch from owner.
        }
    });
    // Write miss round trip (2) + owner fetch round trip (2).
    EXPECT_EQ(h.machine->stats().messages, 4u);
    EXPECT_EQ(h.runtime->proc(0).stats().latency, 3200u);
}

TEST(LogPCMachine, WritebacksAreFreeAndSilent)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    const std::uint64_t stride = 64 * 1024 / 8;
    rt::SharedArray<std::uint64_t> a(h.heap, 3 * stride,
                                     rt::Placement::OnNode, 1);
    std::uint64_t msgs_before_refetch = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        a.write(p, 0, 1);
        a.write(p, stride, 2);
        a.write(p, 2 * stride, 3); // Evicts dirty block 0 for free.
        msgs_before_refetch = h.machine->stats().messages;
        EXPECT_EQ(a.read(p, 0), 1u); // Data teleported home.
    });
    EXPECT_EQ(msgs_before_refetch, 6u); // 3 write-miss round trips.
    EXPECT_EQ(h.machine->stats().messages, 8u); // + re-read round trip.
    EXPECT_EQ(h.machine->stats().writebacks, 0u);
}

TEST(LogPCMachine, TimingInvariantHolds)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Hypercube, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 128,
                                     rt::Placement::Interleaved);
    h.run([&](rt::Proc &p) {
        for (std::size_t i = 0; i < 48; ++i) {
            a.fetchAdd(p, (i * 5 + p.node()) % 128, 1);
            p.compute(7);
        }
    });
    for (std::uint32_t n = 0; n < 4; ++n) {
        const auto &s = h.runtime->proc(n).stats();
        EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention);
    }
}

TEST(LogPMachine, TimingInvariantHolds)
{
    MachineHarness h(MachineKind::LogP, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 64,
                                     rt::Placement::Interleaved);
    h.run([&](rt::Proc &p) {
        for (std::size_t i = 0; i < 32; ++i) {
            a.write(p, (i + p.node() * 3) % 64, i);
            p.compute(5);
        }
    });
    for (std::uint32_t n = 0; n < 4; ++n) {
        const auto &s = h.runtime->proc(n).stats();
        EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention);
    }
}

} // namespace
