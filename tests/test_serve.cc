/**
 * @file
 * Tests for the serve subsystem outside the chaos suite: the line-JSON
 * protocol parser, the journal-backed result cache's crash recovery,
 * and the service's steady-state behavior — caching, byte-identical
 * replay, admission bookkeeping, drain semantics and sweeps.
 *
 * Failure-branch coverage that wedges fibers (chaos plans, deadlines)
 * lives in test_serve_chaos.cc, in the leak-check-exempt binary.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cache_key.hh"
#include "core/journal.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/service.hh"
#include "sim/trace.hh"

namespace {

using namespace absim;

// ---------------------------------------------------------------------
// Protocol parsing.

TEST(ServeProtocol, ParsesFlatJsonFieldsOfEveryType)
{
    std::vector<serve::JsonField> fields;
    ASSERT_TRUE(serve::parseFlatJson(
        "{\"s\":\"a\\\"b\",\"n\":-1.5e3,\"t\":true,\"e\":\"\"}", fields));
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0].key, "s");
    EXPECT_EQ(fields[0].value, "a\"b");
    EXPECT_TRUE(fields[0].isString);
    EXPECT_EQ(fields[1].value, "-1.5e3");
    EXPECT_FALSE(fields[1].isString);
    EXPECT_EQ(fields[2].value, "true");
    EXPECT_EQ(fields[3].value, "");
}

TEST(ServeProtocol, RejectsTornNestedAndTrailingGarbage)
{
    std::vector<serve::JsonField> fields;
    EXPECT_FALSE(serve::parseFlatJson("", fields));
    EXPECT_FALSE(serve::parseFlatJson("{\"a\":1", fields));
    EXPECT_FALSE(serve::parseFlatJson("{\"a\":\"tor", fields));
    EXPECT_FALSE(serve::parseFlatJson("{\"a\":{\"b\":1}}", fields));
    EXPECT_FALSE(serve::parseFlatJson("{\"a\":[1]}", fields));
    EXPECT_FALSE(serve::parseFlatJson("{\"a\":1}x", fields));
    EXPECT_TRUE(serve::parseFlatJson("{}", fields));
    EXPECT_TRUE(fields.empty());
}

TEST(ServeProtocol, RequestDiagnosticsNameTheOffendingField)
{
    serve::Request request;
    std::string error;
    const core::RunPolicy defaults;

    EXPECT_FALSE(serve::parseRequest("{\"op\":\"fly\"}", defaults,
                                     request, error));
    EXPECT_NE(error.find("unknown op 'fly'"), std::string::npos) << error;

    EXPECT_FALSE(serve::parseRequest(
        "{\"op\":\"run\",\"app\":\"barnes\"}", defaults, request, error));
    EXPECT_NE(error.find("unknown app 'barnes'"), std::string::npos)
        << error;

    EXPECT_FALSE(serve::parseRequest(
        "{\"op\":\"run\",\"machine\":\"cray\"}", defaults, request,
        error));
    EXPECT_NE(error.find("unknown machine 'cray'"), std::string::npos)
        << error;

    EXPECT_FALSE(serve::parseRequest(
        "{\"op\":\"run\",\"procs\":\"many\"}", defaults, request, error));
    EXPECT_NE(error.find("procs"), std::string::npos) << error;

    EXPECT_FALSE(serve::parseRequest(
        "{\"op\":\"run\",\"fault_plan\":\"explode@9\"}", defaults,
        request, error));
    EXPECT_NE(error.find("fault_plan"), std::string::npos) << error;

    EXPECT_FALSE(serve::parseRequest(
        "{\"op\":\"run\",\"trace\":\"everything\"}", defaults, request,
        error));
    EXPECT_NE(error.find("trace"), std::string::npos) << error;
}

TEST(ServeProtocol, RequestFieldsOverrideServiceDefaults)
{
    core::RunPolicy defaults;
    defaults.budget.maxWallSeconds = 30.0;
    defaults.maxAttempts = 1;

    serve::Request request;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(
        "{\"op\":\"run\",\"app\":\"ep\",\"deadline_s\":2.5,"
        "\"retries\":3,\"backoff_ms\":10,\"seed\":99,"
        "\"trace\":\"logp,runtime\"}",
        defaults, request, error))
        << error;
    EXPECT_EQ(request.policy.budget.maxWallSeconds, 2.5);
    EXPECT_EQ(request.policy.maxAttempts, 3);
    EXPECT_EQ(request.policy.retryBackoffMs, 10u);
    EXPECT_EQ(request.config.params.seed, 99u);
    EXPECT_EQ(request.policy.traceMask,
              static_cast<std::uint32_t>(sim::TraceCategory::LogP) |
                  static_cast<std::uint32_t>(sim::TraceCategory::Runtime));

    // Untouched fields keep the service defaults.
    ASSERT_TRUE(serve::parseRequest("{\"op\":\"run\",\"app\":\"ep\"}",
                                    defaults, request, error));
    EXPECT_EQ(request.policy.budget.maxWallSeconds, 30.0);
    EXPECT_EQ(request.policy.maxAttempts, 1);
}

TEST(ServeProtocol, ExtractNumberFindsFieldsInPayloads)
{
    const std::string payload =
        "{\"status\":\"ok\",\"exec_time\":1290.43,\"latency\":432.8}";
    double value = 0.0;
    ASSERT_TRUE(serve::extractNumber(payload, "latency", value));
    EXPECT_EQ(value, 432.8);
    EXPECT_FALSE(serve::extractNumber(payload, "contention", value));
}

TEST(ServeProtocol, HostileTraceExcerptStaysValidLineJson)
{
    // A captured sim-trace excerpt is attacker-shaped data as far as
    // the wire format is concerned: trace lines carry quotes around
    // process names, backslashes in paths, embedded newlines between
    // events, and (on a corrupted run) arbitrary control bytes.  Every
    // embedding site must route it through core::jsonEscape; this pins
    // the error-response site with the worst excerpt we can build.
    const std::string hostile =
        "[12] \"worker-3\" send p0 -> p1 via C:\\mesh\\link\n"
        "[15] recv {\"torn\":true}\r\n"
        "\ttail with controls: \x01\x1f and a lone \\";
    const std::string resp =
        serve::errorResponse("run", "Deadlock", hostile, 2, hostile);

    // One line on the wire: no raw newline or control byte survives.
    for (const unsigned char c : resp)
        EXPECT_GE(c, 0x20u) << "raw control byte in response";

    // The line must parse in the daemon's own dialect and round-trip
    // the excerpt byte-exactly through the unescaper.
    std::vector<serve::JsonField> fields;
    ASSERT_TRUE(serve::parseFlatJson(resp, fields));
    std::string message;
    std::string trace;
    for (const serve::JsonField &f : fields) {
        if (f.key == "message")
            message = f.value;
        if (f.key == "trace")
            trace = f.value;
    }
    EXPECT_EQ(message, hostile);
    EXPECT_EQ(trace, hostile);

    // Same property for the journal failure record that persists the
    // excerpt (the other embedding site the wire shares its dialect
    // with).
    core::JournalRecord failure;
    failure.procs = 8;
    failure.failed = true;
    failure.machine = "target";
    failure.error = "Deadlock";
    failure.message = hostile;
    failure.trace = hostile;
    const std::string line = core::encodeRecord(failure);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    core::JournalRecord out;
    ASSERT_TRUE(core::decodeRecord(line, out));
    EXPECT_EQ(out.message, hostile);
    EXPECT_EQ(out.trace, hostile);
}

// ---------------------------------------------------------------------
// Result cache durability.

TEST(ServeCache, PersistsEntriesAcrossReopen)
{
    const std::string path = testing::TempDir() + "absim_cache.jsonl";
    std::remove(path.c_str());
    {
        serve::ResultCache cache;
        ASSERT_TRUE(cache.open(path));
        cache.insert(core::fnv1a64("canon-a"), "canon-a", "payload-a");
        cache.insert(core::fnv1a64("canon-b"), "canon-b", "payload-b");
        cache.close();
    }
    serve::ResultCache cache;
    ASSERT_TRUE(cache.open(path));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.recoveredEntries(), 2u);
    EXPECT_FALSE(cache.recoveredTornTail());
    std::string payload;
    ASSERT_TRUE(cache.lookup(core::fnv1a64("canon-a"), payload));
    EXPECT_EQ(payload, "payload-a");
}

TEST(ServeCache, TornTailIsDroppedAndTruncatedOnReopen)
{
    const std::string path = testing::TempDir() + "absim_cache_torn.jsonl";
    std::remove(path.c_str());
    {
        serve::ResultCache cache;
        ASSERT_TRUE(cache.open(path));
        cache.insert(core::fnv1a64("intact"), "intact", "survives");
        cache.close();
    }
    {
        // kill -9 mid-append: an unterminated trailing record.
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"key\":\"0000000000000001\",\"canon\":\"half";
    }
    {
        serve::ResultCache cache;
        ASSERT_TRUE(cache.open(path));
        EXPECT_TRUE(cache.recoveredTornTail());
        EXPECT_EQ(cache.size(), 1u);
        std::string payload;
        ASSERT_TRUE(cache.lookup(core::fnv1a64("intact"), payload));
        EXPECT_EQ(payload, "survives");
        // Appending after recovery welds onto the clean prefix.
        cache.insert(core::fnv1a64("after"), "after", "appended");
        cache.close();
    }
    serve::ResultCache cache;
    ASSERT_TRUE(cache.open(path));
    EXPECT_FALSE(cache.recoveredTornTail());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeCache, RecordWhoseCanonMismatchesItsKeyIsATear)
{
    const std::string path = testing::TempDir() + "absim_cache_bad.jsonl";
    std::remove(path.c_str());
    {
        serve::ResultCache cache;
        ASSERT_TRUE(cache.open(path));
        cache.insert(core::fnv1a64("good"), "good", "kept");
        cache.close();
    }
    {
        // Corruption that still parses as JSON: key and canon disagree.
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"key\":\"00000000deadbeef\",\"canon\":\"drifted\","
               "\"payload\":\"poison\"}\n";
    }
    serve::ResultCache cache;
    ASSERT_TRUE(cache.open(path));
    EXPECT_TRUE(cache.recoveredTornTail());
    EXPECT_EQ(cache.size(), 1u);
    std::string payload;
    EXPECT_FALSE(cache.lookup(0x00000000deadbeefull, payload));
}

TEST(ServeCache, FirstWriteWinsOnDuplicateKeys)
{
    serve::ResultCache cache;
    (void)cache.open(""); // Memory-only.
    cache.insert(42, "canon", "first");
    cache.insert(42, "canon", "second");
    std::string payload;
    ASSERT_TRUE(cache.lookup(42, payload));
    EXPECT_EQ(payload, "first");
}

// ---------------------------------------------------------------------
// Service behavior (steady state).

serve::ServiceConfig
smallConfig()
{
    serve::ServiceConfig config;
    config.workers = 2;
    config.maxQueue = 4;
    return config;
}

TEST(ServeService, RepeatedRunIsAByteIdenticalCacheHit)
{
    serve::Service service(smallConfig());
    const std::string request = "{\"op\":\"run\",\"app\":\"is\","
                                "\"machine\":\"logpc\",\"procs\":4,"
                                "\"size\":256}";
    const std::string first = service.handle(request);
    ASSERT_NE(first.find("\"status\":\"ok\""), std::string::npos)
        << first;
    // Same run, aliased machine spelling and shuffled fields: exact
    // bytes back, no second simulation.
    const std::string second = service.handle(
        "{\"size\":256,\"procs\":4,\"machine\":\"logp+c\","
        "\"app\":\"is\",\"op\":\"run\"}");
    EXPECT_EQ(first, second);
    const serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
}

TEST(ServeService, CacheSurvivesRestartByteIdentical)
{
    const std::string path =
        testing::TempDir() + "absim_service_cache.jsonl";
    std::remove(path.c_str());
    const std::string request = "{\"op\":\"run\",\"app\":\"ep\","
                                "\"machine\":\"logpc\",\"procs\":2,"
                                "\"size\":128}";
    std::string first;
    {
        serve::ServiceConfig config = smallConfig();
        config.cachePath = path;
        serve::Service service(config);
        first = service.handle(request);
        ASSERT_NE(first.find("\"status\":\"ok\""), std::string::npos)
            << first;
        service.drain();
    }
    serve::ServiceConfig config = smallConfig();
    config.cachePath = path;
    serve::Service service(config);
    EXPECT_EQ(service.handle(request), first);
    EXPECT_EQ(service.stats().cacheHits, 1u);
    EXPECT_EQ(service.stats().cacheMisses, 0u);
}

TEST(ServeService, BadRequestsAreNamedNotFatal)
{
    serve::Service service(smallConfig());
    const std::string response = service.handle("{\"op\":\"run\"");
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(response.find("\"error\":\"bad-request\""),
              std::string::npos);
    EXPECT_EQ(service.stats().badRequests, 1u);
    // The service still works afterwards.
    EXPECT_NE(service.handle("{\"op\":\"ping\"}").find("\"op\":\"ping\""),
              std::string::npos);
}

TEST(ServeService, DrainRefusesNewComputeButServesHits)
{
    serve::Service service(smallConfig());
    const std::string request = "{\"op\":\"run\",\"app\":\"is\","
                                "\"machine\":\"logpc\",\"procs\":4,"
                                "\"size\":256}";
    const std::string cached = service.handle(request);
    const std::string drained = service.handle("{\"op\":\"drain\"}");
    EXPECT_NE(drained.find("\"draining\":true"), std::string::npos);
    EXPECT_TRUE(service.draining());

    // New compute: the draining response, immediately.
    const std::string refused = service.handle(
        "{\"op\":\"run\",\"app\":\"is\",\"machine\":\"logpc\","
        "\"procs\":8,\"size\":256}");
    EXPECT_NE(refused.find("\"status\":\"draining\""), std::string::npos);

    // A hit is a lookup, not work: still served, byte-identical.
    EXPECT_EQ(service.handle(request), cached);
    EXPECT_EQ(service.stats().rejectedDraining, 1u);
}

TEST(ServeService, ShutdownOpFlagsTheDaemonLoop)
{
    serve::Service service(smallConfig());
    EXPECT_FALSE(service.shutdownRequested());
    const std::string response = service.handle("{\"op\":\"shutdown\"}");
    EXPECT_NE(response.find("\"op\":\"shutdown\""), std::string::npos);
    EXPECT_TRUE(service.shutdownRequested());
    EXPECT_TRUE(service.draining());
}

TEST(ServeService, SweepReusesTheRunCacheAndReportsPoints)
{
    serve::Service service(smallConfig());
    // Warm one point via the run op ...
    const std::string run = service.handle(
        "{\"op\":\"run\",\"app\":\"is\",\"machine\":\"logpc\","
        "\"procs\":4,\"size\":256}");
    ASSERT_NE(run.find("\"status\":\"ok\""), std::string::npos) << run;
    // ... then sweep across it: the warmed point must be a hit.
    const std::string sweep = service.handle(
        "{\"op\":\"sweep\",\"app\":\"is\",\"machine\":\"logpc\","
        "\"size\":256,\"max_procs\":8}");
    EXPECT_NE(sweep.find("\"op\":\"sweep\""), std::string::npos);
    EXPECT_NE(sweep.find("\"complete\":true"), std::string::npos);
    EXPECT_NE(sweep.find("\"procs\":8"), std::string::npos);
    EXPECT_NE(sweep.find("\"failures\":[]"), std::string::npos);
    EXPECT_GE(service.stats().cacheHits, 1u);

    // A second sweep is pure cache replay: byte-identical.
    EXPECT_EQ(service.handle(
                  "{\"op\":\"sweep\",\"app\":\"is\","
                  "\"machine\":\"logpc\",\"size\":256,\"max_procs\":8}"),
              sweep);
}

TEST(ServeService, StatsResponseCountsEveryOutcomeClass)
{
    serve::Service service(smallConfig());
    (void)service.handle("{\"op\":\"ping\"}");
    (void)service.handle("not json");
    const std::string stats = service.handle("{\"op\":\"stats\"}");
    EXPECT_NE(stats.find("\"received\":3"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"bad_requests\":1"), std::string::npos);
    EXPECT_NE(stats.find("\"draining\":false"), std::string::npos);
    EXPECT_NE(stats.find("\"torn_tail_recovered\":false"),
              std::string::npos);
}

} // namespace
