/**
 * @file
 * Tests for figure CSV export and a regression test for upgrade/write
 * miss classification under lock races.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/figures.hh"
#include "machine_fixture.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

TEST(FigureCsv, WritesHeaderAndRows)
{
    core::Figure figure;
    figure.title = "Figure T";
    figure.points.push_back({2, {1.5, 2.5, 3.5}});
    figure.points.push_back({4, {10.0, 20.0, 30.0}});
    std::ostringstream os;
    core::writeFigureCsv(os, figure);
    EXPECT_EQ(os.str(), "# Figure T\n"
                        "procs,target,logp,logpc\n"
                        "2,1.5,2.5,3.5\n"
                        "4,10,20,30\n");
}

TEST(UpgradeRace, DegradedUpgradeCountsAsWriteMiss)
{
    // Two processors hold the block Valid; both write "simultaneously".
    // The first upgrade invalidates the second sharer while it waits
    // for the directory lock, so the second transaction must degrade to
    // (and be counted as) a write miss with a data fetch.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    h.run([&](rt::Proc &p) {
        if (p.node() > 1)
            return;
        a.read(p, 0);            // Both become sharers.
        p.compute(1'000'000);    // Let both reads settle.
        a.write(p, 0, p.node()); // Near-simultaneous upgrades.
    });
    const auto &stats = h.machine->stats();
    // Read misses: 2.  Writes: exactly one true upgrade; the loser
    // degrades to a write miss.
    EXPECT_EQ(stats.readMisses, 2u);
    EXPECT_EQ(stats.upgrades, 1u);
    EXPECT_EQ(stats.writeMisses, 1u);
    // The loser fetched the winner's dirty data: final value is the
    // later writer's, and exactly one node owns the block.
    const auto blk = mem::blockOf(a.addrOf(0));
    const auto *entry = h.target().directory().peek(blk);
    ASSERT_NE(entry, nullptr);
    EXPECT_GE(entry->owner, 0);
}

TEST(EventQueueExtras, ScheduleAfterUsesCurrentTime)
{
    sim::EventQueue eq;
    sim::Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

} // namespace
