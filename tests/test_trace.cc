/**
 * @file
 * Tests for the tracing subsystem and its wiring into the machines.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "machine_fixture.hh"
#include "sim/trace.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;

/** Restores global trace state around each test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::Trace::instance().disableAll();
        sim::Trace::instance().setSink(&buffer_);
    }

    void
    TearDown() override
    {
        sim::Trace::instance().disableAll();
        sim::Trace::instance().setSink(nullptr); // Back to cerr.
    }

    std::ostringstream buffer_;
};

TEST_F(TraceTest, DisabledByDefault)
{
    sim::EventQueue eq;
    ABSIM_TRACE(eq, Protocol, "should not appear");
    EXPECT_TRUE(buffer_.str().empty());
}

TEST_F(TraceTest, EnabledCategoryEmitsTimestampedLines)
{
    sim::Trace::instance().enable(sim::TraceCategory::Protocol);
    sim::EventQueue eq;
    eq.schedule(123, [&] { ABSIM_TRACE(eq, Protocol, "hello " << 7); });
    eq.run();
    EXPECT_EQ(buffer_.str(), "123: Protocol: hello 7\n");
}

TEST_F(TraceTest, CategoriesAreIndependent)
{
    sim::Trace::instance().enable(sim::TraceCategory::Network);
    sim::EventQueue eq;
    ABSIM_TRACE(eq, Protocol, "nope");
    ABSIM_TRACE(eq, Network, "yes");
    EXPECT_EQ(buffer_.str(), "0: Network: yes\n");
    sim::Trace::instance().disable(sim::TraceCategory::Network);
    ABSIM_TRACE(eq, Network, "gone");
    EXPECT_EQ(buffer_.str(), "0: Network: yes\n");
}

TEST_F(TraceTest, ProtocolTransactionsAreTraced)
{
    sim::Trace::instance().enable(sim::TraceCategory::Protocol);
    MachineHarness h(mach::MachineKind::Target, net::TopologyKind::Full,
                     2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            a.read(p, 0);
            a.write(p, 0, 1);
        }
    });
    const std::string log = buffer_.str();
    EXPECT_NE(log.find("read miss node=0"), std::string::npos);
    EXPECT_NE(log.find("upgrade node=0"), std::string::npos);
}

TEST_F(TraceTest, NetworkTransfersAreTraced)
{
    sim::Trace::instance().enable(sim::TraceCategory::Network);
    MachineHarness h(mach::MachineKind::Target, net::TopologyKind::Full,
                     2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            a.read(p, 0);
    });
    const std::string log = buffer_.str();
    EXPECT_NE(log.find("transfer 0->1 8B"), std::string::npos);
    EXPECT_NE(log.find("transfer 1->0 32B"), std::string::npos);
}

TEST_F(TraceTest, LogPMessagesAreTraced)
{
    sim::Trace::instance().enable(sim::TraceCategory::LogP);
    MachineHarness h(mach::MachineKind::LogP, net::TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            a.read(p, 0);
    });
    const std::string log = buffer_.str();
    EXPECT_NE(log.find("msg 0->1"), std::string::npos);
    EXPECT_NE(log.find("msg 1->0"), std::string::npos);
}

} // namespace
