/**
 * @file
 * Stress tests for the fiber layer: pool reuse at scale, deep stacks,
 * many concurrent processes, and interleaved yields.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/process.hh"

namespace {

using namespace absim::sim;

TEST(FiberStress, ThousandsOfShortLivedFibersReuseStacks)
{
    // Exercises the thread-local stack pool: allocating 4000 fresh
    // 512 KB stacks would be 2 GB of page faults; pooling makes this
    // cheap.  Completion of all fibers is the assertion.
    int completed = 0;
    for (int i = 0; i < 4000; ++i) {
        Fiber f([&] { ++completed; });
        f.resume();
    }
    EXPECT_EQ(completed, 4000);
}

TEST(FiberStress, DeepRecursionFitsDefaultStack)
{
    // ~1000 frames with modest locals must fit in 512 KB.
    std::function<std::uint64_t(int)> rec = [&](int depth) {
        volatile char pad[128] = {};
        (void)pad;
        return depth == 0 ? 0u : 1 + rec(depth - 1);
    };
    std::uint64_t depth_reached = 0;
    Fiber f([&] { depth_reached = rec(1000); });
    f.resume();
    EXPECT_EQ(depth_reached, 1000u);
}

TEST(FiberStress, ManyInterleavedProcesses)
{
    EventQueue eq;
    constexpr int kProcs = 200;
    constexpr int kSteps = 50;
    std::vector<int> progress(kProcs, 0);
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < kProcs; ++i) {
        procs.push_back(std::make_unique<Process>(
            eq, "p", [&, i] {
                for (int s = 0; s < kSteps; ++s) {
                    Process::current()->delay(
                        static_cast<Duration>(1 + (i * 7 + s) % 13));
                    ++progress[static_cast<std::size_t>(i)];
                }
            }));
        procs.back()->start(0);
    }
    eq.run();
    for (int i = 0; i < kProcs; ++i)
        EXPECT_EQ(progress[static_cast<std::size_t>(i)], kSteps);
}

TEST(FiberStress, DetachedHelpersInterleaveWithOwnedProcesses)
{
    EventQueue eq;
    int helpers_done = 0;
    Tick last_tick = 0;
    Process owner(eq, "owner", [&] {
        for (int round = 0; round < 20; ++round) {
            for (int h = 0; h < 10; ++h) {
                spawnDetached(eq, "h", [&] {
                    Process::current()->delay(5);
                    ++helpers_done;
                }, eq.now());
            }
            Process::current()->delay(100);
        }
        last_tick = eq.now();
    });
    owner.start(0);
    eq.run();
    EXPECT_EQ(helpers_done, 200);
    EXPECT_EQ(last_tick, 2000u);
}

TEST(FiberStress, ThreadChurnLeavesCleanStacks)
{
    // Worker threads build and tear down their thread-local stack
    // pools repeatedly, covering every recycle path: pooled reuse,
    // drops past the pool cap, odd-sized one-offs, and the pool
    // destructor at thread exit.  Under the sanitizer build this is
    // the regression test for stale ASan shadow on fiber stacks — a
    // stack freed or retired while still poisoned trips ASan when the
    // allocator (or a later thread) reuses those addresses.
    constexpr int kThreads = 8;
    constexpr int kRounds = 3;
    std::atomic<int> completed{0};
    for (int round = 0; round < kRounds; ++round) {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&completed] {
                // More live fibers than kMaxPooled, so destruction
                // overflows the pool and exercises the drop path.
                {
                    std::vector<std::unique_ptr<Fiber>> herd;
                    for (std::size_t i = 0;
                         i < FiberStackPool::kMaxPooled + 8; ++i) {
                        herd.push_back(std::make_unique<Fiber>(
                            [&completed] { ++completed; }));
                        herd.back()->resume();
                    }
                }
                // Odd-sized stacks are never pooled: the recycle path
                // must still scrub them before the free.
                for (int i = 0; i < 4; ++i) {
                    Fiber odd([&completed] { ++completed; },
                              96 * 1024);
                    odd.resume();
                }
                // An engine run on this thread reuses pooled stacks.
                EventQueue eq;
                Process p(eq, "churn", [&completed] {
                    Process::current()->delay(1);
                    ++completed;
                });
                p.start(0);
                eq.run();
            }); // Thread exit destroys the thread-local pool.
        }
        for (std::thread &th : threads)
            th.join();
    }
    EXPECT_EQ(completed.load(),
              kRounds * kThreads *
                  static_cast<int>(FiberStackPool::kMaxPooled + 8 + 4 +
                                   1));
}

TEST(FiberStress, NestedResumeFromSchedulerOnly)
{
    // A fiber may spawn another fiber's work only via the engine; this
    // checks the current() bookkeeping survives heavy switching.
    EventQueue eq;
    std::vector<std::string> log;
    Process a(eq, "a", [&] {
        log.push_back("a0");
        EXPECT_EQ(Process::current()->name(), "a");
        Process::current()->delay(10);
        EXPECT_EQ(Process::current()->name(), "a");
        log.push_back("a1");
    });
    Process b(eq, "b", [&] {
        log.push_back("b0");
        Process::current()->delay(5);
        EXPECT_EQ(Process::current()->name(), "b");
        log.push_back("b1");
    });
    a.start(0);
    b.start(0);
    eq.run();
    EXPECT_EQ(log,
              (std::vector<std::string>{"a0", "b0", "b1", "a1"}));
}

} // namespace
