/**
 * @file
 * Cross-machine result identity: because every access is linearized at
 * its completion instant and each application's per-processor operation
 * stream is deterministic, the statically scheduled applications must
 * produce *bit-identical* results on all three machine
 * characterizations — even though the interleavings (and therefore
 * timings) differ completely.  This is the strongest end-to-end check
 * that the machines only change timing, never semantics.
 */

#include <gtest/gtest.h>

#include <complex>

#include "apps/ep.hh"
#include "core/experiment.hh"
#include "machine_fixture.hh"
#include "runtime/sync.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

TEST(CrossMachine, EpCountsBitIdenticalAcrossMachines)
{
    // EP's tallies are integers: any semantic divergence between
    // machines would show as a different count.  runOne's check already
    // compares against the reference; run all three to completion.
    for (const auto kind : {MachineKind::Target, MachineKind::LogP,
                            MachineKind::LogPC}) {
        core::RunConfig config;
        config.app = "ep";
        config.params.n = 4096;
        config.machine = kind;
        config.procs = 4;
        EXPECT_NO_THROW(core::runOne(config)) << mach::toString(kind);
    }
    // And the reference itself is machine-independent by construction.
    const auto r1 = apps::EpApp::referenceCounts(4096, 12345, 4);
    const auto r2 = apps::EpApp::referenceCounts(4096, 12345, 4);
    EXPECT_EQ(r1, r2);
}

TEST(CrossMachine, SharedValuesIdenticalAfterIdenticalStreams)
{
    // A scripted, statically scheduled update pattern must leave the
    // shared array bit-identical on all machines.
    std::vector<std::uint64_t> snapshots[3];
    int idx = 0;
    for (const auto kind : {MachineKind::Target, MachineKind::LogP,
                            MachineKind::LogPC}) {
        MachineHarness h(kind, TopologyKind::Hypercube, 4);
        rt::SharedArray<std::uint64_t> a(h.heap, 64,
                                         rt::Placement::Blocked);
        rt::Barrier barrier(h.heap, 4);
        for (std::size_t i = 0; i < 64; ++i)
            a.raw(i) = 0;
        h.run([&](rt::Proc &p) {
            // Phase 1: disjoint writes; phase 2: neighbour reads
            // combined into disjoint writes.
            const std::size_t base = p.node() * 16;
            for (std::size_t i = 0; i < 16; ++i)
                a.write(p, base + i, p.node() * 1000 + i);
            barrier.arrive(p);
            const std::size_t nbase = ((p.node() + 1) % 4) * 16;
            std::uint64_t acc = 0;
            for (std::size_t i = 0; i < 16; ++i)
                acc += a.read(p, nbase + i);
            barrier.arrive(p);
            a.write(p, base, acc);
        });
        auto &snap = snapshots[idx++];
        for (std::size_t i = 0; i < 64; ++i)
            snap.push_back(a.raw(i));
    }
    EXPECT_EQ(snapshots[0], snapshots[1]);
    EXPECT_EQ(snapshots[0], snapshots[2]);
}

} // namespace
