/**
 * @file
 * Randomized property tests over the coherence machinery.
 *
 * A random mix of reads, writes and RMWs runs on all three machine
 * characterizations; afterwards we assert
 *   (a) value correctness: commutative RMW increments lose no updates
 *       and all machines agree with the native count,
 *   (b) the Berkeley/directory invariants on the target machine: single
 *       owner, owner state matches the directory, every resident line is
 *       a registered sharer,
 *   (c) LogP+C's ideal caches respect the same single-writer invariant.
 *
 * Each seed is a separate parameterized test case.
 */

#include <gtest/gtest.h>

#include <map>

#include "machine_fixture.hh"
#include "mem/addr.hh"
#include "sim/rng.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using mem::LineState;
using net::TopologyKind;

constexpr std::uint32_t kProcs = 4;
constexpr std::size_t kWords = 96;
constexpr int kOpsPerProc = 200;

/** Random workload: per-address increment counts for validation. */
struct Workload
{
    explicit Workload(std::uint64_t seed)
    {
        expected.assign(kWords, 0);
        sim::Rng plan(seed);
        for (std::uint32_t proc = 0; proc < kProcs; ++proc) {
            for (int i = 0; i < kOpsPerProc; ++i) {
                Op op;
                op.kind = static_cast<int>(plan.below(3));
                // Increments live in the lower half of the address
                // space, plain writes in the upper half: a plain write's
                // value is captured at issue time, so racing it with
                // increments on the same word would (correctly, under
                // SC) lose increments and break the tally.
                if (op.kind == 1)
                    op.addr = kWords / 2 + plan.below(kWords / 2);
                else
                    op.addr = plan.below(kWords / 2);
                op.compute = plan.below(40);
                ops[proc].push_back(op);
                if (op.kind == 2)
                    ++expected[op.addr];
            }
        }
    }

    struct Op
    {
        std::size_t addr;
        int kind; // 0 = read, 1 = write(0x55), 2 = rmw increment.
        std::uint64_t compute;
    };

    std::vector<Op> ops[kProcs];
    std::vector<std::uint64_t> expected;
};

void
runWorkload(MachineHarness &h, rt::SharedArray<std::uint64_t> &words,
            const Workload &load)
{
    h.run([&](rt::Proc &p) {
        for (const auto &op : load.ops[p.node()]) {
            switch (op.kind) {
              case 0:
                words.read(p, op.addr);
                break;
              case 1:
                words.write(p, op.addr, 0x55);
                break;
              default:
                words.fetchAdd(p, op.addr, 1);
            }
            p.compute(op.compute);
        }
    });
}

class CoherenceProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CoherenceProperty, AllMachinesCountAllIncrements)
{
    const Workload load(GetParam());
    for (const auto kind : {MachineKind::Target, MachineKind::LogP,
                            MachineKind::LogPC}) {
        MachineHarness h(kind, TopologyKind::Mesh2D, kProcs);
        rt::SharedArray<std::uint64_t> words(h.heap, kWords,
                                             rt::Placement::Interleaved);
        for (std::size_t i = 0; i < kWords; ++i)
            words.raw(i) = 0;
        runWorkload(h, words, load);
        for (std::size_t i = 0; i < kWords / 2; ++i)
            ASSERT_EQ(words.raw(i), load.expected[i])
                << mach::toString(kind) << " word " << i;
    }
}

TEST_P(CoherenceProperty, MsiProtocolCountsAllIncrementsToo)
{
    const Workload load(GetParam());
    sim::EventQueue eq;
    rt::SharedHeap heap(kProcs);
    mach::TargetMachine machine(eq, TopologyKind::Mesh2D, kProcs, heap,
                                {}, mach::ProtocolKind::Msi);
    rt::Runtime runtime(eq, machine, kProcs);
    rt::SharedArray<std::uint64_t> words(heap, kWords,
                                         rt::Placement::Interleaved);
    for (std::size_t i = 0; i < kWords; ++i)
        words.raw(i) = 0;
    runtime.spawn([&](rt::Proc &p) {
        for (const auto &op : load.ops[p.node()]) {
            switch (op.kind) {
              case 0:
                words.read(p, op.addr);
                break;
              case 1:
                words.write(p, op.addr, 0x55);
                break;
              default:
                words.fetchAdd(p, op.addr, 1);
            }
            p.compute(op.compute);
        }
    });
    runtime.run();
    for (std::size_t i = 0; i < kWords / 2; ++i)
        ASSERT_EQ(words.raw(i), load.expected[i]) << "word " << i;
    // MSI never leaves an owner after reads settle it... but at drain an
    // owner may legitimately remain; just assert single-owner.
    for (std::size_t i = 0; i < kWords; ++i) {
        const auto blk = mem::blockOf(words.addrOf(i));
        const auto *entry = machine.directory().peek(blk);
        if (entry == nullptr || entry->owner < 0)
            continue;
        EXPECT_TRUE(mem::isOwned(
            machine.cache(static_cast<net::NodeId>(entry->owner))
                .stateOf(blk)));
    }
}

TEST_P(CoherenceProperty, TargetDirectoryInvariantsHold)
{
    const Workload load(GetParam());
    MachineHarness h(MachineKind::Target, TopologyKind::Hypercube, kProcs);
    rt::SharedArray<std::uint64_t> words(h.heap, kWords,
                                         rt::Placement::Interleaved);
    for (std::size_t i = 0; i < kWords; ++i)
        words.raw(i) = 0;
    runWorkload(h, words, load);

    const auto &machine = h.target();
    std::map<mem::BlockId, std::uint32_t> owners_seen;
    for (std::uint32_t n = 0; n < kProcs; ++n) {
        for (const auto &[blk, state] : machine.cache(n).residentLines()) {
            const auto *entry = machine.directory().peek(blk);
            ASSERT_NE(entry, nullptr) << "resident line unknown to dir";
            EXPECT_TRUE(entry->isSharer(n))
                << "node " << n << " holds block " << blk
                << " without a sharer bit";
            if (mem::isOwned(state)) {
                EXPECT_EQ(entry->owner, static_cast<std::int32_t>(n));
                EXPECT_EQ(owners_seen.count(blk), 0u)
                    << "two owners for block " << blk;
                owners_seen[blk] = n;
            }
        }
    }
    // Inverse direction: a registered owner must hold an owned line.
    for (std::size_t i = 0; i < kWords; ++i) {
        const auto blk = mem::blockOf(words.addrOf(i));
        const auto *entry = machine.directory().peek(blk);
        if (entry == nullptr || entry->owner < 0)
            continue;
        const auto state = machine
                               .cache(static_cast<net::NodeId>(
                                   entry->owner))
                               .stateOf(blk);
        EXPECT_TRUE(mem::isOwned(state))
            << "directory owner without owned line, block " << blk;
    }
}

TEST_P(CoherenceProperty, IdealCacheSingleWriterInvariant)
{
    const Workload load(GetParam());
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, kProcs);
    rt::SharedArray<std::uint64_t> words(h.heap, kWords,
                                         rt::Placement::Interleaved);
    for (std::size_t i = 0; i < kWords; ++i)
        words.raw(i) = 0;
    runWorkload(h, words, load);

    // A Dirty line anywhere must be the block's only resident copy.
    std::map<mem::BlockId, int> copies, dirty;
    for (std::uint32_t n = 0; n < kProcs; ++n) {
        for (const auto &[blk, state] : h.logpc().cache(n).residentLines()) {
            ++copies[blk];
            if (state == LineState::Dirty)
                ++dirty[blk];
        }
    }
    for (const auto &[blk, d] : dirty) {
        EXPECT_EQ(d, 1) << "block " << blk;
        EXPECT_EQ(copies[blk], 1)
            << "Dirty block " << blk << " has other copies";
    }
}

TEST_P(CoherenceProperty, DeterministicEventCounts)
{
    const Workload load(GetParam());
    std::uint64_t events[2];
    for (int round = 0; round < 2; ++round) {
        MachineHarness h(MachineKind::Target, TopologyKind::Mesh2D,
                         kProcs);
        rt::SharedArray<std::uint64_t> words(h.heap, kWords,
                                             rt::Placement::Interleaved);
        for (std::size_t i = 0; i < kWords; ++i)
            words.raw(i) = 0;
        runWorkload(h, words, load);
        events[round] = h.eq.dispatched();
    }
    EXPECT_EQ(events[0], events[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
