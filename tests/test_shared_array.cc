/**
 * @file
 * Unit tests for SharedArray: addressing, element size constraints, and
 * the linearizable accessor semantics (native side effects applied at
 * access completion).
 */

#include <gtest/gtest.h>

#include <complex>
#include <functional>

#include "machine_fixture.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

TEST(SharedArray, AddressesAreContiguousAndBlockAligned)
{
    rt::SharedHeap heap(2);
    rt::SharedArray<std::uint64_t> a(heap, 16, rt::Placement::OnNode, 0);
    EXPECT_EQ(a.size(), 16u);
    EXPECT_EQ(a.addrOf(0) % mem::kBlockBytes, 0u);
    for (std::size_t i = 1; i < 16; ++i)
        EXPECT_EQ(a.addrOf(i), a.addrOf(i - 1) + sizeof(std::uint64_t));
}

TEST(SharedArray, ElementsNeverStraddleBlocks)
{
    rt::SharedHeap heap(2);
    rt::SharedArray<std::complex<float>> a(heap, 64,
                                           rt::Placement::Blocked);
    for (std::size_t i = 0; i < 64; ++i) {
        const mem::Addr addr = a.addrOf(i);
        EXPECT_EQ(mem::blockOf(addr),
                  mem::blockOf(addr + sizeof(std::complex<float>) - 1));
    }
}

TEST(SharedArray, RawInitializationIsVisibleToSimulatedReads)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 8, rt::Placement::OnNode, 1);
    for (std::size_t i = 0; i < 8; ++i)
        a.raw(i) = i * 11;
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        for (std::size_t i = 0; i < 8; ++i)
            EXPECT_EQ(a.read(p, i), i * 11);
    });
}

TEST(SharedArray, WriteThenReadRoundTrips)
{
    for (const auto kind : {MachineKind::Target, MachineKind::LogP,
                            MachineKind::LogPC}) {
        MachineHarness h(kind, TopologyKind::Full, 2);
        rt::SharedArray<double> a(h.heap, 4, rt::Placement::OnNode, 1);
        h.run([&](rt::Proc &p) {
            if (p.node() != 0)
                return;
            a.write(p, 2, 3.5);
            EXPECT_EQ(a.read(p, 2), 3.5);
        });
        EXPECT_EQ(a.raw(2), 3.5);
    }
}

TEST(SharedArray, TestAndSetReturnsOldValue)
{
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 1, rt::Placement::OnNode, 0);
    a.raw(0) = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        EXPECT_EQ(a.testAndSet(p, 0), 0u);
        EXPECT_EQ(a.testAndSet(p, 0), 1u);
        EXPECT_EQ(a.read(p, 0), 1u);
    });
}

TEST(SharedArray, FetchAddReturnsOldAndAccumulates)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 1, rt::Placement::OnNode, 1);
    a.raw(0) = 100;
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        EXPECT_EQ(a.fetchAdd(p, 0, 5), 100u);
        EXPECT_EQ(a.fetchAdd(p, 0, 5), 105u);
    });
    EXPECT_EQ(a.raw(0), 110u);
}

TEST(SharedArray, SignedElementAndNarrowTypes)
{
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::int32_t> a(h.heap, 8, rt::Placement::OnNode, 0);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            return;
        a.write(p, 3, -7);
        EXPECT_EQ(a.read(p, 3), -7);
        EXPECT_EQ(a.fetchAdd(p, 3, -1), -7);
        EXPECT_EQ(a.read(p, 3), -8);
    });
}

TEST(EventCap, ThrowsOnRunaway)
{
    sim::EventQueue eq;
    sim::RunBudget budget;
    budget.maxEvents = 10;
    eq.setBudget(budget);
    std::function<void()> reschedule = [&] {
        eq.scheduleAfter(1, reschedule); // Self-perpetuating event chain.
    };
    eq.schedule(0, reschedule);
    EXPECT_THROW(eq.run(), std::runtime_error);
    EXPECT_EQ(eq.dispatched(), 10u);
}

TEST(EventCap, DisabledByDefault)
{
    sim::EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<sim::Tick>(i), [] {});
    EXPECT_NO_THROW(eq.run());
}

} // namespace
