/**
 * @file
 * Tests for core::RunContext — the per-run ownership root that replaced
 * the process singletons.  Covers the inheritance semantics (options
 * and handler copied, trace copied, armed injector adopted), counter
 * aggregation at destruction, and the headline property: per-thread
 * isolation of all formerly-global simulator state.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/run_context.hh"

namespace {

using namespace absim;

TEST(RunContext, InheritsCheckOptionsAndRestoresThemAfter)
{
    check::State ambient;
    ambient.options.coherence = false;
    check::ScopedState scope(ambient);
    {
        core::RunContext context;
        // The run sees the enclosing configuration...
        EXPECT_FALSE(check::options().coherence);
        EXPECT_TRUE(check::options().causality);
        // ...but its state is a private copy: mutations don't leak out.
        check::options().causality = false;
    }
    EXPECT_FALSE(ambient.options.coherence);
    EXPECT_TRUE(ambient.options.causality);
}

TEST(RunContext, InheritsFailureHandler)
{
    check::ScopedThrowOnFailure guard;
    const check::FailureHandler ambient_handler = check::state().handler;
    ASSERT_NE(ambient_handler, nullptr);
    {
        core::RunContext context;
        EXPECT_EQ(check::state().handler, ambient_handler);
    }
    EXPECT_EQ(check::state().handler, ambient_handler);
}

TEST(RunContext, AggregatesCountersIntoEnclosingStateAndGlobals)
{
    check::State ambient;
    check::ScopedState scope(ambient);
    const check::Counters global_before = check::globalCounters();
    {
        core::RunContext context;
        EXPECT_EQ(check::counters().evaluated, 0u);
        ABSIM_CHECK(true, "never fires");
        ABSIM_CHECK(true, "never fires");
        EXPECT_EQ(check::counters().evaluated, 2u);
        // Not yet visible outside the run.
        EXPECT_EQ(ambient.counters.evaluated, 0u);
    }
    EXPECT_EQ(ambient.counters.evaluated, 2u);
    EXPECT_EQ(check::globalCounters().evaluated,
              global_before.evaluated + 2);
}

TEST(RunContext, InstallsFreshInertInjectorWhenNoPlanIsArmed)
{
    fault::Injector &ambient = fault::injector();
    core::RunContext context;
    EXPECT_FALSE(context.adoptedAmbientInjector());
    EXPECT_NE(&context.faultInjector(), &ambient);
    EXPECT_EQ(&fault::injector(), &context.faultInjector());
    EXPECT_FALSE(fault::armed());
}

TEST(RunContext, AdoptsTheAmbientInjectorWhenAPlanIsArmed)
{
    fault::Plan plan = fault::Plan::parse("corrupt@1000000");
    fault::ScopedPlan armed(plan);
    fault::Injector &ambient = fault::injector();
    {
        core::RunContext context;
        EXPECT_TRUE(context.adoptedAmbientInjector());
        // Adoption, not replacement: firing state latches in the
        // enclosing thread's injector and survives the run (runOneSafe
        // retries and post-run fired() assertions depend on this).
        EXPECT_EQ(&context.faultInjector(), &ambient);
        EXPECT_EQ(&fault::injector(), &ambient);
        EXPECT_TRUE(fault::armed());
    }
    EXPECT_TRUE(fault::armed());
}

TEST(RunContext, InheritsTraceConfigurationWithoutLeakingChanges)
{
    std::ostringstream sink;
    sim::Trace &ambient = sim::Trace::instance();
    ambient.enable(sim::TraceCategory::Protocol);
    ambient.setSink(&sink);
    {
        core::RunContext context;
        EXPECT_TRUE(sim::Trace::instance().enabled(
            sim::TraceCategory::Protocol));
        EXPECT_EQ(&sim::Trace::instance().sink(), &sink);
        sim::Trace::instance().enable(sim::TraceCategory::Network);
    }
    EXPECT_FALSE(ambient.enabled(sim::TraceCategory::Network));
    ambient.disableAll();
    ambient.setSink(nullptr); // Back to std::cerr.
}

TEST(RunContext, StateIsPerThread)
{
    fault::Plan plan = fault::Plan::parse("wedge@1000000:node=1");
    fault::ScopedPlan armed(plan);
    check::counters().evaluated += 100;
    const std::uint64_t mine = check::counters().evaluated;

    bool other_armed = true;
    std::uint64_t other_evaluated = ~0ull;
    std::uint32_t other_trace_mask = ~0u;
    std::thread peer([&] {
        // A fresh thread starts from clean ambient state: no fault
        // plan, zero counters, tracing off — nothing leaks across.
        other_armed = fault::armed();
        other_evaluated = check::counters().evaluated;
        other_trace_mask = sim::Trace::instance().mask();
    });
    peer.join();

    EXPECT_FALSE(other_armed);
    EXPECT_EQ(other_evaluated, 0u);
    EXPECT_EQ(other_trace_mask, 0u);
    EXPECT_EQ(check::counters().evaluated, mine);
    EXPECT_TRUE(fault::armed());
}

} // namespace
