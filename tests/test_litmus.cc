/**
 * @file
 * Sequential-consistency litmus tests on the target machine.
 *
 * The paper's machines are sequentially consistent; the simulator
 * achieves SC by executing all shared accesses in global time order with
 * blocking per-access semantics.  These are the classic litmus shapes
 * (store buffering, message passing, coherence order), each swept over
 * many relative timings so the interesting interleavings actually occur.
 */

#include <gtest/gtest.h>

#include "machine_fixture.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

/** Sweep both writers across relative skews; kind x skew parameter. */
class Litmus
    : public ::testing::TestWithParam<
          std::tuple<mach::MachineKind, std::uint64_t>>
{
};

TEST_P(Litmus, StoreBuffering)
{
    // SB: P0: x=1; r0=y.   P1: y=1; r1=x.
    // SC forbids r0 == 0 && r1 == 0.
    const auto [kind, skew] = GetParam();
    MachineHarness h(kind, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> x(h.heap, 4, rt::Placement::OnNode, 2);
    rt::SharedArray<std::uint64_t> y(h.heap, 4, rt::Placement::OnNode, 3);
    x.raw(0) = 0;
    y.raw(0) = 0;
    std::uint64_t r0 = 9, r1 = 9;
    h.run([&, kind = kind, skew = skew](rt::Proc &p) {
        (void)kind;
        if (p.node() == 0) {
            x.write(p, 0, 1);
            r0 = y.read(p, 0);
        } else if (p.node() == 1) {
            p.compute(skew);
            y.write(p, 0, 1);
            r1 = x.read(p, 0);
        }
    });
    EXPECT_FALSE(r0 == 0 && r1 == 0)
        << "SC violation at skew " << skew;
}

TEST_P(Litmus, MessagePassing)
{
    // MP: P0: data=42; flag=1.   P1: r0=flag; r1=data.
    // SC forbids r0 == 1 && r1 != 42.
    const auto [kind, skew] = GetParam();
    MachineHarness h(kind, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> data(h.heap, 4, rt::Placement::OnNode,
                                        2);
    rt::SharedArray<std::uint64_t> flag(h.heap, 4, rt::Placement::OnNode,
                                        3);
    data.raw(0) = 0;
    flag.raw(0) = 0;
    std::uint64_t r0 = 9, r1 = 9;
    h.run([&, skew = skew](rt::Proc &p) {
        if (p.node() == 0) {
            data.write(p, 0, 42);
            flag.write(p, 0, 1);
        } else if (p.node() == 1) {
            p.compute(skew);
            r0 = flag.read(p, 0);
            r1 = data.read(p, 0);
        }
    });
    if (r0 == 1)
        EXPECT_EQ(r1, 42u) << "MP violation at skew " << skew;
}

TEST_P(Litmus, CoherenceSameLocation)
{
    // CoRR: two reads of the same location by the same processor must
    // not see a newer then an older value.
    const auto [kind, skew] = GetParam();
    MachineHarness h(kind, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> x(h.heap, 4, rt::Placement::OnNode, 3);
    x.raw(0) = 0;
    std::uint64_t r0 = 0, r1 = 0;
    h.run([&, skew = skew](rt::Proc &p) {
        if (p.node() == 0) {
            p.compute(skew);
            x.write(p, 0, 1);
        } else if (p.node() == 1) {
            r0 = x.read(p, 0);
            r1 = x.read(p, 0);
        }
    });
    EXPECT_LE(r0, r1) << "CoRR violation at skew " << skew;
}

TEST_P(Litmus, IndependentReadsIndependentWrites)
{
    // IRIW: P0: x=1.  P1: y=1.  P2: r0=x; r1=y.  P3: r2=y; r3=x.
    // SC forbids the two readers observing the writes in opposite
    // orders: r0==1 && r1==0 && r2==1 && r3==0.
    const auto [kind, skew] = GetParam();
    MachineHarness h(kind, TopologyKind::Mesh2D, 4);
    rt::SharedArray<std::uint64_t> x(h.heap, 4, rt::Placement::OnNode, 0);
    rt::SharedArray<std::uint64_t> y(h.heap, 4, rt::Placement::OnNode, 1);
    x.raw(0) = 0;
    y.raw(0) = 0;
    std::uint64_t r0 = 9, r1 = 9, r2 = 9, r3 = 9;
    h.run([&, skew = skew](rt::Proc &p) {
        switch (p.node()) {
          case 0:
            p.compute(skew);
            x.write(p, 0, 1);
            break;
          case 1:
            y.write(p, 0, 1);
            break;
          case 2:
            p.compute(skew / 2);
            r0 = x.read(p, 0);
            r1 = y.read(p, 0);
            break;
          default:
            p.compute(skew / 3);
            r2 = y.read(p, 0);
            r3 = x.read(p, 0);
        }
    });
    EXPECT_FALSE(r0 == 1 && r1 == 0 && r2 == 1 && r3 == 0)
        << "IRIW violation at skew " << skew;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Litmus,
    ::testing::Combine(::testing::Values(MachineKind::Target,
                                         MachineKind::LogPC),
                       ::testing::Values(0u, 1u, 2u, 5u, 13u, 40u, 67u,
                                         150u, 500u)),
    [](const auto &info) {
        return mach::toString(std::get<0>(info.param)).substr(0, 4) +
               (std::get<0>(info.param) == MachineKind::LogPC ? "C" : "") +
               "_skew" + std::to_string(std::get<1>(info.param));
    });

} // namespace
