/**
 * @file
 * Unit tests for the full-map directory and the LogP parameter helpers.
 */

#include <gtest/gtest.h>

#include "logp/params.hh"
#include "mem/directory.hh"

namespace {

using namespace absim;

TEST(Directory, EntriesStartEmpty)
{
    mem::Directory dir;
    EXPECT_EQ(dir.peek(3), nullptr);
    auto &entry = dir.entry(3);
    EXPECT_EQ(entry.sharers, 0u);
    EXPECT_EQ(entry.owner, mem::DirectoryEntry::kNoOwner);
    EXPECT_EQ(dir.entryCount(), 1u);
    EXPECT_NE(dir.peek(3), nullptr);
}

TEST(Directory, SharerMaskOps)
{
    mem::DirectoryEntry entry;
    entry.addSharer(0);
    entry.addSharer(5);
    entry.addSharer(63);
    EXPECT_TRUE(entry.isSharer(0));
    EXPECT_TRUE(entry.isSharer(5));
    EXPECT_TRUE(entry.isSharer(63));
    EXPECT_FALSE(entry.isSharer(4));
    EXPECT_EQ(entry.sharerCountExcluding(5), 2u);
    EXPECT_EQ(entry.sharerCountExcluding(4), 3u);
    entry.removeSharer(5);
    EXPECT_FALSE(entry.isSharer(5));
}

TEST(Directory, ReferencesStableAcrossGrowth)
{
    mem::Directory dir;
    auto &first = dir.entry(0);
    first.addSharer(7);
    for (mem::BlockId b = 1; b < 10000; ++b)
        dir.entry(b);
    EXPECT_TRUE(dir.entry(0).isSharer(7));
    EXPECT_EQ(&dir.entry(0), &first);
}

// --- LogP g derivation (paper Section 5 closed forms) -------------------

TEST(LogPParams, LIsBlockTransmissionTime)
{
    const auto params = logp::paramsFor(net::TopologyKind::Full, 8);
    EXPECT_EQ(params.l, 1600u); // 32 B at 20 MB/s = 1.6 us.
    EXPECT_EQ(params.o, 0u);
    EXPECT_EQ(params.p, 8u);
}

TEST(LogPParams, FullGapIs3200OverP)
{
    for (const std::uint32_t p : {2u, 4u, 8u, 16u, 32u}) {
        EXPECT_EQ(logp::gapFor(net::TopologyKind::Full, p), 3200u / p)
            << "P=" << p;
    }
}

TEST(LogPParams, CubeGapIs1600)
{
    for (const std::uint32_t p : {2u, 4u, 8u, 16u, 32u, 64u})
        EXPECT_EQ(logp::gapFor(net::TopologyKind::Hypercube, p), 1600u);
}

TEST(LogPParams, MeshGapIs800TimesColumns)
{
    // 4x4 mesh: px = 4.
    EXPECT_EQ(logp::gapFor(net::TopologyKind::Mesh2D, 16), 800u * 4);
    // 4x8 mesh: px = 8.
    EXPECT_EQ(logp::gapFor(net::TopologyKind::Mesh2D, 32), 800u * 8);
    // 2x2.
    EXPECT_EQ(logp::gapFor(net::TopologyKind::Mesh2D, 4), 800u * 2);
}

TEST(LogPParams, SingleNodeHasNoGap)
{
    EXPECT_EQ(logp::gapFor(net::TopologyKind::Full, 1), 0u);
    EXPECT_EQ(logp::gapFor(net::TopologyKind::Mesh2D, 1), 0u);
}

} // namespace
