/**
 * @file
 * Unit tests for the set-associative Berkeley-state cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace {

using namespace absim::mem;

TEST(Cache, PaperGeometry)
{
    SetAssocCache cache; // 64 KB, 2-way, 32 B blocks.
    EXPECT_EQ(cache.ways(), 2u);
    EXPECT_EQ(cache.sets(), 1024u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache(64 * 1024, 0), std::invalid_argument);
    // 4 lines are not divisible into 3 ways.
    EXPECT_THROW(SetAssocCache(128, 3), std::invalid_argument);
    // 6 lines / 2 ways = 3 sets: not a power of two.
    EXPECT_THROW(SetAssocCache(192, 2), std::invalid_argument);
}

TEST(Cache, MissOnCold)
{
    SetAssocCache cache;
    EXPECT_EQ(cache.stateOf(42), LineState::Invalid);
    EXPECT_FALSE(cache.hasReadable(42));
    EXPECT_FALSE(cache.hasWritable(42));
}

TEST(Cache, InstallMakesReadable)
{
    SetAssocCache cache;
    cache.install(42, LineState::Valid);
    EXPECT_EQ(cache.stateOf(42), LineState::Valid);
    EXPECT_TRUE(cache.hasReadable(42));
    EXPECT_FALSE(cache.hasWritable(42)); // Valid is not writable.
    cache.setState(42, LineState::Dirty);
    EXPECT_TRUE(cache.hasWritable(42));
}

TEST(Cache, StateHelpers)
{
    EXPECT_TRUE(isOwned(LineState::Dirty));
    EXPECT_TRUE(isOwned(LineState::SharedDirty));
    EXPECT_FALSE(isOwned(LineState::Valid));
    EXPECT_FALSE(isOwned(LineState::Invalid));
}

TEST(Cache, VictimForNeedsEvictionOnlyWhenSetFull)
{
    SetAssocCache cache(64, 2); // 2 lines, 1 set: everything conflicts.
    BlockId victim;
    LineState vstate;
    EXPECT_FALSE(cache.victimFor(1, victim, vstate));
    cache.install(1, LineState::Valid);
    EXPECT_FALSE(cache.victimFor(2, victim, vstate));
    cache.install(2, LineState::Dirty);
    EXPECT_TRUE(cache.victimFor(3, victim, vstate));
    EXPECT_EQ(victim, 1u); // LRU.
    EXPECT_EQ(vstate, LineState::Valid);
}

TEST(Cache, TouchChangesLruOrder)
{
    SetAssocCache cache(64, 2);
    cache.install(1, LineState::Valid);
    cache.install(2, LineState::Valid);
    cache.touch(1); // 2 becomes LRU.
    BlockId victim;
    LineState vstate;
    ASSERT_TRUE(cache.victimFor(3, victim, vstate));
    EXPECT_EQ(victim, 2u);
}

TEST(Cache, InstallEvictsLru)
{
    SetAssocCache cache(64, 2);
    cache.install(1, LineState::Valid);
    cache.install(2, LineState::Valid);
    cache.install(3, LineState::Valid);
    EXPECT_EQ(cache.stateOf(1), LineState::Invalid);
    EXPECT_EQ(cache.stateOf(2), LineState::Valid);
    EXPECT_EQ(cache.stateOf(3), LineState::Valid);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().dirtyEvictions, 0u);
}

TEST(Cache, DirtyEvictionCounted)
{
    SetAssocCache cache(64, 2);
    cache.install(1, LineState::Dirty);
    cache.install(2, LineState::SharedDirty);
    cache.install(3, LineState::Valid);
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(Cache, ConflictOnlyWithinSet)
{
    SetAssocCache cache(128, 2); // 2 sets.
    // Blocks 0, 2, 4 map to set 0; block 1 to set 1.
    cache.install(0, LineState::Valid);
    cache.install(2, LineState::Valid);
    cache.install(1, LineState::Valid);
    cache.install(4, LineState::Valid); // Evicts from set 0 only.
    EXPECT_EQ(cache.stateOf(1), LineState::Valid);
    EXPECT_EQ(cache.stateOf(0), LineState::Invalid);
}

TEST(Cache, InvalidateIsIdempotentAndCounted)
{
    SetAssocCache cache;
    cache.install(7, LineState::Dirty);
    EXPECT_TRUE(cache.invalidate(7));
    EXPECT_EQ(cache.stateOf(7), LineState::Invalid);
    EXPECT_FALSE(cache.invalidate(7)); // Already gone: silent no-op.
    EXPECT_EQ(cache.stats().invalidationsReceived, 1u);
}

TEST(Cache, TagsDisambiguateBlocksInSameSet)
{
    SetAssocCache cache(64, 2); // 1 set.
    cache.install(5, LineState::Valid);
    EXPECT_EQ(cache.stateOf(5 + 1024), LineState::Invalid);
}

TEST(Cache, MissesCounted)
{
    SetAssocCache cache;
    cache.install(1, LineState::Valid);
    cache.install(2, LineState::Valid);
    EXPECT_EQ(cache.stats().misses, 2u);
}

/** Parameterized sweep: a working set within capacity never evicts. */
class CacheCapacity : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheCapacity, WorkingSetWithinCapacityStaysResident)
{
    const std::uint32_t blocks = GetParam();
    SetAssocCache cache; // 2048 lines.
    // Sequential blocks spread evenly over sets: no conflicts below
    // capacity.
    for (std::uint32_t b = 0; b < blocks; ++b)
        cache.install(b, LineState::Valid);
    for (std::uint32_t b = 0; b < blocks; ++b)
        EXPECT_EQ(cache.stateOf(b), LineState::Valid);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheCapacity,
                         ::testing::Values(1u, 64u, 1024u, 2048u));

} // namespace
