/**
 * @file
 * The invariant-checker subsystem (src/check): macro semantics, and one
 * negative test per validator proving that the coherence, causality,
 * conservation and fiber-misuse checkers actually fire — plus positive
 * tests showing they accept real workloads.
 *
 * Every negative test installs ScopedThrowOnFailure so the failure is
 * observable as a CheckFailure instead of a process abort.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "check/check.hh"
#include "core/experiment.hh"
#include "machine_fixture.hh"
#include "mem/addr.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"

namespace {

using namespace absim;

// -------------------------------------------------------------- Macros

TEST(CheckMacros, PassingCheckCountsAsEvaluated)
{
    const std::uint64_t before = check::counters().evaluated;
    ABSIM_CHECK(1 + 1 == 2, "arithmetic broke");
    ABSIM_DCHECK(true, "never printed");
    EXPECT_EQ(check::counters().evaluated, before + 2);
}

TEST(CheckMacros, FailureReportsFileLineExprAndMessage)
{
    check::ScopedThrowOnFailure guard;
    const std::uint64_t failed_before = check::counters().failed;
    try {
        const int answer = 41;
        ABSIM_CHECK(answer == 42, "got " << answer << " instead");
        FAIL() << "check did not fire";
    } catch (const check::CheckFailure &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("test_check.cc"), std::string::npos) << what;
        EXPECT_NE(what.find("answer == 42"), std::string::npos) << what;
        EXPECT_NE(what.find("got 41 instead"), std::string::npos) << what;
        EXPECT_NE(std::string(e.file()).find("test_check.cc"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
    EXPECT_EQ(check::counters().failed, failed_before + 1);
}

TEST(CheckMacros, DcheckIsLiveInThisBuild)
{
    // The project strips NDEBUG from all its own build types, so hot-path
    // DCHECKs must be active here.
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(ABSIM_DCHECK(false, "dchecks must be live"),
                 check::CheckFailure);
}

TEST(CheckMacros, EqualityCheckPrintsBothOperands)
{
    check::ScopedThrowOnFailure guard;
    try {
        ABSIM_CHECK_EQ(2 + 2, 5, "arithmetic");
        FAIL() << "check did not fire";
    } catch (const check::CheckFailure &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("4 vs 5"), std::string::npos) << what;
    }
}

TEST(CheckMacros, HandlerRestoredAfterScope)
{
    {
        check::ScopedThrowOnFailure guard;
    }
    // Installing a handler returns what the scope left behind: the
    // default (nullptr).
    check::FailureHandler prev = check::setFailureHandler(nullptr);
    EXPECT_EQ(prev, nullptr);
}

TEST(CheckMacros, HandlerAndCountersArePerThread)
{
    check::ScopedThrowOnFailure guard;
    const std::uint64_t mine = check::counters().evaluated;
    check::FailureHandler other_handler =
        reinterpret_cast<check::FailureHandler>(1);
    std::uint64_t other_evaluated = ~0ull;
    std::thread peer([&] {
        // A fresh thread sees its own clean state, not this thread's
        // throwing handler or counter tallies — so concurrent runs
        // can't race on handler installation.
        other_handler = check::state().handler;
        other_evaluated = check::counters().evaluated;
        ABSIM_CHECK(true, "tallied on the peer thread only");
    });
    peer.join();
    EXPECT_EQ(other_handler, nullptr);
    EXPECT_EQ(other_evaluated, 0u);
    EXPECT_EQ(check::counters().evaluated, mine);
}

// ----------------------------------------------------------- Causality

TEST(CausalityChecker, RejectsEventScheduledInThePast)
{
    sim::EventQueue eq;
    eq.schedule(10, [&eq] {
        eq.schedule(5, [] {}); // 5 < now() == 10: time travel.
    });
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(eq.run(), check::CheckFailure);
}

TEST(CausalityChecker, AcceptsPresentAndFutureEvents)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.schedule(10, [&] { ++fired; }); // Same tick is fine.
        eq.schedule(20, [&] { ++fired; });
    });
    EXPECT_NO_THROW(eq.run());
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 20u);
}

// -------------------------------------------------------- Conservation

TEST(ConservationChecker, RejectsUnaccountedEngineTime)
{
    test::MachineHarness h(mach::MachineKind::LogP,
                           net::TopologyKind::Full, 1);
    check::ScopedThrowOnFailure guard;
    // Claim 1 tick of latency when no engine time elapsed at all: the
    // buckets no longer partition the blocked interval.
    EXPECT_THROW(
        h.run([](rt::Proc &p) { p.absorbEngineTime(1, 0, 0); }),
        check::CheckFailure);
}

TEST(ConservationChecker, CanBeDisabledForForensics)
{
    check::options().conservation = false;
    test::MachineHarness h(mach::MachineKind::LogP,
                           net::TopologyKind::Full, 1);
    check::ScopedThrowOnFailure guard;
    EXPECT_NO_THROW(
        h.run([](rt::Proc &p) { p.absorbEngineTime(1, 0, 0); }));
    check::options().conservation = true;
}

// ----------------------------------------------------------- Coherence

/** Shared-array workload with real sharing: everyone reads everything,
 *  then writes a private slice (forcing upgrades + invalidations). */
void
contendedWorkload(rt::Proc &p, mem::Addr base, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        p.memRead(base + i * 8, 8);
    const std::uint32_t chunk = words / p.procs();
    for (std::uint32_t i = 0; i < chunk; ++i)
        p.memWrite(base + (p.node() * chunk + i) * 8, 8);
    for (std::uint32_t i = 0; i < words; ++i)
        p.memRead(base + ((i + p.node()) % words) * 8, 8);
}

TEST(CoherenceChecker, AcceptsContendedTargetWorkload)
{
    test::MachineHarness h(mach::MachineKind::Target,
                           net::TopologyKind::Hypercube, 4);
    const mem::Addr base =
        h.heap.allocate(64 * 8, rt::Placement::Interleaved);
    h.run([base](rt::Proc &p) { contendedWorkload(p, base, 64); });
    EXPECT_NO_THROW(h.machine->checkInvariants());
    // Proof the validator ran: per-transaction checks plus the sweep.
    EXPECT_GT(h.target().checker().blocksChecked(), 64u);
}

TEST(CoherenceChecker, AcceptsContendedLogPCWorkload)
{
    test::MachineHarness h(mach::MachineKind::LogPC,
                           net::TopologyKind::Hypercube, 4);
    const mem::Addr base =
        h.heap.allocate(64 * 8, rt::Placement::Interleaved);
    h.run([base](rt::Proc &p) { contendedWorkload(p, base, 64); });
    EXPECT_NO_THROW(h.machine->checkInvariants());
    EXPECT_GT(h.logpc().checker().blocksChecked(), 64u);
}

TEST(CoherenceChecker, DetectsSecondOwnerInTargetMachine)
{
    test::MachineHarness h(mach::MachineKind::Target,
                           net::TopologyKind::Full, 2);
    const mem::Addr addr = h.heap.allocate(8, rt::Placement::OnNode, 0);
    h.run([addr](rt::Proc &p) {
        if (p.node() == 0)
            p.memWrite(addr, 8);
    });
    ASSERT_NO_THROW(h.machine->checkInvariants());

    // Forge a second ownership copy behind the directory's back: SWMR is
    // now violated (two caches believe they own the block).
    h.target().cacheForTest(1).install(mem::blockOf(addr),
                                       mem::LineState::Dirty);
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(h.machine->checkInvariants(), check::CheckFailure);
}

TEST(CoherenceChecker, DetectsDirectoryCacheDisagreement)
{
    test::MachineHarness h(mach::MachineKind::Target,
                           net::TopologyKind::Full, 2);
    const mem::Addr addr = h.heap.allocate(8, rt::Placement::OnNode, 0);
    h.run([addr](rt::Proc &p) {
        if (p.node() == 0)
            p.memWrite(addr, 8);
    });
    ASSERT_NO_THROW(h.machine->checkInvariants());

    // Drop the directory's owner field while node 0 still holds the
    // block Dirty: directory and cache now disagree.
    h.target().directoryForTest().entry(mem::blockOf(addr)).owner =
        mem::DirectoryEntry::kNoOwner;
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(h.machine->checkInvariants(), check::CheckFailure);
}

TEST(CoherenceChecker, DetectsStaleOracleSharerInLogPC)
{
    test::MachineHarness h(mach::MachineKind::LogPC,
                           net::TopologyKind::Full, 2);
    const mem::Addr addr = h.heap.allocate(8, rt::Placement::OnNode, 0);
    h.run([addr](rt::Proc &p) {
        if (p.node() == 0)
            p.memWrite(addr, 8);
    });
    ASSERT_NO_THROW(h.machine->checkInvariants());

    // The LogP+C oracle is exact: a sharer bit for a node with no
    // resident copy is a bookkeeping bug, not a tolerated staleness.
    h.logpc().oracleForTest(mem::blockOf(addr)).sharers |= 1u << 1;
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(h.machine->checkInvariants(), check::CheckFailure);
}

TEST(CoherenceChecker, CanBeDisabledForForensics)
{
    test::MachineHarness h(mach::MachineKind::Target,
                           net::TopologyKind::Full, 2);
    const mem::Addr addr = h.heap.allocate(8, rt::Placement::OnNode, 0);
    h.run([addr](rt::Proc &p) {
        if (p.node() == 0)
            p.memWrite(addr, 8);
    });
    h.target().cacheForTest(1).install(mem::blockOf(addr),
                                       mem::LineState::Dirty);
    check::options().coherence = false;
    EXPECT_NO_THROW(h.machine->checkInvariants());
    check::options().coherence = true;
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(h.machine->checkInvariants(), check::CheckFailure);
}

// -------------------------------------------------------- Fiber misuse

TEST(FiberGuards, ResumeOfFinishedFiberFails)
{
    sim::Fiber fiber([] {});
    fiber.resume();
    ASSERT_TRUE(fiber.finished());
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(fiber.resume(), check::CheckFailure);
}

TEST(FiberGuards, StackCanaryDetectsOverflow)
{
    sim::Fiber fiber([] { sim::Fiber::yield(); });
    fiber.resume(); // Runs until the yield; canary intact so far.
    fiber.corruptStackCanaryForTest();
    check::ScopedThrowOnFailure guard;
    // The canary check fires on the scheduler side of the next switch,
    // where a throwing handler can unwind safely.
    EXPECT_THROW(fiber.resume(), check::CheckFailure);
}

// ------------------------------------------- Whole-application accepts

TEST(CheckersEndToEnd, AcceptExistingAppsOnSmallConfigs)
{
    // All validators are on by default; a full application run across all
    // three machine characterizations must pass every per-transaction
    // check and the drain-time sweep inside core::runOne().
    const std::uint64_t evaluated_before = check::counters().evaluated;
    for (const mach::MachineKind kind :
         {mach::MachineKind::Target, mach::MachineKind::LogP,
          mach::MachineKind::LogPC}) {
        core::RunConfig config;
        config.app = "fft";
        config.params.n = 64;
        config.machine = kind;
        config.topology = net::TopologyKind::Hypercube;
        config.procs = 4;
        config.checkResult = true;
        EXPECT_NO_THROW(core::runOne(config)) << toString(kind);
    }
    EXPECT_GT(check::counters().evaluated, evaluated_before);
}

} // namespace
