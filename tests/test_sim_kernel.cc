/**
 * @file
 * Unit tests for the discrete-event kernel: event queue ordering, fibers,
 * processes, and simulated-time resources.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/process.hh"
#include "sim/resource.hh"

namespace {

using namespace absim::sim;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.nextEventTime(), kTickMax);
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoBySchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.schedule(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_FALSE(eq.runUntil(15));
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.runUntil(100));
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CountsDispatchedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.dispatched(), 7u);
}

TEST(Fiber, RunsToCompletion)
{
    bool ran = false;
    Fiber f([&] { ran = true; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    int step = 0;
    Fiber f([&] {
        step = 1;
        Fiber::yield();
        step = 2;
        Fiber::yield();
        step = 3;
    });
    f.resume();
    EXPECT_EQ(step, 1);
    f.resume();
    EXPECT_EQ(step, 2);
    f.resume();
    EXPECT_EQ(step, 3);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecution)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Process, DelayAdvancesSimulatedTime)
{
    EventQueue eq;
    Tick seen = 0;
    Process p(eq, "t", [&] {
        Process::current()->delay(100);
        seen = eq.now();
        Process::current()->delay(50);
        seen = eq.now();
    });
    p.start(0);
    eq.run();
    EXPECT_EQ(seen, 150u);
    EXPECT_TRUE(p.finished());
}

TEST(Process, SuspendWake)
{
    EventQueue eq;
    Tick woke_at = 0;
    Process sleeper(eq, "sleeper", [&] {
        Process::current()->suspend();
        woke_at = eq.now();
    });
    Process waker(eq, "waker", [&] {
        Process::current()->delay(42);
        sleeper.wake();
    });
    sleeper.start(0);
    waker.start(0);
    eq.run();
    EXPECT_EQ(woke_at, 42u);
}

TEST(Process, SpawnDetachedSelfCleans)
{
    EventQueue eq;
    int ran = 0;
    spawnDetached(eq, "helper", [&] {
        Process::current()->delay(5);
        ++ran;
    }, 0);
    eq.run();
    EXPECT_EQ(ran, 1);
}

TEST(FifoMutex, UncontendedAcquireIsFree)
{
    EventQueue eq;
    FifoMutex m;
    Duration waited = 99;
    Process p(eq, "p", [&] {
        waited = m.acquire();
        m.release();
    });
    p.start(0);
    eq.run();
    EXPECT_EQ(waited, 0u);
    EXPECT_FALSE(m.locked());
}

TEST(FifoMutex, GrantsInFifoOrderWithWaitTimes)
{
    EventQueue eq;
    FifoMutex m;
    std::vector<int> grant_order;
    std::vector<Duration> waits(3);

    // p0 takes the lock at t=0 and holds it until t=100.
    Process p0(eq, "p0", [&] {
        m.acquire();
        grant_order.push_back(0);
        Process::current()->delay(100);
        m.release();
    });
    // p1 requests at t=10, p2 at t=20; they must be served in that order.
    Process p1(eq, "p1", [&] {
        Process::current()->delay(10);
        waits[1] = m.acquire();
        grant_order.push_back(1);
        Process::current()->delay(100);
        m.release();
    });
    Process p2(eq, "p2", [&] {
        Process::current()->delay(20);
        waits[2] = m.acquire();
        grant_order.push_back(2);
        m.release();
    });
    p0.start(0);
    p1.start(0);
    p2.start(0);
    eq.run();

    EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(waits[1], 90u);  // Requested at 10, granted at 100.
    EXPECT_EQ(waits[2], 180u); // Requested at 20, granted at 200.
    EXPECT_EQ(m.totalWait(), 270u);
}

TEST(Condition, NotifyAllWakesEveryWaiter)
{
    EventQueue eq;
    Condition cond;
    int woken = 0;
    for (int i = 0; i < 3; ++i) {
        spawnDetached(eq, "waiter", [&] {
            cond.wait();
            ++woken;
        }, 0);
    }
    Process notifier(eq, "notifier", [&] {
        Process::current()->delay(10);
        cond.notifyAll();
    });
    notifier.start(0);
    eq.run();
    EXPECT_EQ(woken, 3);
}

TEST(Latch, AwaitBlocksUntilZero)
{
    EventQueue eq;
    Latch latch(3);
    Tick released_at = 0;
    Process waiter(eq, "waiter", [&] {
        latch.await();
        released_at = eq.now();
    });
    for (int i = 1; i <= 3; ++i) {
        spawnDetached(eq, "helper", [&latch, i] {
            Process::current()->delay(static_cast<Duration>(i * 10));
            latch.countDown();
        }, 0);
    }
    waiter.start(0);
    eq.run();
    EXPECT_EQ(released_at, 30u);
}

TEST(Latch, AwaitWithZeroCountReturnsImmediately)
{
    EventQueue eq;
    Latch latch(1);
    bool done = false;
    Process p(eq, "p", [&] {
        latch.countDown();
        latch.await();
        done = true;
    });
    p.start(0);
    eq.run();
    EXPECT_TRUE(done);
}

} // namespace
