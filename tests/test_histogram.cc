/**
 * @file
 * Unit tests for the log2 histogram and its integration into profiles.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "stats/histogram.hh"

namespace {

using namespace absim;
using stats::Histogram;

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 0u);
    EXPECT_EQ(Histogram::bucketOf(2), 1u);
    EXPECT_EQ(Histogram::bucketOf(3), 1u);
    EXPECT_EQ(Histogram::bucketOf(4), 2u);
    EXPECT_EQ(Histogram::bucketOf(1023), 9u);
    EXPECT_EQ(Histogram::bucketOf(1024), 10u);
    EXPECT_EQ(Histogram::bucketFloor(0), 0u);
    EXPECT_EQ(Histogram::bucketFloor(10), 1024u);
}

TEST(Histogram, RecordsMeanMaxAndCounts)
{
    Histogram h;
    h.record(100);
    h.record(200);
    h.record(300);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
    EXPECT_EQ(h.count(Histogram::bucketOf(100)), 1u); // [64, 128)
    EXPECT_EQ(h.count(Histogram::bucketOf(200)), 1u); // [128, 256)
    EXPECT_EQ(h.count(Histogram::bucketOf(300)), 1u); // [256, 512)
}

TEST(Histogram, QuantilesAreBucketResolution)
{
    Histogram h;
    for (int i = 0; i < 99; ++i)
        h.record(10); // Bucket 3: [8, 16).
    h.record(100000);
    EXPECT_LT(h.approxQuantile(0.5), 16u);
    EXPECT_GE(h.approxQuantile(0.999), 65536u);
    EXPECT_EQ(h.approxQuantile(0.0), 15u); // First bucket's ceiling.
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    a.record(5);
    b.record(500);
    a.merge(b);
    EXPECT_EQ(a.samples(), 2u);
    EXPECT_EQ(a.max(), 500u);
    EXPECT_DOUBLE_EQ(a.mean(), 252.5);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.approxQuantile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ProfileCollectsRemoteAccessDistribution)
{
    core::RunConfig config;
    config.app = "is";
    config.params.n = 1024;
    config.machine = mach::MachineKind::Target;
    config.procs = 4;
    const auto profile = core::runOne(config);
    EXPECT_EQ(profile.remoteLatency.samples(),
              profile.machine.networkAccesses);
    // The cheapest networked transaction is a sharer-free upgrade:
    // request + grant = 800 ns (bucket ceiling 1023).
    EXPECT_GE(profile.remoteLatency.approxQuantile(0.01), 800u);
}

TEST(Histogram, LogPDistributionConcentratedAtRoundTrip)
{
    core::RunConfig config;
    config.app = "synthetic";
    config.params.variant = "neighbor";
    config.params.n = 64;
    config.machine = mach::MachineKind::LogP;
    config.topology = net::TopologyKind::Full;
    config.procs = 2;
    const auto profile = core::runOne(config);
    // Remote RMW round trips: 2L + gate waits; all samples land in a
    // narrow band starting at 3200.
    EXPECT_GT(profile.remoteLatency.samples(), 0u);
    EXPECT_GE(profile.remoteLatency.approxQuantile(0.01), 3200u);
}

} // namespace
