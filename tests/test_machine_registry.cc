/**
 * @file
 * The machine registry and the two off-diagonal quadrants: name
 * round-trips, table consistency, registry-built machines end to end
 * (including through the parallel sweep), and coherence-checker
 * negative tests on target+ic and logp+dir.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/check.hh"
#include "core/figures.hh"
#include "machine_fixture.hh"
#include "machines/directory_mem.hh"
#include "machines/ideal_mem.hh"
#include "machines/registry.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

// ------------------------------------------------------------ Registry

TEST(MachineRegistry, ToStringParseRoundTripsEveryKind)
{
    for (const MachineKind kind :
         {MachineKind::Target, MachineKind::LogP, MachineKind::LogPC,
          MachineKind::TargetIC, MachineKind::LogPDir,
          MachineKind::None}) {
        MachineKind parsed{};
        ASSERT_TRUE(mach::parseMachineKind(mach::toString(kind), parsed))
            << mach::toString(kind);
        EXPECT_EQ(parsed, kind);
    }
}

TEST(MachineRegistry, ParseAcceptsColumnAliases)
{
    MachineKind kind{};
    ASSERT_TRUE(mach::parseMachineKind("logpc", kind));
    EXPECT_EQ(kind, MachineKind::LogPC);
    ASSERT_TRUE(mach::parseMachineKind("targetic", kind));
    EXPECT_EQ(kind, MachineKind::TargetIC);
    ASSERT_TRUE(mach::parseMachineKind("logpdir", kind));
    EXPECT_EQ(kind, MachineKind::LogPDir);
    EXPECT_FALSE(mach::parseMachineKind("logp+x", kind));
    EXPECT_FALSE(mach::parseMachineKind("", kind));
    EXPECT_FALSE(mach::parseMachineKind("Target", kind));
}

TEST(MachineRegistry, TableIsConsistent)
{
    for (const mach::MachineSpec &spec : mach::machineRegistry()) {
        EXPECT_EQ(spec.name, mach::toString(spec.kind));
        // Columns are the name with '+' stripped — never empty, no '+'.
        const std::string column = spec.column;
        EXPECT_FALSE(column.empty());
        EXPECT_EQ(column.find('+'), std::string::npos);
        EXPECT_EQ(&mach::specFor(spec.kind), &spec);
    }
    // The diagnostic list names every runnable machine.
    const std::string names = mach::machineNames();
    for (const mach::MachineSpec &spec : mach::machineRegistry()) {
        if (spec.runnable)
            EXPECT_NE(names.find(spec.name), std::string::npos)
                << spec.name;
        else
            EXPECT_EQ(names.find(spec.name), std::string::npos)
                << spec.name;
    }
}

TEST(MachineRegistry, QuadrantListsMatchTheGrid)
{
    const auto trio = mach::defaultFigureMachines();
    ASSERT_EQ(trio.size(), 3u);
    EXPECT_EQ(trio[0], MachineKind::Target);
    EXPECT_EQ(trio[1], MachineKind::LogP);
    EXPECT_EQ(trio[2], MachineKind::LogPC);
    const auto all = mach::allQuadrants();
    ASSERT_EQ(all.size(), 5u);
    for (const MachineKind kind : all)
        EXPECT_TRUE(mach::specFor(kind).runnable);
}

TEST(MachineRegistry, MakeMachineRejectsNone)
{
    struct Node0Homes : mem::HomeMap
    {
        net::NodeId homeOf(mem::Addr) const override { return 0; }
    };
    sim::EventQueue eq;
    const Node0Homes homes;
    EXPECT_THROW(mach::makeMachine(MachineKind::None, eq,
                                   TopologyKind::Full, 2, homes),
                 std::invalid_argument);
}

// --------------------------------------------- The new quadrants, E2E

/** Contended sharing: everyone reads everything, writes its slice. */
void
contendedWorkload(rt::Proc &p, mem::Addr base, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        p.memRead(base + i * 8, 8);
    const std::uint32_t chunk = words / p.procs();
    for (std::uint32_t i = 0; i < chunk; ++i)
        p.memWrite(base + (p.node() * chunk + i) * 8, 8);
}

TEST(QuadrantMachines, TargetIcComposesDetailedNetAndIdealCache)
{
    MachineHarness h(MachineKind::TargetIC, TopologyKind::Mesh2D, 4);
    EXPECT_EQ(h.machine->kind(), MachineKind::TargetIC);
    EXPECT_EQ(h.machine->netModelName(), "detailed");
    EXPECT_EQ(h.machine->memModelName(), "ideal");
    const mem::Addr base =
        h.heap.allocate(64 * 8, rt::Placement::Interleaved);
    h.run([base](rt::Proc &p) { contendedWorkload(p, base, 64); });
    EXPECT_NO_THROW(h.machine->checkInvariants());
    auto &ideal =
        dynamic_cast<mach::IdealCacheMem &>(h.composed().memModel());
    EXPECT_GT(ideal.checker().blocksChecked(), 64u);
    EXPECT_GT(h.machine->stats().cacheHits, 0u);
    EXPECT_GT(h.machine->stats().memTime, 0u);
}

TEST(QuadrantMachines, LogPDirComposesLogPNetAndRealDirectory)
{
    MachineHarness h(MachineKind::LogPDir, TopologyKind::Full, 4);
    EXPECT_EQ(h.machine->kind(), MachineKind::LogPDir);
    EXPECT_EQ(h.machine->netModelName(), "logp");
    EXPECT_EQ(h.machine->memModelName(), "directory");
    const mem::Addr base =
        h.heap.allocate(64 * 8, rt::Placement::Interleaved);
    h.run([base](rt::Proc &p) { contendedWorkload(p, base, 64); });
    EXPECT_NO_THROW(h.machine->checkInvariants());
    auto &dir =
        dynamic_cast<mach::DirectoryMem &>(h.composed().memModel());
    EXPECT_GT(dir.checker().blocksChecked(), 64u);
    // The real protocol ran: invalidations happened over the LogP net.
    EXPECT_GT(h.machine->stats().invalidations, 0u);
    EXPECT_GT(h.machine->stats().readMisses, 0u);
}

TEST(QuadrantMachines, CheckerFiresOnForgedOwnerInLogPDir)
{
    MachineHarness h(MachineKind::LogPDir, TopologyKind::Full, 2);
    const mem::Addr addr = h.heap.allocate(8, rt::Placement::OnNode, 0);
    h.run([addr](rt::Proc &p) {
        if (p.node() == 0)
            p.memWrite(addr, 8);
    });
    ASSERT_NO_THROW(h.machine->checkInvariants());

    // Forge a second ownership copy behind the directory's back: SWMR
    // is violated regardless of which network model carried the
    // protocol traffic.
    auto &dir =
        dynamic_cast<mach::DirectoryMem &>(h.composed().memModel());
    dir.cacheForTest(1).install(mem::blockOf(addr),
                                mem::LineState::Dirty);
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(h.machine->checkInvariants(), check::CheckFailure);
}

TEST(QuadrantMachines, CheckerFiresOnStaleOracleInTargetIc)
{
    MachineHarness h(MachineKind::TargetIC, TopologyKind::Full, 2);
    const mem::Addr addr = h.heap.allocate(8, rt::Placement::OnNode, 0);
    h.run([addr](rt::Proc &p) {
        if (p.node() == 0)
            p.memWrite(addr, 8);
    });
    ASSERT_NO_THROW(h.machine->checkInvariants());

    // The ideal-cache oracle is exact; a phantom sharer bit must trip
    // the exact-sharers sweep.
    auto &ideal =
        dynamic_cast<mach::IdealCacheMem &>(h.composed().memModel());
    ideal.oracleForTest(mem::blockOf(addr)).sharers |= 1u << 1;
    check::ScopedThrowOnFailure guard;
    EXPECT_THROW(h.machine->checkInvariants(), check::CheckFailure);
}

// ------------------------------------------------- Through the sweeps

TEST(QuadrantSweep, AllFiveStacksSweepThroughTheParallelEngine)
{
    core::RunConfig base;
    base.app = "is";
    base.params.n = 256;
    core::SweepOptions options;
    options.jobs = 2;
    options.machines = mach::allQuadrants();
    const core::SweepResult result = core::sweepFigureParallel(
        "quadrants", base, TopologyKind::Full, core::Metric::ExecTime,
        {1, 2, 4}, options);
    ASSERT_TRUE(result.complete()) << result.failures.size()
                                   << " failed points";
    ASSERT_EQ(result.figure.points.size(), 3u);
    for (const core::SeriesPoint &pt : result.figure.points) {
        ASSERT_EQ(pt.values.size(), 5u);
        for (const double v : pt.values)
            EXPECT_GT(v, 0.0);
    }
    // Column order follows the machine list.
    const auto columns = core::machineColumns(options.machines);
    ASSERT_EQ(columns.size(), 5u);
    EXPECT_EQ(columns[3], "targetic");
    EXPECT_EQ(columns[4], "logpdir");
    // CSV/JSON writers key off the same list.
    std::ostringstream csv;
    core::writeFigureCsv(csv, result.figure);
    EXPECT_NE(csv.str().find("procs,target,logp,logpc,targetic,logpdir"),
              std::string::npos);
    std::ostringstream json;
    core::writeFigureJson(json, result);
    EXPECT_NE(json.str().find("\"targetic\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"logpdir\":"), std::string::npos);
}

TEST(QuadrantSweep, SingleAxisQuadrantsBracketTheTrio)
{
    // At P=1 there is no network traffic on the full topology sweep of
    // EP, so every directory-backed machine must agree exactly with the
    // target and every ideal-cache machine with logp+c.
    core::RunConfig base;
    base.app = "ep";
    base.params.n = 64;
    core::SweepOptions options;
    options.machines = mach::allQuadrants();
    const core::SweepResult result = core::sweepFigureParallel(
        "quadrants-p1", base, TopologyKind::Full, core::Metric::ExecTime,
        {1}, options);
    ASSERT_TRUE(result.complete());
    ASSERT_EQ(result.figure.points.size(), 1u);
    const auto &v = result.figure.points[0].values;
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v[4], v[0]); // logp+dir == target at P=1
    EXPECT_DOUBLE_EQ(v[3], v[2]); // target+ic == logp+c at P=1
}

} // namespace
