/**
 * @file
 * Chaos suite for the serve service path: every failure branch of the
 * daemon is driven end-to-end through Service::handle with src/fault
 * plans carried in the request itself — wedge, corrupt, drop, stall —
 * plus the deadline, overload-shed and graceful-drain branches.
 *
 * Lives in the leak-check-exempt chaos binary: wedged fibers abandon
 * their stacks by design (see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve/service.hh"

namespace {

using namespace absim;

/** Service with paranoid budgets so no injected fault can hang it. */
serve::ServiceConfig
chaosServiceConfig(unsigned workers = 1, std::size_t maxQueue = 4)
{
    serve::ServiceConfig config;
    config.workers = workers;
    config.maxQueue = maxQueue;
    // One attempt by default so an injected fault surfaces instead of
    // being healed by the policy retry (the retry test opts back in).
    config.policy.maxAttempts = 1;
    config.policy.budget.maxEvents = 500'000;
    config.policy.budget.stallDispatchLimit = 100'000;
    return config;
}

/** A run request against the target machine with @p extra fields. */
std::string
chaosRun(const std::string &extra)
{
    return "{\"op\":\"run\",\"app\":\"is\",\"machine\":\"target\","
           "\"procs\":4,\"size\":256" +
           (extra.empty() ? "" : "," + extra) + "}";
}

/** Wait until one request is executing (never longer than ~4s). */
bool
awaitInFlight(serve::Service &service)
{
    for (int i = 0; i < 800; ++i) {
        if (service.stats().inFlight == 1)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
}

TEST(ServeChaos, WedgedFiberSurfacesAsNamedErrorResponse)
{
    serve::Service service(chaosServiceConfig());
    const std::string response = service.handle(
        chaosRun("\"fault_plan\":\"wedge@50:node=1\""));
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
        << response;
    // Peers spinning at a barrier exhaust the event budget; an app that
    // blocks everyone drains into a deadlock.  Either way it is named.
    EXPECT_TRUE(
        response.find("\"error\":\"BudgetExceeded\"") !=
            std::string::npos ||
        response.find("\"error\":\"Deadlock\"") != std::string::npos)
        << response;
    EXPECT_EQ(service.stats().failed, 1u);
}

TEST(ServeChaos, CorruptedTransitionFailsTheCheckThroughTheService)
{
    serve::Service service(chaosServiceConfig());
    const std::string response =
        service.handle(chaosRun("\"fault_plan\":\"corrupt@30; seed=5\""));
    EXPECT_NE(response.find("\"error\":\"CheckFailed\""),
              std::string::npos)
        << response;
}

TEST(ServeChaos, DroppedOverheadBreaksConservationThroughTheService)
{
    serve::Service service(chaosServiceConfig());
    const std::string response =
        service.handle(chaosRun("\"fault_plan\":\"drop@25\""));
    EXPECT_NE(response.find("\"error\":\"CheckFailed\""),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("overhead buckets"), std::string::npos)
        << response;
}

TEST(ServeChaos, StalledQueueTripsTheWatchdogThroughTheService)
{
    serve::Service service(chaosServiceConfig());
    const std::string response =
        service.handle(chaosRun("\"fault_plan\":\"stall@500\""));
    EXPECT_NE(response.find("\"error\":\"Deadlock\""), std::string::npos)
        << response;
    EXPECT_NE(response.find("no sim-time progress"), std::string::npos)
        << response;
}

TEST(ServeChaos, PolicyRetryRecoversATransientFaultThroughTheService)
{
    // The injector latches once per arm: attempt 1 hits the corruption
    // and fails, the seed-perturbed retry runs clean — the client sees
    // a plain success.
    serve::Service service(chaosServiceConfig());
    const std::string response = service.handle(chaosRun(
        "\"fault_plan\":\"corrupt@30; seed=5\",\"retries\":2,"
        "\"backoff_ms\":1"));
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
        << response;
    EXPECT_EQ(service.stats().completed, 1u);
}

TEST(ServeChaos, FailedRunsAreNeverCachedSoARetryCanSucceed)
{
    serve::Service service(chaosServiceConfig());
    const std::string failed =
        service.handle(chaosRun("\"fault_plan\":\"drop@25\""));
    ASSERT_NE(failed.find("\"status\":\"error\""), std::string::npos);
    // The identical run without the fault plan computes fresh.
    const std::string clean = service.handle(chaosRun(""));
    EXPECT_NE(clean.find("\"status\":\"ok\""), std::string::npos)
        << clean;
}

TEST(ServeChaos, TraceRequestEmbedsExcerptInTheErrorResponse)
{
    serve::Service service(chaosServiceConfig());
    const std::string response = service.handle(chaosRun(
        "\"fault_plan\":\"drop@25\",\"trace\":\"all\""));
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
        << response;
    EXPECT_NE(response.find("\"trace\":\""), std::string::npos)
        << response;
}

TEST(ServeChaos, DeadlineExceededIsNamedNotAHang)
{
    serve::Service service(chaosServiceConfig());
    // A stalled queue dispatches forever without sim-time progress; the
    // microscopic wall deadline cuts it off long before the (huge)
    // stall limit would.
    const std::string response = service.handle(chaosRun(
        "\"fault_plan\":\"stall@500\",\"stall_limit\":4000000000,"
        "\"max_events\":0,\"deadline_s\":0.05"));
    EXPECT_NE(response.find("\"error\":\"DeadlineExceeded\""),
              std::string::npos)
        << response;
}

TEST(ServeChaos, OverloadShedsDeterministicallyWhileAWorkerIsBusy)
{
    // One worker, zero queue slots: while the slow request holds the
    // worker, any new compute must get the shed response immediately.
    serve::Service service(chaosServiceConfig(1, 0));
    const std::string slow = chaosRun(
        "\"fault_plan\":\"stall@500\",\"stall_limit\":4000000000,"
        "\"max_events\":0,\"deadline_s\":2");
    std::string slowResponse;
    std::thread submitter(
        [&] { slowResponse = service.handle(slow); });
    ASSERT_TRUE(awaitInFlight(service));

    const std::string shed = service.handle(chaosRun(""));
    EXPECT_NE(shed.find("\"status\":\"shed\""), std::string::npos)
        << shed;
    EXPECT_NE(shed.find("\"error\":\"admission-reject\""),
              std::string::npos)
        << shed;

    submitter.join();
    EXPECT_NE(slowResponse.find("\"error\":\"DeadlineExceeded\""),
              std::string::npos)
        << slowResponse;
    EXPECT_EQ(service.stats().shed, 1u);
}

TEST(ServeChaos, GracefulDrainFinishesInFlightWorkAndRefusesNew)
{
    serve::Service service(chaosServiceConfig(1, 4));
    const std::string slow = chaosRun(
        "\"fault_plan\":\"stall@500\",\"stall_limit\":4000000000,"
        "\"max_events\":0,\"deadline_s\":2");
    std::string slowResponse;
    std::thread submitter(
        [&] { slowResponse = service.handle(slow); });
    ASSERT_TRUE(awaitInFlight(service));

    // SIGTERM's path: stop admitting, new compute gets the draining
    // response while the in-flight request keeps executing.
    service.beginDrain();
    const std::string refused = service.handle(chaosRun(""));
    EXPECT_NE(refused.find("\"status\":\"draining\""), std::string::npos)
        << refused;

    // drain() blocks until the slow request completes — the client
    // holding it still gets its real (deadline) response.
    service.drain();
    submitter.join();
    EXPECT_NE(slowResponse.find("\"error\":\"DeadlineExceeded\""),
              std::string::npos)
        << slowResponse;
    EXPECT_EQ(service.stats().inFlight, 0u);
    EXPECT_EQ(service.stats().rejectedDraining, 1u);
}

} // namespace
