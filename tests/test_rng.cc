/**
 * @file
 * Tests for the deterministic workload RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace {

using absim::sim::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (int v = 0; v < 8; ++v)
        EXPECT_TRUE(seen[v]) << v;
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RoughlyUniformBuckets)
{
    Rng rng(13);
    int buckets[10] = {};
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++buckets[rng.below(10)];
    for (const int count : buckets) {
        EXPECT_GT(count, draws / 10 * 0.9);
        EXPECT_LT(count, draws / 10 * 1.1);
    }
}

} // namespace
