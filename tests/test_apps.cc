/**
 * @file
 * Application correctness across every machine characterization: a
 * parameterized (app x machine x P) sweep verifying each kernel's
 * numerical result, plus the paper's cross-machine relationships
 * (identical results everywhere, LogP+C traffic at most the target's,
 * full timing accounting).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"

namespace {

using namespace absim;
using core::RunConfig;

apps::AppParams
smallParams(const std::string &app)
{
    apps::AppParams params;
    if (app == "ep")
        params.n = 2048;
    else if (app == "fft")
        params.n = 256;
    else if (app == "is")
        params.n = 1024;
    else if (app == "cg") {
        params.n = 128;
        params.iterations = 3;
    } else if (app == "cholesky") {
        params.n = 64;
    } else if (app == "stencil") {
        params.n = 32;
        params.iterations = 3;
    } else if (app == "radix") {
        params.n = 512;
    }
    return params;
}

TEST(AppRegistry, KnowsAllFiveApplications)
{
    const auto names = apps::appNames();
    ASSERT_EQ(names.size(), 5u);
    for (const auto &name : names)
        EXPECT_EQ(apps::makeApp(name)->name(), name);
    EXPECT_THROW(apps::makeApp("mp3d"), std::invalid_argument);
}

TEST(AppRegistry, ExtensionAppsAreSeparate)
{
    for (const auto &name : apps::extensionAppNames()) {
        EXPECT_EQ(apps::makeApp(name)->name(), name);
        for (const auto &paper : apps::appNames())
            EXPECT_NE(name, paper);
    }
}

class AppMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, mach::MachineKind, std::uint32_t>>
{
};

TEST_P(AppMatrix, ComputesVerifiedResult)
{
    const auto &[app, machine, procs] = GetParam();
    RunConfig config;
    config.app = app;
    config.params = smallParams(app);
    config.machine = machine;
    config.topology = net::TopologyKind::Hypercube;
    config.procs = procs;
    config.checkResult = true; // runOne throws if the kernel is wrong.
    const auto profile = core::runOne(config);

    // Full accounting: every tick of every processor categorized.
    ASSERT_EQ(profile.procs.size(), procs);
    for (std::uint32_t n = 0; n < procs; ++n) {
        const auto &s = profile.procs[n];
        EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention)
            << app << " proc " << n;
    }
    EXPECT_GT(profile.execTime(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AppMatrix,
    ::testing::Combine(
        ::testing::Values("ep", "fft", "is", "cg", "cholesky", "stencil",
                          "radix"),
        ::testing::Values(mach::MachineKind::Target,
                          mach::MachineKind::LogP,
                          mach::MachineKind::LogPC),
        ::testing::Values(1u, 2u, 4u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               mach::toString(std::get<1>(info.param)).substr(0, 4) +
               (mach::toString(std::get<1>(info.param)).size() > 4 ? "C"
                                                                   : "") +
               "_p" + std::to_string(std::get<2>(info.param));
    });

class AppRelations : public ::testing::TestWithParam<std::string>
{
  protected:
    stats::Profile
    runOn(mach::MachineKind machine)
    {
        RunConfig config;
        config.app = GetParam();
        config.params = smallParams(GetParam());
        config.machine = machine;
        config.topology = net::TopologyKind::Full;
        config.procs = 4;
        return core::runOne(config);
    }
};

TEST_P(AppRelations, IdealCacheTrafficAtMostTarget)
{
    // LogP+C models the minimum messages any invalidation protocol could
    // hope to achieve (paper Section 3.2).
    const auto target = runOn(mach::MachineKind::Target);
    const auto logpc = runOn(mach::MachineKind::LogPC);
    EXPECT_LE(logpc.machine.messages, target.machine.messages);
}

TEST_P(AppRelations, DeterministicAcrossRepeats)
{
    const auto a = runOn(mach::MachineKind::Target);
    const auto b = runOn(mach::MachineKind::Target);
    EXPECT_EQ(a.execTime(), b.execTime());
    EXPECT_EQ(a.machine.messages, b.machine.messages);
    EXPECT_EQ(a.engineEvents, b.engineEvents);
}

INSTANTIATE_TEST_SUITE_P(Suite, AppRelations,
                         ::testing::Values("ep", "fft", "is", "cg",
                                           "cholesky", "stencil",
                                           "radix"));

TEST(AppSingleProc, NoNetworkTrafficAtP1)
{
    for (const auto &app : apps::appNames()) {
        RunConfig config;
        config.app = app;
        config.params = smallParams(app);
        config.machine = mach::MachineKind::Target;
        config.procs = 1;
        const auto profile = core::runOne(config);
        EXPECT_EQ(profile.machine.messages, 0u) << app;
        EXPECT_EQ(profile.procs[0].latency, 0u) << app;
        EXPECT_EQ(profile.procs[0].contention, 0u) << app;
    }
}

TEST(AppScaling, EpSpeedsUpNearlyLinearly)
{
    // EP is embarrassingly parallel: computation dominates, so exec
    // time at P=4 should be close to a quarter of P=1.
    RunConfig config;
    config.app = "ep";
    config.params = smallParams("ep");
    config.machine = mach::MachineKind::Target;
    config.procs = 1;
    const double t1 = static_cast<double>(core::runOne(config).execTime());
    config.procs = 4;
    const double t4 = static_cast<double>(core::runOne(config).execTime());
    EXPECT_LT(t4, t1 / 3.0);
    EXPECT_GT(t4, t1 / 5.0);
}

} // namespace
