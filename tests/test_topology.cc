/**
 * @file
 * Unit and property tests for the three interconnect topologies: route
 * validity (every route is a connected minimal path), dimension-ordered
 * routing properties, bisection link counts, and the mesh shape rule.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "net/topology.hh"

namespace {

using namespace absim::net;

TEST(TopologyFactory, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(Topology::make(TopologyKind::Full, 3),
                 std::invalid_argument);
    EXPECT_THROW(Topology::make(TopologyKind::Hypercube, 0),
                 std::invalid_argument);
    EXPECT_THROW(Topology::make(TopologyKind::Mesh2D, 24),
                 std::invalid_argument);
}

TEST(TopologyFactory, ToStringNames)
{
    EXPECT_EQ(toString(TopologyKind::Full), "full");
    EXPECT_EQ(toString(TopologyKind::Hypercube), "cube");
    EXPECT_EQ(toString(TopologyKind::Mesh2D), "mesh");
}

TEST(FullTopology, SingleHopRoutes)
{
    FullTopology full(8);
    for (NodeId s = 0; s < 8; ++s) {
        for (NodeId d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> path;
            full.route(s, d, path);
            ASSERT_EQ(path.size(), 1u);
            EXPECT_EQ(full.hops(s, d), 1u);
            EXPECT_EQ(full.linkEndpoints(path[0]),
                      std::make_pair(s, d));
        }
    }
}

TEST(FullTopology, DistinctPairsUseDistinctLinks)
{
    FullTopology full(4);
    std::set<LinkId> seen;
    for (NodeId s = 0; s < 4; ++s) {
        for (NodeId d = 0; d < 4; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> path;
            full.route(s, d, path);
            EXPECT_TRUE(seen.insert(path[0]).second)
                << "link shared between pairs";
        }
    }
}

TEST(FullTopology, BisectionLinks)
{
    // 2 * (p/2)^2 links cross the cut.
    EXPECT_EQ(FullTopology(2).bisectionLinks(), 2u);
    EXPECT_EQ(FullTopology(4).bisectionLinks(), 8u);
    EXPECT_EQ(FullTopology(16).bisectionLinks(), 128u);
}

TEST(HypercubeTopology, HopsIsHammingDistance)
{
    HypercubeTopology cube(16);
    EXPECT_EQ(cube.hops(0b0000, 0b1111), 4u);
    EXPECT_EQ(cube.hops(0b0101, 0b0100), 1u);
    EXPECT_EQ(cube.hops(3, 3), 0u);
}

TEST(HypercubeTopology, EcubeFixesBitsLowToHigh)
{
    HypercubeTopology cube(8);
    std::vector<LinkId> path;
    cube.route(0b000, 0b101, path);
    ASSERT_EQ(path.size(), 2u);
    // First hop flips bit 0 (0 -> 1), second flips bit 2 (1 -> 5).
    EXPECT_EQ(cube.linkEndpoints(path[0]), std::make_pair(NodeId{0},
                                                          NodeId{1}));
    EXPECT_EQ(cube.linkEndpoints(path[1]), std::make_pair(NodeId{1},
                                                          NodeId{5}));
}

TEST(HypercubeTopology, BisectionLinks)
{
    EXPECT_EQ(HypercubeTopology(8).bisectionLinks(), 8u);
    EXPECT_EQ(HypercubeTopology(32).bisectionLinks(), 32u);
}

TEST(MeshTopology, ShapeRule)
{
    std::uint32_t r = 0, c = 0;
    MeshTopology::shapeFor(16, r, c);
    EXPECT_EQ(r, 4u);
    EXPECT_EQ(c, 4u);
    MeshTopology::shapeFor(32, r, c);
    EXPECT_EQ(r, 4u);
    EXPECT_EQ(c, 8u); // Odd power of two: cols = 2 x rows.
    MeshTopology::shapeFor(2, r, c);
    EXPECT_EQ(r, 1u);
    EXPECT_EQ(c, 2u);
}

TEST(MeshTopology, HopsIsManhattanDistance)
{
    MeshTopology mesh(16); // 4x4
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(mesh.hops(5, 6), 1u);
    EXPECT_EQ(mesh.hops(1, 13), 3u);
}

TEST(MeshTopology, XyRoutesColumnFirst)
{
    MeshTopology mesh(16); // 4x4, node = 4*row + col.
    std::vector<LinkId> path;
    mesh.route(0, 10, path); // (0,0) -> (2,2)
    ASSERT_EQ(path.size(), 4u);
    // Two east hops, then two south hops.
    EXPECT_EQ(mesh.linkEndpoints(path[0]).second, 1u);
    EXPECT_EQ(mesh.linkEndpoints(path[1]).second, 2u);
    EXPECT_EQ(mesh.linkEndpoints(path[2]).second, 6u);
    EXPECT_EQ(mesh.linkEndpoints(path[3]).second, 10u);
}

TEST(MeshTopology, BisectionLinks)
{
    EXPECT_EQ(MeshTopology(16).bisectionLinks(), 8u);  // 4x4: 2*4 rows.
    EXPECT_EQ(MeshTopology(32).bisectionLinks(), 8u);  // 4x8: 2*4 rows.
    EXPECT_EQ(MeshTopology(4).bisectionLinks(), 4u);   // 2x2.
}

/**
 * Property test over all topologies and sizes: every route is a connected
 * path from src to dst with exactly hops() links and no repeated links.
 */
class RouteProperty
    : public ::testing::TestWithParam<std::tuple<TopologyKind,
                                                 std::uint32_t>>
{
};

TEST_P(RouteProperty, RoutesAreConnectedMinimalPaths)
{
    const auto [kind, p] = GetParam();
    const auto topo = Topology::make(kind, p);
    for (NodeId s = 0; s < p; ++s) {
        for (NodeId d = 0; d < p; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> path;
            topo->route(s, d, path);
            ASSERT_EQ(path.size(), topo->hops(s, d));
            std::set<LinkId> unique(path.begin(), path.end());
            EXPECT_EQ(unique.size(), path.size()) << "repeated link";
            NodeId cur = s;
            for (const LinkId link : path) {
                ASSERT_LT(link, topo->linkCount());
                const auto [from, to] = topo->linkEndpoints(link);
                ASSERT_EQ(from, cur) << "disconnected path";
                cur = to;
            }
            EXPECT_EQ(cur, d);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, RouteProperty,
    ::testing::Combine(::testing::Values(TopologyKind::Full,
                                         TopologyKind::Hypercube,
                                         TopologyKind::Mesh2D),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u, 64u)),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) +
               std::to_string(std::get<1>(info.param));
    });

/**
 * Dimension-ordered routing is deadlock-free under incremental link
 * acquisition iff link usage respects a global order along every path.
 * Check the sufficient condition we rely on: along any route, link ids
 * grouped by routing phase never go "backwards" in dimension order.
 */
TEST(RouteProperty, MeshXyNeverTurnsBackToX)
{
    MeshTopology mesh(64); // 8x8
    for (NodeId s = 0; s < 64; ++s) {
        for (NodeId d = 0; d < 64; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> path;
            mesh.route(s, d, path);
            bool seen_y = false;
            for (const LinkId link : path) {
                const bool is_y = (link % 4) >= 2;
                if (seen_y)
                    EXPECT_TRUE(is_y) << "route turned back to X";
                seen_y = seen_y || is_y;
            }
        }
    }
}

} // namespace
