/**
 * @file
 * Tests of the applications' native reference computations and input
 * generators — the ground truth the simulated runs are checked against.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "apps/cg.hh"
#include "apps/cholesky.hh"
#include "apps/ep.hh"
#include "apps/fft.hh"
#include "apps/stencil.hh"

namespace {

using namespace absim;

TEST(FftReference, MatchesNaiveDftOnSmallInput)
{
    const std::uint64_t n = 64;
    const auto input = apps::FftApp::makeInput(n, 99);
    const auto fast = apps::FftApp::referenceFft(input);

    for (std::uint64_t k = 0; k < n; ++k) {
        std::complex<double> sum{0, 0};
        for (std::uint64_t t = 0; t < n; ++t) {
            const double ang = -2.0 * std::numbers::pi *
                               static_cast<double>(k * t) /
                               static_cast<double>(n);
            sum += input[t] * std::complex<double>{std::cos(ang),
                                                   std::sin(ang)};
        }
        ASSERT_NEAR(std::abs(fast[k] - sum), 0.0, 1e-9) << "bin " << k;
    }
}

TEST(FftReference, LinearityHolds)
{
    const std::uint64_t n = 128;
    auto a = apps::FftApp::makeInput(n, 1);
    auto b = apps::FftApp::makeInput(n, 2);
    std::vector<std::complex<double>> sum(n);
    for (std::uint64_t i = 0; i < n; ++i)
        sum[i] = a[i] + b[i];
    const auto fa = apps::FftApp::referenceFft(a);
    const auto fb = apps::FftApp::referenceFft(b);
    const auto fsum = apps::FftApp::referenceFft(sum);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_NEAR(std::abs(fsum[i] - (fa[i] + fb[i])), 0.0, 1e-9);
}

TEST(EpReference, SliceSumInvariantToProcessorCount)
{
    // The total pair count is fixed, so the aggregate tally must only
    // depend on how slices partition the stream... which it does NOT in
    // general (each proc has its own stream).  What must hold: the same
    // (pairs, seed, procs) triple is deterministic, and counts sum to at
    // most the pair count.
    const auto counts = apps::EpApp::referenceCounts(4096, 7, 4);
    const auto again = apps::EpApp::referenceCounts(4096, 7, 4);
    std::uint64_t total = 0;
    for (std::uint32_t a = 0; a < apps::EpApp::kAnnuli; ++a) {
        EXPECT_EQ(counts[a], again[a]);
        total += counts[a];
    }
    EXPECT_LE(total, 4096u);
    EXPECT_GT(total, 4096u / 2); // Polar method accepts ~78.5%.
    // Gaussian mass concentrates in the first annulus.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[2]);
}

TEST(CgReference, MatrixIsSymmetricDiagonallyDominant)
{
    const auto a = apps::CgApp::makeMatrix(64, 3);
    ASSERT_EQ(a.n, 64u);
    // Dense mirror for symmetry checking.
    std::vector<std::vector<double>> dense(64,
                                           std::vector<double>(64, 0.0));
    for (std::uint64_t i = 0; i < 64; ++i)
        for (std::uint64_t k = a.rowPtr[i]; k < a.rowPtr[i + 1]; ++k)
            dense[i][a.col[k]] = a.val[k];
    for (std::uint64_t i = 0; i < 64; ++i) {
        double offdiag = 0.0;
        for (std::uint64_t j = 0; j < 64; ++j) {
            EXPECT_DOUBLE_EQ(dense[i][j], dense[j][i]);
            if (i != j)
                offdiag += std::abs(dense[i][j]);
        }
        EXPECT_GT(dense[i][i], offdiag) << "row " << i;
    }
}

TEST(CholeskyReference, FillPatternIsClosed)
{
    // The right-looking fan-out update requires the fill closure:
    // L[k][j] and L[i][j] nonzero with i >= k > j  =>  L[i][k] nonzero.
    const auto sym = apps::CholeskyApp::makeProblem(48, 9);
    const std::uint64_t n = sym.n;
    for (std::uint64_t j = 0; j < n; ++j) {
        for (std::uint64_t s = sym.colPtr[j]; s < sym.colPtr[j + 1];
             ++s) {
            const std::uint32_t k = sym.rowIdx[s];
            if (k == j)
                continue;
            for (std::uint64_t t = s; t < sym.colPtr[j + 1]; ++t) {
                const std::uint32_t i = sym.rowIdx[t];
                ASSERT_GE(sym.rowPos[k][i], 0)
                    << "missing fill at (" << i << "," << k << ")";
            }
        }
    }
}

TEST(CholeskyReference, DependencyCountsMatchPattern)
{
    const auto sym = apps::CholeskyApp::makeProblem(32, 4);
    // depCount[k] = number of structural nonzeros left of the diagonal
    // in row k == number of columns whose struct contains k.
    std::vector<std::uint32_t> expect(sym.n, 0);
    for (std::uint64_t j = 0; j < sym.n; ++j)
        for (std::uint64_t s = sym.colPtr[j]; s < sym.colPtr[j + 1]; ++s)
            if (sym.rowIdx[s] > j)
                ++expect[sym.rowIdx[s]];
    for (std::uint64_t k = 0; k < sym.n; ++k)
        EXPECT_EQ(sym.depCount[k], expect[k]) << "column " << k;
    // Column 0 never has dependencies.
    EXPECT_EQ(sym.depCount[0], 0u);
}

TEST(StencilReference, BoundaryIsFixed)
{
    const std::uint64_t n = 16;
    const auto before = apps::StencilApp::reference(n, 5, 0);
    const auto after = apps::StencilApp::reference(n, 5, 6);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            if (i == 0 || j == 0 || i == n - 1 || j == n - 1)
                EXPECT_EQ(after[i * n + j], before[i * n + j]);
        }
    }
}

TEST(StencilReference, InteriorIsNeighborMean)
{
    const std::uint64_t n = 8;
    const auto zero = apps::StencilApp::reference(n, 3, 0);
    const auto one = apps::StencilApp::reference(n, 3, 1);
    for (std::uint64_t i = 1; i + 1 < n; ++i) {
        for (std::uint64_t j = 1; j + 1 < n; ++j) {
            const double mean =
                0.25 * (zero[(i - 1) * n + j] + zero[(i + 1) * n + j] +
                        zero[i * n + j - 1] + zero[i * n + j + 1]);
            EXPECT_DOUBLE_EQ(one[i * n + j], mean);
        }
    }
}

TEST(StencilReference, SweepsContractTowardBoundaryRange)
{
    // Jacobi iteration with fixed boundary keeps values within the
    // initial min/max (maximum principle).
    const std::uint64_t n = 12;
    const auto init = apps::StencilApp::reference(n, 8, 0);
    const auto relaxed = apps::StencilApp::reference(n, 8, 10);
    const auto [lo, hi] =
        std::minmax_element(init.begin(), init.end());
    for (const double v : relaxed) {
        EXPECT_GE(v, *lo - 1e-12);
        EXPECT_LE(v, *hi + 1e-12);
    }
}

TEST(CholeskyReference, DiagonalFirstInEveryColumn)
{
    const auto sym = apps::CholeskyApp::makeProblem(32, 4);
    for (std::uint64_t j = 0; j < sym.n; ++j) {
        ASSERT_LT(sym.colPtr[j], sym.colPtr[j + 1]);
        EXPECT_EQ(sym.rowIdx[sym.colPtr[j]], j);
    }
}

} // namespace
