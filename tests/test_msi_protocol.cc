/**
 * @file
 * Scenarios specific to the MSI protocol variant, plus the cross-
 * protocol relationships the protocol ablation relies on.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "machine_fixture.hh"
#include "mem/addr.hh"

namespace {

using namespace absim;
using mach::MachineKind;
using mach::ProtocolKind;
using mem::LineState;
using net::TopologyKind;

constexpr std::uint64_t kAfter = 1'000'000;

/** Harness with an MSI target machine. */
struct MsiHarness
{
    MsiHarness(std::uint32_t procs, TopologyKind topo = TopologyKind::Full)
        : heap(procs), machine(eq, topo, procs, heap, {},
                               ProtocolKind::Msi),
          runtime(eq, machine, procs)
    {
    }

    void
    run(std::function<void(rt::Proc &)> body)
    {
        runtime.spawn(std::move(body));
        runtime.run();
    }

    sim::EventQueue eq;
    rt::SharedHeap heap;
    mach::TargetMachine machine;
    rt::Runtime runtime;
};

TEST(MsiProtocol, ReadMissRecallsThroughMemory)
{
    MsiHarness h(4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 7);
        } else if (p.node() == 0) {
            p.compute(kAfter);
            EXPECT_EQ(a.read(p, 0), 7u);
        }
    });
    // Ex-owner keeps a *clean* copy; no owner remains.
    EXPECT_EQ(h.machine.cache(1).stateOf(blk), LineState::Valid);
    EXPECT_EQ(h.machine.cache(0).stateOf(blk), LineState::Valid);
    ASSERT_NE(h.machine.directory().peek(blk), nullptr);
    EXPECT_EQ(h.machine.directory().peek(blk)->owner,
              mem::DirectoryEntry::kNoOwner);

    // Recall chain: req(8) + recall(8) + wb(32) + data(32).
    const auto &reader = h.runtime.proc(0).stats();
    EXPECT_EQ(reader.latency, 400u + 400u + 1600u + 1600u);
}

TEST(MsiProtocol, ReadMissCostsMoreThanBerkeley)
{
    // The same scenario under Berkeley is a 3-hop owner-supply: MSI's
    // recall through memory is strictly slower.
    auto latency_for = [](ProtocolKind protocol) {
        absim::test::MachineHarness dummy(MachineKind::LogP,
                                          TopologyKind::Full, 1);
        (void)dummy;
        sim::EventQueue eq;
        rt::SharedHeap heap(4);
        mach::TargetMachine machine(eq, TopologyKind::Full, 4, heap, {},
                                    protocol);
        rt::Runtime runtime(eq, machine, 4);
        rt::SharedArray<std::uint64_t> a(heap, 4, rt::Placement::OnNode,
                                         2);
        runtime.spawn([&](rt::Proc &p) {
            if (p.node() == 1) {
                a.write(p, 0, 7);
            } else if (p.node() == 0) {
                p.compute(kAfter);
                a.read(p, 0);
            }
        });
        runtime.run();
        return runtime.proc(0).stats().latency;
    };
    EXPECT_GT(latency_for(ProtocolKind::Msi),
              latency_for(ProtocolKind::Berkeley));
}

TEST(MsiProtocol, WriteMissRecallsThroughMemory)
{
    MsiHarness h(4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 3);
        } else if (p.node() == 0) {
            p.compute(kAfter);
            a.write(p, 0, 4);
        }
    });
    EXPECT_EQ(h.machine.cache(0).stateOf(blk), LineState::Dirty);
    EXPECT_EQ(h.machine.cache(1).stateOf(blk), LineState::Invalid);
    EXPECT_EQ(h.machine.directory().peek(blk)->owner, 0);
    EXPECT_EQ(a.raw(0), 4u);
    // req(8) + recall(8) + wb(32) + data(32) + grant(8).
    EXPECT_EQ(h.runtime.proc(0).stats().latency,
              400u + 400u + 1600u + 1600u + 400u);
}

TEST(MsiProtocol, SharedDirtyNeverAppears)
{
    MsiHarness h(4, TopologyKind::Mesh2D);
    rt::SharedArray<std::uint64_t> a(h.heap, 64,
                                     rt::Placement::Interleaved);
    h.run([&](rt::Proc &p) {
        for (int i = 0; i < 50; ++i) {
            const std::size_t at = (i * 7 + p.node() * 11) % 64;
            if ((i + p.node()) % 3 == 0)
                a.fetchAdd(p, at, 1);
            else
                a.read(p, at);
            p.compute(9);
        }
    });
    for (std::uint32_t n = 0; n < 4; ++n)
        for (const auto &[blk, state] :
             h.machine.cache(n).residentLines())
            EXPECT_NE(state, LineState::SharedDirty)
                << "node " << n << " blk " << blk;
}

TEST(MsiProtocol, AppsComputeCorrectResults)
{
    for (const char *app : {"fft", "is"}) {
        core::RunConfig config;
        config.app = app;
        config.params.n = app == std::string("fft") ? 256 : 1024;
        config.machine = MachineKind::Target;
        config.protocol = ProtocolKind::Msi;
        config.procs = 4;
        EXPECT_NO_THROW(core::runOne(config)) << app;
    }
}

TEST(MsiProtocol, MessageOrderingAcrossProtocols)
{
    // The paper's minimality claim: LogP+C <= Berkeley <= MSI messages,
    // on a sharing-heavy workload.
    auto messages_for = [](MachineKind machine, ProtocolKind protocol) {
        core::RunConfig config;
        config.app = "cg";
        config.params.n = 128;
        config.params.iterations = 3;
        config.machine = machine;
        config.protocol = protocol;
        config.procs = 4;
        return core::runOne(config).machine.messages;
    };
    const auto ideal =
        messages_for(MachineKind::LogPC, ProtocolKind::Berkeley);
    const auto berkeley =
        messages_for(MachineKind::Target, ProtocolKind::Berkeley);
    const auto msi = messages_for(MachineKind::Target, ProtocolKind::Msi);
    EXPECT_LE(ideal, berkeley);
    EXPECT_LE(berkeley, msi);
}

} // namespace
