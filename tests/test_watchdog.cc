/**
 * @file
 * Litmus tests for the run watchdog and the fault-injection (chaos)
 * layer.  Every test here drives the simulator into a pathological
 * state on purpose — deadlock, livelock, runaway, corrupted coherence
 * state — and asserts that the robustness machinery converts it into a
 * structured, named diagnosis instead of a hang or an abort.
 *
 * These tests live in their own binary (absim_chaos_tests): a wedged
 * fiber is deliberately abandoned mid-flight, so heap blocks reachable
 * only from its dead stack frames are unrecoverable by design and leak
 * checkers must be off (see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "check/check.hh"
#include "core/experiment.hh"
#include "core/figures.hh"
#include "fault/fault.hh"
#include "machines/target_machine.hh"
#include "runtime/context.hh"
#include "runtime/shared.hh"
#include "sim/event_queue.hh"
#include "sim/process.hh"
#include "sim/resource.hh"
#include "sim/watchdog.hh"

namespace {

using namespace absim;

bool
dumpNames(const std::vector<sim::BlockedProcessInfo> &blocked,
          const std::string &name, const std::string &reason_substr)
{
    for (const auto &info : blocked)
        if (info.name == name &&
            info.waitReason.find(reason_substr) != std::string::npos)
            return true;
    return false;
}

// ---- Deadlock litmus cases ---------------------------------------------

TEST(Watchdog, LockOrderInversionIsDiagnosed)
{
    sim::EventQueue eq;
    rt::SharedHeap heap(2);
    mach::TargetMachine machine(eq, net::TopologyKind::Full, 2, heap);
    rt::Runtime runtime(eq, machine, 2);
    sim::FifoMutex a;
    sim::FifoMutex b;

    // The classic ABBA inversion: each worker holds one mutex and wants
    // the other.  The queue drains with both suspended.
    runtime.spawn([&](rt::Proc &p) {
        sim::FifoMutex &first = p.node() == 0 ? a : b;
        sim::FifoMutex &second = p.node() == 0 ? b : a;
        first.acquire();
        p.process()->delay(10);
        second.acquire();
    });

    try {
        runtime.run();
        FAIL() << "expected DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find("2 of 2 workers"),
                  std::string::npos)
            << e.what();
        EXPECT_TRUE(dumpNames(e.blocked(), "worker-0", "fifo-mutex"))
            << e.what();
        EXPECT_TRUE(dumpNames(e.blocked(), "worker-1", "fifo-mutex"))
            << e.what();
    }
}

TEST(Watchdog, GateNobodyOpensIsDiagnosed)
{
    sim::EventQueue eq;
    rt::SharedHeap heap(2);
    mach::TargetMachine machine(eq, net::TopologyKind::Full, 2, heap);
    rt::Runtime runtime(eq, machine, 2);
    sim::Condition gate;

    // Worker 1 waits on a condition nobody will ever notify.
    runtime.spawn([&](rt::Proc &p) {
        if (p.node() == 1)
            gate.wait();
    });

    try {
        runtime.run();
        FAIL() << "expected DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find("1 of 2 workers"),
                  std::string::npos)
            << e.what();
        EXPECT_TRUE(dumpNames(e.blocked(), "worker-1", "condition wait"))
            << e.what();
    }
}

TEST(Watchdog, LivelockedRetryLoopTripsStallWatchdog)
{
    sim::EventQueue eq;
    sim::RunBudget budget;
    budget.stallDispatchLimit = 500;
    eq.setBudget(budget);

    // A retry loop that re-polls at the same tick forever: the queue
    // never drains and the clock never advances.
    sim::Process spinner(eq, "spinner", [] {
        for (;;)
            sim::Process::current()->delay(0);
    });
    spinner.start();

    try {
        eq.run();
        FAIL() << "expected DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find("no sim-time progress"),
                  std::string::npos)
            << e.what();
        EXPECT_GE(e.eventsDispatched(), 500u);
        EXPECT_EQ(e.simTime(), 0u);
    }
}

// ---- Budget enforcement ------------------------------------------------

TEST(Watchdog, EventBudgetSurfacesStructuredError)
{
    sim::EventQueue eq;
    sim::RunBudget budget;
    budget.maxEvents = 10;
    eq.setBudget(budget);

    std::function<void()> tick = [&] { eq.scheduleAfter(1, tick); };
    eq.scheduleAfter(1, tick);

    try {
        eq.run();
        FAIL() << "expected BudgetExceededError";
    } catch (const sim::BudgetExceededError &e) {
        EXPECT_EQ(e.eventsDispatched(), 10u);
        EXPECT_EQ(e.simTime(), 10u);
        EXPECT_NE(std::string(e.what()).find("event budget exceeded"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Watchdog, SimTimeBudgetStopsBeforeDispatch)
{
    sim::EventQueue eq;
    sim::RunBudget budget;
    budget.maxSimTime = 100;
    eq.setBudget(budget);

    std::function<void()> tick = [&] { eq.scheduleAfter(30, tick); };
    eq.scheduleAfter(30, tick);

    try {
        eq.run();
        FAIL() << "expected BudgetExceededError";
    } catch (const sim::BudgetExceededError &e) {
        // Events at 30, 60, 90 fire; the one at 120 must not.
        EXPECT_EQ(e.eventsDispatched(), 3u);
        EXPECT_EQ(e.simTime(), 90u);
        EXPECT_NE(std::string(e.what()).find("sim-time budget"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Watchdog, WallClockBudgetInterruptsRunaway)
{
    sim::EventQueue eq;
    sim::RunBudget budget;
    budget.maxWallSeconds = 1e-9; // Expires by the next 1024-dispatch check.
    eq.setBudget(budget);

    std::function<void()> tick = [&] { eq.scheduleAfter(1, tick); };
    eq.scheduleAfter(1, tick);

    EXPECT_THROW(eq.run(), sim::BudgetExceededError);
}

TEST(Watchdog, UnlimitedBudgetIsInert)
{
    sim::RunBudget budget;
    EXPECT_TRUE(budget.unlimited());
    budget.maxEvents = 1;
    EXPECT_FALSE(budget.unlimited());
}

TEST(Watchdog, FormatBlockedDumpListsEveryProcess)
{
    std::vector<sim::BlockedProcessInfo> blocked;
    blocked.push_back({"worker-3", "suspended", "msg receive", 0});
    blocked.push_back({"helper", "delayed", "", 420});
    const std::string dump = sim::formatBlockedDump(blocked);
    EXPECT_NE(dump.find("2 unfinished process(es)"), std::string::npos);
    EXPECT_NE(dump.find("worker-3: suspended (msg receive)"),
              std::string::npos);
    EXPECT_NE(dump.find("helper: delayed until 420 ns"),
              std::string::npos);
}

// ---- Fault-plan parsing ------------------------------------------------

TEST(FaultPlan, ParsesFullSyntaxAndRoundTrips)
{
    const auto plan = fault::Plan::parse(
        "wedge@120:node=2; corrupt@80; drop@40; stall@500; seed=7");
    ASSERT_EQ(plan.faults.size(), 4u);
    EXPECT_EQ(plan.faults[0].kind, fault::Kind::WedgeFiber);
    EXPECT_EQ(plan.faults[0].at, 120u);
    EXPECT_EQ(plan.faults[0].node, 2u);
    EXPECT_EQ(plan.faults[1].kind, fault::Kind::CorruptTransition);
    EXPECT_EQ(plan.faults[2].kind, fault::Kind::DropOverhead);
    EXPECT_EQ(plan.faults[3].kind, fault::Kind::StallQueue);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_EQ(fault::Plan::parse(plan.toString()).toString(),
              plan.toString());
}

TEST(FaultPlan, RejectsMalformedPlans)
{
    EXPECT_THROW(fault::Plan::parse("wedge"), std::invalid_argument);
    EXPECT_THROW(fault::Plan::parse("explode@3"), std::invalid_argument);
    EXPECT_THROW(fault::Plan::parse("wedge@zero"), std::invalid_argument);
    EXPECT_THROW(fault::Plan::parse("corrupt@0"), std::invalid_argument);
    EXPECT_THROW(fault::Plan::parse("corrupt@3:node=1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::Plan::parse("wedge@3:speed=9"),
                 std::invalid_argument);
}

TEST(FaultPlan, InertWhenEmpty)
{
    EXPECT_FALSE(fault::armed());
    fault::ScopedPlan scoped(fault::Plan{});
    EXPECT_FALSE(fault::armed());
}

// ---- Chaos hooks through the full stack --------------------------------

namespace {

core::RunConfig
chaosConfig()
{
    core::RunConfig config;
    config.app = "is";
    config.params.n = 256;
    config.machine = mach::MachineKind::Target;
    config.procs = 4;
    return config;
}

core::RunPolicy
chaosPolicy(int attempts = 1)
{
    core::RunPolicy policy;
    policy.maxAttempts = attempts;
    // Bound the damage: a wedged worker leaves its peers spinning at a
    // barrier (simulated time keeps advancing), so the run must be cut
    // off by the event budget, not by hoping for a drain.
    policy.budget.maxEvents = 500'000;
    policy.budget.stallDispatchLimit = 100'000;
    return policy;
}

} // namespace

TEST(Chaos, WedgedFiberIsCaughtAndNamed)
{
    fault::ScopedPlan scoped(fault::Plan::parse("wedge@50:node=1"));
    const auto result = core::runOneSafe(chaosConfig(), chaosPolicy());
    ASSERT_FALSE(result.ok());
    const core::RunError &err = result.error();
    // Peers spinning on shared memory advance the clock, so the wedge
    // surfaces as an exhausted event budget; if the app instead blocks
    // everyone, the queue drains into a plain deadlock.  Both carry the
    // blocked-fiber dump.
    EXPECT_TRUE(err.kind == core::RunErrorKind::BudgetExceeded ||
                err.kind == core::RunErrorKind::Deadlock)
        << err.summary();
    EXPECT_TRUE(dumpNames(err.blockedFibers, "worker-1", "wedged fiber"))
        << err.summary();
    EXPECT_EQ(fault::injector().fired(fault::Kind::WedgeFiber), 1u);
}

TEST(Chaos, CorruptedTransitionFailsCoherenceCheck)
{
    fault::ScopedPlan scoped(
        fault::Plan::parse("corrupt@30; seed=5"));
    const auto result = core::runOneSafe(chaosConfig(), chaosPolicy());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, core::RunErrorKind::CheckFailed)
        << result.error().summary();
    EXPECT_EQ(fault::injector().fired(fault::Kind::CorruptTransition),
              1u);
}

TEST(Chaos, DeadWorkerHaltsEngineWithoutAnyBudget)
{
    // A worker that dies mid-run leaves its peers spinning at a
    // barrier in *simulated* time, so no watchdog ever trips.  The
    // runtime must halt the engine itself the moment the worker's
    // exception is captured — even with every budget field unlimited —
    // instead of dispatching spin events forever.
    fault::ScopedPlan scoped(
        fault::Plan::parse("corrupt@30; seed=5"));
    core::RunPolicy unbounded;
    unbounded.maxAttempts = 1;
    unbounded.budget = sim::RunBudget{}; // All zero: no limits at all.
    const auto result = core::runOneSafe(chaosConfig(), unbounded);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, core::RunErrorKind::CheckFailed)
        << result.error().summary();
}

TEST(Chaos, RetryRecoversFromTransientCorruption)
{
    // The injector latches each spec once per arm(): the first attempt
    // hits the corruption and fails its coherence check, the policy
    // retry re-runs the point cleanly.  This is exactly the transient
    // failure the retry exists for.
    fault::ScopedPlan scoped(
        fault::Plan::parse("corrupt@30; seed=5"));
    const auto result =
        core::runOneSafe(chaosConfig(), chaosPolicy(/*attempts=*/2));
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(fault::injector().fired(fault::Kind::CorruptTransition),
              1u);
}

TEST(Chaos, DroppedOverheadBreaksConservation)
{
    fault::ScopedPlan scoped(fault::Plan::parse("drop@25"));
    const auto result = core::runOneSafe(chaosConfig(), chaosPolicy());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, core::RunErrorKind::CheckFailed)
        << result.error().summary();
    EXPECT_NE(result.error().message.find("overhead buckets"),
              std::string::npos)
        << result.error().message;
    EXPECT_EQ(fault::injector().fired(fault::Kind::DropOverhead), 1u);
}

TEST(Chaos, StalledQueueTripsDeadlockWatchdog)
{
    fault::ScopedPlan scoped(fault::Plan::parse("stall@500"));
    const auto result = core::runOneSafe(chaosConfig(), chaosPolicy());
    ASSERT_FALSE(result.ok());
    const core::RunError &err = result.error();
    EXPECT_EQ(err.kind, core::RunErrorKind::Deadlock) << err.summary();
    EXPECT_NE(err.message.find("no sim-time progress"),
              std::string::npos)
        << err.message;
    EXPECT_EQ(fault::injector().fired(fault::Kind::StallQueue), 1u);
}

TEST(Chaos, RunErrorReportCarriesEngineStateAndDump)
{
    fault::ScopedPlan scoped(fault::Plan::parse("wedge@50:node=0"));
    const auto result = core::runOneSafe(chaosConfig(), chaosPolicy());
    ASSERT_FALSE(result.ok());
    std::ostringstream oss;
    oss << result.error();
    const std::string report = oss.str();
    EXPECT_NE(report.find("run failed:"), std::string::npos) << report;
    EXPECT_NE(report.find("events dispatched"), std::string::npos)
        << report;
    EXPECT_NE(report.find("worker-0"), std::string::npos) << report;
}

TEST(Chaos, SweepSurvivesFailedPointAndEmitsManifest)
{
    // Arm a stall that only a multi-processor point is big enough to
    // reach: the sweep must finish, keep the good points, and report
    // the bad one in the failure manifest.
    fault::ScopedPlan scoped(fault::Plan::parse("stall@2000"));
    core::RunConfig base = chaosConfig();
    core::SweepOptions options;
    options.policy = chaosPolicy();
    // A fault-armed sweep must run serially: plans are per-thread and
    // would not reach pool workers (pin past any ABSIM_JOBS setting).
    options.jobs = 1;
    const auto result = core::sweepFigureSafe(
        "chaos sweep", base, net::TopologyKind::Full,
        core::Metric::ExecTime, {1, 2, 4}, options);

    EXPECT_FALSE(result.complete());
    EXPECT_FALSE(result.failures.empty());
    // Whatever failed is named per machine with a structured kind.
    for (const auto &f : result.failures) {
        EXPECT_FALSE(f.machine.empty());
        EXPECT_FALSE(f.error.empty());
    }

    std::ostringstream manifest;
    core::writeFailureManifest(manifest, result.figure, result.failures);
    const std::string json = manifest.str();
    EXPECT_NE(json.find("\"failures\":["), std::string::npos) << json;
    EXPECT_NE(json.find("\"error\":"), std::string::npos) << json;

    std::ostringstream figure_json;
    core::writeFigureJson(figure_json, result);
    EXPECT_NE(figure_json.str().find("\"complete\":false"),
              std::string::npos)
        << figure_json.str();
}

TEST(Chaos, FaultPlanIsConfinedToTheThreadThatArmedIt)
{
    // Two concurrent simulations: one thread arms a wedge plan and must
    // fail; the other runs clean and must succeed, no matter how the
    // two interleave.  This is the isolation contract of the per-thread
    // injector (fault::injector()) and core::RunContext.
    core::RunResult faulty = core::RunError{};
    core::RunResult clean = core::RunError{};

    std::thread chaos_thread([&] {
        fault::ScopedPlan scoped(fault::Plan::parse("wedge@50:node=1"));
        faulty = core::runOneSafe(chaosConfig(), chaosPolicy());
        // The latched firing state stays visible on this thread.
        EXPECT_EQ(fault::injector().fired(fault::Kind::WedgeFiber), 1u);
    });
    std::thread clean_thread([&] {
        EXPECT_FALSE(fault::armed());
        clean = core::runOneSafe(chaosConfig(), chaosPolicy());
        EXPECT_EQ(fault::injector().fired(fault::Kind::WedgeFiber), 0u);
    });
    chaos_thread.join();
    clean_thread.join();

    EXPECT_FALSE(faulty.ok());
    ASSERT_TRUE(clean.ok());
    EXPECT_GT(clean.value().execTime(), 0u);
    // The arming thread is gone; this thread never saw its plan.
    EXPECT_FALSE(fault::armed());
}

} // namespace
