/**
 * @file
 * Unit tests for the detailed circuit-switched network: transmission
 * timing, link contention accounting, and path overlap behaviour.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "sim/process.hh"

namespace {

using namespace absim;
using net::DetailedNetwork;
using net::NodeId;
using net::Topology;
using net::TopologyKind;
using net::TransferResult;

TEST(DetailedNetwork, TransmissionTimeIsSerial)
{
    EXPECT_EQ(DetailedNetwork::transmissionTime(32), 1600u);
    EXPECT_EQ(DetailedNetwork::transmissionTime(8), 400u);
}

TEST(DetailedNetwork, SingleTransferTiming)
{
    sim::EventQueue eq;
    DetailedNetwork net(eq, Topology::make(TopologyKind::Full, 4));
    TransferResult r;
    sim::Process p(eq, "p", [&] { r = net.transfer(0, 1, 32); });
    p.start(0);
    eq.run();
    EXPECT_EQ(r.latency, 1600u);
    EXPECT_EQ(r.contention, 0u);
    EXPECT_EQ(eq.now(), 1600u);
    EXPECT_EQ(net.stats().messages, 1u);
    EXPECT_EQ(net.stats().bytes, 32u);
}

TEST(DetailedNetwork, HopCountDoesNotAddLatency)
{
    // Paper: switching delay negligible; transmission time dominates.
    sim::EventQueue eq;
    DetailedNetwork net(eq, Topology::make(TopologyKind::Mesh2D, 16));
    TransferResult r;
    sim::Process p(eq, "p", [&] { r = net.transfer(0, 15, 32); });
    p.start(0);
    eq.run();
    EXPECT_EQ(r.latency, 1600u); // 6 hops, same time as 1.
}

TEST(DetailedNetwork, SharedLinkSerializesAndChargesContention)
{
    sim::EventQueue eq;
    // 1x2 mesh: one link each way between nodes 0 and 1.
    DetailedNetwork net(eq, Topology::make(TopologyKind::Mesh2D, 2));
    TransferResult r1, r2;
    sim::Process a(eq, "a", [&] { r1 = net.transfer(0, 1, 32); });
    sim::Process b(eq, "b", [&] { r2 = net.transfer(0, 1, 32); });
    a.start(0);
    b.start(0);
    eq.run();
    EXPECT_EQ(r1.contention, 0u);
    EXPECT_EQ(r2.contention, 1600u); // Waited for the full circuit.
    EXPECT_EQ(eq.now(), 3200u);
}

TEST(DetailedNetwork, OppositeDirectionsDoNotConflict)
{
    sim::EventQueue eq;
    DetailedNetwork net(eq, Topology::make(TopologyKind::Mesh2D, 2));
    TransferResult r1, r2;
    sim::Process a(eq, "a", [&] { r1 = net.transfer(0, 1, 32); });
    sim::Process b(eq, "b", [&] { r2 = net.transfer(1, 0, 32); });
    a.start(0);
    b.start(0);
    eq.run();
    EXPECT_EQ(r1.contention, 0u);
    EXPECT_EQ(r2.contention, 0u);
    EXPECT_EQ(eq.now(), 1600u);
}

TEST(DetailedNetwork, FullNetworkNeverContendsAcrossPairs)
{
    sim::EventQueue eq;
    DetailedNetwork net(eq, Topology::make(TopologyKind::Full, 8));
    std::vector<TransferResult> results(8);
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (NodeId s = 0; s < 4; ++s) {
        procs.push_back(std::make_unique<sim::Process>(
            eq, "p", [&, s] { results[s] = net.transfer(s, s + 4, 32); }));
        procs.back()->start(0);
    }
    eq.run();
    for (NodeId s = 0; s < 4; ++s)
        EXPECT_EQ(results[s].contention, 0u);
    EXPECT_EQ(eq.now(), 1600u); // All in parallel.
}

TEST(DetailedNetwork, MeshPathOverlapCreatesContention)
{
    sim::EventQueue eq;
    // 2x2 mesh: 0 1 / 2 3.  Routes 0->1 and 0->3 share link 0->east.
    DetailedNetwork net(eq, Topology::make(TopologyKind::Mesh2D, 4));
    TransferResult r1, r2;
    sim::Process a(eq, "a", [&] { r1 = net.transfer(0, 1, 32); });
    sim::Process b(eq, "b", [&] { r2 = net.transfer(0, 3, 32); });
    a.start(0);
    b.start(0);
    eq.run();
    EXPECT_EQ(r1.contention + r2.contention, 1600u);
}

TEST(DetailedNetwork, CircuitHoldsWholePath)
{
    // Wormhole/circuit switching: while 0->3 crosses the 2x2 mesh via
    // node 1, an independent 1->3 transfer must wait for the 1->south
    // link even though its own source is idle.
    sim::EventQueue eq;
    DetailedNetwork net(eq, Topology::make(TopologyKind::Mesh2D, 4));
    TransferResult cross, blocked;
    sim::Process a(eq, "a", [&] { cross = net.transfer(0, 3, 32); });
    sim::Process b(eq, "b", [&] {
        sim::Process::current()->delay(100);
        blocked = net.transfer(1, 3, 32);
    });
    a.start(0);
    b.start(0);
    eq.run();
    EXPECT_EQ(cross.contention, 0u);
    EXPECT_EQ(blocked.contention, 1500u); // Until the circuit tears down.
}

TEST(DetailedNetwork, ManyConcurrentTransfersDrainDeadlockFree)
{
    // All-to-one hotspot on every topology: must complete.
    for (const auto kind : {TopologyKind::Full, TopologyKind::Hypercube,
                            TopologyKind::Mesh2D}) {
        sim::EventQueue eq;
        DetailedNetwork net(eq, Topology::make(kind, 16));
        int done = 0;
        std::vector<std::unique_ptr<sim::Process>> procs;
        for (NodeId s = 1; s < 16; ++s) {
            procs.push_back(std::make_unique<sim::Process>(
                eq, "p", [&, s] {
                    for (int i = 0; i < 4; ++i)
                        net.transfer(s, 0, 32);
                    ++done;
                }));
            procs.back()->start(0);
        }
        eq.run();
        EXPECT_EQ(done, 15) << net::toString(kind);
        EXPECT_EQ(net.stats().messages, 60u);
    }
}

} // namespace
