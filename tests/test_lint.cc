/**
 * @file
 * Self-tests for tools/absim_lint: every rule gets at least one
 * fixture-based positive (the seeded tree_viol tree) and one negative
 * (the tree_clean tree plus targeted lintSource probes), the
 * suppression grammar and --json schema round-trip are pinned, and the
 * binary's exit-code contract (2 on violations, 0 when clean) is
 * exercised end-to-end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "lint.hh"

namespace {

using absim_lint::Diagnostic;
using absim_lint::LintOptions;
using absim_lint::LintResult;

LintResult
lintFixtureTree(const char *tree)
{
    LintOptions options;
    options.root = std::string(ABSIM_LINT_FIXTURE_DIR) + "/" + tree;
    options.paths = {"src"};
    return absim_lint::runLint(options);
}

/** (rule, file, line) triples, ignoring message wording. */
std::multiset<std::string>
keysOf(const std::vector<Diagnostic> &diagnostics)
{
    std::multiset<std::string> keys;
    for (const Diagnostic &d : diagnostics)
        keys.insert(d.rule + " " + d.file + ":" + std::to_string(d.line));
    return keys;
}

// ------------------------------------------------------- fixture trees

TEST(LintFixtures, ViolationTreeFlagsEveryRuleAtTheSeededLines)
{
    const LintResult result = lintFixtureTree("tree_viol");
    EXPECT_TRUE(result.errors.empty());

    const std::multiset<std::string> expected = {
        "D1 src/apps/viol_d1.cc:10",
        "D1 src/apps/viol_d1.cc:17",
        "D2 src/core/viol_d2.cc:21",
        "D2 src/core/viol_d2.cc:26",
        "G1 src/runtime/viol_g1.cc:9",
        "G1 src/runtime/viol_g1.cc:12",
        "C1 src/net/viol_c1.cc:10",
        "L1 src/net/viol_l1.hh:5",
        "R1 src/core/viol_r1.hh:17",
        "R1 src/core/viol_r1_use.cc:10",
        "SUP src/logp/viol_sup.cc:11",
        "SUP src/logp/viol_sup.cc:12",
        "SUP src/logp/viol_sup.cc:13",
    };
    EXPECT_EQ(keysOf(result.diagnostics), expected);
}

TEST(LintFixtures, CleanTreeIsCleanDespiteNearMisses)
{
    const LintResult result = lintFixtureTree("tree_clean");
    EXPECT_TRUE(result.errors.empty());
    EXPECT_EQ(result.diagnostics.size(), 0u) <<
        absim_lint::formatText(result);
    EXPECT_EQ(result.filesScanned, 6);
}

TEST(LintFixtures, DiagnosticsAreSortedByFileLineRule)
{
    const LintResult result = lintFixtureTree("tree_viol");
    ASSERT_GT(result.diagnostics.size(), 1u);
    for (std::size_t i = 1; i < result.diagnostics.size(); ++i) {
        const Diagnostic &a = result.diagnostics[i - 1];
        const Diagnostic &b = result.diagnostics[i];
        EXPECT_LE(std::tie(a.file, a.line, a.rule),
                  std::tie(b.file, b.line, b.rule));
    }
}

// --------------------------------------------------- per-rule probes

std::vector<Diagnostic>
lintAt(const std::string &path, const std::string &source)
{
    return absim_lint::lintSource(path, source);
}

TEST(LintRules, D1FlagsCallsInSrcButNotInTests)
{
    const std::string source = "int f() { return rand(); }\n";
    const auto inSrc = lintAt("src/apps/x.cc", source);
    ASSERT_EQ(inSrc.size(), 1u);
    EXPECT_EQ(inSrc[0].rule, "D1");
    EXPECT_EQ(inSrc[0].line, 1);

    // Scope: tests/ may use wall clocks and rand freely.
    EXPECT_TRUE(lintAt("tests/x.cc", source).empty());
}

TEST(LintRules, D1AllowlistCoversTheWatchdogBudgetFiles)
{
    const std::string source =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(lintAt("src/sim/event_queue.hh", source).empty());
    EXPECT_EQ(lintAt("src/sim/other.hh", source).size(), 1u);
}

TEST(LintRules, D1AllowlistRecordsTheSanctionedBenchTimer)
{
    // bench/ is outside D1's src/-only scope, so this entry is
    // documentary — but it must exist (with a rationale) so the
    // sanction survives any future widening of the rule's scope.
    bool found = false;
    for (const auto &entry : absim_lint::allowlist()) {
        if (std::string(entry.rule) == "D1" &&
            std::string(entry.file) == "bench/bench_common.hh") {
            found = true;
            EXPECT_FALSE(std::string(entry.reason).empty());
        }
    }
    EXPECT_TRUE(found);
}

TEST(LintRules, D1IgnoresMembersAndStrings)
{
    EXPECT_TRUE(lintAt("src/apps/x.cc",
                       "int g() { return profile.time(); }\n")
                    .empty());
    EXPECT_TRUE(lintAt("src/apps/x.cc",
                       "const char *s = \"rand() time()\";\n")
                    .empty());
}

TEST(LintRules, D2FlagsPointerKeysOnlyOnOutputPaths)
{
    const std::string source =
        "#include <unordered_map>\n"
        "struct Node;\n"
        "std::unordered_map<const Node *, int> byNode;\n";
    const auto onOutputPath = lintAt("src/core/x.cc", source);
    ASSERT_EQ(onOutputPath.size(), 1u);
    EXPECT_EQ(onOutputPath[0].rule, "D2");

    // Same container off the byte-emitting paths: allowed.
    EXPECT_TRUE(lintAt("src/net/x.cc", source).empty());

    // Value keys on an output path: allowed.
    EXPECT_TRUE(lintAt("src/core/y.cc",
                       "std::unordered_map<unsigned, int> byId;\n")
                    .empty());
}

TEST(LintRules, G1FlagsBareParsersOutsideTheEnvFunnel)
{
    const std::string source = "int v = atoi(getenv(\"X\"));\n";
    const auto elsewhere = lintAt("src/runtime/x.cc", source);
    ASSERT_EQ(elsewhere.size(), 2u);
    EXPECT_EQ(elsewhere[0].rule, "G1");
    EXPECT_EQ(elsewhere[1].rule, "G1");

    EXPECT_TRUE(lintAt("src/core/env.cc", source).empty());
}

TEST(LintRules, C1FlagsBareAssertOutsideSrcCheck)
{
    const std::string source =
        "#include <cassert>\nvoid f(int n) { assert(n > 0); }\n";
    const auto elsewhere = lintAt("src/net/x.cc", source);
    ASSERT_EQ(elsewhere.size(), 1u);
    EXPECT_EQ(elsewhere[0].rule, "C1");

    EXPECT_TRUE(lintAt("src/check/x.cc", source).empty());
    EXPECT_TRUE(
        lintAt("src/net/y.cc", "static_assert(true, \"ok\");\n").empty());
}

TEST(LintRules, L1FlagsUpwardIncludes)
{
    const auto upward = lintAt("src/net/x.hh",
                               "#include \"runtime/context.hh\"\n");
    ASSERT_EQ(upward.size(), 1u);
    EXPECT_EQ(upward[0].rule, "L1");

    EXPECT_TRUE(
        lintAt("src/mem/x.hh", "#include \"net/topology.hh\"\n").empty());
    EXPECT_TRUE(
        lintAt("src/net/y.hh", "#include <vector>\n").empty());
}

TEST(LintRules, R1FlagsUnannotatedDeclsAndDiscardedCalls)
{
    const auto decl = lintAt(
        "src/core/x.hh",
        "struct E {};\n"
        "template <typename T, typename V> class Result {};\n"
        "Result<int, E> tryThing(int input);\n");
    ASSERT_EQ(decl.size(), 1u);
    EXPECT_EQ(decl[0].rule, "R1");
    EXPECT_EQ(decl[0].line, 3);

    // Seeded cross-file name, result dropped on the floor.
    const auto discarded =
        lintAt("src/core/y.cc", "void f() { runOneSafe(0); }\n");
    ASSERT_EQ(discarded.size(), 1u);
    EXPECT_EQ(discarded[0].rule, "R1");

    // Annotated decl + consumed call: clean.
    EXPECT_TRUE(lintAt("src/core/z.hh",
                       "struct E {};\n"
                       "template <typename T, typename V> "
                       "class Result {};\n"
                       "[[nodiscard]] Result<int, E> tryThing(int n);\n")
                    .empty());
    EXPECT_TRUE(lintAt("src/core/w.cc",
                       "int f() { auto r = runOneSafe(0); return 0; }\n")
                    .empty());
}

// --------------------------------------------------- suppressions

TEST(LintSuppression, SameLineAndOwnLineSuppressionsApply)
{
    EXPECT_TRUE(lintAt("src/apps/x.cc",
                       "int f() { return rand(); } "
                       "// absim-lint: D1 ok(fixture probe)\n")
                    .empty());
    EXPECT_TRUE(lintAt("src/apps/y.cc",
                       "// absim-lint: D1 ok(fixture probe)\n"
                       "int f() { return rand(); }\n")
                    .empty());
}

TEST(LintSuppression, SuppressionIsRuleAndLineScoped)
{
    // Wrong rule id: the D1 diagnostic survives.
    const auto wrongRule = lintAt(
        "src/apps/x.cc",
        "int f() { return rand(); } // absim-lint: C1 ok(wrong rule)\n");
    ASSERT_EQ(wrongRule.size(), 1u);
    EXPECT_EQ(wrongRule[0].rule, "D1");

    // Own-line suppression only reaches the next line, not beyond.
    const auto tooFar = lintAt("src/apps/y.cc",
                               "// absim-lint: D1 ok(next line only)\n"
                               "int a = 0;\n"
                               "int f() { return rand(); }\n");
    ASSERT_EQ(tooFar.size(), 1u);
    EXPECT_EQ(tooFar[0].rule, "D1");
    EXPECT_EQ(tooFar[0].line, 3);
}

TEST(LintSuppression, MalformedSuppressionsAreThemselvesDiagnostics)
{
    const char *bad[] = {
        "// absim-lint: D9 ok(no such rule)\n",
        "// absim-lint: D1\n",
        "// absim-lint: D1 ok()\n",
        "// absim-lint D1 ok(missing colon)\n",
        "// absim-lint: D1 ok(reason) trailing junk\n",
    };
    for (const char *source : bad) {
        const auto diags = lintAt("src/apps/x.cc", source);
        ASSERT_EQ(diags.size(), 1u) << source;
        EXPECT_EQ(diags[0].rule, "SUP") << source;
        EXPECT_EQ(diags[0].line, 1) << source;
    }
}

// --------------------------------------------------- layer DAG

TEST(LintLayers, TableOrderProvesAcyclicity)
{
    // Every directory a layer may include must appear STRICTLY EARLIER
    // in the table; with that, an include cycle is impossible.
    const auto &table = absim_lint::layerTable();
    ASSERT_FALSE(table.empty());
    std::set<std::string> seen;
    for (const auto &layer : table) {
        for (const char *dep : layer.allowed)
            EXPECT_TRUE(seen.count(dep))
                << layer.dir << " -> " << dep
                << " refers to a later (higher) layer";
        EXPECT_TRUE(seen.insert(layer.dir).second)
            << "duplicate layer " << layer.dir;
    }
}

TEST(LintLayers, EveryAllowedDirIsItselfALayer)
{
    const auto &table = absim_lint::layerTable();
    std::set<std::string> dirs;
    for (const auto &layer : table)
        dirs.insert(layer.dir);
    for (const auto &layer : table)
        for (const char *dep : layer.allowed)
            EXPECT_TRUE(dirs.count(dep)) << dep;
}

// --------------------------------------------------- JSON schema

TEST(LintJson, EncodeDecodeRoundTripsExactly)
{
    const LintResult original = lintFixtureTree("tree_viol");
    ASSERT_FALSE(original.diagnostics.empty());

    LintResult decoded;
    ASSERT_TRUE(absim_lint::decodeJson(absim_lint::encodeJson(original),
                                       decoded));
    EXPECT_EQ(decoded.filesScanned, original.filesScanned);
    ASSERT_EQ(decoded.diagnostics.size(), original.diagnostics.size());
    for (std::size_t i = 0; i < original.diagnostics.size(); ++i)
        EXPECT_EQ(decoded.diagnostics[i], original.diagnostics[i]) << i;
}

TEST(LintJson, EscapesQuotesBackslashesAndControlBytes)
{
    LintResult tricky;
    tricky.filesScanned = 1;
    Diagnostic d;
    d.rule = "D1";
    d.file = "src/apps/a \"b\".cc";
    d.line = 7;
    d.message = "quote \" backslash \\ tab \t newline \n done";
    tricky.diagnostics.push_back(d);

    LintResult decoded;
    ASSERT_TRUE(
        absim_lint::decodeJson(absim_lint::encodeJson(tricky), decoded));
    ASSERT_EQ(decoded.diagnostics.size(), 1u);
    EXPECT_EQ(decoded.diagnostics[0], d);
}

TEST(LintJson, DecodeRejectsMalformedDocuments)
{
    LintResult out;
    EXPECT_FALSE(absim_lint::decodeJson("", out));
    EXPECT_FALSE(absim_lint::decodeJson("not json", out));
    EXPECT_FALSE(absim_lint::decodeJson("{\"absim_lint\":1", out));
}

// --------------------------------------------------- binary contract

int
runBinary(const std::string &args, std::string *captured)
{
    const std::string outPath =
        std::string(::testing::TempDir()) + "absim_lint_out.json";
    const std::string command = std::string(ABSIM_LINT_BIN) + " " + args +
                                " > " + outPath + " 2>&1";
    const int status = std::system(command.c_str());
    if (captured) {
        std::ifstream in(outPath);
        std::ostringstream text;
        text << in.rdbuf();
        *captured = text.str();
    }
    std::remove(outPath.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(LintBinary, SeededViolationsYieldExitTwoAndNamedRules)
{
    std::string output;
    const int code = runBinary("--json --root " ABSIM_LINT_FIXTURE_DIR
                               "/tree_viol src",
                               &output);
    EXPECT_EQ(code, 2);

    LintResult decoded;
    ASSERT_TRUE(absim_lint::decodeJson(output, decoded)) << output;
    EXPECT_EQ(decoded.diagnostics.size(), 13u);
    std::set<std::string> rules;
    for (const Diagnostic &d : decoded.diagnostics)
        rules.insert(d.rule);
    const std::set<std::string> expected = {"C1", "D1", "D2", "G1",
                                            "L1", "R1", "SUP"};
    EXPECT_EQ(rules, expected);
}

TEST(LintBinary, CleanTreeYieldsExitZero)
{
    std::string output;
    const int code = runBinary("--root " ABSIM_LINT_FIXTURE_DIR
                               "/tree_clean src",
                               &output);
    EXPECT_EQ(code, 0);
    EXPECT_NE(output.find("clean"), std::string::npos) << output;
}

TEST(LintBinary, UnknownRuleFilterIsAUsageError)
{
    const int code = runBinary("--rules NOPE --root " ABSIM_LINT_FIXTURE_DIR
                               "/tree_clean src",
                               nullptr);
    EXPECT_EQ(code, 2);
}

} // namespace
