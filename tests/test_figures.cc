/**
 * @file
 * Integration tests for the experiment driver and figure harness — and
 * mechanical checks of the paper's headline qualitative claims on small
 * configurations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compare.hh"
#include "core/figures.hh"

namespace {

using namespace absim;

TEST(Experiment, RunOneProducesConsistentProfile)
{
    core::RunConfig config;
    config.app = "fft";
    config.params.n = 256;
    config.machine = mach::MachineKind::Target;
    config.procs = 4;
    const auto profile = core::runOne(config);
    ASSERT_EQ(profile.procs.size(), 4u);
    EXPECT_GT(profile.execTime(), 0u);
    EXPECT_GT(profile.engineEvents, 0u);
    EXPECT_GT(profile.wallSeconds, 0.0);
    EXPECT_GT(profile.machine.messages, 0u);
}

TEST(Experiment, UnknownAppThrows)
{
    core::RunConfig config;
    config.app = "barnes";
    EXPECT_THROW(core::runOne(config), std::invalid_argument);
}

TEST(Figures, MetricNamesAndDefaults)
{
    EXPECT_EQ(core::toString(core::Metric::ExecTime), "exec_time");
    EXPECT_EQ(core::toString(core::Metric::Latency), "latency");
    EXPECT_EQ(core::toString(core::Metric::Contention), "contention");
    const auto procs = core::defaultProcCounts();
    ASSERT_EQ(procs.size(), 6u);
    EXPECT_EQ(procs.front(), 1u);
    EXPECT_EQ(procs.back(), 32u);
}

TEST(Figures, SweepProducesThreeCurves)
{
    core::RunConfig base;
    base.app = "is";
    base.params.n = 512;
    const auto figure =
        core::sweepFigure("test", base, net::TopologyKind::Full,
                          core::Metric::ExecTime, {1, 2, 4});
    ASSERT_EQ(figure.points.size(), 3u);
    for (const auto &pt : figure.points) {
        ASSERT_EQ(pt.values.size(), 3u); // target, logp, logp+c.
        for (const double v : pt.values)
            EXPECT_GT(v, 0.0);
    }
    // P=1: no network anywhere, so overhead-free execution must agree
    // across machines up to the local-memory model (identical here).
    EXPECT_DOUBLE_EQ(figure.points[0].values[0],
                     figure.points[0].values[2]);
}

TEST(Figures, PrintFormat)
{
    core::Figure figure;
    figure.title = "Figure X";
    figure.app = "fft";
    figure.topology = net::TopologyKind::Hypercube;
    figure.metric = core::Metric::Latency;
    figure.points.push_back({4, {1.5, 6.25, 2.0}});
    std::ostringstream os;
    core::printFigure(os, figure);
    const std::string text = os.str();
    EXPECT_NE(text.find("Figure X"), std::string::npos);
    EXPECT_NE(text.find("network=cube"), std::string::npos);
    EXPECT_NE(text.find("metric=latency"), std::string::npos);
    EXPECT_NE(text.find("6.2"), std::string::npos);
}

// ---- The paper's qualitative claims, asserted mechanically -------------

class PaperClaims : public ::testing::Test
{
  protected:
    static core::Figure
    sweep(const std::string &app, std::uint64_t n,
          net::TopologyKind topo, core::Metric metric)
    {
        core::RunConfig base;
        base.app = app;
        base.params.n = n;
        return core::sweepFigure("claim", base, topo, metric, {2, 4, 8});
    }

    // Column indices in the classic machine order.
    static constexpr std::size_t kTarget = 0;
    static constexpr std::size_t kLogp = 1;
    static constexpr std::size_t kLogpc = 2;

    static std::vector<double>
    curve(const core::Figure &figure, std::size_t column)
    {
        std::vector<double> v;
        for (const auto &pt : figure.points)
            v.push_back(pt.values[column]);
        return v;
    }
};

TEST_F(PaperClaims, LatencyAbstractionTracksTarget)
{
    // Section 6.1: LogP+C latency overhead agrees with the target in
    // trend and is within a small factor, for a static and a dynamic
    // application.
    for (const char *app : {"fft", "cg"}) {
        const auto figure = sweep(app, app == std::string("fft") ? 512 : 128,
                                  net::TopologyKind::Full,
                                  core::Metric::Latency);
        const auto target = curve(figure, kTarget);
        const auto logpc = curve(figure, kLogpc);
        EXPECT_GE(core::trendAgreement(target, logpc), 0.5) << app;
        const double ratio = core::meanRatio(target, logpc);
        EXPECT_GT(ratio, 0.7) << app;
        EXPECT_LT(ratio, 2.0) << app;
    }
}

TEST_F(PaperClaims, LogPLatencyInflatedByMissingLocality)
{
    // Section 6.2 / Figure 1: ignoring the cache multiplies FFT's
    // latency overhead by roughly the items-per-block factor.
    const auto figure =
        sweep("fft", 512, net::TopologyKind::Full, core::Metric::Latency);
    const auto target = curve(figure, kTarget);
    const auto logp = curve(figure, kLogp);
    const double ratio = core::meanRatio(target, logp);
    EXPECT_GT(ratio, 2.0);
}

TEST_F(PaperClaims, ContentionPessimisticAndWorseOnMesh)
{
    // Section 6.1: the bisection-bandwidth g overestimates contention,
    // and the pessimism grows as connectivity decreases.  Compare at
    // P=16, where g(full)=0.2us but g(mesh)=3.2us.
    core::RunConfig base;
    base.app = "is";
    base.params.n = 1024;
    const auto full =
        core::sweepFigure("claim", base, net::TopologyKind::Full,
                          core::Metric::Contention, {16});
    const auto mesh =
        core::sweepFigure("claim", base, net::TopologyKind::Mesh2D,
                          core::Metric::Contention, {16});
    const double gap_full =
        full.points[0].values[2] - full.points[0].values[0];
    const double gap_mesh =
        mesh.points[0].values[2] - mesh.points[0].values[0];
    EXPECT_GT(gap_full, 0.0);
    EXPECT_GT(gap_mesh, gap_full);
}

TEST_F(PaperClaims, EpExecutionAgreesOnAllMachines)
{
    // Figure 12: computation dominates EP; all three machines agree.
    const auto figure = sweep("ep", 8192, net::TopologyKind::Full,
                              core::Metric::ExecTime);
    for (const auto &pt : figure.points) {
        EXPECT_NEAR(pt.values[2] / pt.values[0], 1.0, 0.1);
        EXPECT_NEAR(pt.values[1] / pt.values[0], 1.0, 0.25);
    }
}

TEST_F(PaperClaims, LocalityGapGrowsWithCommunication)
{
    // Figures 12-14: the LogP vs LogP+C execution-time gap is ordered
    // EP < FFT < IS (increasing communication-to-computation ratio).
    const double gap_ep =
        core::meanRatio(curve(sweep("ep", 8192, net::TopologyKind::Full,
                                    core::Metric::ExecTime),
                              kLogpc),
                        curve(sweep("ep", 8192, net::TopologyKind::Full,
                                    core::Metric::ExecTime),
                              kLogp));
    const double gap_is =
        core::meanRatio(curve(sweep("is", 1024, net::TopologyKind::Full,
                                    core::Metric::ExecTime),
                              kLogpc),
                        curve(sweep("is", 1024, net::TopologyKind::Full,
                                    core::Metric::ExecTime),
                              kLogp));
    EXPECT_LT(gap_ep, 1.2);
    EXPECT_GT(gap_is, gap_ep);
}

} // namespace
