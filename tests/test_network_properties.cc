/**
 * @file
 * Randomized property tests for the detailed network and the LogP
 * machines' analytic behaviour under load.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "machine_fixture.hh"
#include "net/network.hh"
#include "sim/rng.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

class NetworkStorm
    : public ::testing::TestWithParam<std::tuple<TopologyKind,
                                                 std::uint64_t>>
{
};

TEST_P(NetworkStorm, ConservationAndBounds)
{
    const auto [kind, seed] = GetParam();
    sim::EventQueue eq;
    net::DetailedNetwork network(eq, net::Topology::make(kind, 16));
    sim::Rng rng(seed);

    constexpr int kPerProc = 20;
    std::uint64_t expect_bytes = 0;
    std::vector<net::TransferResult> results;
    results.reserve(15 * kPerProc);
    std::vector<std::unique_ptr<sim::Process>> procs;

    for (net::NodeId s = 0; s < 16; ++s) {
        std::vector<std::pair<net::NodeId, std::uint32_t>> plan;
        for (int i = 0; i < kPerProc; ++i) {
            net::NodeId dst;
            do {
                dst = static_cast<net::NodeId>(rng.below(16));
            } while (dst == s);
            const auto bytes =
                static_cast<std::uint32_t>(8 + 8 * rng.below(4));
            plan.emplace_back(dst, bytes);
            expect_bytes += bytes;
        }
        procs.push_back(std::make_unique<sim::Process>(
            eq, "p", [&network, &results, plan, s] {
                for (const auto &[dst, bytes] : plan)
                    results.push_back(network.transfer(s, dst, bytes));
            }));
        procs.back()->start(0);
    }
    eq.run();

    // Conservation: every byte accounted, latency = bytes * 50 ns.
    EXPECT_EQ(network.stats().bytes, expect_bytes);
    EXPECT_EQ(network.stats().messages, 16u * kPerProc);
    EXPECT_EQ(network.stats().latency, expect_bytes * 50);

    sim::Duration total_contention = 0;
    for (const auto &r : results)
        total_contention += r.contention;
    EXPECT_EQ(network.stats().contention, total_contention);

    // The run must drain (no deadlock) and end no earlier than the
    // serial lower bound of the busiest link could allow — a weak but
    // universal sanity bound: completion >= max single message time.
    EXPECT_GE(eq.now(), 32u * 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Storms, NetworkStorm,
    ::testing::Combine(::testing::Values(TopologyKind::Full,
                                         TopologyKind::Hypercube,
                                         TopologyKind::Mesh2D),
                       ::testing::Values(11u, 22u, 33u)),
    [](const auto &info) {
        return net::toString(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param));
    });

TEST(LogPQueueing, HotspotGrantsAreGapSpaced)
{
    // N-1 processors hammer one home: under the single-gate policy the
    // home's gate serializes all requests/replies at rate g; the N-th
    // access completes no earlier than the queueing bound.
    constexpr std::uint32_t kProcs = 8;
    MachineHarness h(MachineKind::LogP, TopologyKind::Hypercube, kProcs);
    rt::SharedArray<std::uint64_t> hot(h.heap, 4, rt::Placement::OnNode,
                                       0);
    h.run([&](rt::Proc &p) {
        if (p.node() != 0)
            hot.read(p, 0);
    });
    // 7 concurrent round trips: the home's gate admits one event per
    // g = 1600 ns; each round trip needs 2 home-gate slots (recv+send),
    // so the last reply leaves the home no earlier than slot 13.
    const sim::Tick finish = h.eq.now();
    EXPECT_GE(finish, 1600u + 13u * 1600u);
    // And the total contention equals total time blocked minus pure
    // latency: accounting closure.
    for (std::uint32_t n = 1; n < kProcs; ++n) {
        const auto &s = h.runtime->proc(n).stats();
        EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention);
        EXPECT_EQ(s.latency, 3200u);
    }
}

TEST(LogPQueueing, BandwidthScalesWithG)
{
    // Aggregate throughput into one node is 1/g: halving g (full
    // network, doubled P) must roughly halve the hotspot makespan per
    // message.
    auto makespan_per_msg = [](std::uint32_t procs) {
        MachineHarness h(MachineKind::LogP, TopologyKind::Full, procs);
        rt::SharedArray<std::uint64_t> hot(h.heap, 4,
                                           rt::Placement::OnNode, 0);
        h.run([&](rt::Proc &p) {
            if (p.node() != 0)
                for (int i = 0; i < 4; ++i)
                    hot.read(p, 0);
        });
        return static_cast<double>(h.eq.now()) /
               (4.0 * (procs - 1));
    };
    const double at8 = makespan_per_msg(8);   // g = 400.
    const double at16 = makespan_per_msg(16); // g = 200.
    EXPECT_LT(at16, at8);
    EXPECT_NEAR(at16 / at8, 0.5, 0.2);
}

} // namespace
