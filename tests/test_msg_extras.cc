/**
 * @file
 * Additional message-passing coverage: large payloads, many concurrent
 * channels, transport counters, and LogP gate interaction between
 * successive sends.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "machines/null_machine.hh"
#include "msg/msg_world.hh"
#include "runtime/shared.hh"

namespace {

using namespace absim;

struct Harness
{
    Harness(std::uint32_t nodes, bool logp,
            net::TopologyKind topo = net::TopologyKind::Full)
        : heap(nodes), machine(nodes, heap)
    {
        if (logp)
            transport =
                std::make_unique<msg::LogPTransport>(eq, topo, nodes);
        else
            transport = std::make_unique<msg::DetailedTransport>(eq, topo,
                                                                 nodes);
        world = std::make_unique<msg::MsgWorld>(eq, *transport, nodes);
        runtime = std::make_unique<rt::Runtime>(eq, machine, nodes);
    }

    void
    run(std::function<void(rt::Proc &)> body)
    {
        runtime->spawn(std::move(body));
        runtime->run();
    }

    sim::EventQueue eq;
    rt::SharedHeap heap;
    mach::NullMachine machine;
    std::unique_ptr<msg::Transport> transport;
    std::unique_ptr<msg::MsgWorld> world;
    std::unique_ptr<rt::Runtime> runtime;
};

TEST(MsgExtras, LargePayloadTimedBySizeOnDetailed)
{
    Harness h(2, false);
    std::vector<double> got;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            std::vector<double> row(256);
            std::iota(row.begin(), row.end(), 0.0);
            h.world->send(p, 1, 0, row.data(),
                          static_cast<std::uint32_t>(row.size() *
                                                     sizeof(double)));
            // 2048 bytes at 50 ns/B.
            EXPECT_EQ(p.localTime(), 2048u * 50u);
        } else {
            const auto bytes = h.world->recv(p, 0, 0);
            got.resize(bytes.size() / sizeof(double));
            std::memcpy(got.data(), bytes.data(), bytes.size());
        }
    });
    ASSERT_EQ(got.size(), 256u);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], static_cast<double>(i));
}

TEST(MsgExtras, ManyConcurrentChannelsDoNotInterfere)
{
    Harness h(8, false, net::TopologyKind::Hypercube);
    std::vector<std::uint64_t> sums(8, 0);
    h.run([&](rt::Proc &p) {
        // Everyone sends one tagged value to everyone else, then
        // receives from everyone else; per-pair channels.
        for (std::uint32_t d = 0; d < 8; ++d) {
            if (d == p.node())
                continue;
            h.world->sendValue<std::uint64_t>(p, d, 7,
                                              100 * p.node() + d);
        }
        std::uint64_t sum = 0;
        for (std::uint32_t s = 0; s < 8; ++s) {
            if (s == p.node())
                continue;
            sum += h.world->recvValue<std::uint64_t>(p, s, 7);
        }
        sums[p.node()] = sum;
    });
    for (std::uint32_t n = 0; n < 8; ++n) {
        std::uint64_t expect = 0;
        for (std::uint32_t s = 0; s < 8; ++s)
            if (s != n)
                expect += 100 * s + n;
        EXPECT_EQ(sums[n], expect) << "node " << n;
    }
    EXPECT_EQ(h.world->messagesSent(), 56u);
    EXPECT_EQ(h.transport->messages(), 56u);
}

TEST(MsgExtras, LogPBackToBackSendsSpacedByG)
{
    Harness h(4, true, net::TopologyKind::Hypercube); // g = 1600.
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            const std::uint32_t v = 1;
            h.world->send(p, 1, 0, &v, 4);
            EXPECT_EQ(p.localTime(), 0u); // First send: free.
            h.world->send(p, 2, 0, &v, 4);
            // Second send waits for the sender's gate slot.
            EXPECT_EQ(p.localTime(), 1600u);
            EXPECT_EQ(p.stats().contention, 1600u);
        } else if (p.node() <= 2) {
            h.world->recv(p, 0, 0);
        }
    });
}

TEST(MsgExtras, WaitBucketExcludedFromSharedMemoryPath)
{
    // The shared-memory machines never use the wait bucket; only
    // message-passing receivers do.
    Harness h(2, false);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            p.compute(50000);
            const std::uint32_t v = 9;
            h.world->send(p, 1, 1, &v, 4);
        } else {
            h.world->recv(p, 0, 1);
        }
    });
    EXPECT_EQ(h.runtime->proc(0).stats().wait, 0u);
    EXPECT_GT(h.runtime->proc(1).stats().wait, 0u);
}

} // namespace
