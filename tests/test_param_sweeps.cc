/**
 * @file
 * Parameterized sweeps that push the machinery across its whole
 * configuration space: application sizes, synchronization scale, LogP
 * policies x topologies, and heap shapes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"
#include "machine_fixture.hh"
#include "runtime/sync.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using net::TopologyKind;

// ---- Application sizes --------------------------------------------------

class AppSizes
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint64_t>>
{
};

TEST_P(AppSizes, VerifiedAtEverySize)
{
    const auto &[app, scale] = GetParam();
    core::RunConfig config;
    config.app = app;
    config.machine = MachineKind::LogPC;
    config.procs = 4;
    // Scale knob: n doubles from a per-app base.
    if (app == "fft")
        config.params.n = 128 << scale;
    else if (app == "is")
        config.params.n = 512 << scale;
    else if (app == "cg")
        config.params.n = 64 << scale;
    else if (app == "radix")
        config.params.n = 256 << scale;
    else if (app == "stencil")
        config.params.n = 16 << scale;
    EXPECT_NO_THROW(core::runOne(config))
        << app << " at scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppSizes,
    ::testing::Combine(::testing::Values("fft", "is", "cg", "radix",
                                         "stencil"),
                       ::testing::Values(0u, 1u, 2u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_x" +
               std::to_string(1u << std::get<1>(info.param));
    });

// ---- Synchronization at scale -------------------------------------------

class SyncScale : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SyncScale, LockMutualExclusionManyProcs)
{
    const std::uint32_t procs = GetParam();
    MachineHarness h(MachineKind::Target, TopologyKind::Mesh2D, procs);
    rt::SharedArray<std::uint64_t> value(h.heap, 1,
                                         rt::Placement::OnNode, 0);
    rt::SpinLock lock(h.heap, procs - 1);
    value.raw(0) = 0;
    h.run([&](rt::Proc &p) {
        for (int i = 0; i < 4; ++i) {
            lock.lock(p);
            const std::uint64_t v = value.read(p, 0);
            p.compute(15);
            value.write(p, 0, v + 1);
            lock.unlock(p);
        }
    });
    EXPECT_EQ(value.raw(0), 4u * procs);
}

TEST_P(SyncScale, BarrierPhasesStayAligned)
{
    const std::uint32_t procs = GetParam();
    MachineHarness h(MachineKind::LogPC, TopologyKind::Hypercube, procs);
    rt::Barrier barrier(h.heap, procs);
    rt::SharedArray<std::uint64_t> counter(h.heap, 4,
                                           rt::Placement::OnNode, 0);
    counter.raw(0) = 0;
    bool ok = true;
    h.run([&](rt::Proc &p) {
        for (std::uint64_t phase = 1; phase <= 3; ++phase) {
            p.compute((p.node() * 37) % 211); // Skew arrivals.
            counter.fetchAdd(p, 0, 1);
            barrier.arrive(p);
            if (counter.read(p, 0) != phase * procs)
                ok = false;
            barrier.arrive(p);
        }
    });
    EXPECT_TRUE(ok) << "P=" << procs;
}

INSTANTIATE_TEST_SUITE_P(Scale, SyncScale,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// ---- LogP round trips across topology x policy --------------------------

class LogPMatrix
    : public ::testing::TestWithParam<
          std::tuple<TopologyKind, logp::GapPolicy>>
{
};

TEST_P(LogPMatrix, RoundTripLatencyAlwaysTwoL)
{
    const auto [topo, policy] = GetParam();
    MachineHarness h(MachineKind::LogP, topo, 8, policy);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 5);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0)
            for (int i = 0; i < 3; ++i)
                a.read(p, 0);
    });
    const auto &s = h.runtime->proc(0).stats();
    EXPECT_EQ(s.latency, 3u * 3200u);
    EXPECT_EQ(s.finishTime, s.busy + s.latency + s.contention);
}

TEST_P(LogPMatrix, ContentionOrderedByPolicyStrictness)
{
    // For the same traffic: single >= per-direction and
    // single >= bisection-only (relaxations can only reduce waits).
    const auto [topo, policy] = GetParam();
    (void)policy;
    auto contention_for = [&](logp::GapPolicy pol) {
        MachineHarness h(MachineKind::LogP, topo, 8, pol);
        rt::SharedArray<std::uint64_t> hot(h.heap, 4,
                                           rt::Placement::OnNode, 0);
        h.run([&](rt::Proc &p) {
            if (p.node() != 0)
                for (int i = 0; i < 4; ++i)
                    hot.fetchAdd(p, 0, 1);
        });
        sim::Duration total = 0;
        for (std::uint32_t n = 0; n < 8; ++n)
            total += h.runtime->proc(n).stats().contention;
        return total;
    };
    const auto single = contention_for(logp::GapPolicy::Single);
    EXPECT_GE(single, contention_for(logp::GapPolicy::PerDirection));
    EXPECT_GE(single, contention_for(logp::GapPolicy::BisectionOnly));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LogPMatrix,
    ::testing::Combine(::testing::Values(TopologyKind::Full,
                                         TopologyKind::Hypercube,
                                         TopologyKind::Mesh2D),
                       ::testing::Values(logp::GapPolicy::Single,
                                         logp::GapPolicy::PerDirection,
                                         logp::GapPolicy::BisectionOnly)),
    [](const auto &info) {
        const char *pol =
            std::get<1>(info.param) == logp::GapPolicy::Single
                ? "single"
                : (std::get<1>(info.param) ==
                           logp::GapPolicy::PerDirection
                       ? "perdir"
                       : "bisect");
        return net::toString(std::get<0>(info.param)) + "_" + pol;
    });

// ---- Heap shapes ---------------------------------------------------------

class HeapShapes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(HeapShapes, BlockedCoversAllNodesEvenly)
{
    const std::uint32_t nodes = GetParam();
    rt::SharedHeap heap(nodes);
    const std::uint64_t bytes = 1024 * nodes;
    const mem::Addr base = heap.allocate(bytes, rt::Placement::Blocked);
    std::vector<std::uint64_t> per_node(nodes, 0);
    for (std::uint64_t off = 0; off < bytes; off += 64)
        ++per_node[heap.homeOf(base + off)];
    for (std::uint32_t n = 0; n < nodes; ++n)
        EXPECT_EQ(per_node[n], per_node[0]) << "node " << n;
}

TEST_P(HeapShapes, InterleavedBalancesBlocks)
{
    const std::uint32_t nodes = GetParam();
    rt::SharedHeap heap(nodes);
    const std::uint64_t blocks = 8 * nodes;
    const mem::Addr base = heap.allocate(blocks * mem::kBlockBytes,
                                         rt::Placement::Interleaved);
    std::vector<std::uint64_t> per_node(nodes, 0);
    for (std::uint64_t b = 0; b < blocks; ++b)
        ++per_node[heap.homeOf(base + b * mem::kBlockBytes)];
    for (std::uint32_t n = 0; n < nodes; ++n)
        EXPECT_EQ(per_node[n], 8u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HeapShapes,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u,
                                           64u));

} // namespace
