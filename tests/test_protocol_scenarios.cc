/**
 * @file
 * A second round of Berkeley-protocol scenarios: SharedDirty writebacks,
 * owner upgrades, home-node special cases, parallel invalidation timing,
 * and the equivalent LogP+C corner cases.
 */

#include <gtest/gtest.h>

#include "machine_fixture.hh"
#include "mem/addr.hh"

namespace {

using namespace absim;
using absim::test::MachineHarness;
using mach::MachineKind;
using mem::LineState;
using net::TopologyKind;

constexpr std::uint64_t kAfter = 1'000'000;

TEST(Protocol, SharedDirtyOwnerUpgradesWithoutDataFetch)
{
    // Node 1 owns Dirty; node 0 reads (owner -> SharedDirty); node 1
    // writes again: upgrade (it still owns), invalidating node 0 but
    // fetching nothing.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 1);
            p.compute(2 * kAfter);
            a.write(p, 0, 2);
        } else if (p.node() == 0) {
            p.compute(kAfter);
            EXPECT_EQ(a.read(p, 0), 1u);
        }
    });
    EXPECT_EQ(h.target().cache(1).stateOf(blk), LineState::Dirty);
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Invalid);
    EXPECT_EQ(h.machine->stats().upgrades, 1u);
    EXPECT_EQ(a.raw(0), 2u);
}

TEST(Protocol, SharedDirtyEvictionWritesBack)
{
    // Node 0 owns SharedDirty (wrote, then node 1 read); conflicting
    // traffic evicts it: the writeback must clear ownership, and the
    // next reader gets memory-supplied data.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 4);
    const std::uint64_t stride = 64 * 1024 / 8;
    rt::SharedArray<std::uint64_t> a(h.heap, 3 * stride,
                                     rt::Placement::OnNode, 2);
    const auto blk = mem::blockOf(a.addrOf(0));
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            a.write(p, 0, 9); // Dirty at node 0.
            p.compute(2 * kAfter);
            a.read(p, stride);     // Fill the set ...
            a.read(p, 2 * stride); // ... evicting the SharedDirty line.
        } else if (p.node() == 1) {
            p.compute(kAfter);
            EXPECT_EQ(a.read(p, 0), 9u); // Degrades 0 to SharedDirty.
        } else if (p.node() == 3) {
            p.compute(4 * kAfter);
            EXPECT_EQ(a.read(p, 0), 9u); // Memory supplies after WB.
        }
    });
    EXPECT_EQ(h.machine->stats().writebacks, 1u);
    const auto *entry = h.target().directory().peek(blk);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, mem::DirectoryEntry::kNoOwner);
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Invalid);
    EXPECT_EQ(h.target().cache(1).stateOf(blk), LineState::Valid);
    EXPECT_EQ(h.target().cache(3).stateOf(blk), LineState::Valid);
}

TEST(Protocol, HomeNodeSharerInvalidatedForFree)
{
    // The home node itself shares the block; a remote write must not
    // send a network invalidation to the co-located cache.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 0);
    const auto blk = mem::blockOf(a.addrOf(0));
    std::uint64_t msgs = 0;
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            a.read(p, 0); // Home caches its own block: no messages.
        } else {
            p.compute(kAfter);
            a.write(p, 0, 1);
            msgs = h.machine->stats().messages;
        }
    });
    // Write miss: req + data + grant = 3 messages; the invalidation of
    // the home's cache is directory-local.
    EXPECT_EQ(msgs, 3u);
    EXPECT_EQ(h.machine->stats().invalidations, 1u);
    EXPECT_EQ(h.target().cache(0).stateOf(blk), LineState::Invalid);
}

TEST(Protocol, ParallelInvalidationsChargeCriticalPathOnly)
{
    // With 3 remote sharers on a full network the invalidation round
    // trips run in parallel: the writer's latency charge is one
    // inv+ack round trip, not three.
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 8);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 7);
    h.run([&](rt::Proc &p) {
        if (p.node() >= 1 && p.node() <= 3) {
            a.read(p, 0);
        } else if (p.node() == 0) {
            p.compute(kAfter);
            a.read(p, 0); // Join as 4th sharer.
            a.write(p, 0, 1);
        }
    });
    EXPECT_EQ(h.machine->stats().invalidations, 3u);
    const auto &s = h.runtime->proc(0).stats();
    // Read miss (0.4+1.6) + upgrade req (0.4) + inv/ack round trip
    // (0.4+0.4) + grant (0.4): parallel invalidations add one round
    // trip only.
    EXPECT_EQ(s.latency, 400u + 1600u + 400u + 800u + 400u);
}

TEST(Protocol, ContendedHomeSerializesTransactions)
{
    // All nodes write-miss the same block: the blocking home serializes
    // them; every processor's writes are preserved exactly once (the
    // final value equals the last transaction's).
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 8);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 0);
    h.run([&](rt::Proc &p) { a.fetchAdd(p, 0, 1); });
    EXPECT_EQ(a.raw(0), 8u);
    // 7 remote transactions each steal ownership; contention must be
    // nonzero (directory lock waits).
    std::uint64_t total_contention = 0;
    for (std::uint32_t n = 0; n < 8; ++n)
        total_contention += h.runtime->proc(n).stats().contention;
    EXPECT_GT(total_contention, 0u);
}

TEST(Protocol, LogPCOwnerEvictionTeleportsDataHome)
{
    // LogP+C: the dirty owner evicts silently; a later reader must get
    // the data from *home* (one round trip), not the ex-owner.
    MachineHarness h(MachineKind::LogPC, TopologyKind::Full, 4);
    const std::uint64_t stride = 64 * 1024 / 8;
    rt::SharedArray<std::uint64_t> a(h.heap, 3 * stride,
                                     rt::Placement::OnNode, 2);
    rt::SharedArray<std::uint64_t> local(h.heap, 4,
                                         rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 0) {
            a.write(p, 0, 4);      // Own dirty.
            a.write(p, stride, 5); // Fill set ...
            a.write(p, 2 * stride, 6); // ... evict block 0 silently.
        } else if (p.node() == 1) {
            p.compute(kAfter);
            // A local access synchronizes this fiber with the engine so
            // the native counter capture below is ordered after node
            // 0's (much earlier) transactions.
            local.read(p, 0);
            const std::uint64_t before = h.machine->stats().messages;
            EXPECT_EQ(a.read(p, 0), 4u);
            EXPECT_EQ(h.machine->stats().messages, before + 2);
        }
    });
}

TEST(Protocol, ReadMissWhenOwnerIsHomeNode)
{
    // Owner and home coincide: the 3-hop chain degenerates (req remote,
    // forward local, data remote).
    MachineHarness h(MachineKind::Target, TopologyKind::Full, 2);
    rt::SharedArray<std::uint64_t> a(h.heap, 4, rt::Placement::OnNode, 1);
    h.run([&](rt::Proc &p) {
        if (p.node() == 1) {
            a.write(p, 0, 3); // Home owns its own block dirty.
        } else {
            p.compute(kAfter);
            EXPECT_EQ(a.read(p, 0), 3u);
        }
    });
    const auto &s = h.runtime->proc(0).stats();
    // req (0.4) + forward (local, free) + data (1.6).
    EXPECT_EQ(s.latency, 2000u);
    EXPECT_EQ(h.target().cache(1).stateOf(mem::blockOf(a.addrOf(0))),
              LineState::SharedDirty);
}

TEST(Protocol, WritebackRaceDegradesToNoop)
{
    // Node 0's dirty victim is stolen (invalidated) by node 1's write
    // while node 0 waits for the victim's directory lock: the writeback
    // must degrade to a no-op instead of corrupting the directory.
    // This scenario is timing-dependent; we at least pin the invariant
    // that concurrent conflict/steal traffic never double-registers
    // owners.
    MachineHarness h(MachineKind::Target, TopologyKind::Mesh2D, 4);
    const std::uint64_t stride = 64 * 1024 / 8;
    rt::SharedArray<std::uint64_t> a(h.heap, 4 * stride,
                                     rt::Placement::Interleaved);
    h.run([&](rt::Proc &p) {
        for (int round = 0; round < 6; ++round) {
            a.fetchAdd(p, 0, 1);
            a.fetchAdd(p, (1 + (p.node() + round) % 3) * stride, 1);
        }
    });
    EXPECT_EQ(a.raw(0), 24u);
    // Directory invariant after the storm: at most one owner per block.
    for (std::uint64_t b = 0; b < 4; ++b) {
        const auto blk = mem::blockOf(a.addrOf(b * stride));
        const auto *entry = h.target().directory().peek(blk);
        if (entry == nullptr || entry->owner < 0)
            continue;
        EXPECT_TRUE(mem::isOwned(
            h.target()
                .cache(static_cast<net::NodeId>(entry->owner))
                .stateOf(blk)));
    }
}

} // namespace
