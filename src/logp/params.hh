/**
 * @file
 * LogP model parameters (Culler et al., PPoPP 1993) as used in the paper.
 *
 * L — latency: network transmission time of a (maximum-size, 32-byte)
 *     message, 1.6 us at 20 MB/s serial links.
 * o — overhead: processor send/receive cost; negligible on a shared-memory
 *     platform whose messages are generated in hardware (paper Section 3.1),
 *     kept for completeness and defaulted to zero.
 * g — gap: minimum interval between consecutive network operations at a
 *     node, derived from per-processor bisection bandwidth (Section 5):
 *         full: 3.2/p us     cube: 1.6 us     mesh: 0.8*px us
 *     where px is the number of mesh columns.
 * P — processor count.
 */

#ifndef ABSIM_LOGP_PARAMS_HH
#define ABSIM_LOGP_PARAMS_HH

#include <cstdint>

#include "net/topology.hh"
#include "sim/types.hh"

namespace absim::logp {

/** The four LogP parameters (P implicit in the machine). */
struct LogPParams
{
    sim::Duration l = 1600; ///< Latency, ns (1.6 us for 32 B @ 20 MB/s).
    sim::Duration o = 0;    ///< Overhead, ns (negligible; Section 3.1).
    sim::Duration g = 0;    ///< Gap, ns.
    std::uint32_t p = 1;    ///< Processors.

    /** Topology g was derived from; used only by the locality-aware
     *  (BisectionOnly) gap policy to decide which messages cross the
     *  bisection. */
    net::TopologyKind topology = net::TopologyKind::Full;
};

/**
 * Does a message between these nodes cross the bisection cut that the g
 * derivation divided the bandwidth over?  (Full/cube: address halves;
 * mesh: the cut between the two middle columns.)
 */
bool crossesBisection(net::TopologyKind kind, std::uint32_t p,
                      net::NodeId src, net::NodeId dst);

/**
 * The paper's g derivation: per-processor bisection bandwidth.
 *
 * For a message of 32 bytes on 20 MB/s links, g = 32 B / (bisection
 * bandwidth / P).  With the bisection link counts of our topologies this
 * reduces exactly to the closed forms the paper quotes.
 */
sim::Duration gapFor(net::TopologyKind kind, std::uint32_t p);

/** Full LogP parameter set for a topology at @p p processors. */
LogPParams paramsFor(net::TopologyKind kind, std::uint32_t p);

} // namespace absim::logp

#endif // ABSIM_LOGP_PARAMS_HH
