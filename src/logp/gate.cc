#include "logp/gate.hh"

#include <algorithm>

#include "check/check.hh"

namespace absim::logp {

GateSet::GateSet(std::uint32_t nodes, sim::Duration g, GapPolicy policy)
    : g_(g), policy_(policy), gates_(nodes)
{
}

Reservation
GateSet::reserve(sim::Tick &last, bool &used, sim::Tick earliest)
{
    sim::Tick when = earliest;
    if (used)
        when = std::max(earliest, last + g_);
    last = when;
    used = true;
    return Reservation{when, when - earliest};
}

Reservation
GateSet::reserveSend(net::NodeId n, sim::Tick earliest)
{
    ABSIM_DCHECK(n < gates_.size(),
                 "send gate for unknown node " << n);
    NodeGate &gate = gates_[n];
    // Only PerDirection splits the gate; Single and BisectionOnly share
    // one gate per node (the latter filters *which* messages reserve it,
    // in LogPNetwork).
    if (policy_ == GapPolicy::PerDirection)
        return reserve(gate.send, gate.usedSend, earliest);
    return reserve(gate.any, gate.used, earliest);
}

Reservation
GateSet::reserveRecv(net::NodeId n, sim::Tick earliest)
{
    ABSIM_DCHECK(n < gates_.size(),
                 "recv gate for unknown node " << n);
    NodeGate &gate = gates_[n];
    if (policy_ == GapPolicy::PerDirection)
        return reserve(gate.recv, gate.usedRecv, earliest);
    return reserve(gate.any, gate.used, earliest);
}

} // namespace absim::logp
