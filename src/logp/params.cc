#include "logp/params.hh"

#include <memory>

#include "mem/addr.hh"
#include "net/network.hh"

namespace absim::logp {

sim::Duration
gapFor(net::TopologyKind kind, std::uint32_t p)
{
    if (p == 1)
        return 0; // No network at all with a single node.

    // g = message_time * P / bisection_links, with message_time the
    // transmission time of a full cache block (32 B => 1600 ns).
    const auto topo = net::Topology::make(kind, p);
    const sim::Duration msg =
        net::DetailedNetwork::transmissionTime(mem::kBlockBytes);
    return msg * p / topo->bisectionLinks();
}

LogPParams
paramsFor(net::TopologyKind kind, std::uint32_t p)
{
    LogPParams params;
    params.l = net::DetailedNetwork::transmissionTime(mem::kBlockBytes);
    params.o = 0;
    params.g = gapFor(kind, p);
    params.p = p;
    params.topology = kind;
    return params;
}

bool
crossesBisection(net::TopologyKind kind, std::uint32_t p, net::NodeId src,
                 net::NodeId dst)
{
    if (p < 2)
        return false;
    switch (kind) {
      case net::TopologyKind::Full:
      case net::TopologyKind::Hypercube: {
        const std::uint32_t half = p / 2;
        return (src < half) != (dst < half);
      }
      case net::TopologyKind::Mesh2D: {
        std::uint32_t rows = 0, cols = 0;
        net::MeshTopology::shapeFor(p, rows, cols);
        if (cols >= 2)
            return (src % cols < cols / 2) != (dst % cols < cols / 2);
        return (src / cols < rows / 2) != (dst / cols < rows / 2);
      }
    }
    return true;
}

} // namespace absim::logp
