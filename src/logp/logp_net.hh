/**
 * @file
 * The LogP network abstraction: topology-free message timing.
 *
 * A message from A to B initiated at tick t is timed as
 *
 *     send    s = gate_A(send) >= t          (wait charged to contention)
 *     arrive  a = s + L                      (L charged to latency)
 *     deliver r = gate_B(recv) >= a          (wait charged to contention)
 *
 * A shared-memory remote reference is a request/reply round trip of two
 * such messages.  The caller's process blocks until the final delivery.
 */

#ifndef ABSIM_LOGP_LOGP_NET_HH
#define ABSIM_LOGP_LOGP_NET_HH

#include <cstdint>

#include "logp/gate.hh"
#include "logp/params.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace absim::logp {

/** Timing split of one LogP message or round trip. */
struct LogPTiming
{
    sim::Tick deliveredAt = 0;
    sim::Duration latency = 0;
    sim::Duration contention = 0; ///< sourceWait + sinkWait.
    sim::Duration sourceWait = 0; ///< Send-gate portion of contention.
    sim::Duration sinkWait = 0;   ///< Receive-gate portion.
    std::uint32_t messages = 0;
};

/** Aggregate LogP network statistics. */
struct LogPStats
{
    std::uint64_t messages = 0;
    sim::Duration latency = 0;
    sim::Duration contention = 0;
};

/**
 * A LogP-abstracted interconnect shared by all nodes of a machine.
 *
 * Unlike DetailedNetwork, nothing here blocks: timing is computed by
 * reserving gate slots (possibly in the future) and the *caller* sleeps
 * until the result's deliveredAt.  This keeps the LogP machines cheap to
 * simulate — which is the whole point of the abstraction.  Machine
 * compositions reach it through mach::LogPNetModel (the "logp" rows of
 * the registry grid: logp, logp+c, logp+dir); see docs/MACHINES.md.
 */
class LogPNetwork
{
  public:
    LogPNetwork(const LogPParams &params, GapPolicy policy);

    /** Time one message from @p src to @p dst starting at @p now. */
    LogPTiming message(net::NodeId src, net::NodeId dst, sim::Tick now);

    /**
     * Time a request/reply round trip from @p src to @p dst starting at
     * @p now (the common shape of every remote shared-memory reference).
     */
    LogPTiming roundTrip(net::NodeId src, net::NodeId dst, sim::Tick now);

    const LogPParams &params() const { return params_; }
    const LogPStats &stats() const { return stats_; }

  private:
    LogPParams params_;
    GateSet gates_;
    LogPStats stats_;
};

} // namespace absim::logp

#endif // ABSIM_LOGP_LOGP_NET_HH
