#include "logp/logp_net.hh"

#include "check/check.hh"
#include "sim/trace.hh"

namespace absim::logp {

LogPNetwork::LogPNetwork(const LogPParams &params, GapPolicy policy)
    : params_(params), gates_(params.p, params.g, policy)
{
}

LogPTiming
LogPNetwork::message(net::NodeId src, net::NodeId dst, sim::Tick now)
{
    ABSIM_CHECK(src != dst,
                "local reference at node "
                    << src << " reached the LogP network");

    // Under the locality-aware policy, traffic that stays on one side of
    // the bisection does not consume the bisection bandwidth g models.
    const bool gated =
        gates_.policy() != GapPolicy::BisectionOnly ||
        crossesBisection(params_.topology, params_.p, src, dst);

    LogPTiming t;
    sim::Tick send_at = now;
    if (gated) {
        const Reservation send = gates_.reserveSend(src, now);
        t.contention += send.waited;
        t.sourceWait = send.waited;
        send_at = send.when;
    }

    // The o overhead would be charged here on a message-passing platform;
    // it is negligible for the paper's shared-memory NI (params_.o == 0 by
    // default) but kept in the timing chain for completeness.
    const sim::Tick arrival = send_at + params_.o + params_.l;
    t.latency += params_.l;

    sim::Tick recv_at = arrival;
    if (gated) {
        const Reservation recv = gates_.reserveRecv(dst, arrival);
        t.contention += recv.waited;
        t.sinkWait = recv.waited;
        recv_at = recv.when;
    }

    t.deliveredAt = recv_at + params_.o;
    t.messages = 1;

    ++stats_.messages;
    stats_.latency += t.latency;
    stats_.contention += t.contention;
    ABSIM_TRACE_AT(now, LogP, "msg " << src << "->" << dst << " delivered="
                                     << t.deliveredAt << " wait="
                                     << t.contention
                                     << (gated ? "" : " ungated"));
    return t;
}

LogPTiming
LogPNetwork::roundTrip(net::NodeId src, net::NodeId dst, sim::Tick now)
{
    const LogPTiming request = message(src, dst, now);
    const LogPTiming reply = message(dst, src, request.deliveredAt);

    LogPTiming t;
    t.deliveredAt = reply.deliveredAt;
    t.latency = request.latency + reply.latency;
    t.contention = request.contention + reply.contention;
    t.messages = request.messages + reply.messages;
    return t;
}

} // namespace absim::logp
