/**
 * @file
 * Per-node g-gates for the LogP machines.
 *
 * The LogP model requires at least g time units between consecutive
 * network operations at a node; the paper implements this as a delay at
 * the sending and at the receiving node (Section 3.1), and the delays are
 * what the LogP machines report as *contention* overhead.
 *
 * Section 7 observes that gating sends and receives against each other
 * ("the model definition precludes even simultaneous sends and receives
 * from a given node") is a large source of pessimism, and experiments with
 * applying the gap only between identical communication events.  Both
 * policies are implemented here; the ablation bench compares them.
 */

#ifndef ABSIM_LOGP_GATE_HH
#define ABSIM_LOGP_GATE_HH

#include <cstdint>
#include <vector>

#include "net/topology.hh"
#include "sim/types.hh"

namespace absim::logp {

/** How the g-gap is enforced at a node. */
enum class GapPolicy
{
    /** One gate per node: any two network events are >= g apart. */
    Single,
    /**
     * Separate send/receive gates: only identical event kinds are gated
     * against each other (the Section 7 experiment).
     */
    PerDirection,
    /**
     * Gate only messages that actually cross the network bisection
     * (one gate per node, but locality-respecting).  This implements
     * Section 7's suggestion of incorporating the application's
     * communication locality into the use of g: since g is derived from
     * bisection bandwidth, traffic that never crosses the bisection
     * should not consume it.  Extension beyond the paper.
     */
    BisectionOnly,
};

/** Outcome of reserving a gate. */
struct Reservation
{
    sim::Tick when;        ///< Granted slot.
    sim::Duration waited;  ///< when - earliest (the contention charge).
};

/**
 * The g-gates of all nodes of a LogP machine.
 *
 * Reservations may be made "into the future": a message arriving at tick t
 * reserves the receiving node's gate at >= t even if the engine clock is
 * behind, so concurrent requesters observe each other's bandwidth
 * consumption in FIFO order of reservation.
 */
class GateSet
{
  public:
    GateSet(std::uint32_t nodes, sim::Duration g, GapPolicy policy);

    /** Reserve a send slot at node @p n, no earlier than @p earliest. */
    Reservation reserveSend(net::NodeId n, sim::Tick earliest);

    /** Reserve a receive slot at node @p n, no earlier than @p earliest. */
    Reservation reserveRecv(net::NodeId n, sim::Tick earliest);

    sim::Duration gap() const { return g_; }
    GapPolicy policy() const { return policy_; }

  private:
    struct NodeGate
    {
        // Single policy uses only `any`; PerDirection uses send/recv.
        sim::Tick any = 0;
        sim::Tick send = 0;
        sim::Tick recv = 0;
        bool used = false;     ///< First reservation is never gated.
        bool usedSend = false;
        bool usedRecv = false;
    };

    Reservation reserve(sim::Tick &last, bool &used, sim::Tick earliest);

    sim::Duration g_;
    GapPolicy policy_;
    std::vector<NodeGate> gates_;
};

} // namespace absim::logp

#endif // ABSIM_LOGP_GATE_HH
