#include "machines/mem_model.hh"

namespace absim::mach {

AccessTiming
UncachedMem::access(MemClient &client, mem::Addr addr, AccessType type,
                    std::uint32_t bytes)
{
    (void)type;
    (void)bytes;
    ++stats_.accesses;
    const net::NodeId node = client.node();
    const net::NodeId home = homes_.homeOf(addr);

    AccessTiming t;
    if (home == node) {
        ++stats_.localMem;
        t.busy = kLocalMemNs;
        return t;
    }

    // Remote reference: request/reply round trip on the network.
    client.syncToEngine();
    t.networked = true;
    ++stats_.networkAccesses;
    const NetTiming rt = net_.roundTrip(node, home, kDataBytes);
    stats_.messages += rt.messages;
    t.latency = rt.latency;
    t.contention = rt.contention;
    return t;
}

} // namespace absim::mach
