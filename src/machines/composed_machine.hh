/**
 * @file
 * A Machine assembled from one NetModel and one MemModel.
 *
 * Every shared-memory machine in the simulator is such a composition
 * (see machines/registry.hh for the table): the memory model decides
 * what each access costs and which messages it sends, the network model
 * prices the messages.  The shell owns both models, forwards the
 * Machine interface to them, and accumulates the per-axis attribution
 * (MachineStats::memTime) at the single point every access funnels
 * through.
 *
 * The classic paper machines (TargetMachine, LogPMachine, LogPCMachine)
 * derive from this shell only to pin their composition at compile time
 * and expose typed accessors for tests; the off-diagonal quadrants
 * ("target+ic", "logp+dir") are plain ComposedMachine instances built
 * by the registry.
 */

#ifndef ABSIM_MACHINES_COMPOSED_MACHINE_HH
#define ABSIM_MACHINES_COMPOSED_MACHINE_HH

#include <functional>
#include <memory>

#include "machines/mem_model.hh"
#include "machines/net_model.hh"

namespace absim::mach {

class ComposedMachine : public Machine
{
  public:
    using NetFactory = std::function<std::unique_ptr<NetModel>()>;
    /** Builds the memory model against the just-built network model and
     *  the machine's stats block. */
    using MemFactory = std::function<std::unique_ptr<MemModel>(
        NetModel &, MachineStats &)>;

    ComposedMachine(MachineKind kind, std::uint32_t nodes,
                    const mem::HomeMap &homes, const NetFactory &make_net,
                    const MemFactory &make_mem);

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;

    MachineKind kind() const override { return kind_; }

    void checkInvariants() const override
    {
        mem_model_->checkInvariants();
    }

    bool corruptStateForFault(std::uint64_t seed) override
    {
        return mem_model_->corruptStateForFault(seed);
    }

    const char *netModelName() const override { return net_model_->name(); }
    const char *memModelName() const override { return mem_model_->name(); }

    NetModel &netModel() { return *net_model_; }
    const NetModel &netModel() const { return *net_model_; }
    MemModel &memModel() { return *mem_model_; }
    const MemModel &memModel() const { return *mem_model_; }

  private:
    MachineKind kind_;
    std::unique_ptr<NetModel> net_model_;
    std::unique_ptr<MemModel> mem_model_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_COMPOSED_MACHINE_HH
