/**
 * @file
 * The ideal coherent cache (paper Section 3.2).
 *
 * Each node has the same 64 KB 2-way cache geometry as the directory
 * memory system and the caches go through the same Berkeley state
 * transitions — but the overheads of coherence maintenance are not
 * modeled: invalidations, ownership transfers and writebacks are
 * instantaneous and free.  Network round trips are charged only when a
 * request cannot be satisfied by the cache or local memory (a miss whose
 * data lives remotely), so the model captures the application's true
 * communication — the minimum message count any invalidation protocol
 * could hope to achieve.
 *
 * Composed with LogPNetModel this is the paper's LogP+C machine;
 * composed with DetailedNetModel it is the "target+ic" quadrant, which
 * isolates the locality abstraction's error under the real network.
 */

#ifndef ABSIM_MACHINES_IDEAL_MEM_HH
#define ABSIM_MACHINES_IDEAL_MEM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/coherence.hh"
#include "machines/mem_model.hh"
#include "mem/cache.hh"

namespace absim::mach {

class IdealCacheMem : public MemModel
{
  public:
    /** Zero-cost global coherence bookkeeping for one block. */
    struct OracleEntry
    {
        std::uint64_t sharers = 0;
        std::int32_t owner = -1;
    };

    /**
     * @param checker_name  Machine name used in coherence-failure
     *                      messages (the composition's registry name).
     */
    IdealCacheMem(NetModel &net, std::uint32_t nodes,
                  const mem::HomeMap &homes, MachineStats &stats,
                  const CacheConfig &cache_config, std::string checker_name);

    const char *name() const override { return "ideal"; }

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;

    /** Full SWMR + oracle-agreement sweep.  The oracle bookkeeping is
     *  exact (no silent stale bits), so the sweep is strict. */
    void checkInvariants() const override { checker_.checkAll(); }

    const mem::SetAssocCache &cache(net::NodeId n) const
    {
        return *caches_[n];
    }
    const check::CoherenceChecker &checker() const { return checker_; }

    /** @name Test-only hooks.
     *
     * Mutable access to the caches and the coherence oracle so tests can
     * drive them into inconsistent states and prove the checker fires.
     * Never call these from simulation code.
     */
    /// @{
    mem::SetAssocCache &cacheForTest(net::NodeId n) { return *caches_[n]; }
    OracleEntry &oracleForTest(mem::BlockId blk) { return entryOf(blk); }
    /// @}

  private:
    OracleEntry &entryOf(mem::BlockId blk) { return oracle_[blk]; }

    /** Silent, free eviction of the LRU victim (data teleports home). */
    void makeRoom(net::NodeId node, mem::BlockId blk);

    /** Free, instantaneous invalidation of every sharer but @p node. */
    void invalidateOthers(net::NodeId node, mem::BlockId blk,
                          OracleEntry &entry);

    std::vector<std::unique_ptr<mem::SetAssocCache>> caches_;
    std::unordered_map<mem::BlockId, OracleEntry> oracle_;
    check::CoherenceChecker checker_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_IDEAL_MEM_HH
