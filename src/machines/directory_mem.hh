/**
 * @file
 * Real directory caches: per-node set-associative private caches kept
 * sequentially consistent by an invalidation-based (Berkeley or MSI)
 * fully-mapped directory protocol (paper Sections 3 and 5).
 *
 * Protocol style: *blocking home*.  Every miss/upgrade/writeback locks
 * the block's directory entry at its home node for the duration of the
 * transaction, which serializes conflicting transactions exactly like a
 * busy-bit blocking directory.  State transitions are applied at
 * transaction points while the lock is held; the network transfers
 * inside the transaction provide the timing.
 *
 * Composed with DetailedNetModel this is the paper's target machine;
 * composed with LogPNetModel it is the "logp+dir" quadrant, which
 * isolates the network abstraction's error under a real coherence
 * protocol.
 */

#ifndef ABSIM_MACHINES_DIRECTORY_MEM_HH
#define ABSIM_MACHINES_DIRECTORY_MEM_HH

#include <memory>
#include <string>
#include <vector>

#include "check/coherence.hh"
#include "machines/mem_model.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "sim/event_queue.hh"

namespace absim::mach {

class DirectoryMem : public MemModel
{
  public:
    /**
     * @param eq       Engine (protocol tracing).
     * @param net      Transport the protocol messages are charged to.
     * @param checker_name  Machine name used in coherence-failure
     *                 messages (the composition's registry name).
     */
    DirectoryMem(sim::EventQueue &eq, NetModel &net, std::uint32_t nodes,
                 const mem::HomeMap &homes, MachineStats &stats,
                 const CacheConfig &cache_config, ProtocolKind protocol,
                 std::string checker_name);

    const char *name() const override { return "directory"; }

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;

    /** Full SWMR + directory-agreement sweep over every tracked block. */
    void checkInvariants() const override { checker_.checkAll(); }

    /**
     * Chaos hook: flip one resident line's coherence state behind the
     * directory's back (seed picks the line), then re-check the block
     * so the corruption is caught at the very transition it models.
     */
    bool corruptStateForFault(std::uint64_t seed) override;

    ProtocolKind protocol() const { return protocol_; }
    const mem::SetAssocCache &cache(net::NodeId n) const
    {
        return *caches_[n];
    }
    const mem::Directory &directory() const { return dir_; }
    const check::CoherenceChecker &checker() const { return checker_; }

    /** @name Test-only hooks.
     *
     * Mutable access to protocol state so tests can deliberately drive
     * the caches and directory into inconsistent states and prove the
     * coherence checker fires.  Never call these from simulation code.
     */
    /// @{
    mem::SetAssocCache &cacheForTest(net::NodeId n) { return *caches_[n]; }
    mem::Directory &directoryForTest() { return dir_; }
    /// @}

  private:
    /** One network hop with stats/latency bookkeeping; no-op if src==dst
     *  (then the data-transfer cost is charged to busy instead). */
    void hop(net::NodeId src, net::NodeId dst, std::uint32_t bytes,
             AccessTiming &t);

    /** Write the victim back to its home and update the directory. */
    void writeback(net::NodeId node, mem::BlockId victim,
                   mem::LineState state, AccessTiming &t);

    /** Read-miss transaction (Berkeley: owner supplies if one exists). */
    void readMiss(net::NodeId node, mem::BlockId blk, AccessTiming &t);

    /** Write-miss / upgrade transaction: fetch data if needed, invalidate
     *  all other copies, take exclusive ownership. */
    void writeMiss(net::NodeId node, mem::BlockId blk, bool have_line,
                   AccessTiming &t);

    /** Fan out invalidations to every sharer but @p node in parallel and
     *  wait for all acks; state flips happen immediately (lock is held). */
    void invalidateSharers(net::NodeId node, mem::BlockId blk,
                           mem::DirectoryEntry &entry, AccessTiming &t);

    /** Make room for @p blk in @p node's cache (victim writeback). */
    void makeRoom(net::NodeId node, mem::BlockId blk, AccessTiming &t);

    sim::EventQueue &eq_;
    std::vector<std::unique_ptr<mem::SetAssocCache>> caches_;
    mem::Directory dir_;
    ProtocolKind protocol_;
    check::CoherenceChecker checker_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_DIRECTORY_MEM_HH
