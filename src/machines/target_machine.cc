#include "machines/target_machine.hh"

namespace absim::mach {

TargetMachine::TargetMachine(sim::EventQueue &eq, net::TopologyKind topo,
                             std::uint32_t nodes,
                             const mem::HomeMap &homes,
                             const CacheConfig &cache_config,
                             ProtocolKind protocol)
    : ComposedMachine(
          MachineKind::Target, nodes, homes,
          [&] {
              return std::make_unique<DetailedNetModel>(eq, topo, nodes);
          },
          [&](NetModel &net, MachineStats &stats) {
              return std::make_unique<DirectoryMem>(
                  eq, net, nodes, homes, stats, cache_config, protocol,
                  "target");
          })
{
}

} // namespace absim::mach
