#include "machines/machine.hh"

namespace absim::mach {

std::string
toString(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Berkeley:
        return "berkeley";
      case ProtocolKind::Msi:
        return "msi";
    }
    return "?";
}

std::string
toString(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Target:
        return "target";
      case MachineKind::LogP:
        return "logp";
      case MachineKind::LogPC:
        return "logp+c";
      case MachineKind::TargetIC:
        return "target+ic";
      case MachineKind::LogPDir:
        return "logp+dir";
      case MachineKind::None:
        return "none";
    }
    return "?";
}

} // namespace absim::mach
