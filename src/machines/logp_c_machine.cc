#include "machines/logp_c_machine.hh"

namespace absim::mach {

LogPCMachine::LogPCMachine(sim::EventQueue &eq, net::TopologyKind topo,
                           std::uint32_t nodes, const mem::HomeMap &homes,
                           logp::GapPolicy policy,
                           const CacheConfig &cache_config)
    : ComposedMachine(
          MachineKind::LogPC, nodes, homes,
          [&] {
              return std::make_unique<LogPNetModel>(eq, topo, nodes,
                                                    policy);
          },
          [&](NetModel &net, MachineStats &stats) {
              return std::make_unique<IdealCacheMem>(
                  net, nodes, homes, stats, cache_config, "logp+c");
          })
{
}

} // namespace absim::mach
