/**
 * @file
 * The no-shared-memory machine, for message-passing platform studies:
 * processors communicate exclusively through msg::MsgWorld and any
 * shared-memory access is a programming error.
 */

#ifndef ABSIM_MACHINES_NULL_MACHINE_HH
#define ABSIM_MACHINES_NULL_MACHINE_HH

#include <stdexcept>

#include "machines/machine.hh"

namespace absim::mach {

class NullMachine : public Machine
{
  public:
    NullMachine(std::uint32_t nodes, const mem::HomeMap &homes)
        : Machine(nodes, homes)
    {
    }

    AccessTiming
    access(MemClient &, mem::Addr, AccessType, std::uint32_t) override
    {
        throw std::logic_error(
            "shared-memory access on a message-passing platform");
    }

    MachineKind kind() const override { return MachineKind::None; }
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_NULL_MACHINE_HH
