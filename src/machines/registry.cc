#include "machines/registry.hh"

#include <stdexcept>

#include "machines/composed_machine.hh"
#include "machines/directory_mem.hh"
#include "machines/ideal_mem.hh"
#include "machines/logp_c_machine.hh"
#include "machines/logp_machine.hh"
#include "machines/target_machine.hh"

namespace absim::mach {

const std::vector<MachineSpec> &
machineRegistry()
{
    static const std::vector<MachineSpec> table = {
        {MachineKind::Target, "target", "target", "detailed", "directory",
         "detailed network + Berkeley directory caches (the real machine)",
         true},
        {MachineKind::LogP, "logp", "logp", "logp", "uncached",
         "LogP network, no caches (every remote reference is a round trip)",
         true},
        {MachineKind::LogPC, "logp+c", "logpc", "logp", "ideal",
         "LogP network + ideal coherent cache (free coherence)", true},
        {MachineKind::TargetIC, "target+ic", "targetic", "detailed",
         "ideal",
         "detailed network + ideal coherent cache (isolates locality "
         "error)",
         true},
        {MachineKind::LogPDir, "logp+dir", "logpdir", "logp", "directory",
         "LogP network + real directory caches (isolates network error)",
         true},
        {MachineKind::None, "none", "none", "none", "none",
         "no shared memory (message-passing platforms)", false},
    };
    return table;
}

const MachineSpec &
specFor(MachineKind kind)
{
    for (const MachineSpec &spec : machineRegistry())
        if (spec.kind == kind)
            return spec;
    throw std::invalid_argument("machine kind missing from registry");
}

bool
parseMachineKind(std::string_view text, MachineKind &out)
{
    for (const MachineSpec &spec : machineRegistry()) {
        if (text == spec.name || text == spec.column) {
            out = spec.kind;
            return true;
        }
    }
    return false;
}

std::string
machineNames()
{
    std::string names;
    for (const MachineSpec &spec : machineRegistry()) {
        if (!spec.runnable)
            continue;
        if (!names.empty())
            names += ", ";
        names += spec.name;
    }
    return names;
}

std::vector<MachineKind>
defaultFigureMachines()
{
    return {MachineKind::Target, MachineKind::LogP, MachineKind::LogPC};
}

std::vector<MachineKind>
allQuadrants()
{
    std::vector<MachineKind> kinds;
    for (const MachineSpec &spec : machineRegistry())
        if (spec.runnable)
            kinds.push_back(spec.kind);
    return kinds;
}

std::unique_ptr<Machine>
makeMachine(MachineKind kind, sim::EventQueue &eq, net::TopologyKind topo,
            std::uint32_t nodes, const mem::HomeMap &homes,
            logp::GapPolicy policy, const CacheConfig &cache,
            ProtocolKind protocol)
{
    switch (kind) {
      case MachineKind::Target:
        return std::make_unique<TargetMachine>(eq, topo, nodes, homes,
                                               cache, protocol);
      case MachineKind::LogP:
        return std::make_unique<LogPMachine>(eq, topo, nodes, homes,
                                             policy);
      case MachineKind::LogPC:
        return std::make_unique<LogPCMachine>(eq, topo, nodes, homes,
                                              policy, cache);
      case MachineKind::TargetIC:
        // Off-diagonal quadrant: real network, ideal cache.
        return std::make_unique<ComposedMachine>(
            MachineKind::TargetIC, nodes, homes,
            [&] {
                return std::make_unique<DetailedNetModel>(eq, topo, nodes);
            },
            [&](NetModel &net, MachineStats &stats) {
                return std::make_unique<IdealCacheMem>(
                    net, nodes, homes, stats, cache, "target+ic");
            });
      case MachineKind::LogPDir:
        // Off-diagonal quadrant: LogP network, real protocol.
        return std::make_unique<ComposedMachine>(
            MachineKind::LogPDir, nodes, homes,
            [&] {
                return std::make_unique<LogPNetModel>(eq, topo, nodes,
                                                      policy);
            },
            [&](NetModel &net, MachineStats &stats) {
                return std::make_unique<DirectoryMem>(
                    eq, net, nodes, homes, stats, cache, protocol,
                    "logp+dir");
            });
      case MachineKind::None:
        break; // Message-passing platforms are driven directly.
    }
    throw std::invalid_argument("unsupported machine kind");
}

} // namespace absim::mach
