#include "machines/ideal_mem.hh"

#include <utility>

#include "check/check.hh"

namespace absim::mach {

using mem::BlockId;
using mem::LineState;
using net::NodeId;

IdealCacheMem::IdealCacheMem(NetModel &net, std::uint32_t nodes,
                             const mem::HomeMap &homes, MachineStats &stats,
                             const CacheConfig &cache_config,
                             std::string checker_name)
    : MemModel(net, nodes, homes, stats),
      checker_(
          std::move(checker_name), /*exact_sharers=*/true, caches_,
          [this](BlockId blk) {
              check::DirInfo info;
              auto it = oracle_.find(blk);
              if (it != oracle_.end()) {
                  info.tracked = true;
                  info.sharers = it->second.sharers;
                  info.owner = it->second.owner;
              }
              return info;
          },
          [this](const std::function<void(BlockId)> &fn) {
              for (const auto &kv : oracle_)
                  fn(kv.first);
          })
{
    ABSIM_CHECK(nodes <= mem::kMaxNodes,
                nodes << " nodes exceed the " << mem::kMaxNodes
                      << "-node sharer masks");
    caches_.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i)
        caches_.push_back(std::make_unique<mem::SetAssocCache>(
            cache_config.bytes, cache_config.ways));
}

void
IdealCacheMem::makeRoom(NodeId node, BlockId blk)
{
    BlockId victim;
    LineState vstate;
    if (!caches_[node]->victimFor(blk, victim, vstate))
        return;
    OracleEntry &entry = entryOf(victim);
    entry.sharers &= ~(std::uint64_t{1} << node);
    if (entry.owner == static_cast<std::int32_t>(node))
        entry.owner = -1; // Writeback is free: data teleports home.
    caches_[node]->setState(victim, LineState::Invalid);
    checker_.checkBlock(victim);
}

void
IdealCacheMem::invalidateOthers(NodeId node, BlockId blk,
                                OracleEntry &entry)
{
    const std::uint64_t others =
        entry.sharers & ~(std::uint64_t{1} << node);
    if (others != 0) {
        for (NodeId s = 0; s < nodes_; ++s) {
            if ((others >> s) & 1u) {
                caches_[s]->invalidate(blk);
                ++stats_.invalidations; // Counted, but free.
            }
        }
    }
    entry.sharers = std::uint64_t{1} << node;
    entry.owner = static_cast<std::int32_t>(node);
}

AccessTiming
IdealCacheMem::access(MemClient &client, mem::Addr addr, AccessType type,
                      std::uint32_t bytes)
{
    (void)bytes;
    ++stats_.accesses;
    const NodeId node = client.node();
    const BlockId blk = mem::blockOf(addr);
    mem::SetAssocCache &cache = *caches_[node];
    const LineState state = cache.stateOf(blk);
    const bool is_read = (type == AccessType::Read);

    AccessTiming t;
    if (is_read ? state != LineState::Invalid : state == LineState::Dirty) {
        cache.touch(blk);
        ++cache.stats().hits;
        ++stats_.cacheHits;
        t.busy = kCacheHitNs;
        return t;
    }

    if (!is_read && state != LineState::Invalid) {
        // Upgrade: the paper's canonical example — the block is valid in
        // several caches and one processor writes.  The directory memory
        // system sends invalidations; here the state flips are free and
        // there is no network access at all.
        ++stats_.upgrades;
        ++cache.stats().upgrades;
        invalidateOthers(node, blk, entryOf(blk));
        cache.setState(blk, LineState::Dirty);
        cache.touch(blk);
        checker_.checkBlock(blk);
        t.busy = kCacheHitNs;
        return t;
    }

    // True miss: find where the data lives.
    if (is_read)
        ++stats_.readMisses;
    else
        ++stats_.writeMisses;
    makeRoom(node, blk);

    OracleEntry &entry = entryOf(blk);
    const NodeId home = homes_.homeOf(addr);
    NodeId source = home;
    if (entry.owner >= 0 &&
        entry.owner != static_cast<std::int32_t>(node)) {
        // A remote cache owns the only up-to-date copy: fetching it is
        // true communication and is charged even in the ideal model.
        source = static_cast<NodeId>(entry.owner);
    }

    if (source != node) {
        client.syncToEngine();
        t.networked = true;
        ++stats_.networkAccesses;
        const NetTiming rt = net_.roundTrip(node, source, kDataBytes);
        stats_.messages += rt.messages;
        t.latency = rt.latency;
        t.contention = rt.contention;
    } else {
        ++stats_.localMem;
        t.busy += kLocalMemNs;
    }

    if (is_read) {
        if (entry.owner >= 0 &&
            entry.owner != static_cast<std::int32_t>(node)) {
            // Berkeley transition: the supplying owner keeps ownership in
            // SharedDirty (free state change).
            caches_[static_cast<NodeId>(entry.owner)]->setState(
                blk, LineState::SharedDirty);
        }
        entry.sharers |= std::uint64_t{1} << node;
        cache.install(blk, LineState::Valid);
    } else {
        invalidateOthers(node, blk, entry);
        cache.install(blk, LineState::Dirty);
    }

    checker_.checkBlock(blk);
    t.busy += kCacheHitNs;
    return t;
}

} // namespace absim::mach
