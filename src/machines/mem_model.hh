/**
 * @file
 * The locality axis of a machine characterization.
 *
 * A MemModel decides what a shared-memory access costs locally (cache
 * hit, local memory) and which messages it must send, charging the
 * transport to whatever NetModel it was composed with.  Three models
 * exist:
 *
 *  - DirectoryMem (directory_mem.hh): per-node set-associative caches
 *    kept coherent by a blocking-home invalidation directory protocol
 *    (Berkeley or MSI) — every protocol message is charged.
 *  - IdealCacheMem (ideal_mem.hh): the same cache geometry with *free*
 *    coherence maintenance — only true data communication is charged
 *    (the paper's ideal coherent cache).
 *  - UncachedMem (below): no caches; every non-home reference is one
 *    request/reply round trip (the plain LogP machine's memory system).
 *
 * Models mutate the MachineStats of the composition they belong to and
 * call MemClient::syncToEngine() exactly once before their first
 * blocking network operation of an access.
 */

#ifndef ABSIM_MACHINES_MEM_MODEL_HH
#define ABSIM_MACHINES_MEM_MODEL_HH

#include "machines/machine.hh"
#include "machines/net_model.hh"

namespace absim::mach {

class MemModel
{
  public:
    virtual ~MemModel() = default;

    /** Axis identity: "directory", "ideal" or "uncached". */
    virtual const char *name() const = 0;

    /** Perform one access on behalf of @p client (Machine::access). */
    virtual AccessTiming access(MemClient &client, mem::Addr addr,
                                AccessType type, std::uint32_t bytes) = 0;

    /** Full invariant sweep, if the model maintains protocol state. */
    virtual void checkInvariants() const {}

    /** Fault hook (Machine::corruptStateForFault semantics). */
    virtual bool
    corruptStateForFault(std::uint64_t seed)
    {
        (void)seed;
        return false;
    }

  protected:
    MemModel(NetModel &net, std::uint32_t nodes, const mem::HomeMap &homes,
             MachineStats &stats)
        : net_(net), nodes_(nodes), homes_(homes), stats_(stats)
    {
    }

    NetModel &net_;
    std::uint32_t nodes_;
    const mem::HomeMap &homes_;
    MachineStats &stats_;
};

/**
 * No caches: each node owns a slice of the shared memory, every
 * reference to another node's slice is a request/reply round trip
 * (paper Section 3.1, as on the BBN Butterfly GP-1000).
 */
class UncachedMem : public MemModel
{
  public:
    UncachedMem(NetModel &net, std::uint32_t nodes,
                const mem::HomeMap &homes, MachineStats &stats)
        : MemModel(net, nodes, homes, stats)
    {
    }

    const char *name() const override { return "uncached"; }

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_MEM_MODEL_HH
