#include "machines/net_model.hh"

#include "sim/process.hh"

namespace absim::mach {

using net::NodeId;

DetailedNetModel::DetailedNetModel(sim::EventQueue &eq,
                                   net::TopologyKind topo,
                                   std::uint32_t nodes)
    : eq_(eq), net_(std::make_unique<net::DetailedNetwork>(
                   eq, net::Topology::make(topo, nodes)))
{
}

NetTiming
DetailedNetModel::transfer(NodeId src, NodeId dst, std::uint32_t bytes)
{
    const net::TransferResult r = net_->transfer(src, dst, bytes);
    return NetTiming{r.latency, r.contention, 1};
}

NetTiming
DetailedNetModel::roundTrip(NodeId src, NodeId dst,
                            std::uint32_t reply_bytes)
{
    const net::TransferResult req = net_->transfer(src, dst, kCtrlBytes);
    const net::TransferResult rep = net_->transfer(dst, src, reply_bytes);
    return NetTiming{req.latency + rep.latency,
                     req.contention + rep.contention, 2};
}

NetTiming
DetailedNetModel::fanOutRoundTrips(NodeId center,
                                   const std::vector<NodeId> &targets)
{
    // One helper process per target runs the inv/ack round trip; the
    // caller waits on the latch for the slowest.
    struct HelperResult
    {
        sim::Duration latency = 0;
        sim::Tick doneAt = 0;
    };
    auto results =
        std::make_shared<std::vector<HelperResult>>(targets.size());
    auto latch = std::make_shared<sim::Latch>(
        static_cast<std::uint32_t>(targets.size()));

    NetTiming t;
    const sim::Tick began = eq_.now();
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const NodeId tgt = targets[i];
        t.messages += 2;
        sim::spawnDetached(
            eq_, "inv-helper",
            [this, center, tgt, i, results, latch] {
                const auto inv = net_->transfer(center, tgt, kCtrlBytes);
                const auto ack = net_->transfer(tgt, center, kCtrlBytes);
                (*results)[i].latency = inv.latency + ack.latency;
                (*results)[i].doneAt = eq_.now();
                latch->countDown();
            },
            began);
    }
    latch->await();

    // The caller waited for the slowest helper; charge that helper's
    // contention-free time as latency and the remainder as contention,
    // which partitions the elapsed wait exactly.
    const sim::Tick elapsed = eq_.now() - began;
    sim::Duration critical_latency = 0;
    sim::Tick latest = 0;
    for (const HelperResult &r : *results) {
        if (r.doneAt >= latest) {
            latest = r.doneAt;
            critical_latency = r.latency;
        }
    }
    t.latency = critical_latency;
    t.contention = elapsed - critical_latency;
    return t;
}

LogPNetModel::LogPNetModel(sim::EventQueue &eq, net::TopologyKind topo,
                           std::uint32_t nodes, logp::GapPolicy policy)
    : eq_(eq), net_(std::make_unique<logp::LogPNetwork>(
                   logp::paramsFor(topo, nodes), policy))
{
}

NetTiming
LogPNetModel::transfer(NodeId src, NodeId dst, std::uint32_t bytes)
{
    (void)bytes; // LogP messages cost L regardless of payload.
    const logp::LogPTiming m = net_->message(src, dst, eq_.now());
    sim::Process::current()->delayUntil(m.deliveredAt);
    return NetTiming{m.latency, m.contention, m.messages};
}

NetTiming
LogPNetModel::roundTrip(NodeId src, NodeId dst, std::uint32_t reply_bytes)
{
    (void)reply_bytes;
    const logp::LogPTiming rt = net_->roundTrip(src, dst, eq_.now());
    sim::Process::current()->delayUntil(rt.deliveredAt);
    return NetTiming{rt.latency, rt.contention, rt.messages};
}

NetTiming
LogPNetModel::fanOutRoundTrips(NodeId center,
                               const std::vector<NodeId> &targets)
{
    // All round trips start now; g-gates at the center serialize the
    // sends, which is exactly LogP's model of an invalidation fan-out.
    NetTiming t;
    const sim::Tick began = eq_.now();
    sim::Tick latest = began;
    sim::Duration critical_latency = 0;
    for (const NodeId tgt : targets) {
        const logp::LogPTiming rt = net_->roundTrip(center, tgt, began);
        t.messages += rt.messages;
        if (rt.deliveredAt >= latest) {
            latest = rt.deliveredAt;
            critical_latency = rt.latency;
        }
    }
    sim::Process::current()->delayUntil(latest);
    t.latency = critical_latency;
    t.contention = (latest - began) - critical_latency;
    return t;
}

} // namespace absim::mach
