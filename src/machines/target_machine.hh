/**
 * @file
 * The detailed target machine: a CC-NUMA shared-memory multiprocessor with
 * per-node 64 KB 2-way private caches kept sequentially consistent by an
 * invalidation-based (Berkeley) fully-mapped directory protocol, on top of
 * the detailed circuit-switched interconnect (paper Sections 3 and 5).
 *
 * Protocol style: *blocking home*.  Every miss/upgrade/writeback locks the
 * block's directory entry at its home node for the duration of the
 * transaction, which serializes conflicting transactions exactly like a
 * busy-bit blocking directory.  State transitions are applied at
 * transaction points while the lock is held; the network transfers inside
 * the transaction provide the timing (latency = contention-free
 * transmission, contention = link waits + home-occupancy waits).
 */

#ifndef ABSIM_MACHINES_TARGET_MACHINE_HH
#define ABSIM_MACHINES_TARGET_MACHINE_HH

#include <memory>
#include <vector>

#include "check/coherence.hh"
#include "machines/machine.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace absim::mach {

class TargetMachine : public Machine
{
  public:
    /**
     * @param eq     Engine.
     * @param topo   Interconnect topology (the machine owns the network).
     * @param nodes  Processor/node count.
     * @param homes  Address-to-home-node mapping.
     */
    TargetMachine(sim::EventQueue &eq, net::TopologyKind topo,
                  std::uint32_t nodes, const mem::HomeMap &homes,
                  const CacheConfig &cache_config = {},
                  ProtocolKind protocol = ProtocolKind::Berkeley);

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;

    MachineKind kind() const override { return MachineKind::Target; }

    /** Full SWMR + directory-agreement sweep over every tracked block. */
    void checkInvariants() const override { checker_.checkAll(); }

    /**
     * Chaos hook: flip one resident line's coherence state behind the
     * directory's back (seed picks the line), then re-check the block
     * so the corruption is caught at the very transition it models.
     */
    bool corruptStateForFault(std::uint64_t seed) override;

    const net::DetailedNetwork &network() const { return *net_; }
    ProtocolKind protocol() const { return protocol_; }
    const mem::SetAssocCache &cache(net::NodeId n) const
    {
        return *caches_[n];
    }
    const mem::Directory &directory() const { return dir_; }
    const check::CoherenceChecker &checker() const { return checker_; }

    /** @name Test-only hooks.
     *
     * Mutable access to protocol state so tests can deliberately drive
     * the caches and directory into inconsistent states and prove the
     * coherence checker fires.  Never call these from simulation code.
     */
    /// @{
    mem::SetAssocCache &cacheForTest(net::NodeId n) { return *caches_[n]; }
    mem::Directory &directoryForTest() { return dir_; }
    /// @}

  private:
    /** One network hop with stats/latency bookkeeping; no-op if src==dst
     *  (then @p local_cost is charged to busy instead). */
    void hop(net::NodeId src, net::NodeId dst, std::uint32_t bytes,
             AccessTiming &t);

    /** Write the victim back to its home and update the directory. */
    void writeback(net::NodeId node, mem::BlockId victim,
                   mem::LineState state, AccessTiming &t);

    /** Read-miss transaction (Berkeley: owner supplies if one exists). */
    void readMiss(net::NodeId node, mem::BlockId blk, AccessTiming &t);

    /** Write-miss / upgrade transaction: fetch data if needed, invalidate
     *  all other copies, take exclusive ownership. */
    void writeMiss(net::NodeId node, mem::BlockId blk, bool have_line,
                   AccessTiming &t);

    /** Fan out invalidations to every sharer but @p node in parallel and
     *  wait for all acks; state flips happen immediately (lock is held). */
    void invalidateSharers(net::NodeId node, mem::BlockId blk,
                           mem::DirectoryEntry &entry, AccessTiming &t);

    /** Make room for @p blk in @p node's cache (victim writeback). */
    void makeRoom(net::NodeId node, mem::BlockId blk, AccessTiming &t);

    sim::EventQueue &eq_;
    std::unique_ptr<net::DetailedNetwork> net_;
    std::vector<std::unique_ptr<mem::SetAssocCache>> caches_;
    mem::Directory dir_;
    ProtocolKind protocol_;
    check::CoherenceChecker checker_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_TARGET_MACHINE_HH
