/**
 * @file
 * The detailed target machine: a CC-NUMA shared-memory multiprocessor with
 * per-node 64 KB 2-way private caches kept sequentially consistent by an
 * invalidation-based (Berkeley) fully-mapped directory protocol, on top of
 * the detailed circuit-switched interconnect (paper Sections 3 and 5).
 *
 * Composition: DetailedNetModel x DirectoryMem (see directory_mem.hh for
 * the protocol and composed_machine.hh for the shell).  This class only
 * pins the composition and exposes typed accessors for tests.
 */

#ifndef ABSIM_MACHINES_TARGET_MACHINE_HH
#define ABSIM_MACHINES_TARGET_MACHINE_HH

#include "machines/composed_machine.hh"
#include "machines/directory_mem.hh"

namespace absim::mach {

class TargetMachine : public ComposedMachine
{
  public:
    /**
     * @param eq     Engine.
     * @param topo   Interconnect topology (the machine owns the network).
     * @param nodes  Processor/node count.
     * @param homes  Address-to-home-node mapping.
     */
    TargetMachine(sim::EventQueue &eq, net::TopologyKind topo,
                  std::uint32_t nodes, const mem::HomeMap &homes,
                  const CacheConfig &cache_config = {},
                  ProtocolKind protocol = ProtocolKind::Berkeley);

    const net::DetailedNetwork &network() const
    {
        return static_cast<const DetailedNetModel &>(netModel()).network();
    }
    ProtocolKind protocol() const { return dirMem().protocol(); }
    const mem::SetAssocCache &cache(net::NodeId n) const
    {
        return dirMem().cache(n);
    }
    const mem::Directory &directory() const { return dirMem().directory(); }
    const check::CoherenceChecker &checker() const
    {
        return dirMem().checker();
    }

    /** @name Test-only hooks (see DirectoryMem). */
    /// @{
    mem::SetAssocCache &cacheForTest(net::NodeId n)
    {
        return dirMem().cacheForTest(n);
    }
    mem::Directory &directoryForTest() { return dirMem().directoryForTest(); }
    /// @}

  private:
    DirectoryMem &dirMem() { return static_cast<DirectoryMem &>(memModel()); }
    const DirectoryMem &dirMem() const
    {
        return static_cast<const DirectoryMem &>(memModel());
    }
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_TARGET_MACHINE_HH
