#include "machines/directory_mem.hh"

#include <utility>

#include "check/check.hh"
#include "sim/trace.hh"

namespace absim::mach {

using mem::BlockId;
using mem::LineState;
using net::NodeId;

DirectoryMem::DirectoryMem(sim::EventQueue &eq, NetModel &net,
                           std::uint32_t nodes, const mem::HomeMap &homes,
                           MachineStats &stats,
                           const CacheConfig &cache_config,
                           ProtocolKind protocol, std::string checker_name)
    : MemModel(net, nodes, homes, stats), eq_(eq), protocol_(protocol),
      checker_(
          std::move(checker_name), /*exact_sharers=*/false, caches_,
          [this](BlockId blk) {
              check::DirInfo info;
              if (const mem::DirectoryEntry *e = dir_.peek(blk)) {
                  info.tracked = true;
                  info.sharers = e->sharers;
                  info.owner = e->owner;
              }
              return info;
          },
          [this](const std::function<void(BlockId)> &fn) {
              dir_.forEach(
                  [&fn](BlockId blk, const mem::DirectoryEntry &) {
                      fn(blk);
                  });
          })
{
    ABSIM_CHECK(nodes <= mem::kMaxNodes,
                nodes << " nodes exceed the " << mem::kMaxNodes
                      << "-node sharer masks");
    caches_.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i)
        caches_.push_back(std::make_unique<mem::SetAssocCache>(
            cache_config.bytes, cache_config.ways));
}

void
DirectoryMem::hop(NodeId src, NodeId dst, std::uint32_t bytes,
                  AccessTiming &t)
{
    if (src == dst) {
        // Stays inside the node.  Only the data transfer costs local
        // memory time; control hops (request/grant) to the co-located
        // directory are free, keeping the node-local miss cost identical
        // to the uncached/ideal memory models' kLocalMemNs.
        if (bytes == kDataBytes)
            t.busy += kLocalMemNs;
        return;
    }
    const NetTiming r = net_.transfer(src, dst, bytes);
    t.latency += r.latency;
    t.contention += r.contention;
    stats_.messages += r.messages;
}

AccessTiming
DirectoryMem::access(MemClient &client, mem::Addr addr, AccessType type,
                     std::uint32_t bytes)
{
    (void)bytes; // All app accesses fit in one block; asserted by runtime.
    ++stats_.accesses;
    const NodeId node = client.node();
    const BlockId blk = mem::blockOf(addr);
    mem::SetAssocCache &cache = *caches_[node];
    const LineState state = cache.stateOf(blk);
    const bool is_read = (type == AccessType::Read);

    AccessTiming t;
    if (is_read ? state != LineState::Invalid : state == LineState::Dirty) {
        cache.touch(blk);
        ++cache.stats().hits;
        ++stats_.cacheHits;
        t.busy = kCacheHitNs;
        return t;
    }

    // Miss or upgrade: the transaction runs in engine time.
    client.syncToEngine();
    const std::uint64_t messages_before = stats_.messages;

    if (state == LineState::Invalid)
        makeRoom(node, blk, t);

    if (is_read)
        readMiss(node, blk, t);
    else
        writeMiss(node, blk, state != LineState::Invalid, t);

    if (stats_.messages != messages_before) {
        t.networked = true;
        ++stats_.networkAccesses;
    } else {
        ++stats_.localMem; // Fully node-local transaction.
    }

    // The transaction just committed; its block must satisfy SWMR and
    // agree with the directory at this quiescent point.
    checker_.checkBlock(blk);

    // The access completes out of the (now valid) cache line.
    t.busy += kCacheHitNs;
    return t;
}

void
DirectoryMem::makeRoom(NodeId node, BlockId blk, AccessTiming &t)
{
    BlockId victim;
    LineState vstate;
    if (!caches_[node]->victimFor(blk, victim, vstate))
        return;
    if (mem::isOwned(vstate)) {
        writeback(node, victim, vstate, t);
        checker_.checkBlock(victim);
    }
    // Clean (Valid) victims are replaced silently: the directory keeps a
    // stale sharer bit, which at worst causes a harmless spurious
    // invalidation later — exactly like real full-map directories.
}

void
DirectoryMem::writeback(NodeId node, BlockId victim, LineState state,
                        AccessTiming &t)
{
    (void)state;
    mem::DirectoryEntry &entry = dir_.entry(victim);
    t.contention += entry.lock.acquire();

    // While we waited for the lock, another node's write transaction may
    // have stolen ownership and invalidated our line; then there is
    // nothing left to write back.
    if (!mem::isOwned(caches_[node]->stateOf(victim))) {
        entry.lock.release();
        return;
    }

    ++stats_.writebacks;
    const NodeId home = homes_.homeOf(mem::blockBase(victim));
    ABSIM_TRACE(eq_, Protocol, "writeback node=" << node
                                   << " blk=" << victim
                                   << " home=" << home);
    hop(node, home, kDataBytes, t);
    if (entry.owner == static_cast<std::int32_t>(node))
        entry.owner = mem::DirectoryEntry::kNoOwner;
    entry.removeSharer(node);
    caches_[node]->setState(victim, LineState::Invalid);
    entry.lock.release();
}

void
DirectoryMem::readMiss(NodeId node, BlockId blk, AccessTiming &t)
{
    ++stats_.readMisses;
    const NodeId home = homes_.homeOf(mem::blockBase(blk));
    mem::DirectoryEntry &entry = dir_.entry(blk);
    t.contention += entry.lock.acquire();
    ABSIM_TRACE(eq_, Protocol, "read miss node=" << node << " blk=" << blk
                                   << " home=" << home
                                   << " owner=" << entry.owner);

    hop(node, home, kCtrlBytes, t); // Request to the home/directory.

    ABSIM_CHECK(entry.owner != static_cast<std::int32_t>(node),
                "node " << node << " read-missed block " << blk
                        << " that it already owns");
    if (entry.owner != mem::DirectoryEntry::kNoOwner) {
        const auto owner = static_cast<NodeId>(entry.owner);
        if (protocol_ == ProtocolKind::Berkeley) {
            // Berkeley: the owner supplies the block cache-to-cache and
            // keeps ownership, degrading to SharedDirty; memory stays
            // stale.
            hop(home, owner, kCtrlBytes, t); // Forwarded request.
            hop(owner, node, kDataBytes, t); // Owner-supplied data.
            caches_[owner]->setState(blk, LineState::SharedDirty);
        } else {
            // MSI: the owner writes back to the home, which then
            // supplies the data; the ex-owner keeps a clean copy.
            hop(home, owner, kCtrlBytes, t); // Recall.
            hop(owner, home, kDataBytes, t); // Writeback to memory.
            hop(home, node, kDataBytes, t);  // Memory-supplied data.
            caches_[owner]->setState(blk, LineState::Valid);
            entry.owner = mem::DirectoryEntry::kNoOwner;
        }
    } else {
        hop(home, node, kDataBytes, t); // Memory-supplied data.
    }

    entry.addSharer(node);
    caches_[node]->install(blk, LineState::Valid);
    entry.lock.release();
}

void
DirectoryMem::writeMiss(NodeId node, BlockId blk, bool have_line,
                        AccessTiming &t)
{
    const NodeId home = homes_.homeOf(mem::blockBase(blk));
    mem::DirectoryEntry &entry = dir_.entry(blk);
    t.contention += entry.lock.acquire();
    ABSIM_TRACE(eq_, Protocol, (have_line ? "upgrade" : "write miss")
                                   << " node=" << node << " blk=" << blk
                                   << " sharers=" << entry.sharers);

    // The upgrade may have been invalidated while waiting for the lock;
    // the transaction then degenerates into a plain write miss.
    if (have_line &&
        caches_[node]->stateOf(blk) == LineState::Invalid)
        have_line = false;

    if (have_line)
        ++stats_.upgrades;
    else
        ++stats_.writeMisses;

    hop(node, home, kCtrlBytes, t); // Request to the home/directory.

    if (!have_line) {
        if (entry.owner != mem::DirectoryEntry::kNoOwner &&
            entry.owner != static_cast<std::int32_t>(node)) {
            const auto owner = static_cast<NodeId>(entry.owner);
            if (protocol_ == ProtocolKind::Berkeley) {
                // Ownership transfer: the current owner supplies the
                // data directly and invalidates its copy.
                hop(home, owner, kCtrlBytes, t);
                hop(owner, node, kDataBytes, t);
            } else {
                // MSI: recall through memory.
                hop(home, owner, kCtrlBytes, t);
                hop(owner, home, kDataBytes, t);
                hop(home, node, kDataBytes, t);
            }
            caches_[owner]->invalidate(blk);
            entry.removeSharer(owner);
            entry.owner = mem::DirectoryEntry::kNoOwner;
        } else {
            hop(home, node, kDataBytes, t);
        }
    }

    invalidateSharers(node, blk, entry, t);

    // Ack collection at the home and exclusive grant to the requester.
    hop(home, node, kCtrlBytes, t);

    entry.sharers = 0;
    entry.addSharer(node);
    entry.owner = static_cast<std::int32_t>(node);
    if (have_line)
        caches_[node]->setState(blk, LineState::Dirty);
    else
        caches_[node]->install(blk, LineState::Dirty);
    entry.lock.release();
}

void
DirectoryMem::invalidateSharers(NodeId node, BlockId blk,
                                mem::DirectoryEntry &entry, AccessTiming &t)
{
    const NodeId home = homes_.homeOf(mem::blockBase(blk));

    // Apply the state flips immediately: the home lock is held, so this is
    // the transaction's serialization point.  The network traffic below
    // contributes timing only.
    std::vector<NodeId> remote_targets;
    for (NodeId s = 0; s < nodes_; ++s) {
        if (s == node || !entry.isSharer(s))
            continue;
        caches_[s]->invalidate(blk);
        ++stats_.invalidations;
        if (s != home)
            remote_targets.push_back(s);
        // An invalidation for the home node itself costs no network
        // traffic (directory and cache are co-located).
    }
    entry.sharers = 0;

    if (remote_targets.empty())
        return;

    // Parallel invalidation/ack round trips from the home; the requester
    // waits for the slowest.  The NetModel partitions the elapsed wait
    // into critical latency and contention.
    const NetTiming r = net_.fanOutRoundTrips(home, remote_targets);
    stats_.messages += r.messages;
    t.latency += r.latency;
    t.contention += r.contention;
}

bool
DirectoryMem::corruptStateForFault(std::uint64_t seed)
{
    // Deterministically pick a resident line (the seed rotates the
    // starting node and indexes into its lines) and flip its state
    // without updating the directory — exactly the inconsistency a
    // buggy protocol transition would leave behind.
    for (std::uint32_t i = 0; i < nodes_; ++i) {
        const NodeId n = static_cast<NodeId>((seed + i) % nodes_);
        const auto lines = caches_[n]->residentLines();
        if (lines.empty())
            continue;
        const auto [blk, state] = lines[seed % lines.size()];
        caches_[n]->setState(blk, state == LineState::Valid
                                      ? LineState::Dirty
                                      : LineState::Valid);
        // The corrupted transition must be caught right here, the same
        // way every real transition is checked at its boundary.
        checker_.checkBlock(blk);
        return true;
    }
    return false;
}

} // namespace absim::mach
