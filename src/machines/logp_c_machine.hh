/**
 * @file
 * The LogP+C machine (paper Section 3.2): the LogP network abstraction
 * augmented with an *ideal coherent cache* per node (see ideal_mem.hh
 * for the cache semantics).
 *
 * Composition: LogPNetModel x IdealCacheMem.  This class only pins the
 * composition and exposes typed accessors for tests.
 */

#ifndef ABSIM_MACHINES_LOGP_C_MACHINE_HH
#define ABSIM_MACHINES_LOGP_C_MACHINE_HH

#include "machines/composed_machine.hh"
#include "machines/ideal_mem.hh"

namespace absim::mach {

class LogPCMachine : public ComposedMachine
{
  public:
    /** Zero-cost global coherence bookkeeping for one block. */
    using OracleEntry = IdealCacheMem::OracleEntry;

    LogPCMachine(sim::EventQueue &eq, net::TopologyKind topo,
                 std::uint32_t nodes, const mem::HomeMap &homes,
                 logp::GapPolicy policy = logp::GapPolicy::Single,
                 const CacheConfig &cache_config = {});

    const logp::LogPNetwork &network() const
    {
        return static_cast<const LogPNetModel &>(netModel()).network();
    }
    const mem::SetAssocCache &cache(net::NodeId n) const
    {
        return idealMem().cache(n);
    }
    const check::CoherenceChecker &checker() const
    {
        return idealMem().checker();
    }

    /** @name Test-only hooks (see IdealCacheMem). */
    /// @{
    mem::SetAssocCache &cacheForTest(net::NodeId n)
    {
        return idealMem().cacheForTest(n);
    }
    OracleEntry &oracleForTest(mem::BlockId blk)
    {
        return idealMem().oracleForTest(blk);
    }
    /// @}

  private:
    IdealCacheMem &idealMem()
    {
        return static_cast<IdealCacheMem &>(memModel());
    }
    const IdealCacheMem &idealMem() const
    {
        return static_cast<const IdealCacheMem &>(memModel());
    }
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_LOGP_C_MACHINE_HH
