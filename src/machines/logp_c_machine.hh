/**
 * @file
 * The LogP+C machine (paper Section 3.2): the LogP network abstraction
 * augmented with an *ideal coherent cache* per node.
 *
 * Each node has the same 64 KB 2-way cache geometry as the target machine
 * and the caches go through the same Berkeley state transitions — but the
 * overheads of coherence maintenance are not modeled: invalidations,
 * ownership transfers and writebacks are instantaneous and free.  Network
 * round trips are charged only when a request cannot be satisfied by the
 * cache or local memory (a miss whose data lives remotely), so the model
 * captures the application's true communication — the minimum message
 * count any invalidation protocol could hope to achieve.
 */

#ifndef ABSIM_MACHINES_LOGP_C_MACHINE_HH
#define ABSIM_MACHINES_LOGP_C_MACHINE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "check/coherence.hh"
#include "logp/logp_net.hh"
#include "machines/machine.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"

namespace absim::mach {

class LogPCMachine : public Machine
{
  public:
    /** Zero-cost global coherence bookkeeping for one block. */
    struct OracleEntry
    {
        std::uint64_t sharers = 0;
        std::int32_t owner = -1;
    };

    LogPCMachine(sim::EventQueue &eq, net::TopologyKind topo,
                 std::uint32_t nodes, const mem::HomeMap &homes,
                 logp::GapPolicy policy = logp::GapPolicy::Single,
                 const CacheConfig &cache_config = {});

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;

    MachineKind kind() const override { return MachineKind::LogPC; }

    /** Full SWMR + oracle-agreement sweep.  The oracle bookkeeping is
     *  exact (no silent stale bits), so the sweep is strict. */
    void checkInvariants() const override { checker_.checkAll(); }

    const logp::LogPNetwork &network() const { return *net_; }
    const mem::SetAssocCache &cache(net::NodeId n) const
    {
        return *caches_[n];
    }
    const check::CoherenceChecker &checker() const { return checker_; }

    /** @name Test-only hooks.
     *
     * Mutable access to the caches and the coherence oracle so tests can
     * drive them into inconsistent states and prove the checker fires.
     * Never call these from simulation code.
     */
    /// @{
    mem::SetAssocCache &cacheForTest(net::NodeId n) { return *caches_[n]; }
    OracleEntry &oracleForTest(mem::BlockId blk) { return entryOf(blk); }
    /// @}

  private:
    OracleEntry &entryOf(mem::BlockId blk) { return oracle_[blk]; }

    /** Silent, free eviction of the LRU victim (data teleports home). */
    void makeRoom(net::NodeId node, mem::BlockId blk);

    /** Free, instantaneous invalidation of every sharer but @p node. */
    void invalidateOthers(net::NodeId node, mem::BlockId blk,
                          OracleEntry &entry);

    sim::EventQueue &eq_;
    std::unique_ptr<logp::LogPNetwork> net_;
    std::vector<std::unique_ptr<mem::SetAssocCache>> caches_;
    std::unordered_map<mem::BlockId, OracleEntry> oracle_;
    check::CoherenceChecker checker_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_LOGP_C_MACHINE_HH
