/**
 * @file
 * The machine registry: the composition table mapping every MachineKind
 * to its (network model x memory model) pair, plus the factory that
 * assembles a runnable Machine from the table.
 *
 * The paper's three machines occupy three cells of the 2x3 grid of
 * {detailed, logp} networks x {directory, ideal, uncached} memory
 * systems; the registry also names the two off-diagonal quadrants the
 * paper does not build:
 *
 *                       directory        ideal           uncached
 *     detailed network  target           target+ic       -
 *     LogP network      logp+dir         logp+c          logp
 *
 * "target+ic" isolates the *locality* abstraction's error (real network,
 * ideal cache) and "logp+dir" the *network* abstraction's error (LogP
 * network, real protocol) — the two factors the ablation bench
 * decomposes.  Everything that enumerates machines (the CLI's --machine
 * flag, figure sweeps, benches) derives its list from this table rather
 * than hard-coding names.
 */

#ifndef ABSIM_MACHINES_REGISTRY_HH
#define ABSIM_MACHINES_REGISTRY_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "logp/logp_net.hh"
#include "machines/machine.hh"
#include "sim/event_queue.hh"

namespace absim::mach {

/** One row of the composition table. */
struct MachineSpec
{
    MachineKind kind;

    /** Canonical display/CLI name, e.g. "logp+c". */
    const char *name;

    /** Key used in figure JSON/CSV and journal records — the name with
     *  '+' stripped (e.g. "logpc"), kept stable for output
     *  byte-compatibility. */
    const char *column;

    /** Network-axis model: "detailed", "logp" or "none". */
    const char *netModel;

    /** Memory-axis model: "directory", "ideal", "uncached" or "none". */
    const char *memModel;

    /** One-line description for --help and docs. */
    const char *summary;

    /** False for MachineKind::None (message-passing platforms have no
     *  shared-memory machine to construct). */
    bool runnable;
};

/** The full table, one row per MachineKind, in enum order. */
const std::vector<MachineSpec> &machineRegistry();

/** The row for @p kind. */
const MachineSpec &specFor(MachineKind kind);

/**
 * Parse a machine name.  Accepts each runnable row's canonical name and
 * its column alias ("logp+c" / "logpc"), plus "none"; case-sensitive.
 *
 * @return true and set @p out on a match, false otherwise.
 */
bool parseMachineKind(std::string_view text, MachineKind &out);

/** Comma-separated canonical names of all runnable machines, for CLI
 *  diagnostics ("valid: target, logp, ..."). */
std::string machineNames();

/** The paper's three machines, in the classic figure column order. */
std::vector<MachineKind> defaultFigureMachines();

/** All five runnable compositions, for the quadrant ablation. */
std::vector<MachineKind> allQuadrants();

/**
 * Assemble the machine for @p kind from its registry composition.
 *
 * @throws std::invalid_argument for non-runnable kinds (None).
 */
std::unique_ptr<Machine>
makeMachine(MachineKind kind, sim::EventQueue &eq, net::TopologyKind topo,
            std::uint32_t nodes, const mem::HomeMap &homes,
            logp::GapPolicy policy = logp::GapPolicy::Single,
            const CacheConfig &cache = {},
            ProtocolKind protocol = ProtocolKind::Berkeley);

} // namespace absim::mach

#endif // ABSIM_MACHINES_REGISTRY_HH
