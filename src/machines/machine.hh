/**
 * @file
 * The common interface of the three simulated machine characterizations
 * (paper Section 3): the detailed CC-NUMA *target* machine, the *LogP*
 * machine (network abstracted, no caches) and the *LogP+C* machine (LogP
 * network plus an ideal coherent cache abstracting data locality).
 *
 * A Machine is a memory system: the runtime's processors feed it one
 * shared-memory access at a time and receive a timing split back.  Fast
 * paths (cache hits, local memory) return immediately; paths that use the
 * network first synchronize the calling processor with the global engine
 * clock through the MemClient callback and then block in simulated time.
 */

#ifndef ABSIM_MACHINES_MACHINE_HH
#define ABSIM_MACHINES_MACHINE_HH

#include <cstdint>
#include <string>

#include "mem/addr.hh"
#include "net/topology.hh"
#include "sim/types.hh"

namespace absim::mach {

/**
 * Which machine characterization (Section 3 of the paper, plus the two
 * quadrants of the network x locality grid the paper does not build).
 *
 * Every shared-memory machine is a composition of one *network model*
 * (the detailed circuit-switched interconnect, or LogP's L/o/g
 * abstraction) with one *memory model* (Berkeley directory caches, the
 * ideal coherent cache, or uncached home-node memory) — see
 * machines/registry.hh for the composition table.
 */
enum class MachineKind
{
    Target,   ///< Detailed network + Berkeley directory caches.
    LogP,     ///< LogP network, no caches.
    LogPC,    ///< LogP network + ideal coherent cache.
    TargetIC, ///< Detailed network + ideal coherent cache.
    LogPDir,  ///< LogP network + real directory caches.
    None,     ///< No shared memory (message-passing platforms).
};

std::string toString(MachineKind kind);

/** Kind of shared-memory access. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
    /** Atomic read-modify-write (test&set, fetch&add). Write semantics. */
    Rmw,
};

/** Cost of one processor cycle spent hitting in the cache. */
inline constexpr sim::Duration kCacheHitNs = sim::kCycleNs;

/** Cost of a reference satisfied by the node's local memory (5 cycles). */
inline constexpr sim::Duration kLocalMemNs = 5 * sim::kCycleNs;

/** Control message payload (requests, invalidations, acks, grants). */
inline constexpr std::uint32_t kCtrlBytes = 8;

/** Data message payload: one cache block. */
inline constexpr std::uint32_t kDataBytes = mem::kBlockBytes;

/**
 * Tunable hardware parameters of the cached machines.  Defaults are the
 * paper's Section 5 configuration; the cache-size ablation bench sweeps
 * them (cf. the paper's citation of Rothberg/Singh/Gupta on working-set
 * sizes).
 */
struct CacheConfig
{
    std::uint32_t bytes = 64 * 1024;
    std::uint32_t ways = 2;
};

/**
 * Which invalidation protocol the target machine runs.  The paper
 * simulates Berkeley; the MSI alternative exists to test its claim that
 * LogP+C models "the minimum number of network messages that any
 * coherence protocol may hope to achieve" (Section 3.2) and the cited
 * Wood et al. observation that performance is not very sensitive to the
 * protocol choice.
 */
enum class ProtocolKind
{
    /** Ownership-based: dirty data supplied cache-to-cache, memory
     *  stays stale (SharedDirty state). */
    Berkeley,
    /** Plain MSI: a read miss forces the dirty owner to write back to
     *  the home, which then supplies the data; no owned-shared state. */
    Msi,
};

std::string toString(ProtocolKind kind);

/**
 * The calling processor, as seen by a machine: its private clock and the
 * ability to synchronize that clock with the global engine before the
 * machine performs blocking (network) operations.
 */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** The caller's node. */
    virtual net::NodeId node() const = 0;

    /** The caller's local clock (may run ahead of the engine). */
    virtual sim::Tick localTime() const = 0;

    /**
     * Block until the engine clock catches up with localTime().  Machines
     * must call this exactly once before their first blocking operation
     * of an access.
     */
    virtual void syncToEngine() = 0;
};

/** Timing split of one access, in ticks. */
struct AccessTiming
{
    /** Local (cache / memory) cost, charged to the busy/ideal bucket. */
    sim::Duration busy = 0;

    /** Contention-free message transmission time (SPASM latency). */
    sim::Duration latency = 0;

    /** Time spent waiting for links / g-gates (SPASM contention). */
    sim::Duration contention = 0;

    /** True if the access used the network (the caller's clock was
     * re-synchronized to the engine). */
    bool networked = false;
};

/** Counters every machine maintains (not all apply to all machines). */
struct MachineStats
{
    std::uint64_t accesses = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t localMem = 0;       ///< Satisfied by local memory.
    std::uint64_t networkAccesses = 0;///< Accesses that used the network.
    std::uint64_t messages = 0;       ///< Network messages, incl. protocol.
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t invalidations = 0;  ///< Invalidation messages sent.
    std::uint64_t writebacks = 0;

    /** Total local (cache / memory) time the memory model charged, in
     *  ticks — the locality axis of the per-axis overhead attribution
     *  (the network axis is the profile's latency + contention). */
    sim::Duration memTime = 0;
};

/**
 * A simulated machine characterization.
 */
class Machine
{
  public:
    virtual ~Machine() = default;

    /**
     * Perform one shared-memory access on behalf of @p client.
     *
     * Must be called from inside the client's simulated process.  If the
     * access needs the network, the machine calls client.syncToEngine()
     * and blocks; on return the engine clock equals the access completion
     * time and the result has networked == true.
     */
    virtual AccessTiming access(MemClient &client, mem::Addr addr,
                                AccessType type, std::uint32_t bytes) = 0;

    virtual MachineKind kind() const = 0;

    /**
     * Run the machine's full invariant sweep (coherence state vs
     * directory), if it maintains one.  Called by the runtime at drain
     * and by tests; a violation fails an ABSIM_CHECK.
     */
    virtual void checkInvariants() const {}

    /**
     * Fault-injection hook (fault::Kind::CorruptTransition): corrupt
     * one piece of protocol state deterministically (@p seed picks the
     * target), as a buggy transition would, so the invariant checkers
     * must catch it.  Never called by simulation code — only by the
     * fault injector when a plan is armed.
     *
     * @return true if state was corrupted (false: the machine keeps no
     *         corruptible protocol state).
     */
    virtual bool corruptStateForFault(std::uint64_t seed)
    {
        (void)seed;
        return false;
    }

    /**
     * @name Per-axis identity.
     * Which model implements each abstraction axis ("detailed"/"logp"
     * for the network, "directory"/"ideal"/"uncached" for the memory
     * system); "none" on machines without that axis.  Stamped into the
     * run profile so overhead attribution stays per-axis.
     */
    /// @{
    virtual const char *netModelName() const { return "none"; }
    virtual const char *memModelName() const { return "none"; }
    /// @}

    const MachineStats &stats() const { return stats_; }

    std::uint32_t nodes() const { return nodes_; }

  protected:
    Machine(std::uint32_t nodes, const mem::HomeMap &homes)
        : nodes_(nodes), homes_(homes)
    {
    }

    std::uint32_t nodes_;
    const mem::HomeMap &homes_;
    MachineStats stats_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_MACHINE_HH
