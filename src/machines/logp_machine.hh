/**
 * @file
 * The LogP machine (paper Section 3.1): processors with a slice of the
 * globally shared memory, *no caches*, connected by a network abstracted
 * by the L and g parameters.  Every non-local reference is a
 * request/reply round trip on the LogP network, as on a NUMA machine
 * like the BBN Butterfly GP-1000.
 *
 * Composition: LogPNetModel x UncachedMem.
 */

#ifndef ABSIM_MACHINES_LOGP_MACHINE_HH
#define ABSIM_MACHINES_LOGP_MACHINE_HH

#include "machines/composed_machine.hh"

namespace absim::mach {

class LogPMachine : public ComposedMachine
{
  public:
    LogPMachine(sim::EventQueue &eq, net::TopologyKind topo,
                std::uint32_t nodes, const mem::HomeMap &homes,
                logp::GapPolicy policy = logp::GapPolicy::Single);

    const logp::LogPNetwork &network() const
    {
        return static_cast<const LogPNetModel &>(netModel()).network();
    }
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_LOGP_MACHINE_HH
