/**
 * @file
 * The LogP machine (paper Section 3.1): processors with a slice of the
 * globally shared memory, *no caches*, connected by a network abstracted
 * by the L and g parameters.  Every non-local reference is a
 * request/reply round trip on the LogP network, as on a NUMA machine
 * like the BBN Butterfly GP-1000.
 */

#ifndef ABSIM_MACHINES_LOGP_MACHINE_HH
#define ABSIM_MACHINES_LOGP_MACHINE_HH

#include <memory>

#include "logp/logp_net.hh"
#include "machines/machine.hh"
#include "sim/event_queue.hh"

namespace absim::mach {

class LogPMachine : public Machine
{
  public:
    LogPMachine(sim::EventQueue &eq, net::TopologyKind topo,
                std::uint32_t nodes, const mem::HomeMap &homes,
                logp::GapPolicy policy = logp::GapPolicy::Single);

    AccessTiming access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes) override;

    MachineKind kind() const override { return MachineKind::LogP; }

    const logp::LogPNetwork &network() const { return *net_; }

  private:
    sim::EventQueue &eq_;
    std::unique_ptr<logp::LogPNetwork> net_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_LOGP_MACHINE_HH
