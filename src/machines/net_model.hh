/**
 * @file
 * The network axis of a machine characterization.
 *
 * A NetModel is the transport a memory model charges its messages to:
 * either the detailed circuit-switched interconnect (net::DetailedNetwork,
 * with per-link contention) or the LogP abstraction (logp::LogPNetwork,
 * with L latency and g-gate contention).  Memory models are written
 * against this interface only, so any memory system composes with any
 * network — the independent-axes variation at the heart of the paper.
 *
 * All calls block the calling simulated process until the transfer
 * completes in simulated time; the caller must have synchronized its
 * local clock with the engine (MemClient::syncToEngine) first.
 */

#ifndef ABSIM_MACHINES_NET_MODEL_HH
#define ABSIM_MACHINES_NET_MODEL_HH

#include <memory>
#include <vector>

#include "logp/logp_net.hh"
#include "machines/machine.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace absim::mach {

/** Timing split of one network operation, in ticks. */
struct NetTiming
{
    sim::Duration latency = 0;    ///< Contention-free transmission time.
    sim::Duration contention = 0; ///< Link waits / g-gate waits.
    std::uint32_t messages = 0;   ///< Messages this operation injected.
};

class NetModel
{
  public:
    virtual ~NetModel() = default;

    /** Axis identity: "detailed" or "logp". */
    virtual const char *name() const = 0;

    /** One message from @p src to @p dst, blocking until delivery. */
    virtual NetTiming transfer(net::NodeId src, net::NodeId dst,
                               std::uint32_t bytes) = 0;

    /**
     * A request/reply round trip (control request out, @p reply_bytes
     * back), blocking until the reply is delivered — the shape of every
     * remote memory reference.
     */
    virtual NetTiming roundTrip(net::NodeId src, net::NodeId dst,
                                std::uint32_t reply_bytes) = 0;

    /**
     * Parallel invalidation/ack round trips (control-sized both ways)
     * from @p center to every node in @p targets, blocking until the
     * slowest completes.  The result partitions the elapsed wait
     * exactly: latency is the critical (last-delivered) trip's
     * contention-free time, contention is the remainder.
     *
     * @pre !targets.empty()
     */
    virtual NetTiming fanOutRoundTrips(
        net::NodeId center, const std::vector<net::NodeId> &targets) = 0;
};

/** The detailed circuit-switched interconnect (paper Section 5). */
class DetailedNetModel : public NetModel
{
  public:
    DetailedNetModel(sim::EventQueue &eq, net::TopologyKind topo,
                     std::uint32_t nodes);

    const char *name() const override { return "detailed"; }

    NetTiming transfer(net::NodeId src, net::NodeId dst,
                       std::uint32_t bytes) override;
    NetTiming roundTrip(net::NodeId src, net::NodeId dst,
                        std::uint32_t reply_bytes) override;
    NetTiming fanOutRoundTrips(
        net::NodeId center,
        const std::vector<net::NodeId> &targets) override;

    const net::DetailedNetwork &network() const { return *net_; }

  private:
    sim::EventQueue &eq_;
    std::unique_ptr<net::DetailedNetwork> net_;
};

/** The LogP network abstraction (paper Section 3.1). */
class LogPNetModel : public NetModel
{
  public:
    LogPNetModel(sim::EventQueue &eq, net::TopologyKind topo,
                 std::uint32_t nodes, logp::GapPolicy policy);

    const char *name() const override { return "logp"; }

    NetTiming transfer(net::NodeId src, net::NodeId dst,
                       std::uint32_t bytes) override;
    NetTiming roundTrip(net::NodeId src, net::NodeId dst,
                        std::uint32_t reply_bytes) override;
    NetTiming fanOutRoundTrips(
        net::NodeId center,
        const std::vector<net::NodeId> &targets) override;

    const logp::LogPNetwork &network() const { return *net_; }

  private:
    sim::EventQueue &eq_;
    std::unique_ptr<logp::LogPNetwork> net_;
};

} // namespace absim::mach

#endif // ABSIM_MACHINES_NET_MODEL_HH
