#include "machines/logp_machine.hh"

namespace absim::mach {

LogPMachine::LogPMachine(sim::EventQueue &eq, net::TopologyKind topo,
                         std::uint32_t nodes, const mem::HomeMap &homes,
                         logp::GapPolicy policy)
    : ComposedMachine(
          MachineKind::LogP, nodes, homes,
          [&] {
              return std::make_unique<LogPNetModel>(eq, topo, nodes,
                                                    policy);
          },
          [&](NetModel &net, MachineStats &stats) {
              return std::make_unique<UncachedMem>(net, nodes, homes,
                                                   stats);
          })
{
}

} // namespace absim::mach
