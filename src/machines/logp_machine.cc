#include "machines/logp_machine.hh"


#include "sim/process.hh"

namespace absim::mach {

LogPMachine::LogPMachine(sim::EventQueue &eq, net::TopologyKind topo,
                         std::uint32_t nodes, const mem::HomeMap &homes,
                         logp::GapPolicy policy)
    : Machine(nodes, homes), eq_(eq),
      net_(std::make_unique<logp::LogPNetwork>(
          logp::paramsFor(topo, nodes), policy))
{
}

AccessTiming
LogPMachine::access(MemClient &client, mem::Addr addr, AccessType type,
                    std::uint32_t bytes)
{
    (void)type;
    (void)bytes;
    ++stats_.accesses;
    const net::NodeId node = client.node();
    const net::NodeId home = homes_.homeOf(addr);

    AccessTiming t;
    if (home == node) {
        ++stats_.localMem;
        t.busy = kLocalMemNs;
        return t;
    }

    // Remote reference: request/reply round trip on the LogP network.
    client.syncToEngine();
    t.networked = true;
    ++stats_.networkAccesses;
    const logp::LogPTiming rt = net_->roundTrip(node, home, eq_.now());
    stats_.messages += rt.messages;
    t.latency = rt.latency;
    t.contention = rt.contention;
    sim::Process::current()->delayUntil(rt.deliveredAt);
    return t;
}

} // namespace absim::mach
