#include "machines/composed_machine.hh"

#include "check/check.hh"

namespace absim::mach {

ComposedMachine::ComposedMachine(MachineKind kind, std::uint32_t nodes,
                                 const mem::HomeMap &homes,
                                 const NetFactory &make_net,
                                 const MemFactory &make_mem)
    : Machine(nodes, homes), kind_(kind), net_model_(make_net()),
      mem_model_(make_mem(*net_model_, stats_))
{
    ABSIM_CHECK(net_model_ && mem_model_,
                "composed machine " << toString(kind)
                                    << " is missing a model");
}

AccessTiming
ComposedMachine::access(MemClient &client, mem::Addr addr, AccessType type,
                        std::uint32_t bytes)
{
    const AccessTiming t = mem_model_->access(client, addr, type, bytes);
    stats_.memTime += t.busy;
    return t;
}

} // namespace absim::mach
