/**
 * @file
 * The simulated global shared memory: an allocator that assigns simulated
 * addresses with explicit home-node placement, and typed shared arrays
 * that couple a simulated address range with native backing storage.
 *
 * Application data really lives in native memory (the simulator is
 * execution-driven: computations run at native speed); only the *accesses*
 * are simulated.  SharedArray's accessors perform the simulated access
 * first and touch the native element exactly at the access's completion
 * instant, which makes reads/writes/RMWs linearizable in simulated time —
 * the sequential consistency the paper's machines provide.
 */

#ifndef ABSIM_RUNTIME_SHARED_HH
#define ABSIM_RUNTIME_SHARED_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "check/check.hh"
#include "mem/addr.hh"
#include "runtime/context.hh"

namespace absim::rt {

/** How a shared allocation is distributed over node memories. */
enum class Placement
{
    /** Contiguous equal chunks, node 0 first (the static partitioning the
     *  paper's applications use). */
    Blocked,
    /** Cache-block round-robin across nodes. */
    Interleaved,
    /** Entirely in one node's memory. */
    OnNode,
};

/**
 * Allocator of the simulated shared address space; implements HomeMap for
 * the machine models.
 */
class SharedHeap : public mem::HomeMap
{
  public:
    explicit SharedHeap(std::uint32_t nodes);

    /**
     * Allocate @p bytes with the given placement.
     * @return Block-aligned base address.
     */
    mem::Addr allocate(std::uint64_t bytes, Placement placement,
                       net::NodeId node = 0);

    net::NodeId homeOf(mem::Addr a) const override;

    std::uint32_t nodes() const { return nodes_; }

    /** @name Trace recording (see runtime/ref_sink.hh).
     *
     * A bound sink observes every allocation (and, from the sync
     * primitives, barrier construction), so a replay can rebuild the
     * identical address-space layout.  Null by default.
     */
    /// @{
    RefSink *sink() const { return sink_; }

    void bindSink(RefSink *sink) { sink_ = sink; }
    /// @}

  private:
    struct Segment
    {
        mem::Addr base;
        std::uint64_t bytes;
        Placement placement;
        net::NodeId node;        ///< For OnNode.
        std::uint64_t chunk;     ///< Per-node chunk size for Blocked.
    };

    std::uint32_t nodes_;
    std::vector<Segment> segments_; // Sorted by base (append-only).
    mem::Addr next_;
    RefSink *sink_ = nullptr;
};

namespace detail {

/** Raw bits of a shared element, for trace value hints.  Elements wider
 *  than 8 bytes record zero: their values are never consulted at replay
 *  (RMW and synchronization words are always word-sized). */
template <typename T>
std::uint64_t
valueBits(const T &v)
{
    if constexpr (sizeof(T) <= 8) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(T));
        return bits;
    } else {
        return 0;
    }
}

} // namespace detail

/**
 * A typed array in simulated shared memory with native backing storage.
 *
 * @tparam T  Trivially copyable, power-of-two size <= one cache block, so
 *            an element never straddles blocks.
 */
template <typename T>
class SharedArray
{
    static_assert(sizeof(T) <= mem::kBlockBytes,
                  "element must fit in a cache block");
    static_assert((sizeof(T) & (sizeof(T) - 1)) == 0,
                  "element size must be a power of two");

  public:
    SharedArray() = default;

    SharedArray(SharedHeap &heap, std::size_t n, Placement placement,
                net::NodeId node = 0)
        : data_(n), base_(heap.allocate(n * sizeof(T), placement, node))
    {
    }

    /** Simulated address of element @p i. */
    mem::Addr
    addrOf(std::size_t i) const
    {
        ABSIM_DCHECK(i < data_.size(),
                     "index " << i << " out of bounds (size "
                              << data_.size() << ")");
        return base_ + i * sizeof(T);
    }

    std::size_t size() const { return data_.size(); }

    /** Simulated read: charges the machine, returns the coherent value. */
    T
    read(Proc &p, std::size_t i) const
    {
        p.memRead(addrOf(i), sizeof(T));
        return data_[i];
    }

    /** Simulated write. */
    void
    write(Proc &p, std::size_t i, const T &v)
    {
        p.memWrite(addrOf(i), sizeof(T));
        if (RefSink *s = p.sink()) [[unlikely]]
            s->onWriteValue(p.node(), detail::valueBits(v), i);
        data_[i] = v;
    }

    /** Atomic fetch-and-add (simulated RMW). @return the old value. */
    T
    fetchAdd(Proc &p, std::size_t i, T delta)
    {
        p.memRmw(addrOf(i), sizeof(T));
        const T old = data_[i];
        data_[i] = static_cast<T>(old + delta);
        if (RefSink *s = p.sink()) [[unlikely]]
            s->onRmw(p.node(), RmwOp::FetchAdd, detail::valueBits(delta),
                     detail::valueBits(old));
        return old;
    }

    /** Atomic test-and-set (simulated RMW). @return the old value. */
    T
    testAndSet(Proc &p, std::size_t i)
    {
        p.memRmw(addrOf(i), sizeof(T));
        const T old = data_[i];
        data_[i] = static_cast<T>(1);
        if (RefSink *s = p.sink()) [[unlikely]]
            s->onRmw(p.node(), RmwOp::TestAndSet, 0,
                     detail::valueBits(old));
        return old;
    }

    /**
     * Direct access to the native element, bypassing simulation.  For
     * initialization before the parallel phase and for result checking
     * after it — never from worker code on shared data.
     */
    T &raw(std::size_t i) { return data_[i]; }
    const T &raw(std::size_t i) const { return data_[i]; }

  private:
    std::vector<T> data_;
    mem::Addr base_ = 0;
};

} // namespace absim::rt

#endif // ABSIM_RUNTIME_SHARED_HH
