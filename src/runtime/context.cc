#include "runtime/context.hh"

#include <algorithm>
#include <cassert>
#include <string>

#include "mem/addr.hh"

namespace absim::rt {

Proc::Proc(Runtime &rt, net::NodeId id) : rt_(rt), id_(id) {}

std::uint32_t
Proc::procs() const
{
    return rt_.procs();
}

void
Proc::syncToEngine()
{
    assert(process_ && sim::Process::current() == process_);
    assert(localTime_ >= rt_.engine().now());
    process_->delayUntil(localTime_);
}

void
Proc::maybeYield()
{
    // The local clock may run ahead of the engine between shared events;
    // before touching shared state, let every earlier global event fire.
    if (localTime_ >= rt_.engine().nextEventTime())
        syncToEngine();
}

void
Proc::compute(std::uint64_t n)
{
    computeNs(sim::cycles(n));
}

void
Proc::computeNs(sim::Duration ns)
{
    localTime_ += ns;
    stats_.busy += ns;
}

void
Proc::access(mem::Addr addr, mach::AccessType type, std::uint32_t bytes)
{
    assert(bytes <= mem::kBlockBytes);
    assert(mem::blockOf(addr) == mem::blockOf(addr + bytes - 1) &&
           "access must not straddle cache blocks");
    maybeYield();
    const mach::AccessTiming t =
        rt_.machine().access(*this, addr, type, bytes);
    // If the machine blocked, the engine clock carries the completion
    // time; otherwise the engine is behind our private clock.  Either
    // way the trailing local cost is added on top.
    localTime_ = std::max(localTime_, rt_.engine().now()) + t.busy;
    stats_.busy += t.busy;
    stats_.latency += t.latency;
    stats_.contention += t.contention;
    ++stats_.accesses;
    if (t.networked) {
        ++stats_.networkAccesses;
        remoteHist_.record(t.latency + t.contention);
    }
}

void
Proc::memRead(mem::Addr addr, std::uint32_t bytes)
{
    access(addr, mach::AccessType::Read, bytes);
}

void
Proc::memWrite(mem::Addr addr, std::uint32_t bytes)
{
    access(addr, mach::AccessType::Write, bytes);
}

void
Proc::memRmw(mem::Addr addr, std::uint32_t bytes)
{
    access(addr, mach::AccessType::Rmw, bytes);
}

void
Proc::flushPhase()
{
    stats::PhaseStats delta;
    delta.name = currentPhase_;
    delta.busy = stats_.busy - phaseSnapshot_.busy;
    delta.latency = stats_.latency - phaseSnapshot_.latency;
    delta.contention = stats_.contention - phaseSnapshot_.contention;
    delta.wait = stats_.wait - phaseSnapshot_.wait;
    phaseSnapshot_ = stats_;

    for (stats::PhaseStats &phase : phases_) {
        if (phase.name == delta.name) {
            phase.busy += delta.busy;
            phase.latency += delta.latency;
            phase.contention += delta.contention;
            phase.wait += delta.wait;
            return;
        }
    }
    phases_.push_back(std::move(delta));
}

void
Proc::beginPhase(const std::string &name)
{
    flushPhase();
    currentPhase_ = name;
}

void
Proc::absorbEngineTime(sim::Duration latency, sim::Duration contention,
                       sim::Duration wait)
{
    const sim::Tick now = rt_.engine().now();
    assert(now >= localTime_);
    assert(latency + contention + wait == now - localTime_ &&
           "buckets must partition the elapsed engine time");
    localTime_ = now;
    stats_.latency += latency;
    stats_.contention += contention;
    stats_.wait += wait;
}

Runtime::Runtime(sim::EventQueue &eq, mach::Machine &machine,
                 std::uint32_t p)
    : eq_(eq), machine_(machine), p_(p)
{
    assert(p >= 1);
}

Runtime::~Runtime() = default;

void
Runtime::spawn(std::function<void(Proc &)> body)
{
    assert(procs_.empty() && "spawn may only be called once");
    procs_.reserve(p_);
    processes_.reserve(p_);
    for (std::uint32_t i = 0; i < p_; ++i)
        procs_.push_back(std::make_unique<Proc>(*this, i));
    for (std::uint32_t i = 0; i < p_; ++i) {
        Proc *proc = procs_[i].get();
        processes_.push_back(std::make_unique<sim::Process>(
            eq_, "worker-" + std::to_string(i), [this, proc, body] {
                // Exceptions must not unwind across the fiber boundary;
                // capture and rethrow from run() on the scheduler stack.
                try {
                    body(*proc);
                } catch (...) {
                    if (!workerError_)
                        workerError_ = std::current_exception();
                }
                proc->recordFinish();
            }));
        proc->bindProcess(processes_.back().get());
        processes_.back()->start(0);
    }
}

void
Runtime::run()
{
    eq_.run();
    if (workerError_)
        std::rethrow_exception(workerError_);
    for ([[maybe_unused]] const auto &p : processes_)
        assert(p->finished() && "a worker is still blocked at drain");
}

stats::Profile
Runtime::collect() const
{
    stats::Profile profile;
    profile.procs.reserve(p_);
    profile.procPhases.reserve(p_);
    for (const auto &proc : procs_) {
        profile.procs.push_back(proc->stats());
        profile.procPhases.push_back(proc->phases());
        profile.remoteLatency.merge(proc->remoteLatencyHistogram());
    }
    profile.machine = machine_.stats();
    profile.engineEvents = eq_.dispatched();
    return profile;
}

} // namespace absim::rt
