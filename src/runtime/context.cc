#include "runtime/context.hh"

#include <algorithm>
#include <sstream>
#include <string>

#include "check/check.hh"
#include "fault/fault.hh"
#include "mem/addr.hh"
#include "sim/watchdog.hh"

namespace absim::rt {

Proc::Proc(Runtime &rt, net::NodeId id) : rt_(rt), id_(id) {}

std::uint32_t
Proc::procs() const
{
    return rt_.procs();
}

void
Proc::syncToEngine()
{
    ABSIM_CHECK(process_ != nullptr &&
                    sim::Process::current() == process_,
                "syncToEngine outside processor " << id_
                                                  << "'s own process");
    ABSIM_CHECK(localTime_ >= rt_.engine().now(),
                "processor " << id_ << " local clock " << localTime_
                             << " fell behind the engine at "
                             << rt_.engine().now());
    syncedThisAccess_ = true;
    process_->delayUntil(localTime_);
}

void
Proc::maybeYield()
{
    // The local clock may run ahead of the engine between shared events;
    // before touching shared state, let every earlier global event fire.
    if (localTime_ >= rt_.engine().nextEventTime())
        syncToEngine();
}

void
Proc::compute(std::uint64_t n)
{
    computeNs(sim::cycles(n));
}

void
Proc::computeNs(sim::Duration ns)
{
    if (sink_ != nullptr) [[unlikely]]
        sink_->onCompute(id_, ns);
    localTime_ += ns;
    stats_.busy += ns;
}

void
Proc::access(mem::Addr addr, mach::AccessType type, std::uint32_t bytes)
{
    ABSIM_DCHECK(bytes <= mem::kBlockBytes,
                 "access of " << bytes << " bytes exceeds a cache block");
    ABSIM_DCHECK(mem::blockOf(addr) == mem::blockOf(addr + bytes - 1),
                 "access at " << addr << " straddles cache blocks");
    if (sink_ != nullptr) [[unlikely]]
        sink_->onAccess(id_, addr, type, bytes);
    if (fault::armed()) [[unlikely]] {
        const fault::AccessFault af = fault::injector().onAccess(id_);
        if (af.wedge)
            process_->suspend("fault-plan: wedged fiber (never woken)");
        if (af.corrupt)
            rt_.machine().corruptStateForFault(fault::injector().seed());
    }
    maybeYield();
    ABSIM_DCHECK(localTime_ >= rt_.engine().now(),
                 "processor " << id_ << " issued an access with its local "
                              << "clock behind the engine");
    const sim::Tick began = localTime_;
    syncedThisAccess_ = false;
    mach::AccessTiming t = rt_.machine().access(*this, addr, type, bytes);
    if (fault::armed() && t.networked &&
        fault::injector().consumeDropOverhead()) [[unlikely]] {
        // Fault injection (DropOverhead): lose the overhead charge of
        // this networked access; the conservation checker below must
        // catch the now-unaccounted engine time.
        t.latency = 0;
        t.contention = 0;
    }
    // Overhead conservation: a machine that blocked must charge exactly
    // the elapsed engine time as latency + contention, and one that did
    // not block may charge neither.
    if (check::options().conservation) {
        ABSIM_CHECK(syncedThisAccess_ || !t.networked,
                    "machine reported a networked access without "
                    "synchronizing to the engine first");
        if (syncedThisAccess_)
            ABSIM_CHECK_EQ(t.latency + t.contention,
                           rt_.engine().now() - began,
                           "overhead buckets must partition the engine "
                           "time this access blocked for");
        else
            ABSIM_CHECK(t.latency == 0 && t.contention == 0,
                        "non-blocking access charged latency="
                            << t.latency << " contention="
                            << t.contention);
    }
    // If the machine blocked, the engine clock carries the completion
    // time; otherwise the engine is behind our private clock.  Either
    // way the trailing local cost is added on top.
    localTime_ = std::max(localTime_, rt_.engine().now()) + t.busy;
    stats_.busy += t.busy;
    stats_.latency += t.latency;
    stats_.contention += t.contention;
    ++stats_.accesses;
    if (t.networked) {
        ++stats_.networkAccesses;
        remoteHist_.record(t.latency + t.contention);
    }
}

void
Proc::memRead(mem::Addr addr, std::uint32_t bytes)
{
    access(addr, mach::AccessType::Read, bytes);
}

void
Proc::memWrite(mem::Addr addr, std::uint32_t bytes)
{
    access(addr, mach::AccessType::Write, bytes);
}

void
Proc::memRmw(mem::Addr addr, std::uint32_t bytes)
{
    access(addr, mach::AccessType::Rmw, bytes);
}

void
Proc::flushPhase()
{
    stats::PhaseStats delta;
    delta.name = currentPhase_;
    delta.busy = stats_.busy - phaseSnapshot_.busy;
    delta.latency = stats_.latency - phaseSnapshot_.latency;
    delta.contention = stats_.contention - phaseSnapshot_.contention;
    delta.wait = stats_.wait - phaseSnapshot_.wait;
    phaseSnapshot_ = stats_;

    for (stats::PhaseStats &phase : phases_) {
        if (phase.name == delta.name) {
            phase.busy += delta.busy;
            phase.latency += delta.latency;
            phase.contention += delta.contention;
            phase.wait += delta.wait;
            return;
        }
    }
    phases_.push_back(std::move(delta));
}

void
Proc::beginPhase(const std::string &name)
{
    if (sink_ != nullptr) [[unlikely]]
        sink_->onPhase(id_, name);
    flushPhase();
    currentPhase_ = name;
}

void
Proc::absorbEngineTime(sim::Duration latency, sim::Duration contention,
                       sim::Duration wait)
{
    const sim::Tick now = rt_.engine().now();
    ABSIM_CHECK(now >= localTime_,
                "absorbEngineTime with processor " << id_
                    << " ahead of the engine");
    if (check::options().conservation)
        ABSIM_CHECK_EQ(latency + contention + wait, now - localTime_,
                       "buckets must partition the elapsed engine time");
    localTime_ = now;
    stats_.latency += latency;
    stats_.contention += contention;
    stats_.wait += wait;
}

Runtime::Runtime(sim::EventQueue &eq, mach::Machine &machine,
                 std::uint32_t p)
    : eq_(eq), machine_(machine), p_(p)
{
    ABSIM_CHECK(p >= 1, "a runtime needs at least one processor");
}

Runtime::~Runtime() = default;

void
Runtime::spawn(std::function<void(Proc &)> body)
{
    ABSIM_CHECK(procs_.empty(), "spawn may only be called once");
    procs_.reserve(p_);
    processes_.reserve(p_);
    for (std::uint32_t i = 0; i < p_; ++i) {
        procs_.push_back(std::make_unique<Proc>(*this, i));
        procs_.back()->bindSink(sink_);
    }
    for (std::uint32_t i = 0; i < p_; ++i) {
        Proc *proc = procs_[i].get();
        processes_.push_back(std::make_unique<sim::Process>(
            eq_, "worker-" + std::to_string(i), [this, proc, body] {
                // Exceptions must not unwind across the fiber boundary;
                // capture and rethrow from run() on the scheduler stack.
                try {
                    body(*proc);
                } catch (...) {
                    if (!workerError_)
                        workerError_ = std::current_exception();
                    // The dead worker's peers would spin at a barrier
                    // nobody will reach — in simulated time, so not
                    // even the stall watchdog trips.  Halt the engine;
                    // run() rethrows the root cause.
                    eq_.requestStop();
                }
                proc->recordFinish();
            }));
        proc->bindProcess(processes_.back().get());
        processes_.back()->start(0);
    }
}

void
Runtime::run()
{
    try {
        eq_.run();
    } catch (...) {
        // A watchdog may fire *because* a worker already died (its
        // peers spin at a barrier nobody will reach, until a budget
        // trips).  The worker's exception is the root cause; prefer it.
        if (workerError_)
            std::rethrow_exception(workerError_);
        throw;
    }
    if (workerError_)
        std::rethrow_exception(workerError_);
    // The queue drained; every worker must have finished.  Unfinished
    // workers mean the simulation deadlocked (all remaining fibers are
    // blocked with nobody left to wake them): report which, and on
    // what, instead of tripping an opaque assertion.
    std::size_t unfinished = 0;
    for (const auto &p : processes_)
        if (!p->finished())
            ++unfinished;
    if (unfinished > 0) {
        std::ostringstream oss;
        oss << "deadlock: event queue drained with " << unfinished
            << " of " << processes_.size() << " workers still blocked";
        throw sim::DeadlockError(oss.str(), eq_.dispatched(), eq_.now(),
                                 eq_.blockedProcesses());
    }
    // The caches and directory must be mutually consistent once the
    // simulation has drained (full sweep; per-transaction checks ran
    // incrementally during the run).
    machine_.checkInvariants();
}

stats::Profile
Runtime::collect() const
{
    stats::Profile profile;
    profile.procs.reserve(p_);
    profile.procPhases.reserve(p_);
    for (const auto &proc : procs_) {
        profile.procs.push_back(proc->stats());
        profile.procPhases.push_back(proc->phases());
        profile.remoteLatency.merge(proc->remoteLatencyHistogram());
    }
    profile.machine = machine_.stats();
    profile.netModel = machine_.netModelName();
    profile.memModel = machine_.memModelName();
    profile.engineEvents = eq_.dispatched();
    return profile;
}

} // namespace absim::rt
