#include "runtime/sync.hh"

namespace absim::rt {

namespace {

/**
 * Records one semantic synchronization operation and suppresses the
 * operation's internal spin accesses for its duration (they are
 * machine-dependent; replay regenerates them per machine — see
 * runtime/ref_sink.hh).
 */
class SyncRecordScope
{
  public:
    SyncRecordScope(Proc &p, SyncKind kind, mem::Addr word,
                    std::uint64_t value = 0)
        : sink_(p.sink()), node_(p.node())
    {
        if (sink_ != nullptr) [[unlikely]]
            sink_->onSyncBegin(node_, kind, word, value);
    }

    ~SyncRecordScope()
    {
        if (sink_ != nullptr) [[unlikely]]
            sink_->onSyncEnd(node_);
    }

    SyncRecordScope(const SyncRecordScope &) = delete;
    SyncRecordScope &operator=(const SyncRecordScope &) = delete;

  private:
    RefSink *sink_;
    net::NodeId node_;
};

} // namespace

SpinLock::SpinLock(SharedHeap &heap, net::NodeId home, LockKind kind)
    : word_(heap, 1, Placement::OnNode, home), kind_(kind)
{
}

void
SpinLock::lock(Proc &p)
{
    SyncRecordScope record(p,
                           kind_ == LockKind::TestTestAndSet
                               ? SyncKind::LockTTS
                               : SyncKind::LockTS,
                           word_.addrOf(0));
    Backoff backoff;
    bool first_try = true;
    for (;;) {
        if (kind_ == LockKind::TestTestAndSet) {
            // Test loop: spin with plain reads until the lock looks free.
            // On a cached machine these are local hits; on the LogP
            // machine each is a remote reference — the paper's observed
            // degeneration of TTS into TS behaviour.
            while (word_.read(p, 0) != 0) {
                if (first_try) {
                    ++contended_;
                    first_try = false;
                }
                backoff.pause(p);
            }
        }
        if (word_.testAndSet(p, 0) == 0)
            return;
        if (first_try) {
            ++contended_;
            first_try = false;
        }
        backoff.pause(p);
    }
}

void
SpinLock::unlock(Proc &p)
{
    word_.write(p, 0, 0);
}

Barrier::Barrier(SharedHeap &heap, std::uint32_t parties, net::NodeId home)
    : parties_(parties), count_(heap, 1, Placement::OnNode, home),
      sense_(heap, 1, Placement::OnNode, home),
      localSense_(mem::kMaxNodes, 0)
{
    if (RefSink *s = heap.sink()) [[unlikely]]
        s->onBarrierCtor(count_.addrOf(0), sense_.addrOf(0), parties);
}

void
Barrier::arrive(Proc &p)
{
    SyncRecordScope record(p, SyncKind::BarrierArrive, count_.addrOf(0));
    const std::uint64_t my_sense = 1 - localSense_[p.node()];
    localSense_[p.node()] = my_sense;

    const std::uint64_t arrived = count_.fetchAdd(p, 0, 1);
    if (arrived == parties_ - 1) {
        // Last arriver resets the counter and releases everyone.
        count_.write(p, 0, 0);
        sense_.write(p, 0, my_sense);
        return;
    }
    Backoff backoff;
    while (sense_.read(p, 0) != my_sense)
        backoff.pause(p);
}

Flag::Flag(SharedHeap &heap, net::NodeId home)
    : word_(heap, 1, Placement::OnNode, home)
{
}

void
Flag::set(Proc &p, std::uint64_t value)
{
    word_.write(p, 0, value);
}

std::uint64_t
Flag::get(Proc &p)
{
    return word_.read(p, 0);
}

void
Flag::waitFor(Proc &p, std::uint64_t value)
{
    SyncRecordScope record(p, SyncKind::FlagWait, word_.addrOf(0), value);
    Backoff backoff;
    while (word_.read(p, 0) != value)
        backoff.pause(p);
}

} // namespace absim::rt
