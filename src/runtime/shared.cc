#include "runtime/shared.hh"

#include <algorithm>
#include <stdexcept>

#include "check/check.hh"

namespace absim::rt {

namespace {

/** Round @p x up to a multiple of the cache-block size. */
std::uint64_t
blockAlign(std::uint64_t x)
{
    return (x + mem::kBlockBytes - 1) & ~std::uint64_t{mem::kBlockBytes - 1};
}

// Leave address 0 unused so that a zero Addr is recognizably "null".
constexpr mem::Addr kHeapBase = mem::kBlockBytes;

} // namespace

SharedHeap::SharedHeap(std::uint32_t nodes)
    : nodes_(nodes), next_(kHeapBase)
{
    ABSIM_CHECK(nodes >= 1 && nodes <= mem::kMaxNodes,
                "heap for " << nodes << " nodes (must be 1.."
                            << mem::kMaxNodes << ")");
}

mem::Addr
SharedHeap::allocate(std::uint64_t bytes, Placement placement,
                     net::NodeId node)
{
    if (bytes == 0)
        throw std::invalid_argument("empty shared allocation");
    if (node >= nodes_)
        throw std::invalid_argument("placement node out of range");

    Segment seg;
    seg.base = next_;
    seg.placement = placement;
    seg.node = node;

    // Round the extent so every segment starts block-aligned and, for
    // Blocked placement, every node's chunk is block-aligned too.
    seg.chunk = blockAlign((bytes + nodes_ - 1) / nodes_);
    if (placement == Placement::Blocked)
        seg.bytes = seg.chunk * nodes_;
    else
        seg.bytes = blockAlign(bytes);

    next_ += seg.bytes;
    segments_.push_back(seg);
    if (sink_ != nullptr) [[unlikely]]
        sink_->onAlloc(seg.base, bytes,
                       static_cast<std::uint8_t>(placement), node);
    return seg.base;
}

net::NodeId
SharedHeap::homeOf(mem::Addr a) const
{
    // Segments are appended in increasing base order: binary search.
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), a,
        [](mem::Addr addr, const Segment &s) { return addr < s.base; });
    if (it == segments_.begin())
        throw std::out_of_range("address below the shared heap");
    const Segment &seg = *std::prev(it);
    if (a >= seg.base + seg.bytes)
        throw std::out_of_range("address past its segment");

    const std::uint64_t offset = a - seg.base;
    switch (seg.placement) {
      case Placement::Blocked:
        return static_cast<net::NodeId>(offset / seg.chunk);
      case Placement::Interleaved:
        return static_cast<net::NodeId>((offset >> mem::kBlockShift) %
                                        nodes_);
      case Placement::OnNode:
        return seg.node;
    }
    throw std::logic_error("unknown placement");
}

} // namespace absim::rt
