/**
 * @file
 * Application-level synchronization built on *simulated shared memory*.
 *
 * These are not simulator shortcuts: a lock acquire really spins on a
 * shared word with test-test&set (Anderson's TTS, cited by the paper), a
 * barrier really increments a shared counter and spins on a sense flag,
 * and a condition flag really polls a shared location.  Because every
 * poll goes through the machine model, the paper's synchronization
 * effects emerge naturally: on the target and LogP+C machines the spin
 * reads hit in the cache until the writer's invalidation arrives, while
 * on the cache-less LogP machine *every* poll is a remote round trip —
 * the EP condition-variable effect of Figure 3.
 *
 * Polls back off exponentially (bounded) so that waiting advances
 * simulated time at a realistic rate and the simulation itself stays
 * fast.
 */

#ifndef ABSIM_RUNTIME_SYNC_HH
#define ABSIM_RUNTIME_SYNC_HH

#include <cstdint>
#include <vector>

#include "runtime/shared.hh"

namespace absim::rt {

/** Exponential poll backoff: 4, 8, ..., capped at 256 cycles. */
struct Backoff
{
    std::uint64_t cycles = 4;
    static constexpr std::uint64_t kCap = 256;

    void
    pause(Proc &p)
    {
        p.compute(cycles);
        cycles = std::min<std::uint64_t>(cycles * 2, kCap);
    }
};

/** Flavor of spin lock (the paper notes TTS degenerates to TS on LogP). */
enum class LockKind
{
    TestAndSet,
    TestTestAndSet,
};

/**
 * A spin lock on one shared word.
 */
class SpinLock
{
  public:
    /** The lock word lives in @p home's memory. */
    SpinLock(SharedHeap &heap, net::NodeId home = 0,
             LockKind kind = LockKind::TestTestAndSet);

    void lock(Proc &p);
    void unlock(Proc &p);

    /** Acquisition attempts that found the lock held (diagnostics). */
    std::uint64_t contendedAcquires() const { return contended_; }

  private:
    SharedArray<std::uint64_t> word_;
    LockKind kind_;
    std::uint64_t contended_ = 0;
};

/**
 * A sense-reversing centralized barrier for @p parties processors.
 * Reusable across any number of phases.
 */
class Barrier
{
  public:
    Barrier(SharedHeap &heap, std::uint32_t parties, net::NodeId home = 0);

    /** Block until all parties have arrived. */
    void arrive(Proc &p);

  private:
    std::uint32_t parties_;
    SharedArray<std::uint64_t> count_;
    SharedArray<std::uint64_t> sense_;
    std::vector<std::uint64_t> localSense_; // Per-processor, private.
};

/**
 * A condition flag: one writer sets a value, waiters poll for it.  This is
 * the "condition variable" idiom the paper's EP uses (see its appendix
 * discussion and Figure 3).
 */
class Flag
{
  public:
    Flag(SharedHeap &heap, net::NodeId home = 0);

    /** Publish @p value. */
    void set(Proc &p, std::uint64_t value = 1);

    /** Read the current value (one simulated access). */
    std::uint64_t get(Proc &p);

    /** Spin until the flag reads exactly @p value. */
    void waitFor(Proc &p, std::uint64_t value);

  private:
    SharedArray<std::uint64_t> word_;
};

} // namespace absim::rt

#endif // ABSIM_RUNTIME_SYNC_HH
