/**
 * @file
 * The recording interface between the runtime and the trace layer.
 *
 * A RefSink observes the runtime's shared-reference stream: computation
 * charges, shared-memory accesses (with the value/index hints the typed
 * SharedArray accessors provide), phase marks, allocator layout, and the
 * *semantic* synchronization operations (lock acquire, barrier arrival,
 * flag wait).  The synchronization entry points bracket their internal
 * spin accesses with onSyncBegin()/onSyncEnd() so a recorder can store
 * the one semantic operation instead of the machine-dependent spin
 * pattern — the spins are regenerated per machine at replay, which is
 * what keeps a recorded trace valid across NetModel x MemModel stacks
 * (see src/trace_replay and docs/TRACING.md).
 *
 * The runtime never depends on the trace layer: trace_replay::Recorder
 * implements this interface and core::experiment installs it on the
 * SharedHeap (setup-time records) and the Runtime (per-processor
 * records).  A null sink (the default) costs one predicted branch per
 * hook site.
 */

#ifndef ABSIM_RUNTIME_REF_SINK_HH
#define ABSIM_RUNTIME_REF_SINK_HH

#include <cstdint>
#include <string>

#include "machines/machine.hh"
#include "mem/addr.hh"
#include "net/topology.hh"
#include "sim/types.hh"

namespace absim::rt {

/** Which read-modify-write primitive a SharedArray RMW hint refers to. */
enum class RmwOp : std::uint8_t
{
    FetchAdd,
    TestAndSet,
};

/** Semantic synchronization operations (re-executed at replay). */
enum class SyncKind : std::uint8_t
{
    LockTS,        ///< SpinLock acquire, plain test&set flavor.
    LockTTS,       ///< SpinLock acquire, test-test&set flavor.
    BarrierArrive, ///< Sense-reversing barrier arrival.
    FlagWait,      ///< Flag::waitFor spin.
};

/**
 * Observer of the shared-reference stream.  All callbacks fire on the
 * simulation thread, in execution order.
 */
class RefSink
{
  public:
    virtual ~RefSink() = default;

    /** Processor @p n charged @p ns of computation. */
    virtual void onCompute(net::NodeId n, sim::Duration ns) = 0;

    /** Processor @p n issued a shared access (before it executes). */
    virtual void onAccess(net::NodeId n, mem::Addr addr,
                          mach::AccessType type, std::uint32_t bytes) = 0;

    /**
     * Value/index hint for the write access just recorded: element
     * index @p index, new value @p bits (raw bits, zero for elements
     * wider than 8 bytes).
     */
    virtual void onWriteValue(net::NodeId n, std::uint64_t bits,
                              std::uint64_t index) = 0;

    /**
     * Kind/operand/result hint for the RMW access just recorded.
     * @p result carries the old (returned) value's raw bits.
     */
    virtual void onRmw(net::NodeId n, RmwOp op, std::uint64_t operand,
                       std::uint64_t result) = 0;

    /** Processor @p n began the named application phase. */
    virtual void onPhase(net::NodeId n, const std::string &name) = 0;

    /** The shared heap performed an allocation (@p placement is the
     *  rt::Placement enumerator value; rt::Placement itself would be a
     *  circular include here). */
    virtual void onAlloc(mem::Addr base, std::uint64_t bytes,
                         std::uint8_t placement, net::NodeId node) = 0;

    /** A barrier was constructed over the given count/sense words. */
    virtual void onBarrierCtor(mem::Addr count_addr, mem::Addr sense_addr,
                               std::uint32_t parties) = 0;

    /**
     * Processor @p n entered a semantic synchronization operation on
     * shared word @p word (@p value: the awaited value for FlagWait,
     * unused otherwise).  Until the matching onSyncEnd(), the
     * operation's internal accesses should be suppressed — they are
     * machine-dependent spin traffic.
     */
    virtual void onSyncBegin(net::NodeId n, SyncKind kind, mem::Addr word,
                             std::uint64_t value) = 0;

    /** Processor @p n left the semantic synchronization operation. */
    virtual void onSyncEnd(net::NodeId n) = 0;

    /**
     * The run used a runtime facility the trace format cannot replay
     * (message-passing transports).  The recorder marks the trace
     * non-replayable; replay then falls back to execution.
     */
    virtual void onUntraceable(const char *why) = 0;
};

} // namespace absim::rt

#endif // ABSIM_RUNTIME_REF_SINK_HH
