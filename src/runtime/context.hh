/**
 * @file
 * Per-processor execution context and the Runtime harness.
 *
 * A Proc is what application code sees: it charges computation, issues
 * simulated shared-memory accesses, and carries the SPASM overhead
 * counters.  Each Proc runs on its own simulated process (fiber) and keeps
 * a *local clock* that runs ahead of the global engine between shared
 * events — the direct-execution trick that makes execution-driven
 * simulation fast.  Before any access, the Proc yields to the engine if
 * its local clock has passed the next pending global event, so all shared
 * accesses still happen in exact global time order (sequential
 * consistency at access granularity).
 */

#ifndef ABSIM_RUNTIME_CONTEXT_HH
#define ABSIM_RUNTIME_CONTEXT_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "machines/machine.hh"
#include "runtime/ref_sink.hh"
#include "sim/process.hh"
#include "stats/histogram.hh"
#include "stats/overheads.hh"

namespace absim::rt {

class Runtime;

/**
 * One simulated processor, as seen by application code.
 */
class Proc : public mach::MemClient
{
  public:
    Proc(Runtime &rt, net::NodeId id);

    // MemClient interface (called back by machine models).
    net::NodeId node() const override { return id_; }
    sim::Tick localTime() const override { return localTime_; }
    void syncToEngine() override;

    /** Charge @p n processor cycles of computation. */
    void compute(std::uint64_t n);

    /** Charge @p ns nanoseconds of computation. */
    void computeNs(sim::Duration ns);

    /** Simulated shared-memory read of @p bytes at @p addr. */
    void memRead(mem::Addr addr, std::uint32_t bytes);

    /** Simulated shared-memory write. */
    void memWrite(mem::Addr addr, std::uint32_t bytes);

    /** Simulated atomic read-modify-write. */
    void memRmw(mem::Addr addr, std::uint32_t bytes);

    const stats::ProcStats &stats() const { return stats_; }

    /** Distribution of networked-access completion times (ns). */
    const stats::Histogram &remoteLatencyHistogram() const
    {
        return remoteHist_;
    }

    /**
     * Mark the start of a named application phase (SPASM bottleneck
     * isolation).  Until the next beginPhase()/worker exit, all overhead
     * accrues to @p name; repeated names accumulate.  Before the first
     * beginPhase() everything lands in an implicit "main" phase.
     */
    void beginPhase(const std::string &name);

    /** Per-phase breakdown in first-use order (finalized at exit). */
    const std::vector<stats::PhaseStats> &phases() const
    {
        return phases_;
    }

    Runtime &runtime() { return rt_; }

    /** Total processors in this run (convenience for workers). */
    std::uint32_t procs() const;

    /** @name Harness plumbing (used by Runtime). */
    /// @{
    void bindProcess(sim::Process *p) { process_ = p; }

    /** The reference-stream observer, or null (the common case). */
    RefSink *sink() const { return sink_; }

    void bindSink(RefSink *sink) { sink_ = sink; }

    void
    recordFinish()
    {
        stats_.finishTime = localTime_;
        flushPhase();
    }
    /// @}

    /** @name Message-passing support (used by msg::MsgWorld).
     *
     * The shared-memory path never touches these: its blocking is
     * machine-mediated.  The message layer blocks processors directly
     * (suspend/wake) and accounts the elapsed engine time itself.
     */
    /// @{
    /** The underlying simulated process (for suspend/wake). */
    sim::Process *process() { return process_; }

    /**
     * Jump the local clock to the engine clock, attributing the elapsed
     * time to the given buckets.  The buckets must sum to exactly the
     * elapsed time (the profile invariant is asserted in tests).
     */
    void absorbEngineTime(sim::Duration latency, sim::Duration contention,
                          sim::Duration wait);
    /// @}

  private:
    void access(mem::Addr addr, mach::AccessType type, std::uint32_t bytes);
    void maybeYield();

    /** Attribute overhead accrued since the last snapshot to the
     *  current phase. */
    void flushPhase();

    Runtime &rt_;
    net::NodeId id_;
    sim::Process *process_ = nullptr;
    RefSink *sink_ = nullptr;
    sim::Tick localTime_ = 0;

    /** Set by syncToEngine(); reset at the top of every access so the
     *  conservation checker knows whether the machine blocked. */
    bool syncedThisAccess_ = false;
    stats::ProcStats stats_;
    stats::ProcStats phaseSnapshot_;
    stats::Histogram remoteHist_;
    std::string currentPhase_ = "main";
    std::vector<stats::PhaseStats> phases_;
};

/**
 * Glue between an engine, a machine and P processors; owns the worker
 * processes and collects the run profile.
 */
class Runtime
{
  public:
    Runtime(sim::EventQueue &eq, mach::Machine &machine, std::uint32_t p);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Create the P worker processes, each running @p body on its Proc.
     * Call once, then run().
     */
    void spawn(std::function<void(Proc &)> body);

    /**
     * Install a reference-stream observer on every processor spawn()
     * creates (the trace recorder).  Call before spawn(); null (the
     * default) records nothing.
     */
    void bindSink(RefSink *sink) { sink_ = sink; }

    /**
     * Run the simulation to completion.
     * @throws whatever a worker threw (captured on the worker's fiber,
     *         rethrown here on the scheduler stack).
     * @throws sim::DeadlockError if the queue drains with workers
     *         still blocked (with a dump of what each waits on).
     * @throws sim::BudgetExceededError / sim::DeadlockError from the
     *         engine if a RunBudget installed on it trips.
     */
    void run();

    /** Gather the SPASM profile after run(). */
    stats::Profile collect() const;

    sim::EventQueue &engine() { return eq_; }
    mach::Machine &machine() { return machine_; }
    std::uint32_t procs() const { return p_; }
    Proc &proc(std::uint32_t i) { return *procs_[i]; }

  private:
    sim::EventQueue &eq_;
    mach::Machine &machine_;
    std::uint32_t p_;
    RefSink *sink_ = nullptr;
    std::vector<std::unique_ptr<Proc>> procs_;
    std::vector<std::unique_ptr<sim::Process>> processes_;
    std::exception_ptr workerError_;
};

} // namespace absim::rt

#endif // ABSIM_RUNTIME_CONTEXT_HH
