/**
 * @file
 * Always-on invariant checking for the simulator: the ABSIM_CHECK /
 * ABSIM_DCHECK macro family and the per-thread checker configuration.
 *
 * The paper's methodology stands or falls with exact accounting: every
 * cycle of latency, contention and wait must be attributed somewhere, and
 * the coherence state the machines track must stay consistent.  Bare
 * assert() gives none of the context needed to debug a violation (and
 * vanishes under NDEBUG); these macros report file, line, the failed
 * expression and a formatted message, stay live in optimized builds, and
 * count how many checks were evaluated so tests can prove the validators
 * actually ran.
 *
 * Usage:
 *
 *     ABSIM_CHECK(when >= now_, "event scheduled " << now_ - when
 *                                   << " ticks in the past");
 *     ABSIM_DCHECK(line != nullptr, "touch of an absent line");
 *
 * ABSIM_CHECK is always compiled in.  ABSIM_DCHECK marks hot-path checks:
 * it is identical unless the build defines NDEBUG (which this project's
 * CMake never does for its own targets; embedders may).
 *
 * On failure the installed FailureHandler runs; the default prints the
 * diagnostic to stderr and aborts.  Tests install a throwing handler via
 * ScopedThrowOnFailure so that negative tests can observe the failure as
 * a CheckFailure exception instead of a process death.
 *
 * The heavier validators (coherence sweeps, overhead conservation,
 * event-kernel causality) are individually pluggable through Options so
 * that forensic runs can isolate one class of invariant at a time.
 */

#ifndef ABSIM_CHECK_CHECK_HH
#define ABSIM_CHECK_CHECK_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace absim::check {

/** Tallies of checker activity.  Counters live in the per-thread (or
 *  per-run, see core::RunContext) check State, so concurrent runs in
 *  one process never contend; plain integers suffice. */
struct Counters
{
    /** Checks evaluated (passed or failed), including active DCHECKs. */
    std::uint64_t evaluated = 0;

    /** Checks that failed (only observable with a non-fatal handler). */
    std::uint64_t failed = 0;

    Counters &
    operator+=(const Counters &other)
    {
        evaluated += other.evaluated;
        failed += other.failed;
        return *this;
    }
};

/** Enable bits for the pluggable debug-mode validators.  All default to
 *  on; benchmarks that measure raw simulator speed may switch them off. */
struct Options
{
    /** SWMR + directory/cache agreement after every protocol transition. */
    bool coherence = true;

    /** Event-kernel causality: monotonic clock, no events in the past. */
    bool causality = true;

    /** latency + contention + wait must equal elapsed engine time on
     *  every accounted operation. */
    bool conservation = true;
};

/**
 * Invoked when a check fails.  May throw (tests) or log; if it returns,
 * the process aborts — a failed invariant never continues silently.
 */
using FailureHandler = void (*)(const char *file, int line,
                                const char *expr,
                                const std::string &message);

/**
 * All mutable checker state, bundled so a simulation run can own its
 * own copy.  Exactly one State is *current* per thread at any time:
 * the thread's ambient default, or whatever a ScopedState (usually a
 * core::RunContext) installed.  Because the current-state pointer is
 * thread_local, N concurrent runs on N threads never share counters,
 * options or the failure handler.
 */
struct State
{
    Counters counters;
    Options options;

    /** nullptr = the default handler (print to stderr and abort). */
    FailureHandler handler = nullptr;
};

namespace detail {
/** The thread's current state; nullptr until first use (constinit keeps
 *  the hot-path load free of a TLS init guard). */
inline thread_local constinit State *tl_state = nullptr;

/** The thread's ambient fallback state (defined in check.cc). */
State &threadDefaultState();
} // namespace detail

/** The current thread's active check state. */
inline State &
state()
{
    if (detail::tl_state == nullptr) [[unlikely]]
        detail::tl_state = &detail::threadDefaultState();
    return *detail::tl_state;
}

inline Counters &
counters()
{
    return state().counters;
}

inline Options &
options()
{
    return state().options;
}

/**
 * RAII: install @p state as the current thread's check state and
 * restore the previous one on destruction.  core::RunContext uses this
 * to give every simulation run its own counters/options/handler.
 */
class ScopedState
{
  public:
    explicit ScopedState(State &state);
    ~ScopedState();

    ScopedState(const ScopedState &) = delete;
    ScopedState &operator=(const ScopedState &) = delete;

    /** The state that was current before this scope (never null). */
    State &previous() const { return *prev_; }

  private:
    State *prev_;
};

/**
 * Process-wide totals across finished runs: core::RunContext adds its
 * counters here when a run ends, so a parallel sweep's total check
 * activity stays observable even though each run counted privately.
 */
Counters globalCounters();

/** Add @p delta to the process-wide totals (thread-safe). */
void accumulateGlobal(const Counters &delta);

/** Thrown by the test failure handler (see ScopedThrowOnFailure). */
class CheckFailure : public std::runtime_error
{
  public:
    CheckFailure(const std::string &what, const char *file, int line)
        : std::runtime_error(what), file_(file), line_(line)
    {
    }

    const char *file() const { return file_; }
    int line() const { return line_; }

  private:
    const char *file_;
    int line_;
};

/**
 * Install a failure handler on the current thread's check state.
 * @param handler  New handler, or nullptr to restore the default
 *                 (print to stderr and abort).
 * @return The previously installed handler (nullptr if it was the
 *         default).
 */
FailureHandler setFailureHandler(FailureHandler handler);

/** Report a failed check.  Counts it, then runs the handler; aborts if
 *  the handler declines to throw. */
[[noreturn]] void fail(const char *file, int line, const char *expr,
                       const std::string &message);

/**
 * RAII guard that makes check failures throw CheckFailure for its
 * lifetime.  For tests only: a throw from a check inside a raw fiber
 * (outside the Runtime's worker wrapper) cannot unwind across the fiber
 * boundary and would terminate the process.
 */
class ScopedThrowOnFailure
{
  public:
    ScopedThrowOnFailure();
    ~ScopedThrowOnFailure();

    ScopedThrowOnFailure(const ScopedThrowOnFailure &) = delete;
    ScopedThrowOnFailure &operator=(const ScopedThrowOnFailure &) = delete;

  private:
    FailureHandler prev_;
};

} // namespace absim::check

/**
 * Verify @p cond, which must hold in every build.  @p msg is an ostream
 * expression chain evaluated only on failure.
 */
#define ABSIM_CHECK(cond, msg)                                              \
    do {                                                                    \
        ++::absim::check::counters().evaluated;                             \
        if (!(cond)) [[unlikely]] {                                         \
            std::ostringstream absim_check_oss_;                            \
            absim_check_oss_ << msg;                                        \
            ::absim::check::fail(__FILE__, __LINE__, #cond,                 \
                                 absim_check_oss_.str());                   \
        }                                                                   \
    } while (0)

/** ABSIM_CHECK for hot paths: compiled out under NDEBUG. */
#if defined(NDEBUG) && !defined(ABSIM_FORCE_DCHECKS)
#define ABSIM_DCHECK(cond, msg)                                             \
    do {                                                                    \
        (void)sizeof(!(cond));                                              \
    } while (0)
#else
#define ABSIM_DCHECK(cond, msg) ABSIM_CHECK(cond, msg)
#endif

/** Equality check that prints both operands on failure.  The operands
 *  are re-evaluated for the message, so they must be side-effect free. */
#define ABSIM_CHECK_EQ(a, b, msg)                                           \
    ABSIM_CHECK((a) == (b), #a " == " #b " (" << (a) << " vs " << (b)       \
                                              << "): " << msg)

#define ABSIM_DCHECK_EQ(a, b, msg)                                          \
    ABSIM_DCHECK((a) == (b), #a " == " #b " (" << (a) << " vs " << (b)      \
                                               << "): " << msg)

/** Ordering check (a <= b) that prints both operands on failure. */
#define ABSIM_CHECK_LE(a, b, msg)                                           \
    ABSIM_CHECK((a) <= (b), #a " <= " #b " (" << (a) << " vs " << (b)       \
                                              << "): " << msg)

#endif // ABSIM_CHECK_CHECK_HH
