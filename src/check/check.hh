/**
 * @file
 * Always-on invariant checking for the simulator: the ABSIM_CHECK /
 * ABSIM_DCHECK macro family and the global checker configuration.
 *
 * The paper's methodology stands or falls with exact accounting: every
 * cycle of latency, contention and wait must be attributed somewhere, and
 * the coherence state the machines track must stay consistent.  Bare
 * assert() gives none of the context needed to debug a violation (and
 * vanishes under NDEBUG); these macros report file, line, the failed
 * expression and a formatted message, stay live in optimized builds, and
 * count how many checks were evaluated so tests can prove the validators
 * actually ran.
 *
 * Usage:
 *
 *     ABSIM_CHECK(when >= now_, "event scheduled " << now_ - when
 *                                   << " ticks in the past");
 *     ABSIM_DCHECK(line != nullptr, "touch of an absent line");
 *
 * ABSIM_CHECK is always compiled in.  ABSIM_DCHECK marks hot-path checks:
 * it is identical unless the build defines NDEBUG (which this project's
 * CMake never does for its own targets; embedders may).
 *
 * On failure the installed FailureHandler runs; the default prints the
 * diagnostic to stderr and aborts.  Tests install a throwing handler via
 * ScopedThrowOnFailure so that negative tests can observe the failure as
 * a CheckFailure exception instead of a process death.
 *
 * The heavier validators (coherence sweeps, overhead conservation,
 * event-kernel causality) are individually pluggable through Options so
 * that forensic runs can isolate one class of invariant at a time.
 */

#ifndef ABSIM_CHECK_CHECK_HH
#define ABSIM_CHECK_CHECK_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace absim::check {

/** Global tallies of checker activity (the simulator is single-threaded
 *  per process; plain counters suffice). */
struct Counters
{
    /** Checks evaluated (passed or failed), including active DCHECKs. */
    std::uint64_t evaluated = 0;

    /** Checks that failed (only observable with a non-fatal handler). */
    std::uint64_t failed = 0;
};

inline Counters &
counters()
{
    static Counters instance;
    return instance;
}

/** Enable bits for the pluggable debug-mode validators.  All default to
 *  on; benchmarks that measure raw simulator speed may switch them off. */
struct Options
{
    /** SWMR + directory/cache agreement after every protocol transition. */
    bool coherence = true;

    /** Event-kernel causality: monotonic clock, no events in the past. */
    bool causality = true;

    /** latency + contention + wait must equal elapsed engine time on
     *  every accounted operation. */
    bool conservation = true;
};

inline Options &
options()
{
    static Options instance;
    return instance;
}

/** Thrown by the test failure handler (see ScopedThrowOnFailure). */
class CheckFailure : public std::runtime_error
{
  public:
    CheckFailure(const std::string &what, const char *file, int line)
        : std::runtime_error(what), file_(file), line_(line)
    {
    }

    const char *file() const { return file_; }
    int line() const { return line_; }

  private:
    const char *file_;
    int line_;
};

/**
 * Invoked when a check fails.  May throw (tests) or log; if it returns,
 * the process aborts — a failed invariant never continues silently.
 */
using FailureHandler = void (*)(const char *file, int line,
                                const char *expr,
                                const std::string &message);

/**
 * Install a failure handler.
 * @param handler  New handler, or nullptr to restore the default
 *                 (print to stderr and abort).
 * @return The previously installed handler (nullptr if it was the
 *         default).
 */
FailureHandler setFailureHandler(FailureHandler handler);

/** Report a failed check.  Counts it, then runs the handler; aborts if
 *  the handler declines to throw. */
[[noreturn]] void fail(const char *file, int line, const char *expr,
                       const std::string &message);

/**
 * RAII guard that makes check failures throw CheckFailure for its
 * lifetime.  For tests only: a throw from a check inside a raw fiber
 * (outside the Runtime's worker wrapper) cannot unwind across the fiber
 * boundary and would terminate the process.
 */
class ScopedThrowOnFailure
{
  public:
    ScopedThrowOnFailure();
    ~ScopedThrowOnFailure();

    ScopedThrowOnFailure(const ScopedThrowOnFailure &) = delete;
    ScopedThrowOnFailure &operator=(const ScopedThrowOnFailure &) = delete;

  private:
    FailureHandler prev_;
};

} // namespace absim::check

/**
 * Verify @p cond, which must hold in every build.  @p msg is an ostream
 * expression chain evaluated only on failure.
 */
#define ABSIM_CHECK(cond, msg)                                              \
    do {                                                                    \
        ++::absim::check::counters().evaluated;                             \
        if (!(cond)) [[unlikely]] {                                         \
            std::ostringstream absim_check_oss_;                            \
            absim_check_oss_ << msg;                                        \
            ::absim::check::fail(__FILE__, __LINE__, #cond,                 \
                                 absim_check_oss_.str());                   \
        }                                                                   \
    } while (0)

/** ABSIM_CHECK for hot paths: compiled out under NDEBUG. */
#if defined(NDEBUG) && !defined(ABSIM_FORCE_DCHECKS)
#define ABSIM_DCHECK(cond, msg)                                             \
    do {                                                                    \
        (void)sizeof(!(cond));                                              \
    } while (0)
#else
#define ABSIM_DCHECK(cond, msg) ABSIM_CHECK(cond, msg)
#endif

/** Equality check that prints both operands on failure.  The operands
 *  are re-evaluated for the message, so they must be side-effect free. */
#define ABSIM_CHECK_EQ(a, b, msg)                                           \
    ABSIM_CHECK((a) == (b), #a " == " #b " (" << (a) << " vs " << (b)       \
                                              << "): " << msg)

#define ABSIM_DCHECK_EQ(a, b, msg)                                          \
    ABSIM_DCHECK((a) == (b), #a " == " #b " (" << (a) << " vs " << (b)      \
                                               << "): " << msg)

/** Ordering check (a <= b) that prints both operands on failure. */
#define ABSIM_CHECK_LE(a, b, msg)                                           \
    ABSIM_CHECK((a) <= (b), #a " <= " #b " (" << (a) << " vs " << (b)       \
                                              << "): " << msg)

#endif // ABSIM_CHECK_CHECK_HH
