/**
 * @file
 * Directory/cache coherence invariant checker.
 *
 * Both stateful memory models (mach::DirectoryMem, the real directory
 * protocol behind target and logp+dir, and mach::IdealCacheMem, the
 * ideal coherent cache behind logp+c and target+ic) perform
 * Berkeley-protocol state transitions; the paper's comparison is
 * meaningful only if those transitions are exact.  This checker verifies, block by block, the
 * invariants any ownership-based invalidation protocol must maintain at
 * transaction boundaries:
 *
 *  - SWMR: at most one cache holds the block in an ownership state
 *    (Dirty / SharedDirty), and a Dirty copy is the *only* copy.
 *  - Directory agreement: every resident copy is a registered sharer,
 *    the directory's owner field names exactly the cache holding the
 *    owned copy, and (for machines whose sharer bits are exact, like the
 *    LogP+C oracle) every sharer bit corresponds to a resident copy.
 *
 * The memory models invoke checkBlock() after every protocol transition
 * and checkAll() at drain; both are no-ops when
 * check::options().coherence is off.  The checker reads model state
 * through two callbacks so it depends only on src/mem, not on any
 * machine model.
 */

#ifndef ABSIM_CHECK_COHERENCE_HH
#define ABSIM_CHECK_COHERENCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr.hh"
#include "mem/cache.hh"

namespace absim::check {

/** A directory's view of one block, as reported by the machine. */
struct DirInfo
{
    /** Bit i set = the directory believes node i holds a copy. */
    std::uint64_t sharers = 0;

    /** Owning node, or -1 for none. */
    std::int32_t owner = -1;

    /** False if the directory has never seen the block. */
    bool tracked = false;

    bool
    isSharer(net::NodeId n) const
    {
        return (sharers >> n) & 1u;
    }
};

class CoherenceChecker
{
  public:
    /** Report the directory state of one block. */
    using Lookup = std::function<DirInfo(mem::BlockId)>;

    /** Visit every block the directory tracks. */
    using Enumerate =
        std::function<void(const std::function<void(mem::BlockId)> &)>;

    /**
     * @param name           Machine name used in failure messages.
     * @param exact_sharers  True if the machine's sharer bits are exact
     *                       (no stale bits from silent clean
     *                       replacements, e.g. the LogP+C oracle).
     * @param caches         The machine's per-node caches (must outlive
     *                       the checker; never resized).
     * @param lookup         Directory state accessor.
     * @param enumerate      Directory iteration, used by checkAll().
     */
    CoherenceChecker(
        std::string name, bool exact_sharers,
        const std::vector<std::unique_ptr<mem::SetAssocCache>> &caches,
        Lookup lookup, Enumerate enumerate);

    /**
     * Verify the invariants for @p blk across all caches.  Call at a
     * transaction boundary: the block must not be mid-transition.
     */
    void checkBlock(mem::BlockId blk) const;

    /** Full sweep: every resident line and every tracked block. */
    void checkAll() const;

    /** Blocks verified so far (proves the validator ran). */
    std::uint64_t blocksChecked() const { return blocksChecked_; }

  private:
    std::string name_;
    bool exactSharers_;
    const std::vector<std::unique_ptr<mem::SetAssocCache>> &caches_;
    Lookup lookup_;
    Enumerate enumerate_;
    mutable std::uint64_t blocksChecked_ = 0;
};

} // namespace absim::check

#endif // ABSIM_CHECK_COHERENCE_HH
