#include "check/coherence.hh"

#include <unordered_set>
#include <utility>

#include "check/check.hh"

namespace absim::check {

CoherenceChecker::CoherenceChecker(
    std::string name, bool exact_sharers,
    const std::vector<std::unique_ptr<mem::SetAssocCache>> &caches,
    Lookup lookup, Enumerate enumerate)
    : name_(std::move(name)), exactSharers_(exact_sharers),
      caches_(caches), lookup_(std::move(lookup)),
      enumerate_(std::move(enumerate))
{
}

void
CoherenceChecker::checkBlock(mem::BlockId blk) const
{
    if (!options().coherence)
        return;
    ++blocksChecked_;

    const DirInfo dir = lookup_(blk);
    std::uint32_t copies = 0;
    std::uint32_t owned_copies = 0;
    std::int32_t owned_node = -1;
    bool dirty = false;

    for (net::NodeId n = 0;
         n < static_cast<net::NodeId>(caches_.size()); ++n) {
        const mem::LineState state = caches_[n]->stateOf(blk);
        if (state == mem::LineState::Invalid) {
            if (exactSharers_ && dir.tracked)
                ABSIM_CHECK(!dir.isSharer(n),
                            name_ << ": stale sharer bit, node " << n
                                  << " listed for block " << blk
                                  << " but holds no copy");
            continue;
        }
        ++copies;
        ABSIM_CHECK(dir.tracked, name_ << ": node " << n
                                       << " holds block " << blk
                                       << " unknown to the directory");
        ABSIM_CHECK(dir.isSharer(n),
                    name_ << ": node " << n << " holds block " << blk
                          << " without a sharer bit (sharers=0x"
                          << std::hex << dir.sharers << std::dec << ")");
        if (mem::isOwned(state)) {
            ++owned_copies;
            owned_node = static_cast<std::int32_t>(n);
        }
        if (state == mem::LineState::Dirty)
            dirty = true;
    }

    ABSIM_CHECK(owned_copies <= 1,
                name_ << ": SWMR violated, " << owned_copies
                      << " ownership-state copies of block " << blk);
    if (dirty)
        ABSIM_CHECK(copies == 1,
                    name_ << ": Dirty copy of block " << blk
                          << " coexists with " << copies - 1
                          << " other copies");
    if (owned_copies == 1)
        ABSIM_CHECK(dir.owner == owned_node,
                    name_ << ": node " << owned_node
                          << " owns block " << blk
                          << " but the directory names owner "
                          << dir.owner);
    if (dir.tracked && dir.owner >= 0)
        ABSIM_CHECK(owned_copies == 1 && owned_node == dir.owner,
                    name_ << ": directory owner " << dir.owner
                          << " holds no ownership-state copy of block "
                          << blk);
}

void
CoherenceChecker::checkAll() const
{
    if (!options().coherence)
        return;
    std::unordered_set<mem::BlockId> blocks;
    for (const auto &cache : caches_)
        for (const auto &[blk, state] : cache->residentLines()) {
            (void)state;
            blocks.insert(blk);
        }
    if (enumerate_)
        enumerate_([&blocks](mem::BlockId blk) { blocks.insert(blk); });
    for (const mem::BlockId blk : blocks)
        checkBlock(blk);
}

} // namespace absim::check
