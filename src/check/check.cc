#include "check/check.hh"

#include <cstdio>
#include <cstdlib>

namespace absim::check {

namespace {

void
defaultHandler(const char *file, int line, const char *expr,
               const std::string &message)
{
    std::fprintf(stderr, "%s:%d: ABSIM_CHECK failed: %s\n  %s\n", file,
                 line, expr, message.c_str());
    std::fflush(stderr);
    std::abort();
}

FailureHandler g_handler = nullptr; // nullptr = defaultHandler.

void
throwingHandler(const char *file, int line, const char *expr,
                const std::string &message)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": ABSIM_CHECK failed: " << expr << " — "
        << message;
    throw CheckFailure(oss.str(), file, line);
}

} // namespace

FailureHandler
setFailureHandler(FailureHandler handler)
{
    FailureHandler prev = g_handler;
    g_handler = handler;
    return prev;
}

void
fail(const char *file, int line, const char *expr,
     const std::string &message)
{
    ++counters().failed;
    if (g_handler != nullptr)
        g_handler(file, line, expr, message);
    // Either no handler was installed or the handler returned; a failed
    // invariant must never continue.
    defaultHandler(file, line, expr, message);
    std::abort(); // Unreachable; keeps [[noreturn]] honest.
}

ScopedThrowOnFailure::ScopedThrowOnFailure()
    : prev_(setFailureHandler(&throwingHandler))
{
}

ScopedThrowOnFailure::~ScopedThrowOnFailure()
{
    setFailureHandler(prev_);
}

} // namespace absim::check
