#include "check/check.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace absim::check {

namespace {

void
defaultHandler(const char *file, int line, const char *expr,
               const std::string &message)
{
    std::fprintf(stderr, "%s:%d: ABSIM_CHECK failed: %s\n  %s\n", file,
                 line, expr, message.c_str());
    std::fflush(stderr);
    std::abort();
}

void
throwingHandler(const char *file, int line, const char *expr,
                const std::string &message)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": ABSIM_CHECK failed: " << expr << " — "
        << message;
    throw CheckFailure(oss.str(), file, line);
}

std::atomic<std::uint64_t> g_evaluated{0};
std::atomic<std::uint64_t> g_failed{0};

} // namespace

namespace detail {

State &
threadDefaultState()
{
    static thread_local State state;
    return state;
}

} // namespace detail

ScopedState::ScopedState(State &state) : prev_(&check::state())
{
    detail::tl_state = &state;
}

ScopedState::~ScopedState()
{
    detail::tl_state = prev_;
}

Counters
globalCounters()
{
    Counters totals;
    totals.evaluated = g_evaluated.load(std::memory_order_relaxed);
    totals.failed = g_failed.load(std::memory_order_relaxed);
    return totals;
}

void
accumulateGlobal(const Counters &delta)
{
    g_evaluated.fetch_add(delta.evaluated, std::memory_order_relaxed);
    g_failed.fetch_add(delta.failed, std::memory_order_relaxed);
}

FailureHandler
setFailureHandler(FailureHandler handler)
{
    State &current = state();
    FailureHandler prev = current.handler;
    current.handler = handler;
    return prev;
}

void
fail(const char *file, int line, const char *expr,
     const std::string &message)
{
    ++counters().failed;
    if (FailureHandler handler = state().handler; handler != nullptr)
        handler(file, line, expr, message);
    // Either no handler was installed or the handler returned; a failed
    // invariant must never continue.
    defaultHandler(file, line, expr, message);
    std::abort(); // Unreachable; keeps [[noreturn]] honest.
}

ScopedThrowOnFailure::ScopedThrowOnFailure()
    : prev_(setFailureHandler(&throwingHandler))
{
}

ScopedThrowOnFailure::~ScopedThrowOnFailure()
{
    setFailureHandler(prev_);
}

} // namespace absim::check
