/**
 * @file
 * Sanitizer detection and fiber-switch annotations.
 *
 * AddressSanitizer tracks a shadow of the current stack; switching to a
 * ucontext fiber stack without telling it produces false positives
 * (stack-buffer-overflow / stack-use-after-return on the foreign stack).
 * The __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber
 * pair, called around every swapcontext, keeps the shadow consistent:
 * *start* is called on the outgoing stack naming the incoming one, and
 * *finish* is called as the first action on the incoming stack, returning
 * the bounds of the stack just left.
 *
 * ThreadSanitizer has the same blind spot with a different shadow: it
 * tracks one stack + one clock per OS thread, so an unannounced
 * ucontext switch makes it see a single thread jumping between stacks
 * — spurious data-race reports follow.  The __tsan_*_fiber interface
 * fixes that: each Fiber registers a TSan fiber object, and every
 * swapcontext is announced with __tsan_switch_to_fiber immediately
 * before the switch (flag 0 = establish synchronization between the
 * two contexts, which matches cooperative scheduling).
 *
 * The wrappers below compile to no-ops when the respective sanitizer is
 * off, so src/sim/fiber carries no #ifdefs at its switch points.
 */

#ifndef ABSIM_CHECK_SANITIZER_HH
#define ABSIM_CHECK_SANITIZER_HH

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define ABSIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ABSIM_ASAN 1
#endif
#endif

#ifndef ABSIM_ASAN
#define ABSIM_ASAN 0
#endif

#if defined(__SANITIZE_THREAD__)
#define ABSIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ABSIM_TSAN 1
#endif
#endif

#ifndef ABSIM_TSAN
#define ABSIM_TSAN 0
#endif

#if ABSIM_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#if ABSIM_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace absim::check {

/**
 * Announce an imminent switch from the current stack to another one.
 *
 * @param fake_stack_save  Receives ASan's fake-stack handle for the
 *                         current stack; pass nullptr when the current
 *                         stack is being abandoned for good (a finishing
 *                         fiber), so ASan releases its bookkeeping.
 * @param bottom           Lowest address of the destination stack.
 * @param size             Size of the destination stack in bytes.
 */
inline void
annotateSwitchStart(void **fake_stack_save, const void *bottom,
                    std::size_t size)
{
#if ABSIM_ASAN
    __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
    (void)fake_stack_save;
    (void)bottom;
    (void)size;
#endif
}

/**
 * Complete a stack switch; must be the first action on the destination
 * stack after swapcontext.
 *
 * @param fake_stack_save  The handle saved by this stack's previous
 *                         annotateSwitchStart (nullptr on first entry).
 * @param bottom_old       Receives the bottom of the stack switched
 *                         from (may be nullptr).
 * @param size_old         Receives its size (may be nullptr).
 */
inline void
annotateSwitchFinish(void *fake_stack_save, const void **bottom_old,
                     std::size_t *size_old)
{
#if ABSIM_ASAN
    __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
    (void)fake_stack_save;
    (void)bottom_old;
    (void)size_old;
#endif
}

/**
 * Scrub ASan's shadow for a fiber stack leaving service.
 *
 * A stack retains poisoned shadow (frame redzones) from the last fiber
 * that ran on it; reusing it without scrubbing makes the next fiber's
 * very first frame write look like a stack-buffer-overflow.  Must be
 * called before a stack is pooled for reuse.  No-op when ASan is off.
 */
inline void
unpoisonStackMemory(void *bottom, std::size_t size)
{
#if ABSIM_ASAN
    __asan_unpoison_memory_region(bottom, size);
#else
    (void)bottom;
    (void)size;
#endif
}

/** TSan's handle for the context calling this (thread or fiber);
 *  nullptr when TSan is off. */
inline void *
tsanCurrentFiber()
{
#if ABSIM_TSAN
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

/** Register a new TSan fiber for a stack about to start executing;
 *  nullptr when TSan is off. */
inline void *
tsanCreateFiber()
{
#if ABSIM_TSAN
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

/** Release a TSan fiber created by tsanCreateFiber (nullptr ok). */
inline void
tsanDestroyFiber(void *fiber)
{
#if ABSIM_TSAN
    if (fiber != nullptr)
        __tsan_destroy_fiber(fiber);
#else
    (void)fiber;
#endif
}

/**
 * Announce a context switch to @p fiber; must be called immediately
 * before the swapcontext that performs it (flag 0 = the switch
 * synchronizes the two contexts).  No-op when TSan is off.
 */
inline void
tsanSwitchFiber(void *fiber)
{
#if ABSIM_TSAN
    if (fiber != nullptr)
        __tsan_switch_to_fiber(fiber, 0);
#else
    (void)fiber;
#endif
}

} // namespace absim::check

#endif // ABSIM_CHECK_SANITIZER_HH
