#include "mem/cache.hh"

#include <stdexcept>

#include "check/check.hh"

namespace absim::mem {

SetAssocCache::SetAssocCache(std::uint32_t capacity_bytes,
                             std::uint32_t associativity)
    : ways_(associativity)
{
    const std::uint32_t line_count = capacity_bytes / kBlockBytes;
    if (associativity == 0 || line_count % associativity != 0)
        throw std::invalid_argument("bad cache geometry");
    sets_ = line_count / associativity;
    if ((sets_ & (sets_ - 1)) != 0)
        throw std::invalid_argument("set count must be a power of two");
    lines_.resize(line_count);
}

const SetAssocCache::Line *
SetAssocCache::find(BlockId blk) const
{
    const std::uint32_t set = setIndex(blk);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Line &line = lines_[set * ways_ + w];
        if (line.state != LineState::Invalid && line.tag == blk)
            return &line;
    }
    return nullptr;
}

SetAssocCache::Line *
SetAssocCache::find(BlockId blk)
{
    return const_cast<Line *>(
        static_cast<const SetAssocCache *>(this)->find(blk));
}

LineState
SetAssocCache::stateOf(BlockId blk) const
{
    const Line *line = find(blk);
    return line ? line->state : LineState::Invalid;
}

void
SetAssocCache::touch(BlockId blk)
{
    Line *line = find(blk);
    ABSIM_DCHECK(line != nullptr, "touch of absent block " << blk);
    line->lastUse = ++useClock_;
}

bool
SetAssocCache::victimFor(BlockId blk, BlockId &victim_blk,
                         LineState &victim_state) const
{
    ABSIM_DCHECK(find(blk) == nullptr,
                 "victimFor with block " << blk << " already present");
    const std::uint32_t set = setIndex(blk);
    const Line *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Line &line = lines_[set * ways_ + w];
        if (line.state == LineState::Invalid)
            return false; // Free way: nothing to evict.
        if (victim == nullptr || line.lastUse < victim->lastUse)
            victim = &line;
    }
    victim_blk = victim->tag;
    victim_state = victim->state;
    return true;
}

void
SetAssocCache::install(BlockId blk, LineState state)
{
    ABSIM_DCHECK(state != LineState::Invalid,
                 "install of block " << blk << " as Invalid");
    ABSIM_DCHECK(find(blk) == nullptr,
                 "install over present block " << blk);
    const std::uint32_t set = setIndex(blk);
    Line *slot = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.state == LineState::Invalid) {
            slot = &line;
            break;
        }
        if (slot == nullptr || line.lastUse < slot->lastUse)
            slot = &line;
    }
    if (slot->state != LineState::Invalid) {
        ++stats_.evictions;
        if (isOwned(slot->state))
            ++stats_.dirtyEvictions;
    }
    slot->tag = blk;
    slot->state = state;
    slot->lastUse = ++useClock_;
    ++stats_.misses;
}

void
SetAssocCache::setState(BlockId blk, LineState state)
{
    Line *line = find(blk);
    ABSIM_DCHECK(line != nullptr, "setState of absent block " << blk);
    if (state == LineState::Invalid) {
        line->state = LineState::Invalid;
        return;
    }
    line->state = state;
}

std::vector<std::pair<BlockId, LineState>>
SetAssocCache::residentLines() const
{
    std::vector<std::pair<BlockId, LineState>> out;
    for (const Line &line : lines_)
        if (line.state != LineState::Invalid)
            out.emplace_back(line.tag, line.state);
    return out;
}

bool
SetAssocCache::invalidate(BlockId blk)
{
    Line *line = find(blk);
    if (line == nullptr)
        return false;
    line->state = LineState::Invalid;
    ++stats_.invalidationsReceived;
    return true;
}

} // namespace absim::mem
