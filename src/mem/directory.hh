/**
 * @file
 * Fully-mapped directory for the Berkeley invalidation protocol.
 *
 * One DirectoryEntry exists per cache block that has ever been referenced.
 * The entry records the full sharer bit-vector and the owning cache (if the
 * block is in an ownership state somewhere, memory is stale).  Each entry
 * carries a FIFO lock: the home node serializes transactions per block,
 * which is how real blocking directories (and this simulator) avoid
 * protocol races.
 *
 * Supports up to 64 nodes (a bit mask), matching the paper's power-of-two
 * processor sweeps.
 */

#ifndef ABSIM_MEM_DIRECTORY_HH
#define ABSIM_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "mem/addr.hh"
#include "sim/resource.hh"

namespace absim::mem {

/** Directory state for one cache block. */
struct DirectoryEntry
{
    /** Bit i set = node i holds the block (in any valid state). */
    std::uint64_t sharers = 0;

    /** Owning node (Dirty/SharedDirty holder) or kNoOwner. */
    std::int32_t owner = kNoOwner;

    /** Per-block transaction serialization (blocking home). */
    sim::FifoMutex lock;

    static constexpr std::int32_t kNoOwner = -1;

    bool
    isSharer(net::NodeId n) const
    {
        return (sharers >> n) & 1u;
    }

    void addSharer(net::NodeId n) { sharers |= std::uint64_t{1} << n; }
    void removeSharer(net::NodeId n) { sharers &= ~(std::uint64_t{1} << n); }

    /** Number of sharers excluding @p except. */
    std::uint32_t
    sharerCountExcluding(net::NodeId except) const
    {
        const std::uint64_t mask = sharers & ~(std::uint64_t{1} << except);
        return static_cast<std::uint32_t>(__builtin_popcountll(mask));
    }
};

/**
 * The machine-wide directory.  Entries are created on first reference and
 * are never removed (state survives silent clean replacements, exactly
 * like a real full-map directory whose information can only go stale
 * conservatively).
 */
class Directory
{
  public:
    /** Entry for @p blk, created unowned/unshared if new. */
    DirectoryEntry &
    entry(BlockId blk)
    {
        return entries_[blk];
    }

    /** Entry for @p blk if it exists. */
    const DirectoryEntry *
    peek(BlockId blk) const
    {
        auto it = entries_.find(blk);
        return it == entries_.end() ? nullptr : &it->second;
    }

    std::size_t entryCount() const { return entries_.size(); }

    /** Visit every tracked block (invariant sweeps, statistics). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[blk, entry] : entries_)
            fn(blk, entry);
    }

  private:
    // unordered_map guarantees reference stability, which the per-entry
    // FifoMutex requires.
    std::unordered_map<BlockId, DirectoryEntry> entries_;
};

} // namespace absim::mem

#endif // ABSIM_MEM_DIRECTORY_HH
