/**
 * @file
 * Set-associative private cache model.
 *
 * The paper's node caches are 64 KB, 2-way set associative with 32-byte
 * blocks, kept coherent by the Berkeley (ownership-based invalidation)
 * protocol.  Line states follow Berkeley:
 *
 *  - Invalid
 *  - Valid        read-shared, memory (home) up to date
 *  - SharedDirty  owned and possibly shared; memory stale
 *  - Dirty        owned exclusively; memory stale
 *
 * The same structure backs both stateful memory models: the real
 * directory protocol (mach::DirectoryMem, behind target and logp+dir)
 * and the ideal-cache abstraction (mach::IdealCacheMem, behind logp+c
 * and target+ic, which performs the identical state transitions but
 * charges nothing for coherence traffic).
 */

#ifndef ABSIM_MEM_CACHE_HH
#define ABSIM_MEM_CACHE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "mem/addr.hh"

namespace absim::mem {

/** Berkeley-protocol line states. */
enum class LineState : std::uint8_t
{
    Invalid,
    Valid,
    SharedDirty,
    Dirty,
};

/** True for the two ownership states (memory may be stale). */
constexpr bool
isOwned(LineState s)
{
    return s == LineState::SharedDirty || s == LineState::Dirty;
}

/** Per-cache hit/miss/eviction counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t upgrades = 0;       ///< Write to Valid/SharedDirty line.
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0; ///< Evictions needing writeback.
    std::uint64_t invalidationsReceived = 0;
};

/**
 * An LRU set-associative cache of coherence state (no data payload: the
 * simulator keeps application data in native memory).
 */
class SetAssocCache
{
  public:
    /** Paper defaults: 64 KB, 2-way, 32 B blocks. */
    SetAssocCache(std::uint32_t capacity_bytes = 64 * 1024,
                  std::uint32_t associativity = 2);

    /** State of @p blk, Invalid if absent. Does not touch LRU. */
    LineState stateOf(BlockId blk) const;

    /** True if @p blk can service an access of the given intent. */
    bool
    hasReadable(BlockId blk) const
    {
        return stateOf(blk) != LineState::Invalid;
    }

    bool
    hasWritable(BlockId blk) const
    {
        return stateOf(blk) == LineState::Dirty;
    }

    /** Mark @p blk most recently used (call on hits). */
    void touch(BlockId blk);

    /**
     * Pick the victim that inserting @p blk would evict.
     *
     * @param blk          Block about to be inserted (must be absent).
     * @param victim_blk   Out: block number of the victim.
     * @param victim_state Out: its state.
     * @return true if a valid line must be evicted first.
     */
    bool victimFor(BlockId blk, BlockId &victim_blk,
                   LineState &victim_state) const;

    /**
     * Install @p blk with @p state, evicting the LRU line of the set if
     * needed (the caller is expected to have handled the victim via
     * victimFor()).  Counts a miss.
     */
    void install(BlockId blk, LineState state);

    /**
     * Change the state of a present line.  Asserts presence.
     */
    void setState(BlockId blk, LineState state);

    /**
     * Drop @p blk (external invalidation). No-op if absent (e.g. the line
     * was silently replaced after the directory recorded the sharer).
     * @return true if a line was actually invalidated.
     */
    bool invalidate(BlockId blk);

    /**
     * Snapshot of all valid lines (block, state), for invariant checking
     * and debugging; order is unspecified.
     */
    std::vector<std::pair<BlockId, LineState>> residentLines() const;

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

  private:
    struct Line
    {
        BlockId tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    const Line *find(BlockId blk) const;
    Line *find(BlockId blk);

    std::uint32_t
    setIndex(BlockId blk) const
    {
        return static_cast<std::uint32_t>(blk) & (sets_ - 1);
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Line> lines_; // sets_ x ways_, row-major by set.
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace absim::mem

#endif // ABSIM_MEM_CACHE_HH
