#include "mem/directory.hh"

// Directory is header-only today; this translation unit pins the vtable-
// free class into the library and leaves room for persistence/debug dumps.

namespace absim::mem {

} // namespace absim::mem
