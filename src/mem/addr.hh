/**
 * @file
 * Simulated global shared address space: addresses, cache blocks, and the
 * mapping from addresses to their home node.
 *
 * The target machine is a CC-NUMA: every node holds a piece of the global
 * shared memory.  The runtime's shared-memory allocator decides placement
 * and exposes it to the machine models through the HomeMap interface.
 */

#ifndef ABSIM_MEM_ADDR_HH
#define ABSIM_MEM_ADDR_HH

#include <cstdint>

#include "net/topology.hh"

namespace absim::mem {

/** A simulated global shared-memory address (byte granular). */
using Addr = std::uint64_t;

/** Cache block (line) number: address with the offset bits stripped. */
using BlockId = std::uint64_t;

/** Cache block size: 32 bytes (paper Section 5). */
inline constexpr std::uint32_t kBlockBytes = 32;
inline constexpr std::uint32_t kBlockShift = 5;

/** Maximum node count supported by the sharer bit masks. */
inline constexpr std::uint32_t kMaxNodes = 64;

/** Block number containing @p a. */
constexpr BlockId
blockOf(Addr a)
{
    return a >> kBlockShift;
}

/** First address of block @p b. */
constexpr Addr
blockBase(BlockId b)
{
    return b << kBlockShift;
}

/**
 * Where does an address live?  Implemented by the runtime's shared heap;
 * consumed by every machine model.
 */
class HomeMap
{
  public:
    virtual ~HomeMap() = default;

    /** Home node of the block containing @p a. */
    virtual net::NodeId homeOf(Addr a) const = 0;
};

} // namespace absim::mem

#endif // ABSIM_MEM_ADDR_HH
