/**
 * @file
 * Interconnection-network topologies and deadlock-free minimal routing.
 *
 * The paper's target machines use three topologies (Section 5): a fully
 * connected network, a binary hypercube, and a 2-D mesh, all with serial
 * unidirectional links.  Routing is dimension-ordered (e-cube on the cube,
 * XY on the mesh), which makes the incremental circuit acquisition in
 * DetailedNetwork deadlock-free.
 */

#ifndef ABSIM_NET_TOPOLOGY_HH
#define ABSIM_NET_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace absim::net {

/** Node index within a machine. */
using NodeId = std::uint32_t;

/** Dense index of a unidirectional link. */
using LinkId = std::uint32_t;

/** The three network topologies evaluated in the paper. */
enum class TopologyKind
{
    Full,      ///< Fully connected: a link in each direction per pair.
    Hypercube, ///< Binary hypercube, one link per direction per edge.
    Mesh2D,    ///< 2-D mesh, Intel Touchstone Delta style.
};

/** Human-readable topology name ("full", "cube", "mesh"). */
std::string toString(TopologyKind kind);

/**
 * Abstract topology: a set of unidirectional links plus a minimal,
 * deterministic, deadlock-free route between any two distinct nodes.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of processing nodes. */
    NodeId nodes() const { return nodes_; }

    /** Number of unidirectional links (dense LinkId space). */
    virtual std::uint32_t linkCount() const = 0;

    /**
     * Append the ordered list of links a message from @p src to @p dst
     * traverses.  @p src and @p dst must be distinct.
     */
    virtual void route(NodeId src, NodeId dst,
                       std::vector<LinkId> &out) const = 0;

    /** Hop count of the minimal route. */
    virtual std::uint32_t hops(NodeId src, NodeId dst) const = 0;

    /** The (from, to) nodes of unidirectional link @p link. */
    virtual std::pair<NodeId, NodeId> linkEndpoints(LinkId link) const = 0;

    /**
     * Number of unidirectional links crossing the network bisection,
     * counting both directions; this is what the paper's g computation
     * divides the aggregate bandwidth over.
     */
    virtual std::uint32_t bisectionLinks() const = 0;

    virtual TopologyKind kind() const = 0;

    /** Factory. @p p must be a power of two (paper restriction). */
    static std::unique_ptr<Topology> make(TopologyKind kind, NodeId p);

  protected:
    explicit Topology(NodeId nodes) : nodes_(nodes) {}

    NodeId nodes_;
};

/** Fully connected network: dedicated link per ordered (src, dst) pair. */
class FullTopology : public Topology
{
  public:
    explicit FullTopology(NodeId p);

    std::uint32_t linkCount() const override;
    void route(NodeId src, NodeId dst,
               std::vector<LinkId> &out) const override;
    std::uint32_t hops(NodeId src, NodeId dst) const override;
    std::pair<NodeId, NodeId> linkEndpoints(LinkId link) const override;
    std::uint32_t bisectionLinks() const override;
    TopologyKind kind() const override { return TopologyKind::Full; }
};

/** Binary hypercube with e-cube (dimension-ordered) routing. */
class HypercubeTopology : public Topology
{
  public:
    explicit HypercubeTopology(NodeId p);

    std::uint32_t linkCount() const override;
    void route(NodeId src, NodeId dst,
               std::vector<LinkId> &out) const override;
    std::uint32_t hops(NodeId src, NodeId dst) const override;
    std::pair<NodeId, NodeId> linkEndpoints(LinkId link) const override;
    std::uint32_t bisectionLinks() const override;
    TopologyKind kind() const override { return TopologyKind::Hypercube; }

    std::uint32_t dimensions() const { return dims_; }

  private:
    LinkId linkFor(NodeId from, std::uint32_t dim) const;

    std::uint32_t dims_;
};

/**
 * 2-D mesh.  Equal rows and columns when P is an even power of two;
 * otherwise columns = 2 x rows (paper Section 5).  XY routing: correct the
 * column first, then the row.
 */
class MeshTopology : public Topology
{
  public:
    explicit MeshTopology(NodeId p);

    std::uint32_t linkCount() const override;
    void route(NodeId src, NodeId dst,
               std::vector<LinkId> &out) const override;
    std::uint32_t hops(NodeId src, NodeId dst) const override;
    std::pair<NodeId, NodeId> linkEndpoints(LinkId link) const override;
    std::uint32_t bisectionLinks() const override;
    TopologyKind kind() const override { return TopologyKind::Mesh2D; }

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }

    /** Compute the mesh shape the paper prescribes for @p p nodes. */
    static void shapeFor(NodeId p, std::uint32_t &rows, std::uint32_t &cols);

  private:
    // Per-node link slots: 0=east, 1=west, 2=south, 3=north.  Nonexistent
    // edge links waste an id, keeping the id computation branch-free.
    LinkId linkFor(NodeId from, std::uint32_t dir) const;

    std::uint32_t rows_;
    std::uint32_t cols_;
};

} // namespace absim::net

#endif // ABSIM_NET_TOPOLOGY_HH
