#include "net/topology.hh"

#include <stdexcept>

#include "check/check.hh"

namespace absim::net {

namespace {

bool
isPowerOfTwo(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

std::uint32_t
log2u(std::uint32_t x)
{
    std::uint32_t r = 0;
    while ((1u << r) < x)
        ++r;
    return r;
}

} // namespace

std::string
toString(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Full:
        return "full";
      case TopologyKind::Hypercube:
        return "cube";
      case TopologyKind::Mesh2D:
        return "mesh";
    }
    return "?";
}

std::unique_ptr<Topology>
Topology::make(TopologyKind kind, NodeId p)
{
    if (!isPowerOfTwo(p))
        throw std::invalid_argument("node count must be a power of two");
    switch (kind) {
      case TopologyKind::Full:
        return std::make_unique<FullTopology>(p);
      case TopologyKind::Hypercube:
        return std::make_unique<HypercubeTopology>(p);
      case TopologyKind::Mesh2D:
        return std::make_unique<MeshTopology>(p);
    }
    throw std::invalid_argument("unknown topology kind");
}

// ---------------------------------------------------------------- Full

FullTopology::FullTopology(NodeId p) : Topology(p) {}

std::uint32_t
FullTopology::linkCount() const
{
    // One id per ordered pair including the (unused) diagonal; wasting the
    // diagonal keeps linkFor trivial.
    return nodes_ * nodes_;
}

void
FullTopology::route(NodeId src, NodeId dst, std::vector<LinkId> &out) const
{
    ABSIM_DCHECK(src != dst, "route from node " << src << " to itself");
    out.push_back(src * nodes_ + dst);
}

std::uint32_t
FullTopology::hops(NodeId src, NodeId dst) const
{
    return src == dst ? 0 : 1;
}

std::pair<NodeId, NodeId>
FullTopology::linkEndpoints(LinkId link) const
{
    ABSIM_DCHECK(link < linkCount(),
                 "link id " << link << " out of range");
    return {link / nodes_, link % nodes_};
}

std::uint32_t
FullTopology::bisectionLinks() const
{
    // Each of the p/2 nodes on one side has a link in each direction to
    // each of the p/2 nodes on the other side.
    return 2 * (nodes_ / 2) * (nodes_ / 2);
}

// ----------------------------------------------------------- Hypercube

HypercubeTopology::HypercubeTopology(NodeId p)
    : Topology(p), dims_(log2u(p))
{
}

LinkId
HypercubeTopology::linkFor(NodeId from, std::uint32_t dim) const
{
    return from * dims_ + dim;
}

std::uint32_t
HypercubeTopology::linkCount() const
{
    return nodes_ * dims_;
}

void
HypercubeTopology::route(NodeId src, NodeId dst,
                         std::vector<LinkId> &out) const
{
    ABSIM_DCHECK(src != dst, "route from node " << src << " to itself");
    // E-cube: correct differing address bits from lowest to highest.
    NodeId cur = src;
    for (std::uint32_t dim = 0; dim < dims_; ++dim) {
        if (((cur ^ dst) >> dim) & 1u) {
            out.push_back(linkFor(cur, dim));
            cur ^= (1u << dim);
        }
    }
    ABSIM_DCHECK(cur == dst, "e-cube routing stopped at node "
                                 << cur << " instead of " << dst);
}

std::uint32_t
HypercubeTopology::hops(NodeId src, NodeId dst) const
{
    return static_cast<std::uint32_t>(__builtin_popcount(src ^ dst));
}

std::pair<NodeId, NodeId>
HypercubeTopology::linkEndpoints(LinkId link) const
{
    ABSIM_DCHECK(link < linkCount(),
                 "link id " << link << " out of range");
    const NodeId from = link / dims_;
    const std::uint32_t dim = link % dims_;
    return {from, from ^ (1u << dim)};
}

std::uint32_t
HypercubeTopology::bisectionLinks() const
{
    // Cutting the highest dimension severs p/2 edges, each with a link in
    // both directions.
    return nodes_;
}

// ---------------------------------------------------------------- Mesh

void
MeshTopology::shapeFor(NodeId p, std::uint32_t &rows, std::uint32_t &cols)
{
    std::uint32_t d = log2u(p);
    if (d % 2 == 0) {
        rows = cols = 1u << (d / 2);
    } else {
        rows = 1u << (d / 2);
        cols = 2 * rows;
    }
}

MeshTopology::MeshTopology(NodeId p) : Topology(p)
{
    shapeFor(p, rows_, cols_);
    ABSIM_CHECK(rows_ * cols_ == p, rows_ << "x" << cols_
                                          << " mesh cannot hold " << p
                                          << " nodes");
}

LinkId
MeshTopology::linkFor(NodeId from, std::uint32_t dir) const
{
    return from * 4 + dir;
}

std::uint32_t
MeshTopology::linkCount() const
{
    return nodes_ * 4;
}

void
MeshTopology::route(NodeId src, NodeId dst, std::vector<LinkId> &out) const
{
    ABSIM_DCHECK(src != dst, "route from node " << src << " to itself");
    std::uint32_t r = src / cols_, c = src % cols_;
    const std::uint32_t dr = dst / cols_, dc = dst % cols_;
    // XY routing: fix the column (X) first, then the row (Y).
    while (c != dc) {
        const std::uint32_t dir = (dc > c) ? 0u : 1u; // east : west
        out.push_back(linkFor(r * cols_ + c, dir));
        c += (dc > c) ? 1 : -1;
    }
    while (r != dr) {
        const std::uint32_t dir = (dr > r) ? 2u : 3u; // south : north
        out.push_back(linkFor(r * cols_ + c, dir));
        r += (dr > r) ? 1 : -1;
    }
}

std::uint32_t
MeshTopology::hops(NodeId src, NodeId dst) const
{
    const std::uint32_t r = src / cols_, c = src % cols_;
    const std::uint32_t dr = dst / cols_, dc = dst % cols_;
    const std::uint32_t dx = (c > dc) ? c - dc : dc - c;
    const std::uint32_t dy = (r > dr) ? r - dr : dr - r;
    return dx + dy;
}

std::pair<NodeId, NodeId>
MeshTopology::linkEndpoints(LinkId link) const
{
    ABSIM_DCHECK(link < linkCount(),
                 "link id " << link << " out of range");
    const NodeId from = link / 4;
    const std::uint32_t dir = link % 4;
    const std::uint32_t r = from / cols_, c = from % cols_;
    switch (dir) {
      case 0: // east
        ABSIM_DCHECK(c + 1 < cols_, "east link off the mesh edge");
        return {from, from + 1};
      case 1: // west
        ABSIM_DCHECK(c > 0, "west link off the mesh edge");
        return {from, from - 1};
      case 2: // south
        ABSIM_DCHECK(r + 1 < rows_, "south link off the mesh edge");
        return {from, from + cols_};
      default: // north
        ABSIM_DCHECK(r > 0, "north link off the mesh edge");
        return {from, from - cols_};
    }
}

std::uint32_t
MeshTopology::bisectionLinks() const
{
    // Cut down the middle between the two central columns: one edge per
    // row, two directions each.  (For a single-column degenerate mesh the
    // cut is between rows instead.)
    if (cols_ >= 2)
        return 2 * rows_;
    return 2 * cols_;
}

} // namespace absim::net
