#include "net/network.hh"

#include "check/check.hh"
#include "sim/trace.hh"

namespace absim::net {

DetailedNetwork::DetailedNetwork(sim::EventQueue &eq,
                                 std::unique_ptr<Topology> topo)
    : eq_(eq), topo_(std::move(topo))
{
    links_.reserve(topo_->linkCount());
    for (std::uint32_t i = 0; i < topo_->linkCount(); ++i)
        links_.push_back(std::make_unique<sim::FifoMutex>());
}

TransferResult
DetailedNetwork::transfer(NodeId src, NodeId dst, std::uint32_t bytes)
{
    ABSIM_CHECK(src != dst,
                "local transfer at node " << src
                                          << " reached the network");
    sim::Process *self = sim::Process::current();
    ABSIM_CHECK(self != nullptr, "transfer outside a simulated process");

    std::vector<LinkId> path;
    topo_->route(src, dst, path);

    TransferResult result;
    // Circuit set-up: grab links in route order.  Holding earlier links
    // while waiting for later ones is exactly wormhole/circuit behaviour
    // and is deadlock-free under dimension-ordered routing.
    for (LinkId link : path)
        result.contention += links_[link]->acquire();

    // Whole circuit held for the serial transmission time; switching
    // delay is negligible per the paper, so hop count does not add time.
    result.latency = transmissionTime(bytes);
    self->delay(result.latency);

    for (auto it = path.rbegin(); it != path.rend(); ++it)
        links_[*it]->release();

    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.latency += result.latency;
    stats_.contention += result.contention;
    ABSIM_TRACE(eq_, Network, "transfer " << src << "->" << dst << " "
                                          << bytes << "B latency="
                                          << result.latency << " wait="
                                          << result.contention);
    return result;
}

} // namespace absim::net
