/**
 * @file
 * Detailed circuit-switched interconnect simulation.
 *
 * Models the detailed network axis per Section 5 of the paper: serial
 * unidirectional links at 20 MB/s, circuit-switched wormhole transfer,
 * negligible switching delay.  A message incrementally reserves every link
 * on its dimension-ordered route (incremental acquisition + dimension
 * order = deadlock-free), holds the whole circuit for the transmission
 * time, and releases.  Time spent waiting for links is the message's
 * contention; the transmission time itself is its latency — precisely the
 * SPASM overhead split the paper relies on.
 *
 * Machine compositions reach this network through mach::DetailedNetModel
 * (the "detailed" rows of the registry grid: target, target+ic); see
 * docs/MACHINES.md.
 */

#ifndef ABSIM_NET_NETWORK_HH
#define ABSIM_NET_NETWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/types.hh"

namespace absim::net {

/** Per-transfer timing split, in ticks. */
struct TransferResult
{
    sim::Duration latency = 0;    ///< Contention-free transmission time.
    sim::Duration contention = 0; ///< Time spent waiting for links.
};

/** Aggregate network statistics. */
struct NetworkStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    sim::Duration latency = 0;
    sim::Duration contention = 0;
};

/**
 * The detailed interconnect (the target machine's network axis).
 *
 * transfer() must be called from inside a simulated process; it blocks in
 * simulated time for the full circuit set-up, transmission, and tear-down.
 */
class DetailedNetwork
{
  public:
    /** Link bandwidth: 20 MB/s serial links => 50 ns per byte. */
    static constexpr sim::Duration kNsPerByte = 50;

    DetailedNetwork(sim::EventQueue &eq, std::unique_ptr<Topology> topo);

    DetailedNetwork(const DetailedNetwork &) = delete;
    DetailedNetwork &operator=(const DetailedNetwork &) = delete;

    /**
     * Send @p bytes from @p src to @p dst, blocking the calling process
     * for the whole transfer.
     *
     * @return The latency/contention split for this message.
     */
    TransferResult transfer(NodeId src, NodeId dst, std::uint32_t bytes);

    /** Contention-free transmission time for a message of @p bytes. */
    static sim::Duration
    transmissionTime(std::uint32_t bytes)
    {
        return bytes * kNsPerByte;
    }

    const Topology &topology() const { return *topo_; }
    const NetworkStats &stats() const { return stats_; }

  private:
    sim::EventQueue &eq_;
    std::unique_ptr<Topology> topo_;
    std::vector<std::unique_ptr<sim::FifoMutex>> links_;
    NetworkStats stats_;
};

} // namespace absim::net

#endif // ABSIM_NET_NETWORK_HH
