/**
 * @file
 * The serve daemon's request engine: admission control, a bounded work
 * queue over a fixed worker pool, the content-addressed result cache,
 * per-request deadlines, and graceful drain.
 *
 * Robustness contract (see docs/SERVING.md):
 *
 *  - A request beyond the queue bound gets the deterministic shed
 *    response immediately — admission never blocks, never hangs.
 *  - Cache hits are served inline (no queueing, no admission charge):
 *    a hit is a map lookup, not work.
 *  - Every run executes under core::runOneSafe with the request's
 *    RunBudget, so a stuck simulation is bounded by the PR 2 watchdog;
 *    "deadline_s" maps to budget.maxWallSeconds and surfaces as a
 *    named DeadlineExceeded error response.
 *  - Transient failures retry per policy with seed perturbation and
 *    capped deterministic backoff (RunPolicy::retryBackoffMs).
 *  - beginDrain() (SIGTERM) finishes admitted work, keeps serving
 *    cache hits, answers everything else with the draining response;
 *    drain() additionally waits for in-flight work and flushes the
 *    cache journal.
 *  - A request's "fault_plan" arms the src/fault chaos hooks on the
 *    executing worker thread for that run only, so tests drive every
 *    failure branch through the real service path.
 */

#ifndef ABSIM_SERVE_SERVICE_HH
#define ABSIM_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "serve/result_cache.hh"

namespace absim::serve {

/** Static configuration of a Service. */
struct ServiceConfig
{
    /** Worker threads executing run/sweep requests. */
    unsigned workers = 2;

    /** Admitted-but-not-started requests beyond which new compute
     *  requests are shed.  0 sheds whenever every worker is busy. */
    std::size_t maxQueue = 16;

    /** Result-cache journal path; "" keeps the cache memory-only. */
    std::string cachePath;

    /** Default budgets/retry policy; request fields override
     *  per-request (see protocol.hh). */
    core::RunPolicy policy;
};

/** Monotonic counters, snapshot by the stats op. */
struct ServiceStats
{
    std::uint64_t received = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejectedDraining = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t queued = 0;
    std::uint64_t cacheEntries = 0;
    bool draining = false;
};

class Service
{
  public:
    explicit Service(const ServiceConfig &config);
    ~Service();
    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Handle one request line and return the response line (never
     * throws; every failure is a named error response).  Blocks while
     * an admitted compute request executes; admin ops and cache hits
     * return immediately, and over-bound requests return the shed
     * response immediately.
     */
    std::string handle(const std::string &line);

    /** Stop admitting compute work (idempotent). */
    void beginDrain();

    /** beginDrain + wait for admitted work + flush/close the cache
     *  journal.  After this the service only answers admin ops, cache
     *  hits and draining responses. */
    void drain();

    bool draining() const { return draining_.load(); }

    /** Set by the shutdown op; the daemon polls it. */
    bool shutdownRequested() const { return shutdown_.load(); }

    /** True if the cache journal recovered a torn tail on open. */
    bool recoveredTornTail() const { return tornOnOpen_; }

    ServiceStats stats() const;

    /** The stats op's response line (also usable without a socket). */
    std::string statsResponse() const;

  private:
    struct Job
    {
        Request request;
        std::promise<std::string> done;
    };

    void workerLoop();
    std::string execute(const Request &request);
    std::string executeRun(const Request &request);
    std::string executeSweep(const Request &request);

    /** Cached-or-computed payload for @p config; "" with @p err filled
     *  on failure. */
    std::string runPoint(const Request &request,
                         const core::RunConfig &config,
                         core::RunError &err);

    ServiceConfig config_;

    mutable std::mutex cacheMutex_;
    ResultCache cache_;
    bool tornOnOpen_ = false;

    mutable std::mutex queueMutex_;
    std::condition_variable workReady_;
    std::condition_variable idle_;
    std::deque<Job *> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;

    std::atomic<bool> draining_{false};
    std::atomic<bool> shutdown_{false};

    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> rejectedDraining_{0};
    std::atomic<std::uint64_t> badRequests_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> cacheMisses_{0};
    std::atomic<std::uint64_t> inFlight_{0};
};

} // namespace absim::serve

#endif // ABSIM_SERVE_SERVICE_HH
