#include "serve/result_cache.hh"

#include <fstream>

#include "core/cache_key.hh"
#include "serve/protocol.hh"

namespace absim::serve {

namespace {

constexpr const char *kCacheHeader = "{\"absim_cache\":1}";

/** Decode one cache record line; false = torn/foreign line. */
bool
decodeEntry(const std::string &line, std::uint64_t &key,
            std::string &payload)
{
    std::vector<JsonField> fields;
    if (!parseFlatJson(line, fields))
        return false;
    bool sawKey = false;
    bool sawPayload = false;
    std::string canon;
    for (const JsonField &f : fields) {
        if (f.key == "key" && f.isString)
            sawKey = core::parseKeyHex(f.value, key);
        else if (f.key == "payload" && f.isString) {
            payload = f.value;
            sawPayload = true;
        } else if (f.key == "canon" && f.isString)
            canon = f.value;
    }
    if (!sawKey || !sawPayload)
        return false;
    // The stored canonical string must re-hash to the stored key:
    // catches canonicalization drift and on-disk corruption that still
    // parses as JSON.
    return canon.empty() || core::fnv1a64(canon) == key;
}

} // namespace

bool
ResultCache::open(const std::string &path)
{
    close();
    entries_.clear();
    torn_ = false;
    recovered_ = 0;
    if (path.empty())
        return false;

    std::uint64_t cleanBytes = 0;
    bool haveHeader = false;
    {
        std::ifstream in(path, std::ios::binary);
        std::string line;
        // The header must be intact and newline-terminated, exactly
        // like a sweep journal; anything else starts a fresh cache.
        if (in && std::getline(in, line) && !in.eof() &&
            line == kCacheHeader) {
            haveHeader = true;
            cleanBytes = line.size() + 1;
            while (std::getline(in, line)) {
                const bool terminated = !in.eof();
                std::uint64_t key = 0;
                std::string payload;
                if (!terminated || !decodeEntry(line, key, payload)) {
                    // Torn (or corrupt) tail: the clean prefix above
                    // this line is the resume point.
                    torn_ = true;
                    break;
                }
                cleanBytes += line.size() + 1;
                entries_.emplace(key, std::move(payload));
            }
            recovered_ = entries_.size();
        }
    }
    const bool ok = haveHeader ? writer_.resume(path, cleanBytes)
                               : writer_.startLine(path, kCacheHeader);
    return ok;
}

void
ResultCache::close()
{
    writer_.close();
}

bool
ResultCache::lookup(std::uint64_t key, std::string &payload) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    payload = it->second;
    return true;
}

void
ResultCache::insert(std::uint64_t key, const std::string &canon,
                    const std::string &payload)
{
    if (!entries_.emplace(key, payload).second)
        return; // First write wins: responses stay byte-identical.
    writer_.appendLine("{\"key\":\"" + core::formatKeyHex(key) +
                       "\",\"canon\":\"" + core::jsonEscape(canon) +
                       "\",\"payload\":\"" + core::jsonEscape(payload) +
                       "\"}");
}

} // namespace absim::serve
