#include "serve/protocol.hh"

#include <stdexcept>

#include "core/env.hh"
#include "core/journal.hh"
#include "machines/registry.hh"
#include "sim/trace.hh"

namespace absim::serve {

bool
parseFlatJson(const std::string &line, std::vector<JsonField> &out)
{
    out.clear();
    std::size_t i = 0;
    const auto skipSpace = [&] {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
            ++i;
    };
    skipSpace();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skipSpace();
    if (i < line.size() && line[i] == '}') {
        ++i;
        skipSpace();
        return i == line.size();
    }
    const auto parseString = [&](std::string &value) {
        if (i >= line.size() || line[i] != '"')
            return false;
        std::string raw;
        for (++i; i < line.size(); ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                raw += line[i];
                raw += line[i + 1];
                ++i;
            } else if (line[i] == '"') {
                ++i;
                value = core::jsonUnescape(raw);
                return true;
            } else {
                raw += line[i];
            }
        }
        return false; // Unterminated string: torn line.
    };
    for (;;) {
        JsonField field;
        if (!parseString(field.key))
            return false;
        skipSpace();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipSpace();
        if (i >= line.size())
            return false;
        if (line[i] == '"') {
            if (!parseString(field.value))
                return false;
            field.isString = true;
        } else if (line[i] == '{' || line[i] == '[') {
            return false; // Flat objects only.
        } else {
            // Number / true / false: scan to the delimiter.
            const auto end = line.find_first_of(",}", i);
            if (end == std::string::npos)
                return false;
            field.value = line.substr(i, end - i);
            while (!field.value.empty() && field.value.back() == ' ')
                field.value.pop_back();
            if (field.value.empty())
                return false;
            i = end;
        }
        out.push_back(std::move(field));
        skipSpace();
        if (i >= line.size())
            return false;
        if (line[i] == ',') {
            ++i;
            skipSpace();
            continue;
        }
        if (line[i] != '}')
            return false;
        ++i;
        skipSpace();
        return i == line.size();
    }
}

bool
extractNumber(const std::string &line, const std::string &key, double &out)
{
    std::vector<JsonField> fields;
    if (!parseFlatJson(line, fields))
        return false;
    for (const JsonField &f : fields)
        if (f.key == key && !f.isString)
            return core::parseDouble(f.value.c_str(), out);
    return false;
}

namespace {

/** "bad-request: <what>" — every parse failure is a named diagnostic,
 *  never a silent default. */
bool
fail(std::string &error, const std::string &what)
{
    error = what;
    return false;
}

bool
parseUintField(const JsonField &f, std::uint64_t &out, std::string &error,
               std::uint64_t min, std::uint64_t max)
{
    if (f.isString || !core::parseUint(f.value.c_str(), out) || out < min ||
        out > max)
        return fail(error, "invalid " + f.key + " value '" + f.value + "'");
    return true;
}

bool
parseDoubleField(const JsonField &f, double &out, std::string &error)
{
    if (f.isString || !core::parseDouble(f.value.c_str(), out) || out < 0.0)
        return fail(error, "invalid " + f.key + " value '" + f.value + "'");
    return true;
}

bool
parseBoolField(const JsonField &f, bool &out, std::string &error)
{
    if (!f.isString && f.value == "true")
        out = true;
    else if (!f.isString && f.value == "false")
        out = false;
    else
        return fail(error, "invalid " + f.key + " value '" + f.value + "'");
    return true;
}

} // namespace

bool
parseRequest(const std::string &line, const core::RunPolicy &defaults,
             Request &out, std::string &error)
{
    out = Request{};
    out.policy = defaults;
    std::vector<JsonField> fields;
    if (!parseFlatJson(line, fields))
        return fail(error, "malformed request line (flat JSON object "
                           "expected)");

    bool sawOp = false;
    for (const JsonField &f : fields) {
        std::uint64_t u = 0;
        if (f.key == "op") {
            out.op = f.value;
            sawOp = true;
        } else if (f.key == "app") {
            out.config.app = f.value;
        } else if (f.key == "size") {
            if (!parseUintField(f, u, error, 1, 1u << 26))
                return false;
            out.config.params.n = u;
        } else if (f.key == "seed") {
            if (!parseUintField(f, u, error, 0,
                                std::numeric_limits<std::uint64_t>::max()))
                return false;
            out.config.params.seed = u;
        } else if (f.key == "iterations") {
            if (!parseUintField(f, u, error, 0, 1u << 20))
                return false;
            out.config.params.iterations =
                static_cast<std::uint32_t>(u);
        } else if (f.key == "variant") {
            out.config.params.variant = f.value;
        } else if (f.key == "machine") {
            if (!mach::parseMachineKind(f.value, out.config.machine) ||
                !mach::specFor(out.config.machine).runnable)
                return fail(error, "unknown machine '" + f.value +
                                       "' (valid: " + mach::machineNames() +
                                       ")");
        } else if (f.key == "topology") {
            if (f.value == "full")
                out.config.topology = net::TopologyKind::Full;
            else if (f.value == "cube")
                out.config.topology = net::TopologyKind::Hypercube;
            else if (f.value == "mesh")
                out.config.topology = net::TopologyKind::Mesh2D;
            else
                return fail(error, "unknown topology '" + f.value +
                                       "' (valid: full, cube, mesh)");
        } else if (f.key == "procs") {
            if (!parseUintField(f, u, error, 1, 1u << 20))
                return false;
            out.config.procs = static_cast<std::uint32_t>(u);
        } else if (f.key == "max_procs") {
            if (!parseUintField(f, u, error, 1, 1u << 20))
                return false;
            out.maxProcs = static_cast<std::uint32_t>(u);
        } else if (f.key == "gap") {
            if (f.value == "single")
                out.config.gapPolicy = logp::GapPolicy::Single;
            else if (f.value == "per-direction")
                out.config.gapPolicy = logp::GapPolicy::PerDirection;
            else if (f.value == "bisection")
                out.config.gapPolicy = logp::GapPolicy::BisectionOnly;
            else
                return fail(error,
                            "unknown gap policy '" + f.value +
                                "' (valid: single, per-direction, "
                                "bisection)");
        } else if (f.key == "protocol") {
            if (f.value == "berkeley")
                out.config.protocol = mach::ProtocolKind::Berkeley;
            else if (f.value == "msi")
                out.config.protocol = mach::ProtocolKind::Msi;
            else
                return fail(error, "unknown protocol '" + f.value +
                                       "' (valid: berkeley, msi)");
        } else if (f.key == "cache_kb") {
            if (!parseUintField(f, u, error, 1, 1u << 20))
                return false;
            out.config.cache.bytes =
                static_cast<std::uint32_t>(u) * 1024u;
        } else if (f.key == "check") {
            if (!parseBoolField(f, out.config.checkResult, error))
                return false;
        } else if (f.key == "metric") {
            if (f.value == "exec" || f.value == "exec_time")
                out.metric = core::Metric::ExecTime;
            else if (f.value == "latency")
                out.metric = core::Metric::Latency;
            else if (f.value == "contention")
                out.metric = core::Metric::Contention;
            else
                return fail(error,
                            "unknown metric '" + f.value +
                                "' (valid: exec, latency, contention)");
        } else if (f.key == "deadline_s") {
            if (!parseDoubleField(f, out.policy.budget.maxWallSeconds,
                                  error))
                return false;
        } else if (f.key == "max_events") {
            if (!parseUintField(f, out.policy.budget.maxEvents, error, 0,
                                std::numeric_limits<std::uint64_t>::max()))
                return false;
        } else if (f.key == "max_sim_time") {
            if (!parseUintField(f, u, error, 0,
                                std::numeric_limits<std::uint64_t>::max()))
                return false;
            out.policy.budget.maxSimTime = static_cast<sim::Tick>(u);
        } else if (f.key == "stall_limit") {
            if (!parseUintField(f, out.policy.budget.stallDispatchLimit,
                                error, 0,
                                std::numeric_limits<std::uint64_t>::max()))
                return false;
        } else if (f.key == "retries") {
            if (!parseUintField(f, u, error, 1, 100))
                return false;
            out.policy.maxAttempts = static_cast<int>(u);
        } else if (f.key == "backoff_ms") {
            if (!parseUintField(f, u, error, 0, 60'000))
                return false;
            out.policy.retryBackoffMs = static_cast<std::uint32_t>(u);
        } else if (f.key == "trace") {
            if (!sim::parseTraceMask(f.value, out.policy.traceMask))
                return fail(error,
                            "invalid trace categories '" + f.value +
                                "' (valid: protocol, network, logp, "
                                "runtime, all)");
        } else if (f.key == "fault_plan") {
            try {
                out.faultPlan = fault::Plan::parse(f.value);
                out.faultPlanText = f.value;
            } catch (const std::invalid_argument &e) {
                return fail(error, "invalid fault_plan: " +
                                       std::string(e.what()));
            }
        } else {
            return fail(error, "unknown field '" + f.key + "'");
        }
    }
    if (!sawOp)
        return fail(error, "missing op field");
    if (out.op != "ping" && out.op != "run" && out.op != "sweep" &&
        out.op != "stats" && out.op != "drain" && out.op != "shutdown")
        return fail(error, "unknown op '" + out.op +
                               "' (valid: ping, run, sweep, stats, "
                               "drain, shutdown)");
    if (out.op == "run" || out.op == "sweep") {
        try {
            (void)apps::makeApp(out.config.app);
        } catch (const std::invalid_argument &) {
            return fail(error, "unknown app '" + out.config.app +
                                   "' (valid: " +
                                   [] {
                                       std::string names;
                                       for (const std::string &n :
                                            apps::appNames()) {
                                           if (!names.empty())
                                               names += ", ";
                                           names += n;
                                       }
                                       return names;
                                   }() +
                                   ")");
        }
    }
    return true;
}

std::string
pingResponse()
{
    return "{\"status\":\"ok\",\"op\":\"ping\"}";
}

std::string
runResponse(const std::string &keyHex, const core::RunConfig &config,
            const stats::Profile &profile)
{
    std::string out = "{\"status\":\"ok\",\"op\":\"run\",\"key\":\"" +
                      keyHex + "\",\"app\":\"" +
                      core::jsonEscape(config.app) + "\",\"machine\":\"" +
                      mach::specFor(config.machine).name +
                      "\",\"topology\":\"" +
                      net::toString(config.topology) +
                      "\",\"procs\":" + std::to_string(config.procs);
    out += ",\"exec_time\":" + core::formatDouble(core::metricValue(
                                   profile, core::Metric::ExecTime));
    out += ",\"latency\":" + core::formatDouble(core::metricValue(
                                 profile, core::Metric::Latency));
    out += ",\"contention\":" + core::formatDouble(core::metricValue(
                                    profile, core::Metric::Contention));
    return out + "}";
}

std::string
errorResponse(const std::string &op, const std::string &errorName,
              const std::string &message, int attempts,
              const std::string &trace)
{
    std::string out = "{\"status\":\"error\",\"op\":\"" +
                      core::jsonEscape(op) + "\",\"error\":\"" +
                      core::jsonEscape(errorName) + "\",\"message\":\"" +
                      core::jsonEscape(message) + "\"";
    if (attempts > 0)
        out += ",\"attempts\":" + std::to_string(attempts);
    if (!trace.empty())
        out += ",\"trace\":\"" + core::jsonEscape(trace) + "\"";
    return out + "}";
}

std::string
shedResponse(std::size_t queued, std::size_t maxQueue)
{
    return "{\"status\":\"shed\",\"error\":\"admission-reject\","
           "\"message\":\"queue full; retry later\",\"queued\":" +
           std::to_string(queued) +
           ",\"max_queue\":" + std::to_string(maxQueue) + "}";
}

std::string
drainingResponse()
{
    return "{\"status\":\"draining\",\"error\":\"draining\","
           "\"message\":\"service is draining; no new work accepted\"}";
}

} // namespace absim::serve
