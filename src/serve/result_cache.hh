/**
 * @file
 * The serve daemon's content-addressed result cache.
 *
 * Maps a run's canonical key hash (core/cache_key.hh) to the byte-exact
 * response payload the run produced.  Because the simulator is
 * deterministic, a hit is exact — the cache never approximates.
 *
 * Persistence reuses the sweep journal discipline (core/journal.hh):
 * one JSON line per entry, flushed on every insert and fsynced every
 * journalFsyncInterval() inserts, with the torn-tail rule on load — a
 * process killed mid-write leaves a trailing partial line, open()
 * recovers the clean prefix, truncates the tear away, and every entry
 * before it re-serves byte-identical responses after restart.
 *
 * File format:
 *
 *   {"absim_cache":1}
 *   {"key":"<16-hex>","canon":"app=is;...","payload":"{\"status\"...}"}
 *
 * The canonical key string is stored next to the hash so a collision
 * or canonicalization drift is detectable on load, never silent: a
 * record whose canon re-hashes to a different key is treated as the
 * start of a tear.
 */

#ifndef ABSIM_SERVE_RESULT_CACHE_HH
#define ABSIM_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <string>

#include "core/journal.hh"

namespace absim::serve {

/** Journal-backed key -> payload map.  Not internally synchronized —
 *  the Service serializes access under its cache mutex. */
class ResultCache
{
  public:
    ResultCache() = default;
    ~ResultCache() { close(); }
    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Attach the cache to @p path: load the surviving entries (header
     * mismatch = fresh cache; torn tail = truncate to the clean
     * prefix) and open the journal for appending.  An empty path keeps
     * the cache memory-only.
     * @return true if inserts will persist (the journal opened).
     */
    [[nodiscard]] bool open(const std::string &path);

    /** Flush + fsync + close the journal; entries stay readable. */
    void close();

    /** @return true and the stored payload on a hit. */
    [[nodiscard]] bool lookup(std::uint64_t key,
                              std::string &payload) const;

    /**
     * Insert an entry (journaled immediately).  First write wins: a
     * concurrent duplicate compute keeps the first payload so repeated
     * requests stay byte-identical.
     */
    void insert(std::uint64_t key, const std::string &canon,
                const std::string &payload);

    std::size_t size() const { return entries_.size(); }

    /** True if open() dropped a torn tail from the journal. */
    bool recoveredTornTail() const { return torn_; }

    /** Entries loaded from disk by open() (vs inserted since). */
    std::size_t recoveredEntries() const { return recovered_; }

  private:
    // std::map, not unordered_map: iteration order feeds nothing today,
    // but every byte-emitting structure in this codebase stays
    // deterministically ordered by rule (absim_lint D2).
    std::map<std::uint64_t, std::string> entries_;
    core::JournalWriter writer_;
    bool torn_ = false;
    std::size_t recovered_ = 0;
};

} // namespace absim::serve

#endif // ABSIM_SERVE_RESULT_CACHE_HH
