#include "serve/service.hh"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "core/cache_key.hh"
#include "core/journal.hh"
#include "machines/registry.hh"

namespace absim::serve {

namespace {

/**
 * The response's error name: the RunError kind, except a tripped
 * wall-clock budget — the per-request deadline — which gets its own
 * name so clients can tell "too slow" from "too big".
 */
std::string
responseErrorName(const core::RunError &err)
{
    if (err.kind == core::RunErrorKind::BudgetExceeded &&
        err.message.find("wall-clock budget") != std::string::npos)
        return "DeadlineExceeded";
    return core::toString(err.kind);
}

} // namespace

Service::Service(const ServiceConfig &config) : config_(config)
{
    config_.workers = std::max(1u, config_.workers);
    if (!config_.cachePath.empty()) {
        const bool persistent = cache_.open(config_.cachePath);
        tornOnOpen_ = cache_.recoveredTornTail();
        if (!persistent)
            std::fprintf(stderr,
                         "warning: cannot write result cache '%s'; "
                         "serving without persistence\n",
                         config_.cachePath.c_str());
    }
    workers_.reserve(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

Service::~Service()
{
    drain();
    {
        const std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::string
Service::handle(const std::string &line)
{
    received_.fetch_add(1);
    Request request;
    std::string parseError;
    if (!parseRequest(line, config_.policy, request, parseError)) {
        badRequests_.fetch_add(1);
        return errorResponse(request.op.empty() ? "?" : request.op,
                             "bad-request", parseError);
    }

    if (request.op == "ping")
        return pingResponse();
    if (request.op == "stats")
        return statsResponse();
    if (request.op == "drain") {
        beginDrain();
        return "{\"status\":\"ok\",\"op\":\"drain\",\"draining\":true}";
    }
    if (request.op == "shutdown") {
        beginDrain();
        shutdown_.store(true);
        return "{\"status\":\"ok\",\"op\":\"shutdown\",\"draining\":true}";
    }

    // Inline fast path: a cache hit is a map lookup, not work — served
    // without admission charge, even while draining.
    if (request.op == "run") {
        const std::uint64_t key =
            core::runKeyHash(request.config, request.policy.budget);
        std::string payload;
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        if (cache_.lookup(key, payload)) {
            cacheHits_.fetch_add(1);
            return payload;
        }
    }

    // Admission: bounded, deterministic, never a hang.  Total
    // outstanding compute (executing + queued) is capped at
    // workers + maxQueue; anything beyond sheds immediately.
    Job job;
    job.request = std::move(request);
    {
        const std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_.load()) {
            rejectedDraining_.fetch_add(1);
            return drainingResponse();
        }
        if (inFlight_.load() + queue_.size() >=
            config_.workers + config_.maxQueue) {
            shed_.fetch_add(1);
            return shedResponse(queue_.size(), config_.maxQueue);
        }
        queue_.push_back(&job);
    }
    workReady_.notify_one();
    return job.done.get_future().get();
}

void
Service::workerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            workReady_.wait(
                lock, [&] { return stopping_ || !queue_.empty(); });
            // Admitted work still drains after stop is requested.
            if (queue_.empty())
                return;
            job = queue_.front();
            queue_.pop_front();
            // Under the same lock as the pop, so admission's
            // (inFlight + queued) bound never dips spuriously.
            inFlight_.fetch_add(1);
        }
        std::string response = execute(job->request);
        job->done.set_value(std::move(response));
        {
            const std::lock_guard<std::mutex> lock(queueMutex_);
            inFlight_.fetch_sub(1);
        }
        idle_.notify_all();
    }
}

std::string
Service::execute(const Request &request)
{
    try {
        // A request's chaos plan arms this worker's injector for the
        // duration of the request only (plans are per-thread, and a
        // serial runOneSafe executes right here).
        std::optional<fault::ScopedPlan> chaos;
        if (!request.faultPlan.empty())
            chaos.emplace(request.faultPlan);
        if (request.op == "sweep")
            return executeSweep(request);
        return executeRun(request);
    } catch (const std::exception &e) {
        failed_.fetch_add(1);
        return errorResponse(request.op, "Panic", e.what());
    } catch (...) {
        failed_.fetch_add(1);
        return errorResponse(request.op, "Panic",
                             "unknown exception escaped the worker");
    }
}

std::string
Service::runPoint(const Request &request, const core::RunConfig &config,
                  core::RunError &err)
{
    const std::string canon =
        core::canonicalRunKey(config, request.policy.budget);
    const std::uint64_t key = core::fnv1a64(canon);
    std::string payload;
    {
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        if (cache_.lookup(key, payload)) {
            cacheHits_.fetch_add(1);
            return payload;
        }
    }
    cacheMisses_.fetch_add(1);
    core::RunResult result = core::runOneSafe(config, request.policy);
    if (!result.ok()) {
        err = std::move(result.error());
        return "";
    }
    payload =
        runResponse(core::formatKeyHex(key), config, result.value());
    {
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        cache_.insert(key, canon, payload);
    }
    return payload;
}

std::string
Service::executeRun(const Request &request)
{
    core::RunError err;
    const std::string payload = runPoint(request, request.config, err);
    if (!payload.empty()) {
        completed_.fetch_add(1);
        return payload;
    }
    failed_.fetch_add(1);
    return errorResponse("run", responseErrorName(err), err.message,
                         err.attempts, err.traceExcerpt);
}

std::string
Service::executeSweep(const Request &request)
{
    // The sweep decomposes into per-P runs that warm — and reuse — the
    // same content-addressed cache the run op serves from.
    std::vector<std::uint32_t> procs;
    for (const std::uint32_t p : core::defaultProcCounts())
        if (p <= request.maxProcs)
            procs.push_back(p);

    std::string points;
    std::string failures;
    const std::string metricKey = core::toString(request.metric);
    for (const std::uint32_t p : procs) {
        core::RunConfig config = request.config;
        config.procs = p;
        core::RunError err;
        const std::string payload = runPoint(request, config, err);
        if (!payload.empty()) {
            double value = 0.0;
            if (!extractNumber(payload, metricKey, value)) {
                // A cached payload that lost the metric is corruption,
                // not a simulation failure.
                failed_.fetch_add(1);
                return errorResponse("sweep", "Panic",
                                     "cached payload for procs=" +
                                         std::to_string(p) +
                                         " lacks field " + metricKey);
            }
            if (!points.empty())
                points += ',';
            points += "{\"procs\":" + std::to_string(p) +
                      ",\"value\":" + core::formatDouble(value) + "}";
        } else {
            if (!failures.empty())
                failures += ',';
            failures += "{\"procs\":" + std::to_string(p) +
                        ",\"error\":\"" +
                        core::jsonEscape(responseErrorName(err)) +
                        "\",\"message\":\"" +
                        core::jsonEscape(err.message) + "\"";
            if (!err.traceExcerpt.empty())
                failures += ",\"trace\":\"" +
                            core::jsonEscape(err.traceExcerpt) + "\"";
            failures += "}";
        }
    }

    const bool complete = failures.empty();
    if (complete)
        completed_.fetch_add(1);
    else
        failed_.fetch_add(1);
    return "{\"status\":\"ok\",\"op\":\"sweep\",\"app\":\"" +
           core::jsonEscape(request.config.app) + "\",\"machine\":\"" +
           mach::specFor(request.config.machine).name +
           "\",\"topology\":\"" + net::toString(request.config.topology) +
           "\",\"metric\":\"" + metricKey +
           "\",\"complete\":" + (complete ? "true" : "false") +
           ",\"points\":[" + points + "],\"failures\":[" + failures +
           "]}";
}

void
Service::beginDrain()
{
    draining_.store(true);
}

void
Service::drain()
{
    beginDrain();
    {
        std::unique_lock<std::mutex> lock(queueMutex_);
        idle_.wait(lock, [&] {
            return queue_.empty() && inFlight_.load() == 0;
        });
    }
    // In-flight work is done: flush and close the cache journal so
    // every acknowledged entry is durable before the process exits.
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    cache_.close();
}

ServiceStats
Service::stats() const
{
    ServiceStats s;
    s.received = received_.load();
    s.completed = completed_.load();
    s.failed = failed_.load();
    s.shed = shed_.load();
    s.rejectedDraining = rejectedDraining_.load();
    s.badRequests = badRequests_.load();
    s.cacheHits = cacheHits_.load();
    s.cacheMisses = cacheMisses_.load();
    s.inFlight = inFlight_.load();
    {
        const std::lock_guard<std::mutex> lock(queueMutex_);
        s.queued = queue_.size();
    }
    {
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        s.cacheEntries = cache_.size();
    }
    s.draining = draining_.load();
    return s;
}

std::string
Service::statsResponse() const
{
    const ServiceStats s = stats();
    std::string out = "{\"status\":\"ok\",\"op\":\"stats\"";
    out += ",\"received\":" + std::to_string(s.received);
    out += ",\"completed\":" + std::to_string(s.completed);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"shed\":" + std::to_string(s.shed);
    out += ",\"rejected_draining\":" + std::to_string(s.rejectedDraining);
    out += ",\"bad_requests\":" + std::to_string(s.badRequests);
    out += ",\"cache_hits\":" + std::to_string(s.cacheHits);
    out += ",\"cache_misses\":" + std::to_string(s.cacheMisses);
    out += ",\"cache_entries\":" + std::to_string(s.cacheEntries);
    out += ",\"in_flight\":" + std::to_string(s.inFlight);
    out += ",\"queued\":" + std::to_string(s.queued);
    out += ",\"draining\":";
    out += s.draining ? "true" : "false";
    out += ",\"torn_tail_recovered\":";
    out += tornOnOpen_ ? "true" : "false";
    return out + "}";
}

} // namespace absim::serve
