/**
 * @file
 * Line-JSON wire protocol of the absim serve daemon.
 *
 * Requests and responses are flat JSON objects, one per line, in the
 * same hand-rolled dialect as the sweep journals (core/journal.hh):
 * string / number / boolean fields only, no nesting except the sweep
 * response's fixed-shape arrays.  Request fields may arrive in any
 * order — parsing lands them in a RunConfig/RunPolicy and the cache
 * key is rendered from those in canonical field order, so field order
 * never splits the cache (see core/cache_key.hh).
 *
 * Request ops:
 *
 *   {"op":"ping"}
 *   {"op":"run","app":"is","machine":"logpc","procs":8,...}
 *   {"op":"sweep","app":"fft","machine":"logp+c","metric":"latency",
 *    "max_procs":16,...}
 *   {"op":"stats"}         cache/admission counters
 *   {"op":"drain"}         begin graceful drain (keep serving hits)
 *   {"op":"shutdown"}      drain, then ask the daemon to exit
 *
 * Optional run/sweep fields: "size" (problem size), "seed",
 * "iterations", "variant", "topology", "gap", "protocol", "cache_kb",
 * "check" (bool), "deadline_s" (wall-clock budget, watchdog-enforced),
 * "max_events", "max_sim_time", "stall_limit", "retries" (total
 * attempts), "backoff_ms" (capped deterministic retry backoff),
 * "trace" (comma-separated sim trace categories captured into error
 * responses), "fault_plan" (deterministic chaos plan, tests only).
 *
 * Response statuses: "ok", "error" (named RunError kind, or
 * "DeadlineExceeded" / "bad-request"), "shed" (admission reject),
 * "draining".  A run's success response is the byte-exact payload the
 * result cache stores, so a cache hit — in this process or after a
 * crash-restart — repeats the original bytes.
 */

#ifndef ABSIM_SERVE_PROTOCOL_HH
#define ABSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/figures.hh"
#include "fault/fault.hh"

namespace absim::serve {

/** One field of a flat line-JSON object. */
struct JsonField
{
    std::string key;
    std::string value; ///< Unescaped string value, or the raw token.
    bool isString = false;
};

/**
 * Tokenize a flat JSON object line ({"k":"v","n":1,...}).  Rejects
 * nesting, trailing garbage and torn lines.  Shared by the request
 * parser and the result-cache journal loader.
 */
[[nodiscard]] bool parseFlatJson(const std::string &line,
                                 std::vector<JsonField> &out);

/** Extract one numeric field from a flat JSON line (e.g. a metric from
 *  a cached run payload). */
[[nodiscard]] bool extractNumber(const std::string &line,
                                 const std::string &key, double &out);

/** A parsed request, ready for the service to execute. */
struct Request
{
    std::string op;

    /** run/sweep: the target run (procs is the point for "run"). */
    core::RunConfig config;

    /** Per-request policy: defaults from the service, overridden by
     *  request fields (deadline_s lands in budget.maxWallSeconds). */
    core::RunPolicy policy;

    /** sweep only: which metric the curve plots. */
    core::Metric metric = core::Metric::ExecTime;

    /** sweep only: sweep the default proc counts up to this cap. */
    std::uint32_t maxProcs = 32;

    /** Deterministic chaos plan ("" = none); parsed into faultPlan. */
    std::string faultPlanText;
    fault::Plan faultPlan;
};

/**
 * Parse one request line.  @p defaults seeds Request::policy (the
 * service's budgets/retry defaults) before request fields override it.
 * @return false with a named "bad-request" diagnostic in @p error.
 */
[[nodiscard]] bool parseRequest(const std::string &line,
                                const core::RunPolicy &defaults,
                                Request &out, std::string &error);

/** {"status":"ok","op":"ping"} */
std::string pingResponse();

/** The cacheable success payload of a run: all three figure metrics,
 *  stamped with the canonical machine name and the key. */
std::string runResponse(const std::string &keyHex,
                        const core::RunConfig &config,
                        const stats::Profile &profile);

/** Error response; @p errorName is the RunError kind name,
 *  "DeadlineExceeded", or "bad-request". */
std::string errorResponse(const std::string &op,
                          const std::string &errorName,
                          const std::string &message, int attempts = 0,
                          const std::string &trace = "");

/** Deterministic admission reject: {"status":"shed",...}. */
std::string shedResponse(std::size_t queued, std::size_t maxQueue);

/** {"status":"draining","error":"draining"} */
std::string drainingResponse();

} // namespace absim::serve

#endif // ABSIM_SERVE_PROTOCOL_HH
