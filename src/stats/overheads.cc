#include "stats/overheads.hh"

#include <algorithm>
#include <ostream>

namespace absim::stats {

sim::Tick
Profile::execTime() const
{
    sim::Tick t = 0;
    for (const ProcStats &p : procs)
        t = std::max(t, p.finishTime);
    return t;
}

namespace {

template <typename Get>
double
meanOf(const std::vector<ProcStats> &procs, Get get)
{
    if (procs.empty())
        return 0.0;
    double sum = 0.0;
    for (const ProcStats &p : procs)
        sum += static_cast<double>(get(p));
    return sum / static_cast<double>(procs.size());
}

} // namespace

double
Profile::meanBusy() const
{
    return meanOf(procs, [](const ProcStats &p) { return p.busy; });
}

double
Profile::meanLatency() const
{
    return meanOf(procs, [](const ProcStats &p) { return p.latency; });
}

double
Profile::meanContention() const
{
    return meanOf(procs, [](const ProcStats &p) { return p.contention; });
}

sim::Duration
Profile::totalLatency() const
{
    sim::Duration sum = 0;
    for (const ProcStats &p : procs)
        sum += p.latency;
    return sum;
}

sim::Duration
Profile::totalContention() const
{
    sim::Duration sum = 0;
    for (const ProcStats &p : procs)
        sum += p.contention;
    return sum;
}

AxisSplit
Profile::axisSplit() const
{
    AxisSplit split;
    split.netLatency = totalLatency();
    split.netContention = totalContention();
    split.memTime = machine.memTime;
    return split;
}

std::vector<PhaseStats>
Profile::phaseSummary() const
{
    std::vector<PhaseStats> summary;
    auto find = [&summary](const std::string &name) -> PhaseStats & {
        for (PhaseStats &s : summary)
            if (s.name == name)
                return s;
        summary.push_back(PhaseStats{name, 0, 0, 0, 0});
        return summary.back();
    };
    for (const auto &phases : procPhases) {
        for (const PhaseStats &phase : phases) {
            PhaseStats &s = find(phase.name);
            s.busy += phase.busy;
            s.latency += phase.latency;
            s.contention += phase.contention;
            s.wait += phase.wait;
        }
    }
    return summary;
}

std::ostream &
operator<<(std::ostream &os, const Profile &p)
{
    os << "models         net=" << p.netModel << " mem=" << p.memModel
       << "\n"
       << "exec time      " << p.execTime() / 1000.0 << " us\n"
       << "mean busy      " << p.meanBusy() / 1000.0 << " us\n"
       << "mean latency   " << p.meanLatency() / 1000.0 << " us\n"
       << "mean contention" << ' ' << p.meanContention() / 1000.0
       << " us\n"
       << "messages       " << p.machine.messages << "\n"
       << "cache hits     " << p.machine.cacheHits << "\n"
       << "net accesses   " << p.machine.networkAccesses << "\n"
       << "engine events  " << p.engineEvents << "\n";
    if (p.wallSeconds > 0.0)
        os << "engine speed   " << p.eventsPerWallSecond() / 1e6
           << " Mev/s (" << p.wallSeconds << " s host)\n";
    for (std::size_t i = 0; i < p.procs.size(); ++i) {
        const ProcStats &ps = p.procs[i];
        os << "  proc " << i << ": busy " << ps.busy / 1000.0
           << " us, latency " << ps.latency / 1000.0
           << " us, contention " << ps.contention / 1000.0 << " us";
        if (ps.wait != 0)
            os << ", wait " << ps.wait / 1000.0 << " us";
        os << ", accesses " << ps.accesses << " (" << ps.networkAccesses
           << " networked)\n";
    }
    return os;
}

} // namespace absim::stats
