/**
 * @file
 * SPASM-style overhead separation (paper Section 3.3).
 *
 * The simulator's profiling decomposes each processor's execution time
 * into:
 *   - busy        computation + cache/local-memory access time (the
 *                 "ideal time" component plus memory hits),
 *   - latency     contention-free message transmission time,
 *   - contention  time messages spent waiting for links or g-gates.
 *
 * This isolation is what lets the paper validate the L and g parameters
 * individually even when total execution times agree.
 */

#ifndef ABSIM_STATS_OVERHEADS_HH
#define ABSIM_STATS_OVERHEADS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "machines/machine.hh"
#include "sim/types.hh"
#include "stats/histogram.hh"

namespace absim::stats {

/** Per-processor overhead decomposition. */
struct ProcStats
{
    sim::Duration busy = 0;
    sim::Duration latency = 0;
    sim::Duration contention = 0;
    /** Blocked on a peer (message-passing receive); the shared-memory
     *  runtime never uses this bucket (its waiting is spinning, charged
     *  as accesses + busy). */
    sim::Duration wait = 0;
    std::uint64_t accesses = 0;
    std::uint64_t networkAccesses = 0;
    sim::Tick finishTime = 0;

    /** Sum of all buckets; equals finishTime by construction. */
    sim::Duration
    total() const
    {
        return busy + latency + contention + wait;
    }
};

/**
 * Overheads attributed to one named application phase (SPASM-style
 * bottleneck isolation: apps mark phases like "butterflies" or "rank",
 * and repeated phases accumulate under one name).
 */
struct PhaseStats
{
    std::string name;
    sim::Duration busy = 0;
    sim::Duration latency = 0;
    sim::Duration contention = 0;
    sim::Duration wait = 0;

    sim::Duration
    total() const
    {
        return busy + latency + contention + wait;
    }
};

/**
 * Per-abstraction-axis attribution of a run's memory-system time
 * (which model charged what), so the network abstraction's error and
 * the locality abstraction's error stay separable in every profile —
 * the decomposition the quadrant ablation plots.
 */
struct AxisSplit
{
    /** Network-axis time: contention-free transmission, summed over
     *  processors (SPASM latency). */
    sim::Duration netLatency = 0;
    /** Network-axis time: link/g-gate waits, summed over processors
     *  (SPASM contention). */
    sim::Duration netContention = 0;
    /** Memory-axis time: cache/local-memory cost the memory model
     *  charged (MachineStats::memTime). */
    sim::Duration memTime = 0;

    sim::Duration
    networkTotal() const
    {
        return netLatency + netContention;
    }
};

/** Result of one complete simulation run. */
struct Profile
{
    std::vector<ProcStats> procs;
    /** Per-processor phase breakdowns, in first-use order. */
    std::vector<std::vector<PhaseStats>> procPhases;
    /** Machine-wide distribution of networked-access times. */
    Histogram remoteLatency;
    mach::MachineStats machine;
    /** Which model implemented each abstraction axis ("detailed"/"logp",
     *  "directory"/"ideal"/"uncached"; "none" without that axis). */
    std::string netModel = "none";
    std::string memModel = "none";
    std::uint64_t engineEvents = 0; ///< Simulation-cost metric.
    double wallSeconds = 0.0;       ///< Host time for the simulation.

    /**
     * Kernel throughput: engine events dispatched per host wall
     * second, or 0 when the run carried no wall-time measurement.
     * Host-dependent — a health indicator, never a simulation result.
     */
    double
    eventsPerWallSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(engineEvents) / wallSeconds
                   : 0.0;
    }

    /** Per-axis attribution of the run's memory-system time. */
    AxisSplit axisSplit() const;

    /** Phase breakdown summed across processors. */
    std::vector<PhaseStats> phaseSummary() const;

    /** Simulated execution time: max over processors (SPASM total time). */
    sim::Tick execTime() const;

    /** Per-processor mean of each overhead, in ticks. */
    double meanBusy() const;
    double meanLatency() const;
    double meanContention() const;

    /** Sum over processors, in ticks. */
    sim::Duration totalLatency() const;
    sim::Duration totalContention() const;
};

/** One-line-per-processor human-readable dump. */
std::ostream &operator<<(std::ostream &os, const Profile &p);

} // namespace absim::stats

#endif // ABSIM_STATS_OVERHEADS_HH
