/**
 * @file
 * Power-of-two bucketed histogram for latency/size distributions.
 *
 * Mean overheads hide tails; the paper's contention story is largely a
 * tail story (hot spots, convoys).  Every Proc records the distribution
 * of its networked-access round-trip times here, reported by run_cli
 * and usable from tests.
 */

#ifndef ABSIM_STATS_HISTOGRAM_HH
#define ABSIM_STATS_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace absim::stats {

/**
 * Log2-bucketed histogram: bucket b counts samples in [2^b, 2^(b+1)),
 * with bucket 0 also holding zero.
 */
class Histogram
{
  public:
    static constexpr std::uint32_t kBuckets = 40;

    void
    record(std::uint64_t value)
    {
        ++counts_[bucketOf(value)];
        sum_ += value;
        ++samples_;
        if (value > max_)
            max_ = value;
    }

    static std::uint32_t
    bucketOf(std::uint64_t value)
    {
        if (value == 0)
            return 0;
        const auto b =
            static_cast<std::uint32_t>(std::bit_width(value) - 1);
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** Inclusive lower bound of bucket @p b. */
    static std::uint64_t
    bucketFloor(std::uint32_t b)
    {
        return b == 0 ? 0 : (std::uint64_t{1} << b);
    }

    std::uint64_t count(std::uint32_t bucket) const
    {
        return counts_[bucket];
    }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return samples_ ? static_cast<double>(sum_) /
                              static_cast<double>(samples_)
                        : 0.0;
    }

    /** Smallest value v such that >= quantile of samples are <= bucket
     *  ceiling of v's bucket (bucket-resolution quantile). */
    std::uint64_t
    approxQuantile(double quantile) const
    {
        if (samples_ == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            quantile * static_cast<double>(samples_));
        std::uint64_t seen = 0;
        for (std::uint32_t b = 0; b < kBuckets; ++b) {
            seen += counts_[b];
            if (seen > target)
                return bucketFloor(b + 1) - 1; // Bucket ceiling.
        }
        return max_;
    }

    void
    merge(const Histogram &other)
    {
        for (std::uint32_t b = 0; b < kBuckets; ++b)
            counts_[b] += other.counts_[b];
        sum_ += other.sum_;
        samples_ += other.samples_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t sum_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace absim::stats

#endif // ABSIM_STATS_HISTOGRAM_HH
