/**
 * @file
 * Content-addressed cache keys for simulation runs.
 *
 * The simulator is deterministic by construction: two runs of the same
 * (app, input, machine, seed, budget) produce bit-identical profiles,
 * so a cached result is *exact*, not approximate.  The serve daemon
 * (src/serve) exploits that by keying its result cache on a canonical
 * rendering of the RunConfig + the deterministic RunBudget fields.
 *
 * Canonicalization rules:
 *
 *  - Field order is fixed by this module, never by the request that
 *    produced the config — two requests spelling the same run in a
 *    different field order hash identically.
 *  - The machine is keyed by its canonical registry *name* ("logp+c"),
 *    so the column alias ("logpc") and the name collapse to one key.
 *  - RunBudget::maxWallSeconds is deliberately EXCLUDED: a wall-clock
 *    deadline is host-dependent and cannot change a deterministic
 *    result, only whether it is produced — a success computed under
 *    any deadline is valid under every other.  The deterministic
 *    budget fields (maxEvents, maxSimTime, stallDispatchLimit) are
 *    included because they can change the outcome (e.g. a budget
 *    failure vs a success).
 */

#ifndef ABSIM_CORE_CACHE_KEY_HH
#define ABSIM_CORE_CACHE_KEY_HH

#include <cstdint>
#include <string>

#include "core/experiment.hh"

namespace absim::core {

/**
 * The canonical one-line rendering of a run's identity.  Stable across
 * releases only by test discipline (tests/test_cache_key.cc pins it);
 * persisted caches store it next to the hash so a mismatch is
 * detectable, not silent.
 */
std::string canonicalRunKey(const RunConfig &config,
                            const sim::RunBudget &budget);

/** FNV-1a 64-bit hash of @p text. */
std::uint64_t fnv1a64(const std::string &text);

/** The cache key: fnv1a64 of the canonical rendering. */
std::uint64_t runKeyHash(const RunConfig &config,
                         const sim::RunBudget &budget);

/** Fixed-width lowercase hex of a 64-bit key ("00142b..."). */
std::string formatKeyHex(std::uint64_t key);

/** Parse formatKeyHex output (exactly 16 lowercase hex digits). */
[[nodiscard]] bool parseKeyHex(const std::string &text,
                               std::uint64_t &out);

} // namespace absim::core

#endif // ABSIM_CORE_CACHE_KEY_HH
