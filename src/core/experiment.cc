#include "core/experiment.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "check/check.hh"
#include "machines/logp_c_machine.hh"
#include "machines/logp_machine.hh"
#include "machines/target_machine.hh"
#include "runtime/context.hh"
#include "runtime/shared.hh"
#include "sim/event_queue.hh"

namespace absim::core {

namespace {

std::unique_ptr<mach::Machine>
makeMachine(const RunConfig &config, sim::EventQueue &eq,
            const mem::HomeMap &homes)
{
    switch (config.machine) {
      case mach::MachineKind::Target:
        return std::make_unique<mach::TargetMachine>(
            eq, config.topology, config.procs, homes, config.cache,
            config.protocol);
      case mach::MachineKind::LogP:
        return std::make_unique<mach::LogPMachine>(
            eq, config.topology, config.procs, homes, config.gapPolicy);
      case mach::MachineKind::LogPC:
        return std::make_unique<mach::LogPCMachine>(
            eq, config.topology, config.procs, homes, config.gapPolicy,
            config.cache);
      case mach::MachineKind::None:
        break; // Message-passing platforms are driven directly.
    }
    throw std::invalid_argument("unsupported machine kind");
}

stats::Profile
runOneImpl(const RunConfig &config, const sim::RunBudget *budget)
{
    const auto wall_begin = std::chrono::steady_clock::now();

    sim::EventQueue eq;
    if (budget != nullptr)
        eq.setBudget(*budget);
    rt::SharedHeap heap(config.procs);
    auto machine = makeMachine(config, eq, heap);
    rt::Runtime runtime(eq, *machine, config.procs);
    auto app = apps::makeApp(config.app);

    app->setup(runtime, heap, config.params);
    runtime.spawn([&app](rt::Proc &p) { app->worker(p); });
    runtime.run();
    if (config.checkResult) {
        try {
            app->check();
        } catch (const std::exception &e) {
            // Tag validation failures so the safe driver can classify
            // them apart from engine or invariant errors.
            throw AppValidationError(e.what());
        }
    }

    stats::Profile profile = runtime.collect();
    const auto wall_end = std::chrono::steady_clock::now();
    profile.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_begin).count();
    return profile;
}

/** First line of a (possibly multi-line) exception message; the
 *  structured fields carry the rest. */
std::string
firstLine(const char *what)
{
    const std::string s(what);
    const auto newline = s.find('\n');
    return newline == std::string::npos ? s : s.substr(0, newline);
}

RunError
watchdogError(RunErrorKind kind, const sim::WatchdogError &e, int attempt)
{
    RunError err;
    err.kind = kind;
    err.message = firstLine(e.what());
    err.eventsDispatched = e.eventsDispatched();
    err.simTime = e.simTime();
    err.blockedFibers = e.blocked();
    err.attempts = attempt;
    return err;
}

RunError
plainError(RunErrorKind kind, const char *what, int attempt)
{
    RunError err;
    err.kind = kind;
    err.message = what;
    err.attempts = attempt;
    return err;
}

} // namespace

stats::Profile
runOne(const RunConfig &config)
{
    return runOneImpl(config, nullptr);
}

RunResult
runOneSafe(const RunConfig &config, const RunPolicy &policy)
{
    RunConfig attempt_config = config;
    const int attempts = std::max(1, policy.maxAttempts);
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        // Invariant failures must surface as exceptions, not aborts.
        check::ScopedThrowOnFailure guard;
        bool retryable = false;
        RunError err;
        try {
            return runOneImpl(attempt_config, &policy.budget);
        } catch (const sim::DeadlockError &e) {
            err = watchdogError(RunErrorKind::Deadlock, e, attempt);
        } catch (const sim::BudgetExceededError &e) {
            err = watchdogError(RunErrorKind::BudgetExceeded, e, attempt);
        } catch (const check::CheckFailure &e) {
            err = plainError(RunErrorKind::CheckFailed, e.what(), attempt);
            retryable = policy.retryCheckFailures;
        } catch (const AppValidationError &e) {
            err = plainError(RunErrorKind::AppValidationFailed, e.what(),
                             attempt);
            retryable = policy.retryAppValidation;
        } catch (const std::exception &e) {
            err = plainError(RunErrorKind::Panic, e.what(), attempt);
        }
        if (retryable && attempt < attempts) {
            // Degrade gracefully: re-roll the workload RNG and re-run
            // the point rather than losing the whole sweep to one
            // (possibly transient) failed invariant.
            attempt_config.params.seed += policy.seedPerturbation;
            continue;
        }
        return err;
    }
    // Unreachable: the loop always returns.
    return plainError(RunErrorKind::Panic, "retry loop fell through", 1);
}

} // namespace absim::core
