#include "core/experiment.hh"

#include <chrono>
#include <memory>

#include "machines/logp_c_machine.hh"
#include "machines/logp_machine.hh"
#include "machines/target_machine.hh"
#include "runtime/context.hh"
#include "runtime/shared.hh"
#include "sim/event_queue.hh"

namespace absim::core {

namespace {

std::unique_ptr<mach::Machine>
makeMachine(const RunConfig &config, sim::EventQueue &eq,
            const mem::HomeMap &homes)
{
    switch (config.machine) {
      case mach::MachineKind::Target:
        return std::make_unique<mach::TargetMachine>(
            eq, config.topology, config.procs, homes, config.cache,
            config.protocol);
      case mach::MachineKind::LogP:
        return std::make_unique<mach::LogPMachine>(
            eq, config.topology, config.procs, homes, config.gapPolicy);
      case mach::MachineKind::LogPC:
        return std::make_unique<mach::LogPCMachine>(
            eq, config.topology, config.procs, homes, config.gapPolicy,
            config.cache);
      case mach::MachineKind::None:
        break; // Message-passing platforms are driven directly.
    }
    throw std::invalid_argument("unsupported machine kind");
}

} // namespace

stats::Profile
runOne(const RunConfig &config)
{
    const auto wall_begin = std::chrono::steady_clock::now();

    sim::EventQueue eq;
    rt::SharedHeap heap(config.procs);
    auto machine = makeMachine(config, eq, heap);
    rt::Runtime runtime(eq, *machine, config.procs);
    auto app = apps::makeApp(config.app);

    app->setup(runtime, heap, config.params);
    runtime.spawn([&app](rt::Proc &p) { app->worker(p); });
    runtime.run();
    if (config.checkResult)
        app->check();

    stats::Profile profile = runtime.collect();
    const auto wall_end = std::chrono::steady_clock::now();
    profile.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_begin).count();
    return profile;
}

} // namespace absim::core
