#include "core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "check/check.hh"
#include "core/run_context.hh"
#include "machines/registry.hh"
#include "runtime/context.hh"
#include "runtime/shared.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "trace_replay/recorder.hh"
#include "trace_replay/replay.hh"

namespace absim::core {

namespace {

std::unique_ptr<mach::Machine>
makeMachine(const RunConfig &config, sim::EventQueue &eq,
            const mem::HomeMap &homes)
{
    // Registry-driven: any (network model x memory model) composition in
    // the table — including the off-diagonal quadrants — runs through
    // the same experiment machinery.  Throws for non-runnable kinds.
    return mach::makeMachine(config.machine, eq, config.topology,
                             config.procs, homes, config.gapPolicy,
                             config.cache, config.protocol);
}

/** Execution-driven run, optionally observed by a trace recorder. */
stats::Profile
executeOne(const RunConfig &config, const sim::RunBudget *budget,
           trace::Recorder *recorder)
{
    // absim-lint: D1 ok(wall-clock cost accounting for Profile.wallSeconds; never reaches simulated time or figure bytes)
    const auto wall_begin = std::chrono::steady_clock::now();

    // The run's ambient-state root: private check counters/options,
    // trace and fault injector, installed on this thread for the run's
    // duration so concurrent runs never share mutable simulator state.
    RunContext run_context;
    sim::EventQueue eq;
    if (budget != nullptr)
        eq.setBudget(*budget);
    rt::SharedHeap heap(config.procs);
    auto machine = makeMachine(config, eq, heap);
    rt::Runtime runtime(eq, *machine, config.procs);
    if (recorder != nullptr) {
        // Bound before setup: the recorder must see the allocations.
        heap.bindSink(recorder);
        runtime.bindSink(recorder);
    }
    auto app = apps::makeApp(config.app);

    app->setup(runtime, heap, config.params);
    runtime.spawn([&app](rt::Proc &p) { app->worker(p); });
    runtime.run();
    if (config.checkResult) {
        try {
            app->check();
        } catch (const std::exception &e) {
            // Tag validation failures so the safe driver can classify
            // them apart from engine or invariant errors.
            throw AppValidationError(e.what());
        }
    }

    stats::Profile profile = runtime.collect();
    // absim-lint: D1 ok(closing wall-clock stamp for Profile.wallSeconds, same contract as wall_begin above)
    const auto wall_end = std::chrono::steady_clock::now();
    profile.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_begin).count();
    return profile;
}

std::string
tracePath(const RunConfig &config)
{
    return config.traceDir + "/" +
           trace::traceFileName(config.app, config.params, config.procs);
}

/** Execute the point with a recorder bound and persist its trace.
 *  Save failures (full disk, unwritable dir) degrade to a plain
 *  executed profile: the trace store is a cache, not a result. */
stats::Profile
executeAndRecord(const RunConfig &config, const sim::RunBudget *budget)
{
    trace::Recorder recorder(config.procs);
    stats::Profile profile = executeOne(config, budget, &recorder);
    trace::Trace recorded = recorder.take(config.app, config.params);
    try {
        std::filesystem::create_directories(config.traceDir);
        trace::saveTrace(recorded, tracePath(config));
    } catch (const std::exception &) {
        // Recording is best-effort; the executed profile stands.
    }
    return profile;
}

/**
 * Process-wide cache of loaded traces, keyed by (path, mtime, size).
 *
 * A figure sweep replays the trace of each processor count once per
 * machine column; without the cache every column re-parses the same
 * multi-megabyte op stream, and that load dominates the low-P replay
 * cells.  The cache is tiny (a sweep touches one trace per P) and
 * validates freshness against the file's stat, so a re-recorded trace
 * is never replayed stale.  Returns nullptr when the file is missing
 * or torn — the record-on-miss path handles it.
 */
std::shared_ptr<const trace::Trace>
loadTraceShared(const std::string &path)
{
    struct Entry
    {
        std::string path;
        std::filesystem::file_time_type mtime;
        std::uintmax_t size = 0;
        std::shared_ptr<const trace::Trace> trace;
    };
    constexpr std::size_t kMaxEntries = 4;
    static std::mutex mu;
    static std::vector<Entry> cache;

    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return nullptr;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec)
        return nullptr;

    {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < cache.size(); ++i) {
            if (cache[i].path == path && cache[i].mtime == mtime &&
                cache[i].size == size) {
                Entry hit = std::move(cache[i]);
                cache.erase(cache.begin() +
                            static_cast<std::ptrdiff_t>(i));
                cache.push_back(std::move(hit)); // LRU: back = newest.
                return cache.back().trace;
            }
        }
    }

    // Parse outside the lock: concurrent sweep shards loading
    // *different* traces must not serialize (a duplicate concurrent
    // load of the same path is wasteful but harmless).
    auto loaded = std::make_shared<trace::Trace>();
    if (!trace::loadTrace(path, *loaded))
        return nullptr;

    const std::lock_guard<std::mutex> lock(mu);
    if (cache.size() >= kMaxEntries)
        cache.erase(cache.begin());
    cache.push_back(Entry{path, mtime, size, loaded});
    return loaded;
}

stats::Profile
runOneImpl(const RunConfig &config, const sim::RunBudget *budget)
{
    switch (config.mode) {
      case RunMode::Execute:
        return executeOne(config, budget, nullptr);
      case RunMode::Record:
        return executeAndRecord(config, budget);
      case RunMode::Replay:
        break;
    }

    // Replay with record-on-miss: a loadable, replayable trace replays;
    // a missing/torn/mismatched file executes and records for next
    // time; a trace marked non-replayable (message-passing runs)
    // permanently falls back to plain execution.
    const std::shared_ptr<const trace::Trace> recorded =
        loadTraceShared(tracePath(config));
    if (recorded == nullptr)
        return executeAndRecord(config, budget);
    if (!recorded->replayable)
        return executeOne(config, budget, nullptr);

    RunContext run_context;
    trace::ReplaySpec spec;
    spec.machine = config.machine;
    spec.topology = config.topology;
    spec.gapPolicy = config.gapPolicy;
    spec.cache = config.cache;
    spec.protocol = config.protocol;
    return trace::replayTrace(*recorded, spec);
}

/** First line of a (possibly multi-line) exception message; the
 *  structured fields carry the rest. */
std::string
firstLine(const char *what)
{
    const std::string s(what);
    const auto newline = s.find('\n');
    return newline == std::string::npos ? s : s.substr(0, newline);
}

RunError
watchdogError(RunErrorKind kind, const sim::WatchdogError &e, int attempt)
{
    RunError err;
    err.kind = kind;
    err.message = firstLine(e.what());
    err.eventsDispatched = e.eventsDispatched();
    err.simTime = e.simTime();
    err.blockedFibers = e.blocked();
    err.attempts = attempt;
    return err;
}

RunError
plainError(RunErrorKind kind, const char *what, int attempt)
{
    RunError err;
    err.kind = kind;
    err.message = what;
    err.attempts = attempt;
    return err;
}

} // namespace

stats::Profile
runOne(const RunConfig &config)
{
    return runOneImpl(config, nullptr);
}

RunResult
runOneSafe(const RunConfig &config, const RunPolicy &policy)
{
    RunConfig attempt_config = config;
    const int attempts = std::max(1, policy.maxAttempts);
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        // Invariant failures must surface as exceptions, not aborts.
        check::ScopedThrowOnFailure guard;
        // Per-attempt bounded trace capture: a fresh tail sink becomes
        // the thread's current trace, so the run's RunContext inherits
        // it and a failing attempt leaves its last events in the error.
        std::optional<sim::BoundedTraceSink> capture;
        std::optional<sim::Trace> capture_trace;
        std::optional<sim::ScopedTrace> capture_scope;
        if (policy.traceMask != 0) {
            capture.emplace(policy.traceLimit);
            capture_trace.emplace();
            capture_trace->setMask(policy.traceMask);
            capture_trace->setSink(&capture->stream());
            capture_scope.emplace(*capture_trace);
        }
        bool retryable = false;
        RunError err;
        try {
            return runOneImpl(attempt_config, &policy.budget);
        } catch (const sim::DeadlockError &e) {
            err = watchdogError(RunErrorKind::Deadlock, e, attempt);
        } catch (const sim::BudgetExceededError &e) {
            err = watchdogError(RunErrorKind::BudgetExceeded, e, attempt);
        } catch (const check::CheckFailure &e) {
            err = plainError(RunErrorKind::CheckFailed, e.what(), attempt);
            retryable = policy.retryCheckFailures;
        } catch (const AppValidationError &e) {
            err = plainError(RunErrorKind::AppValidationFailed, e.what(),
                             attempt);
            retryable = policy.retryAppValidation;
        } catch (const std::exception &e) {
            err = plainError(RunErrorKind::Panic, e.what(), attempt);
        }
        if (capture && !capture->empty())
            err.traceExcerpt = capture->excerpt();
        if (retryable && attempt < attempts) {
            // Degrade gracefully: re-roll the workload RNG and re-run
            // the point rather than losing the whole sweep to one
            // (possibly transient) failed invariant.
            if (policy.retryBackoffMs != 0) {
                // Capped exponential, deterministic (no jitter): damps
                // retry storms without breaking reproducibility.
                const int shift = std::min(attempt - 1, 20);
                const std::uint64_t ms = std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(policy.retryBackoffMs)
                        << shift,
                    policy.retryBackoffCapMs);
                std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            }
            attempt_config.params.seed += policy.seedPerturbation;
            continue;
        }
        return err;
    }
    // Unreachable: the loop always returns.
    return plainError(RunErrorKind::Panic, "retry loop fell through", 1);
}

namespace {

/** runOneSafe never throws for simulation failures, but a worker
 *  thread must also never die to an escaped std::bad_alloc or similar:
 *  anything that does escape is classified as a Panic. */
RunResult
runOneGuarded(const RunConfig &config, const RunPolicy &policy)
{
    try {
        return runOneSafe(config, policy);
    } catch (const std::exception &e) {
        return plainError(RunErrorKind::Panic, e.what(), 1);
    } catch (...) {
        return plainError(RunErrorKind::Panic,
                          "unknown exception escaped runOneSafe", 1);
    }
}

} // namespace

std::vector<RunResult>
runManySafe(const std::vector<RunConfig> &configs, const RunPolicy &policy,
            unsigned jobs, const RunManyCallback &onResult)
{
    const std::size_t n = configs.size();
    std::vector<std::optional<RunResult>> slots(n);
    std::mutex mutex;

    auto runTask = [&](std::size_t i) {
        RunResult result = runOneGuarded(configs[i], policy);
        const std::lock_guard<std::mutex> lock(mutex);
        slots[i].emplace(std::move(result));
        if (onResult)
            onResult(i, *slots[i]);
    };

    const std::size_t workers =
        std::min<std::size_t>(std::max(1u, jobs), std::max<std::size_t>(n, 1));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            runTask(i);
    } else {
        // Fixed pool over an atomic work index: scheduling order is
        // irrelevant to the output because every result lands in its
        // own slot and each run is deterministic in its config.
        const check::Options ambient_options = check::options();
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                // Workers inherit the submitter's validator options;
                // everything else starts from the thread's clean
                // ambient state (no fault plan, default trace).
                check::State worker_state;
                worker_state.options = ambient_options;
                check::ScopedState scope(worker_state);
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n)
                        break;
                    runTask(i);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    std::vector<RunResult> results;
    results.reserve(n);
    for (auto &slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

} // namespace absim::core
