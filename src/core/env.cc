#include "core/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace absim::core {

bool
parseUint(const char *text, std::uint64_t &out)
{
    if (text == nullptr || *text < '0' || *text > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseDouble(const char *text, double &out)
{
    if (text == nullptr || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback, std::uint64_t min,
        std::uint64_t max)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    std::uint64_t v = 0;
    if (!parseUint(text, v) || v < min || v > max) {
        if (max == std::numeric_limits<std::uint64_t>::max())
            std::fprintf(stderr,
                         "error: invalid %s value '%s' (expected an "
                         "integer >= %llu)\n",
                         name, text,
                         static_cast<unsigned long long>(min));
        else
            std::fprintf(stderr,
                         "error: invalid %s value '%s' (expected an "
                         "integer in [%llu, %llu])\n",
                         name, text, static_cast<unsigned long long>(min),
                         static_cast<unsigned long long>(max));
        std::exit(2);
    }
    return v;
}

double
envDouble(const char *name, double fallback, double min)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    double v = 0.0;
    if (!parseDouble(text, v) || v < min) {
        std::fprintf(stderr,
                     "error: invalid %s value '%s' (expected a number "
                     ">= %g)\n",
                     name, text, min);
        std::exit(2);
    }
    return v;
}

const char *
envString(const char *name)
{
    const char *text = std::getenv(name);
    return (text == nullptr || *text == '\0') ? nullptr : text;
}

ShardSpec
envShard(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return {};
    ShardSpec spec;
    if (!ShardSpec::parse(text, spec)) {
        std::fprintf(stderr,
                     "error: invalid %s value '%s' (expected K/N with "
                     "0 <= K < N)\n",
                     name, text);
        std::exit(2);
    }
    return spec;
}

} // namespace absim::core
