/**
 * @file
 * Figure harness: regenerate the paper's figure series.
 *
 * Every figure in the paper's evaluation is a curve of one metric
 * (execution time, latency overhead, or contention overhead) against the
 * processor count, with one curve per machine characterization.  This
 * header provides the sweep and the printer the bench binaries share.
 *
 * The machine set is parameterized: the classic figures sweep the
 * paper's three machines (target, logp, logp+c — the default), while
 * the quadrant ablation sweeps all five registry compositions through
 * the same engine.  Column order follows the machine list everywhere
 * (figure points, CSV, JSON, journal records).
 */

#ifndef ABSIM_CORE_FIGURES_HH
#define ABSIM_CORE_FIGURES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/journal.hh"
#include "trace_replay/divergence.hh"

namespace absim::core {

/** Which overhead the figure plots (paper Section 3.3 semantics). */
enum class Metric
{
    ExecTime,   ///< Max over processors of completion time.
    Latency,    ///< Per-processor mean latency overhead.
    Contention, ///< Per-processor mean contention overhead.
};

std::string toString(Metric metric);

/** One point of a figure: the metric for every swept machine at P,
 *  in the figure's machine order. */
struct SeriesPoint
{
    std::uint32_t procs = 0;
    std::vector<double> values;
};

/** A complete figure. */
struct Figure
{
    std::string title;
    std::string app;
    net::TopologyKind topology = net::TopologyKind::Full;
    Metric metric = Metric::ExecTime;

    /** Swept machines, one per value column.  Empty means the paper's
     *  classic trio (target, logp, logp+c). */
    std::vector<mach::MachineKind> machines;

    std::vector<SeriesPoint> points;
};

/** @p figure's machine list with the empty default resolved. */
std::vector<mach::MachineKind> figureMachines(const Figure &figure);

/** The JSON/CSV/journal column keys for @p machines (registry column
 *  names, e.g. "logpc"). */
std::vector<std::string>
machineColumns(const std::vector<mach::MachineKind> &machines);

/** The processor counts the benches sweep (paper: powers of two). */
std::vector<std::uint32_t> defaultProcCounts();

/** Extract the figure metric (in microseconds) from a profile. */
double metricValue(const stats::Profile &profile, Metric metric);

/**
 * Run the sweep for one figure: every machine in @p machines at each P
 * (empty = the classic trio).
 *
 * The raw sweep: any failed point aborts the whole figure by
 * exception.  Prefer sweepFigureSafe() for anything long-running.
 *
 * @param base  App/params template; machine, topology and P are overridden.
 */
Figure sweepFigure(const std::string &title, const RunConfig &base,
                   net::TopologyKind topology, Metric metric,
                   const std::vector<std::uint32_t> &proc_counts,
                   const std::vector<mach::MachineKind> &machines = {});

/** One point (or machine run) the resilient sweep could not produce. */
struct FailedPoint
{
    std::uint32_t procs = 0;
    std::string machine; ///< Canonical machine name, e.g. "logp+c".
    std::string error;   ///< RunErrorKind name.
    std::string message; ///< One-line summary.
    std::string trace;   ///< Bounded trace tail (RunPolicy::traceMask);
                         ///< "" when capture was off.
};

/** Outcome of a resilient sweep: the completed curve + what failed. */
struct SweepResult
{
    Figure figure;
    std::vector<FailedPoint> failures;

    bool complete() const { return failures.empty(); }
};

/** Knobs of the resilient sweep. */
struct SweepOptions
{
    /** Budget/retry policy applied to every point (see RunPolicy). */
    RunPolicy policy;

    /**
     * Checkpoint journal path; "" disables checkpointing.  Completed
     * points (successes and failures) are appended after each point
     * and skipped on re-run, so an interrupted sweep resumes instead
     * of starting over (see core/journal.hh for the format and the
     * byte-identical-resume guarantee).
     */
    std::string journalPath;

    /**
     * Worker threads running the sweep's (point x machine) runs.
     * 0 (the default) = auto: honor the ABSIM_JOBS environment
     * variable, else run serially; 1 pins the sweep serial.  Any value
     * produces byte-identical figure JSON and journal contents
     * (results are keyed by sweep position and the journal commits
     * points in sweep order; see docs/PARALLELISM.md).  Note an armed
     * fault plan only applies to a serial sweep: plans are per-thread
     * and do not propagate to pool workers.
     */
    unsigned jobs = 0;

    /**
     * Machines to sweep, in column order.  Empty (the default) means
     * the paper's classic trio; journals written for a non-default set
     * carry the machine list in their header, so a journal never
     * resumes a sweep with different columns.
     */
    std::vector<mach::MachineKind> machines;

    /**
     * Which shard of the sweep this process runs (--shard K/N,
     * ABSIM_SHARD).  Work items are the (point x machine) runs indexed
     * row-major (point-major, machine-minor) over the full grid; shard
     * {K, N} runs exactly the items whose index is congruent to K mod
     * N.  The default {0, 1} runs the whole sweep.
     *
     * A sharded sweep returns a partial figure (only the points whose
     * owned runs all succeeded; unowned columns read 0.0) — its real
     * product is the shard journal, which records one single-column
     * record per owned item and stamps "shard":"K/N" in its header.
     * core::mergeJournals() reassembles the N shard journals into a
     * journal byte-identical to the unsharded serial sweep's, from
     * which a replaying re-run emits byte-identical figure JSON/CSV.
     */
    ShardSpec shard;
};

/**
 * Resilient sweep: like sweepFigure(), but each point runs under
 * runOneSafe().  A failed point is recorded in the failure manifest
 * and the sweep continues; with a journal path set, completed points
 * checkpoint to disk and re-runs resume from the journal.  Honors
 * options.jobs (an alias of sweepFigureParallel).
 */
SweepResult sweepFigureSafe(const std::string &title, const RunConfig &base,
                            net::TopologyKind topology, Metric metric,
                            const std::vector<std::uint32_t> &proc_counts,
                            const SweepOptions &options = {});

/**
 * The parallel sweep executor: one (point x machine) run per work
 * item, executed by a fixed pool of options.jobs threads (see
 * core::runManySafe for the isolation model).  Output — figure,
 * failure manifest, journal bytes, exit semantics — is guaranteed
 * byte-identical to the serial sweep for every jobs value: results
 * assemble in sweep order and journal records commit through an
 * in-order frontier, so even a crash leaves a serial-compatible
 * journal prefix.  Composes with journal resume exactly like the
 * serial path.
 */
SweepResult sweepFigureParallel(const std::string &title,
                                const RunConfig &base,
                                net::TopologyKind topology, Metric metric,
                                const std::vector<std::uint32_t> &proc_counts,
                                const SweepOptions &options = {});

/** Print the figure in the benches' common tabular format. */
void printFigure(std::ostream &os, const Figure &figure);

/** Write the figure as CSV (procs plus one column per machine). */
void writeFigureCsv(std::ostream &os, const Figure &figure);

/**
 * Write figure + failures as one JSON document.  Deterministic: a
 * sweep resumed from its journal emits byte-identical output to an
 * uninterrupted run.
 */
void writeFigureJson(std::ostream &os, const SweepResult &result);

/** Write just the failure manifest as a JSON document. */
void writeFailureManifest(std::ostream &os, const Figure &figure,
                          const std::vector<FailedPoint> &failures);

/**
 * Compare an execution-driven figure against its replayed counterpart
 * point by point (same machine order and proc counts required; extra
 * or missing points simply do not pair up and are skipped).  For
 * feedback-negligible figures the report comes back identical == true;
 * for feedback-sensitive ones it quantifies the replay error.  See
 * docs/TRACING.md.
 */
trace::DivergenceReport compareFigures(const Figure &executed,
                                       const Figure &replayed);

} // namespace absim::core

#endif // ABSIM_CORE_FIGURES_HH
