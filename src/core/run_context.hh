/**
 * @file
 * Per-run simulation context: the ownership root for all the mutable
 * state that used to live in process singletons.
 *
 * One RunContext exists per simulation run (runOneImpl creates it
 * alongside the run's EventQueue).  It owns a private copy of
 *
 *  - the check state (counters, validator options, failure handler),
 *  - the trace configuration (category mask + sink), and
 *  - the fault injector
 *
 * and RAII-installs them as the *current* state of the executing
 * thread for the run's duration.  That makes N concurrent runs in one
 * process safe: nothing a run mutates is visible to a run on another
 * thread, and the fiber scheduler and current-process pointer were
 * already thread_local (src/sim/fiber.cc, src/sim/process.cc).
 *
 * Inheritance semantics keep the single-run workflow unchanged:
 *
 *  - check options and the failure handler are *copied* from the
 *    enclosing state, so runOneSafe's throwing handler and a bench's
 *    disabled validators apply inside the run;
 *  - the trace mask and sink are copied, so tracing enabled before
 *    runOne() still traces the run;
 *  - the fault injector is *adopted* (not replaced) when the enclosing
 *    thread already armed a plan: firing state must latch across the
 *    retries of runOneSafe and stay inspectable after the run, exactly
 *    as the chaos suite expects.  An unarmed thread gets a fresh inert
 *    injector, so a plan armed in a concurrent run can never leak in.
 *
 * At destruction the context's check counters are aggregated into the
 * enclosing state and into check::globalCounters(), so "how many
 * invariants ran" stays answerable after a parallel sweep whose worker
 * threads are gone.  Contexts are created and destroyed on the same
 * thread and must not be nested on purpose (a nested run would simply
 * see the outer context as its ambient state, which is well-defined).
 */

#ifndef ABSIM_CORE_RUN_CONTEXT_HH
#define ABSIM_CORE_RUN_CONTEXT_HH

#include <cstdint>
#include <optional>

#include "check/check.hh"
#include "fault/fault.hh"
#include "sim/fiber.hh"
#include "sim/trace.hh"

namespace absim::core {

/** Owns and installs one simulation run's mutable ambient state. */
class RunContext
{
  public:
    RunContext();
    ~RunContext();

    RunContext(const RunContext &) = delete;
    RunContext &operator=(const RunContext &) = delete;

    /** This run's check state (counters tally here until run end). */
    check::State &checkState() { return checkState_; }

    /** This run's trace configuration. */
    sim::Trace &trace() { return trace_; }

    /**
     * The injector active for this run: the context's own inert one,
     * or the enclosing thread's when a plan was armed before the run
     * started (see the adoption rule above).
     */
    fault::Injector &faultInjector() { return *activeInjector_; }

    /** True when the enclosing thread's armed injector was adopted. */
    bool adoptedAmbientInjector() const { return adopted_; }

    /**
     * The fiber-stack pool this run's fibers draw from.  The pool is
     * the executing thread's persistent one (adopted, like an armed
     * injector, never replaced): stacks recycled by one run are what
     * the next run of the sweep reuses instead of allocating.
     */
    sim::FiberStackPool &fiberStackPool() { return *stackPool_; }

    /** @name Per-run fiber-stack accounting (deltas since construction). */
    /// @{
    std::uint64_t fiberStacksAllocated() const
    {
        return stackPool_->allocated() - stackAllocBase_;
    }
    std::uint64_t fiberStacksReused() const
    {
        return stackPool_->reused() - stackReuseBase_;
    }
    /// @}

  private:
    static check::State inheritCheckState();
    static sim::Trace inheritTrace();

    check::State checkState_;
    sim::Trace trace_;
    fault::Injector injector_;
    fault::Injector *activeInjector_ = nullptr;
    bool adopted_;

    sim::FiberStackPool *stackPool_ = nullptr;
    std::uint64_t stackAllocBase_ = 0;
    std::uint64_t stackReuseBase_ = 0;

    check::ScopedState checkScope_;
    sim::ScopedTrace traceScope_;
    std::optional<fault::ScopedInjector> injectorScope_;
};

} // namespace absim::core

#endif // ABSIM_CORE_RUN_CONTEXT_HH
