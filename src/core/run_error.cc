#include "core/run_error.hh"

#include <ostream>
#include <sstream>

namespace absim::core {

std::string
toString(RunErrorKind kind)
{
    switch (kind) {
      case RunErrorKind::Deadlock:
        return "Deadlock";
      case RunErrorKind::BudgetExceeded:
        return "BudgetExceeded";
      case RunErrorKind::CheckFailed:
        return "CheckFailed";
      case RunErrorKind::AppValidationFailed:
        return "AppValidationFailed";
      case RunErrorKind::Panic:
        return "Panic";
    }
    return "?";
}

std::string
RunError::summary() const
{
    // Keep it one line: the journal and the failure manifest embed it.
    const auto newline = message.find('\n');
    return toString(kind) + ": " +
           (newline == std::string::npos ? message
                                         : message.substr(0, newline));
}

std::ostream &
operator<<(std::ostream &os, const RunError &error)
{
    os << "run failed: " << toString(error.kind);
    if (error.attempts > 1)
        os << " (after " << error.attempts << " attempts)";
    os << "\n  " << error.message << "\n";
    if (error.eventsDispatched > 0 || error.simTime > 0)
        os << "  engine: " << error.eventsDispatched
           << " events dispatched, sim time " << error.simTime << " ns\n";
    if (!error.blockedFibers.empty())
        os << "  " << sim::formatBlockedDump(error.blockedFibers) << "\n";
    if (!error.traceExcerpt.empty())
        os << "  trace tail:\n" << error.traceExcerpt;
    return os;
}

} // namespace absim::core
