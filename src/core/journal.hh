/**
 * @file
 * Sweep checkpoint journal: crash-safe JSONL persistence for figure
 * sweeps.
 *
 * Each figure sweep appends one JSON line per finished point (success
 * or failure) to a journal file, flushing after every record and
 * fsyncing periodically (see JournalWriter).  When a figure binary is
 * re-run — after a crash, a SIGKILL between points, or an interactive
 * interrupt — the sweep reloads the journal, skips every point already
 * recorded, and completes only the remainder.  Because the simulator is
 * deterministic and doubles round-trip through "%.17g", a resumed sweep
 * produces byte-identical final JSON to an uninterrupted one.
 *
 * File format (one JSON object per line):
 *
 *   {"absim_journal":1,"title":...,"app":...,"topology":...,"metric":...}
 *   {"procs":8,"target":1.25e+03,"logp":...,"logpc":...}
 *   {"procs":16,"machine":"logp","error":"Deadlock","message":"..."}
 *
 * Success records carry one numeric field per swept machine, keyed by
 * the machine's registry column name.  Sweeps of the classic trio
 * (target, logp, logp+c) use exactly the layout above; a sweep of any
 * other machine set adds a "machines" array to its header line, so a
 * journal can never resume a sweep with different columns.
 *
 * Sharded sweeps (SweepOptions::shard, --shard K/N) write one record
 * per owned (point x machine) work item instead of one per point: a
 * success record carries a single column (the item's machine), failures
 * keep the per-machine failure layout.  The header stamps both the
 * machine columns and the shard spec ("shard":"K/N"), so a shard
 * journal never resumes a mismatched shard, and records are strictly
 * positional — the r-th record of shard K/N is row-major work item
 * K + r*N.  core/journal_merge.hh reassembles N shard journals into the
 * canonical serial journal.
 *
 * The first line identifies the sweep; a journal whose header does not
 * match the running sweep is ignored and rewritten (it belongs to a
 * different figure or an older layout).  A torn trailing line (the
 * process died mid-write, or the line lost its newline) is discarded
 * along with anything after it, and the loader reports the length of
 * the clean prefix so a resume can truncate the tear away before
 * appending — a torn tail is a clean resume point, never corruption.
 * The parser handles exactly what the encoder emits — flat objects of
 * string and number fields plus the header's string array — not
 * general JSON.
 */

#ifndef ABSIM_CORE_JOURNAL_HH
#define ABSIM_CORE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace absim::core {

/** The classic trio's record columns, the layout every journal used
 *  before machine sets became configurable. */
const std::vector<std::string> &defaultJournalColumns();

/**
 * Deterministic shard of a sweep's (point x machine) work grid.
 *
 * Work items are indexed row-major (point-major, machine-minor) over
 * the full grid; shard {index, count} owns item g iff
 * g % count == index.  The default {0, 1} is the unsharded whole.
 */
struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;

    bool sharded() const { return count > 1; }
    bool valid() const { return count >= 1 && index < count; }

    /** True if this shard owns row-major work item @p item. */
    bool owns(std::size_t item) const { return item % count == index; }

    /** "K/N", the CLI/env/header spelling. */
    std::string str() const;

    /** Parse "K/N" with 0 <= K < N; rejects garbage and signs. */
    [[nodiscard]] static bool parse(const std::string &text,
                                    ShardSpec &out);

    bool operator==(const ShardSpec &other) const = default;
};

/** Identity of the sweep a journal belongs to. */
struct JournalHeader
{
    std::string title;
    std::string app;
    std::string topology;
    std::string metric;

    /** Column names of the swept machines; empty for the classic trio
     *  (kept out of the header line for byte-compatibility).  Shard
     *  journals always stamp the columns. */
    std::vector<std::string> machines;

    /** Which shard of the sweep this journal holds; unsharded journals
     *  keep the default (and their legacy header bytes). */
    ShardSpec shard;

    bool operator==(const JournalHeader &other) const = default;
};

/** One journaled point: per-machine values or one failure. */
struct JournalRecord
{
    std::uint32_t procs = 0;

    bool failed = false;

    /** Success payload (failed == false), in sweep column order.  A
     *  shard journal's success records hold exactly one value. */
    std::vector<double> values;

    /** Failure payload (failed == true). */
    std::string machine; ///< Which machine's run failed.
    std::string error;   ///< RunErrorKind name.
    std::string message; ///< One-line failure summary.
    std::string trace;   ///< Bounded trace excerpt ("" = none captured).
};

/** JSON-escape a string (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** Inverse of jsonEscape (\uXXXX limited to latin-1 code points). */
std::string jsonUnescape(const std::string &s);

/** Format a double so it round-trips exactly ("%.17g"). */
std::string formatDouble(double value);

/**
 * Render one record as its journal line (no trailing newline).
 * Success records emit record.values keyed by @p columns (the two must
 * be the same length).
 */
std::string encodeRecord(const JournalRecord &record,
                         const std::vector<std::string> &columns =
                             defaultJournalColumns());

/**
 * Parse one journal line; success records must carry every column in
 * @p columns.
 * @return false if the line is malformed (e.g. torn by a crash).
 */
[[nodiscard]] bool decodeRecord(const std::string &line,
                                JournalRecord &out,
                                const std::vector<std::string> &columns =
                                    defaultJournalColumns());

/**
 * Parse a journal header line (the "absim_journal":1 line).
 * @return false if the line is not a well-formed header.
 */
[[nodiscard]] bool decodeHeader(const std::string &line,
                                JournalHeader &out);

/** What loadJournal()/loadShardJournal() found at the end of the file:
 *  where the valid prefix ends, and whether a torn tail was dropped. */
struct JournalResume
{
    /** A trailing record was torn (malformed or missing its newline)
     *  and dropped together with anything after it. */
    bool tornTail = false;

    /** Byte length of the valid prefix (header + intact records).  The
     *  clean resume point: truncate here before appending. */
    std::uint64_t cleanBytes = 0;
};

/**
 * Load a journal.
 *
 * @return true and the usable records if @p path exists and its header
 *         matches @p expect; false (and no records) otherwise.
 *         Parsing stops at the first malformed or unterminated line;
 *         @p resume (optional) reports the clean-prefix length so the
 *         caller can truncate the tear before appending.
 */
[[nodiscard]] bool loadJournal(const std::string &path,
                               const JournalHeader &expect,
                               const std::vector<std::string> &columns,
                               std::vector<JournalRecord> &out,
                               JournalResume *resume = nullptr);

/** Classic-trio overload of loadJournal. */
[[nodiscard]] bool loadJournal(const std::string &path,
                               const JournalHeader &expect,
                               std::vector<JournalRecord> &out);

/**
 * Load a shard journal (one record per owned (point x machine) item).
 * @p expect.shard must be a valid spec; record r decodes against the
 * single column of row-major item expect.shard.index + r*count.  Same
 * header-match and torn-tail semantics as loadJournal().
 */
[[nodiscard]] bool
loadShardJournal(const std::string &path, const JournalHeader &expect,
                 const std::vector<std::string> &columns,
                 std::vector<JournalRecord> &out,
                 JournalResume *resume = nullptr);

/** Default records-between-fsyncs in JournalWriter: the bounded window
 *  an OS crash (not a process crash — every record is flushed) may
 *  lose.  ABSIM_FSYNC_INTERVAL overrides it (see
 *  journalFsyncInterval()). */
inline constexpr unsigned kJournalFsyncInterval = 8;

/**
 * The journal fsync cadence: ABSIM_FSYNC_INTERVAL (checked via
 * core::envUint — garbage or 0 is a named diagnostic and exit 2),
 * defaulting to kJournalFsyncInterval.  1 fsyncs every record (the
 * durable extreme); larger values trade a wider OS-crash window for
 * fewer fsyncs on sweep-heavy workloads.
 */
[[nodiscard]] unsigned journalFsyncInterval();

/**
 * Durable journal writer: keeps the file open across a sweep, flushes
 * every record to the OS, and fsyncs the header, every
 * journalFsyncInterval() records, and on close — so a record
 * acknowledged to the sweep's in-order frontier survives an OS crash
 * up to the bounded fsync window, and a resume recomputes at most that
 * window.
 *
 * The writer also serves non-sweep line-JSON journals (the serve
 * result cache): startLine() writes an arbitrary header line and
 * appendLine() an arbitrary record line, with the same
 * flush-every-record + periodic-fsync + torn-tail-truncating-resume
 * discipline.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Create/truncate @p path and write + fsync the header line.
     *  @p fsyncEvery 0 (the default) means journalFsyncInterval(). */
    [[nodiscard]] bool start(const std::string &path,
                             const JournalHeader &header,
                             unsigned fsyncEvery = 0);

    /** Like start() but with a caller-rendered header line (no trailing
     *  newline), for journals that are not figure sweeps. */
    [[nodiscard]] bool startLine(const std::string &path,
                                 const std::string &headerLine,
                                 unsigned fsyncEvery = 0);

    /**
     * Resume an existing journal: truncate it to @p cleanBytes (the
     * JournalResume::cleanBytes of the load, dropping any torn tail)
     * and append after that point.
     */
    [[nodiscard]] bool
    resume(const std::string &path, std::uint64_t cleanBytes,
           unsigned fsyncEvery = 0);

    bool isOpen() const { return file_ != nullptr; }

    /** Append one record: written + flushed immediately, fsynced every
     *  fsyncEvery records (no-op when the writer is not open). */
    void append(const JournalRecord &record,
                const std::vector<std::string> &columns =
                    defaultJournalColumns());

    /** Append one caller-rendered record line (no trailing newline);
     *  same flush/fsync discipline as append(). */
    void appendLine(const std::string &line);

    /** Flush + fsync + close; idempotent, also run by the destructor. */
    void close();

  private:
    void sync();

    std::FILE *file_ = nullptr;
    unsigned interval_ = kJournalFsyncInterval;
    unsigned sinceSync_ = 0;
};

/** Create/truncate the journal and write its header line (fsynced). */
void startJournal(const std::string &path, const JournalHeader &header);

/** Append one record, flush and fsync (the one-shot checkpoint write;
 *  sweeps hold a JournalWriter instead). */
void appendJournal(const std::string &path, const JournalRecord &record,
                   const std::vector<std::string> &columns =
                       defaultJournalColumns());

} // namespace absim::core

#endif // ABSIM_CORE_JOURNAL_HH
