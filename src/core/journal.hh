/**
 * @file
 * Sweep checkpoint journal: crash-safe JSONL persistence for figure
 * sweeps.
 *
 * Each figure sweep appends one JSON line per finished point (success
 * or failure) to a journal file, flushing after every record.  When a
 * figure binary is re-run — after a crash, a SIGKILL between points,
 * or an interactive interrupt — the sweep reloads the journal, skips
 * every point already recorded, and completes only the remainder.
 * Because the simulator is deterministic and doubles round-trip
 * through "%.17g", a resumed sweep produces byte-identical final JSON
 * to an uninterrupted one.
 *
 * File format (one JSON object per line):
 *
 *   {"absim_journal":1,"title":...,"app":...,"topology":...,"metric":...}
 *   {"procs":8,"target":1.25e+03,"logp":...,"logpc":...}
 *   {"procs":16,"machine":"logp","error":"Deadlock","message":"..."}
 *
 * Success records carry one numeric field per swept machine, keyed by
 * the machine's registry column name.  Sweeps of the classic trio
 * (target, logp, logp+c) use exactly the layout above; a sweep of any
 * other machine set adds a "machines" array to its header line, so a
 * journal can never resume a sweep with different columns.
 *
 * The first line identifies the sweep; a journal whose header does not
 * match the running sweep is ignored and rewritten (it belongs to a
 * different figure or an older layout).  A torn trailing line (the
 * process died mid-write) is discarded along with anything after it.
 * The parser handles exactly what the encoder emits — flat objects of
 * string and number fields plus the header's string array — not
 * general JSON.
 */

#ifndef ABSIM_CORE_JOURNAL_HH
#define ABSIM_CORE_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace absim::core {

/** The classic trio's record columns, the layout every journal used
 *  before machine sets became configurable. */
const std::vector<std::string> &defaultJournalColumns();

/** Identity of the sweep a journal belongs to. */
struct JournalHeader
{
    std::string title;
    std::string app;
    std::string topology;
    std::string metric;

    /** Column names of the swept machines; empty for the classic trio
     *  (kept out of the header line for byte-compatibility). */
    std::vector<std::string> machines;

    bool operator==(const JournalHeader &other) const = default;
};

/** One journaled point: per-machine values or one failure. */
struct JournalRecord
{
    std::uint32_t procs = 0;

    bool failed = false;

    /** Success payload (failed == false), in sweep column order. */
    std::vector<double> values;

    /** Failure payload (failed == true). */
    std::string machine; ///< Which machine's run failed.
    std::string error;   ///< RunErrorKind name.
    std::string message; ///< One-line failure summary.
};

/** JSON-escape a string (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** Inverse of jsonEscape (\uXXXX limited to latin-1 code points). */
std::string jsonUnescape(const std::string &s);

/** Format a double so it round-trips exactly ("%.17g"). */
std::string formatDouble(double value);

/**
 * Render one record as its journal line (no trailing newline).
 * Success records emit record.values keyed by @p columns (the two must
 * be the same length).
 */
std::string encodeRecord(const JournalRecord &record,
                         const std::vector<std::string> &columns =
                             defaultJournalColumns());

/**
 * Parse one journal line; success records must carry every column in
 * @p columns.
 * @return false if the line is malformed (e.g. torn by a crash).
 */
bool decodeRecord(const std::string &line, JournalRecord &out,
                  const std::vector<std::string> &columns =
                      defaultJournalColumns());

/**
 * Load a journal.
 *
 * @return true and the usable records if @p path exists and its header
 *         matches @p expect; false (and no records) otherwise.
 *         Parsing stops at the first malformed line.
 */
bool loadJournal(const std::string &path, const JournalHeader &expect,
                 const std::vector<std::string> &columns,
                 std::vector<JournalRecord> &out);

/** Classic-trio overload of loadJournal. */
bool loadJournal(const std::string &path, const JournalHeader &expect,
                 std::vector<JournalRecord> &out);

/** Create/truncate the journal and write its header line. */
void startJournal(const std::string &path, const JournalHeader &header);

/** Append one record and flush (the checkpoint write). */
void appendJournal(const std::string &path, const JournalRecord &record,
                   const std::vector<std::string> &columns =
                       defaultJournalColumns());

} // namespace absim::core

#endif // ABSIM_CORE_JOURNAL_HH
