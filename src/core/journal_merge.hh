/**
 * @file
 * Crash-safe reassembly of sharded sweep journals.
 *
 * A sweep run as N shard processes (`--shard K/N`, see
 * core::SweepOptions::shard) leaves N shard journals, each holding the
 * per-(point x machine) records of the row-major work items that shard
 * owns (item g belongs to shard g % N).  mergeJournals() validates the
 * N journals against a common header, interleaves their records back
 * into canonical row-major order, reassembles the per-point records of
 * the serial journal layout, and reports every inconsistency with a
 * named diagnostic:
 *
 *   shard-unreadable        a journal cannot be opened
 *   shard-header-missing    a journal has no (terminated) header line
 *   shard-header-malformed  a header line does not parse
 *   shard-header-mismatch   journals belong to different sweeps
 *   shard-count-mismatch    a header stamps a different shard count
 *   shard-duplicate-index   two journals stamp the same shard index
 *   shard-missing-index     no journal stamps some shard index
 *   shard-torn-tail         (warning) a trailing torn record was dropped
 *   merge-record-malformed  an interior record line does not parse
 *   merge-misplaced-record  a record carries another item's machine
 *   merge-duplicate         the same (point, machine) item twice
 *   merge-procs-mismatch    one point's records disagree on procs
 *   merge-gap               a shard is missing records others go beyond
 *   merge-incomplete-point  the trailing point lacks machine records
 *
 * A merged journal written by writeMergedJournal() is byte-identical to
 * the journal an unsharded serial sweep would have produced, so the
 * existing figure JSON/CSV writers — via a resume that replays the
 * merged journal — emit byte-identical final outputs.
 */

#ifndef ABSIM_CORE_JOURNAL_MERGE_HH
#define ABSIM_CORE_JOURNAL_MERGE_HH

#include <string>
#include <vector>

#include "core/journal.hh"

namespace absim::core {

/** Outcome of mergeJournals(): the canonical journal + diagnostics. */
struct MergeResult
{
    /** Canonical header: shard spec stripped, machine list restored to
     *  the serial layout (empty for the classic trio). */
    JournalHeader header;

    /** Column names of the swept machines (never empty). */
    std::vector<std::string> columns;

    /** Per-point records in canonical row-major order, exactly as the
     *  serial sweep would have journaled them. */
    std::vector<JournalRecord> records;

    /** Named diagnostics (see the file comment); empty means the merge
     *  is usable. */
    std::vector<std::string> errors;

    /** Non-fatal diagnostics (e.g. shard-torn-tail). */
    std::vector<std::string> warnings;

    bool ok() const { return errors.empty(); }
};

/**
 * Merge the shard journals at @p paths (any order; each stamps its own
 * K/N).  Never throws for malformed input — every problem lands in
 * MergeResult::errors as a named diagnostic.
 */
[[nodiscard]] MergeResult
mergeJournals(const std::vector<std::string> &paths);

/**
 * Write @p merge as one journal file (fsynced).  The bytes match the
 * unsharded serial sweep's journal exactly.
 * @return false if the merge has errors or the file cannot be written.
 */
[[nodiscard]] bool writeMergedJournal(const std::string &path,
                                      const MergeResult &merge);

} // namespace absim::core

#endif // ABSIM_CORE_JOURNAL_MERGE_HH
