#include "core/cache_key.hh"

#include "core/journal.hh"
#include "machines/registry.hh"

namespace absim::core {

namespace {

const char *
gapPolicyName(logp::GapPolicy policy)
{
    switch (policy) {
      case logp::GapPolicy::Single:
        return "single";
      case logp::GapPolicy::PerDirection:
        return "per-direction";
      case logp::GapPolicy::BisectionOnly:
        return "bisection";
    }
    return "?";
}

} // namespace

std::string
canonicalRunKey(const RunConfig &config, const sim::RunBudget &budget)
{
    // Fixed field order; every value spelled canonically (registry
    // *name* for the machine, so "logpc" and "logp+c" collapse).  The
    // jsonEscape guards the free-form variant string against embedding
    // a field separator.
    std::string key;
    key.reserve(192);
    key += "app=" + jsonEscape(config.app);
    key += ";n=" + std::to_string(config.params.n);
    key += ";seed=" + std::to_string(config.params.seed);
    key += ";iterations=" + std::to_string(config.params.iterations);
    key += ";variant=" + jsonEscape(config.params.variant);
    key += ";machine=";
    key += mach::specFor(config.machine).name;
    key += ";topology=" + net::toString(config.topology);
    key += ";procs=" + std::to_string(config.procs);
    key += ";gap=";
    key += gapPolicyName(config.gapPolicy);
    key += ";cache_bytes=" + std::to_string(config.cache.bytes);
    key += ";cache_ways=" + std::to_string(config.cache.ways);
    key += ";protocol=" + mach::toString(config.protocol);
    key += ";check=";
    key += config.checkResult ? "1" : "0";
    // Deterministic budget fields only — maxWallSeconds excluded (see
    // the header): a wall deadline decides *whether* the result gets
    // computed, never *what* it is.
    key += ";max_events=" + std::to_string(budget.maxEvents);
    key += ";max_sim_time=" + std::to_string(budget.maxSimTime);
    key += ";stall_limit=" + std::to_string(budget.stallDispatchLimit);
    return key;
}

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
runKeyHash(const RunConfig &config, const sim::RunBudget &budget)
{
    return fnv1a64(canonicalRunKey(config, budget));
}

std::string
formatKeyHex(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return out;
}

bool
parseKeyHex(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    out = value;
    return true;
}

} // namespace absim::core
