/**
 * @file
 * Curve-agreement metrics: how well does an abstraction's curve track the
 * target machine's?  The paper argues in terms of curve *shape* (trend)
 * and absolute gaps; these helpers quantify both so tests and
 * EXPERIMENTS.md can assert the paper's qualitative claims mechanically.
 */

#ifndef ABSIM_CORE_COMPARE_HH
#define ABSIM_CORE_COMPARE_HH

#include <vector>

namespace absim::core {

/**
 * Spearman-style trend agreement in [-1, 1]: rank correlation between two
 * curves sampled at the same x positions.  1 means the curves rise and
 * fall together (the paper's "similar trend / shape").
 */
double trendAgreement(const std::vector<double> &a,
                      const std::vector<double> &b);

/** Mean of pointwise ratios b/a (how pessimistic b is vs a). */
double meanRatio(const std::vector<double> &a, const std::vector<double> &b);

/** Max of pointwise |a-b| / max(a, b, eps). */
double maxRelGap(const std::vector<double> &a, const std::vector<double> &b);

} // namespace absim::core

#endif // ABSIM_CORE_COMPARE_HH
