#include "core/journal_merge.hh"

#include <fstream>
#include <optional>
#include <set>
#include <utility>

namespace absim::core {

namespace {

/** One shard journal, read raw: header + intact record lines. */
struct ShardFile
{
    std::string path;
    JournalHeader header;
    std::vector<std::string> lines;
};

std::string
quoted(const std::string &path)
{
    return "'" + path + "'";
}

/**
 * Read a shard journal's header and record lines.  A torn trailing
 * line (malformed or missing its newline) is dropped with a warning —
 * the same clean-resume-point rule loadJournal() applies; whether the
 * drop matters surfaces later as a merge-gap against the other shards.
 */
bool
readShardFile(const std::string &path, ShardFile &out,
              std::vector<std::string> &errors,
              std::vector<std::string> &warnings)
{
    out.path = path;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        errors.push_back("shard-unreadable: cannot open " + quoted(path));
        return false;
    }
    std::string line;
    if (!std::getline(in, line) || in.eof()) {
        errors.push_back("shard-header-missing: " + quoted(path) +
                         " has no terminated journal header line");
        return false;
    }
    if (!decodeHeader(line, out.header)) {
        errors.push_back("shard-header-malformed: " + quoted(path) +
                         " line 1 is not a journal header");
        return false;
    }
    while (std::getline(in, line)) {
        if (in.eof()) {
            warnings.push_back("shard-torn-tail: " + quoted(path) +
                               " ends in an unterminated record "
                               "(dropped)");
            break;
        }
        out.lines.push_back(line);
    }
    return true;
}

} // namespace

MergeResult
mergeJournals(const std::vector<std::string> &paths)
{
    MergeResult result;
    std::vector<std::string> &errors = result.errors;
    if (paths.empty()) {
        errors.push_back("shard-missing-index: no shard journals given");
        return result;
    }
    const std::uint32_t count = static_cast<std::uint32_t>(paths.size());

    // Read every journal and place it at its header-stamped index.
    std::vector<std::optional<ShardFile>> shards(count);
    for (const std::string &path : paths) {
        ShardFile file;
        if (!readShardFile(path, file, errors, result.warnings))
            continue;
        const ShardSpec shard = file.header.shard;
        if (shard.count != count) {
            errors.push_back("shard-count-mismatch: " + quoted(path) +
                             " stamps shard " + shard.str() + " but " +
                             std::to_string(count) +
                             " journal(s) were given");
            continue;
        }
        if (!shard.valid()) {
            errors.push_back("shard-count-mismatch: " + quoted(path) +
                             " stamps invalid shard spec " + shard.str());
            continue;
        }
        if (shards[shard.index]) {
            errors.push_back("shard-duplicate-index: shard " +
                             shard.str() + " appears in both " +
                             quoted(shards[shard.index]->path) + " and " +
                             quoted(path));
            continue;
        }
        shards[shard.index] = std::move(file);
    }
    for (std::uint32_t s = 0; s < count; ++s)
        if (!shards[s] && errors.empty())
            errors.push_back("shard-missing-index: no journal stamps "
                             "shard " +
                             std::to_string(s) + "/" +
                             std::to_string(count));
    if (!errors.empty())
        return result;

    // All shards must identify the same sweep once the spec is stripped.
    JournalHeader canonical = shards[0]->header;
    canonical.shard = ShardSpec{};
    for (std::uint32_t s = 1; s < count; ++s) {
        JournalHeader stripped = shards[s]->header;
        stripped.shard = ShardSpec{};
        if (!(stripped == canonical))
            errors.push_back("shard-header-mismatch: " +
                             quoted(shards[s]->path) +
                             " belongs to a different sweep than " +
                             quoted(shards[0]->path));
    }
    if (!errors.empty())
        return result;

    result.columns = canonical.machines.empty() ? defaultJournalColumns()
                                                : canonical.machines;
    const std::size_t machine_count = result.columns.size();

    // Serial journals stamp the machine list only for non-default sets;
    // restore that layout so the merged bytes match the serial sweep's.
    if (canonical.machines == defaultJournalColumns())
        canonical.machines.clear();
    result.header = canonical;

    // Shard s holds items s, s+N, s+2N, ... in order, so the furthest
    // item any shard recorded pins the total and every other shard's
    // expected record count.  A shard that stopped short has a gap.
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < count; ++s)
        if (!shards[s]->lines.empty())
            total = std::max(
                total, s +
                           (static_cast<std::uint64_t>(
                                shards[s]->lines.size()) -
                            1) *
                               count +
                           1);
    for (std::uint32_t s = 0; s < count; ++s) {
        const std::uint64_t expected =
            s < total ? (total - s + count - 1) / count : 0;
        if (shards[s]->lines.size() < expected)
            errors.push_back(
                "merge-gap: shard " + std::to_string(s) + "/" +
                std::to_string(count) + " (" + quoted(shards[s]->path) +
                ") holds " + std::to_string(shards[s]->lines.size()) +
                " of " + std::to_string(expected) +
                " records — rerun that shard to completion");
    }
    if (total % machine_count != 0)
        errors.push_back("merge-incomplete-point: the trailing point "
                         "has " +
                         std::to_string(total % machine_count) + " of " +
                         std::to_string(machine_count) +
                         " machine records");
    if (!errors.empty())
        return result;

    // Decode every record into its row-major (point, machine) slot.
    const std::uint64_t points = total / machine_count;
    std::vector<std::vector<JournalRecord>> grid(
        points, std::vector<JournalRecord>(machine_count));
    // Duplicate detection: each (procs, machine) item resolves once.
    std::set<std::pair<std::uint64_t, std::string>> seen;
    for (std::uint32_t s = 0; s < count; ++s) {
        const ShardFile &file = *shards[s];
        for (std::size_t r = 0; r < file.lines.size(); ++r) {
            const std::uint64_t item =
                s + static_cast<std::uint64_t>(r) * count;
            const std::size_t mi = item % machine_count;
            const std::string &line = file.lines[r];
            JournalRecord record;
            std::string key = result.columns[mi];
            if (!decodeRecord(line, record, {result.columns[mi]})) {
                // Not this item's machine: either a record that drifted
                // out of place (e.g. a duplicated line shifting the
                // tail) or plain corruption.
                bool misplaced = false;
                for (std::size_t other = 0;
                     other < machine_count && !misplaced; ++other) {
                    if (other == mi)
                        continue;
                    if (decodeRecord(line, record,
                                     {result.columns[other]})) {
                        misplaced = true;
                        key = result.columns[other];
                    }
                }
                if (!misplaced) {
                    errors.push_back("merge-record-malformed: " +
                                     quoted(file.path) + " line " +
                                     std::to_string(r + 2) +
                                     " does not parse");
                    continue;
                }
                errors.push_back(
                    "merge-misplaced-record: " + quoted(file.path) +
                    " line " + std::to_string(r + 2) + " carries '" +
                    key + "' where item " + std::to_string(item) +
                    " expects '" + result.columns[mi] + "'");
            }
            if (record.failed)
                key = "fail:" + record.machine;
            if (!seen.insert({record.procs, key}).second)
                errors.push_back(
                    "merge-duplicate: " + quoted(file.path) + " line " +
                    std::to_string(r + 2) + " records procs=" +
                    std::to_string(record.procs) + " '" + key +
                    "' a second time");
            grid[item / machine_count][mi] = std::move(record);
        }
    }
    if (!errors.empty())
        return result;

    // Reassemble the serial per-point layout: one success record with
    // every column, or the point's failure records in machine order.
    result.records.reserve(points);
    for (std::uint64_t p = 0; p < points; ++p) {
        const std::uint32_t procs = grid[p][0].procs;
        bool any_failed = false;
        for (std::size_t mi = 0; mi < machine_count; ++mi) {
            if (grid[p][mi].procs != procs)
                errors.push_back(
                    "merge-procs-mismatch: point " + std::to_string(p) +
                    " records procs=" + std::to_string(procs) +
                    " and procs=" + std::to_string(grid[p][mi].procs) +
                    " — the shards swept different grids");
            any_failed = any_failed || grid[p][mi].failed;
        }
        if (!errors.empty())
            continue;
        if (any_failed) {
            for (std::size_t mi = 0; mi < machine_count; ++mi)
                if (grid[p][mi].failed)
                    result.records.push_back(std::move(grid[p][mi]));
        } else {
            JournalRecord record;
            record.procs = procs;
            record.values.reserve(machine_count);
            for (std::size_t mi = 0; mi < machine_count; ++mi)
                record.values.push_back(grid[p][mi].values.empty()
                                            ? 0.0
                                            : grid[p][mi].values[0]);
            result.records.push_back(std::move(record));
        }
    }
    if (!errors.empty())
        result.records.clear();
    return result;
}

bool
writeMergedJournal(const std::string &path, const MergeResult &merge)
{
    if (!merge.ok())
        return false;
    JournalWriter writer;
    if (!writer.start(path, merge.header))
        return false;
    for (const JournalRecord &record : merge.records)
        writer.append(record, merge.columns);
    writer.close();
    return true;
}

} // namespace absim::core
