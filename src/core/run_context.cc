#include "core/run_context.hh"

namespace absim::core {

check::State
RunContext::inheritCheckState()
{
    const check::State &ambient = check::state();
    check::State inherited;
    inherited.options = ambient.options;
    inherited.handler = ambient.handler;
    return inherited; // Counters start at zero: they are per-run.
}

sim::Trace
RunContext::inheritTrace()
{
    sim::Trace &ambient = sim::Trace::instance();
    sim::Trace inherited;
    inherited.setMask(ambient.mask());
    inherited.setSink(&ambient.sink());
    return inherited;
}

RunContext::RunContext()
    : checkState_(inheritCheckState()), trace_(inheritTrace()),
      adopted_(fault::armed()), checkScope_(checkState_),
      traceScope_(trace_)
{
    if (adopted_) {
        activeInjector_ = &fault::injector();
    } else {
        injectorScope_.emplace(injector_);
        activeInjector_ = &injector_;
    }
    stackPool_ = &sim::FiberStackPool::forThisThread();
    stackAllocBase_ = stackPool_->allocated();
    stackReuseBase_ = stackPool_->reused();
}

RunContext::~RunContext()
{
    // Aggregate this run's counters before the scopes (destroyed after
    // this body) uninstall the context from the thread.
    checkScope_.previous().counters += checkState_.counters;
    check::accumulateGlobal(checkState_.counters);
}

} // namespace absim::core
