#include "core/figures.hh"

#include <cstdio>
#include <iomanip>
#include <map>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "core/env.hh"
#include "machines/registry.hh"

namespace absim::core {

std::string
toString(Metric metric)
{
    switch (metric) {
      case Metric::ExecTime:
        return "exec_time";
      case Metric::Latency:
        return "latency";
      case Metric::Contention:
        return "contention";
    }
    return "?";
}

std::vector<mach::MachineKind>
figureMachines(const Figure &figure)
{
    if (figure.machines.empty())
        return mach::defaultFigureMachines();
    return figure.machines;
}

std::vector<std::string>
machineColumns(const std::vector<mach::MachineKind> &machines)
{
    std::vector<std::string> columns;
    columns.reserve(machines.size());
    for (const mach::MachineKind kind : machines)
        columns.emplace_back(mach::specFor(kind).column);
    return columns;
}

std::vector<std::uint32_t>
defaultProcCounts()
{
    return {1, 2, 4, 8, 16, 32};
}

double
metricValue(const stats::Profile &profile, Metric metric)
{
    switch (metric) {
      case Metric::ExecTime:
        return static_cast<double>(profile.execTime()) / 1000.0;
      case Metric::Latency:
        return profile.meanLatency() / 1000.0;
      case Metric::Contention:
        return profile.meanContention() / 1000.0;
    }
    return 0.0;
}

namespace {

/** Resolve the empty machine-list default in one place. */
std::vector<mach::MachineKind>
resolveMachines(const std::vector<mach::MachineKind> &machines)
{
    if (machines.empty())
        return mach::defaultFigureMachines();
    return machines;
}

/** True if @p machines is the classic trio (whose journals stay in the
 *  legacy header layout for byte-compatible resume). */
bool
isDefaultMachineSet(const std::vector<mach::MachineKind> &machines)
{
    return machines == mach::defaultFigureMachines();
}

} // namespace

Figure
sweepFigure(const std::string &title, const RunConfig &base,
            net::TopologyKind topology, Metric metric,
            const std::vector<std::uint32_t> &proc_counts,
            const std::vector<mach::MachineKind> &machines)
{
    Figure figure;
    figure.title = title;
    figure.app = base.app;
    figure.topology = topology;
    figure.metric = metric;
    figure.machines = resolveMachines(machines);

    for (const std::uint32_t p : proc_counts) {
        SeriesPoint point;
        point.procs = p;
        RunConfig config = base;
        config.topology = topology;
        config.procs = p;

        for (const mach::MachineKind kind : figure.machines) {
            config.machine = kind;
            point.values.push_back(metricValue(runOne(config), metric));
        }
        figure.points.push_back(std::move(point));
    }
    return figure;
}

namespace {

/** What one sweep point produced: a complete SeriesPoint, or the
 *  per-machine failures that kept it out of the curve. */
struct PointOutcome
{
    SeriesPoint point;
    std::vector<FailedPoint> failures;
};

/** Resolve SweepOptions::jobs: 0 = auto (ABSIM_JOBS, else serial). */
unsigned
resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    return static_cast<unsigned>(envUint("ABSIM_JOBS", 1, 1, 4096));
}

/** Open the sweep's journal for appending: resume an intact matching
 *  journal (truncating any torn tail away first), start a fresh one
 *  otherwise.  A journal that cannot be opened disables checkpointing
 *  for the run with a warning rather than failing the sweep. */
void
openJournal(JournalWriter &writer, const std::string &path, bool resumed,
            const JournalResume &info, const JournalHeader &header)
{
    const bool ok = resumed ? writer.resume(path, info.cleanBytes)
                            : writer.start(path, header);
    if (!ok)
        std::fprintf(stderr,
                     "warning: cannot write journal '%s'; sweeping "
                     "without checkpoints\n",
                     path.c_str());
}

} // namespace

SweepResult
sweepFigureSafe(const std::string &title, const RunConfig &base,
                net::TopologyKind topology, Metric metric,
                const std::vector<std::uint32_t> &proc_counts,
                const SweepOptions &options)
{
    return sweepFigureParallel(title, base, topology, metric, proc_counts,
                               options);
}

namespace {

/**
 * The sharded executor: runs only the (point x machine) work items the
 * shard owns and journals one positional single-column record per item
 * (see SweepOptions::shard).  Same pool, policy, and in-order-frontier
 * guarantees as the unsharded path, applied per item instead of per
 * point.
 */
SweepResult
sweepFigureSharded(const std::string &title, const RunConfig &base,
                   net::TopologyKind topology, Metric metric,
                   const std::vector<std::uint32_t> &proc_counts,
                   const SweepOptions &options)
{
    const ShardSpec shard = options.shard;
    const std::vector<mach::MachineKind> machines =
        resolveMachines(options.machines);
    const std::vector<std::string> columns = machineColumns(machines);
    const std::size_t machine_count = machines.size();

    SweepResult result;
    result.figure.title = title;
    result.figure.app = base.app;
    result.figure.topology = topology;
    result.figure.metric = metric;
    result.figure.machines = machines;

    // Owned work items, in row-major order.  Item g = p_idx * M + m_idx.
    std::vector<std::size_t> owned;
    for (std::size_t g = 0; g < proc_counts.size() * machine_count; ++g)
        if (shard.owns(g))
            owned.push_back(g);

    // Shard journal headers always stamp the machine columns and the
    // shard spec, so a resume can never cross shards or machine sets.
    JournalHeader header{title, base.app, net::toString(topology),
                         toString(metric), columns, shard};

    /** What one owned item produced (journal replay or fresh run). */
    struct ItemOutcome
    {
        bool failed = false;
        double value = 0.0;
        std::string machine;
        std::string error;
        std::string message;
        std::string trace;
    };
    std::vector<std::optional<ItemOutcome>> items(owned.size());

    // Resume: shard records are positional — the r-th record is owned
    // item r.  A journal that holds more records than the shard owns,
    // or whose procs disagree with the grid, belongs to a different
    // sweep shape and is rewritten from scratch.
    const bool journaling = !options.journalPath.empty();
    JournalWriter writer;
    std::size_t replayed = 0;
    if (journaling) {
        std::vector<JournalRecord> records;
        JournalResume info;
        bool resumed = loadShardJournal(options.journalPath, header,
                                        columns, records, &info);
        if (resumed && records.size() <= owned.size()) {
            for (std::size_t r = 0; resumed && r < records.size(); ++r)
                if (records[r].procs !=
                    proc_counts[owned[r] / machine_count])
                    resumed = false;
        } else {
            resumed = false;
        }
        if (resumed) {
            for (std::size_t r = 0; r < records.size(); ++r) {
                const JournalRecord &rec = records[r];
                ItemOutcome outcome;
                outcome.failed = rec.failed;
                if (rec.failed) {
                    outcome.machine = rec.machine;
                    outcome.error = rec.error;
                    outcome.message = rec.message;
                    outcome.trace = rec.trace;
                } else {
                    outcome.value =
                        rec.values.empty() ? 0.0 : rec.values[0];
                }
                items[r] = outcome;
            }
            replayed = records.size();
        }
        openJournal(writer, options.journalPath, resumed, info, header);
    }

    // Fresh runs for the owned items the journal does not answer.
    std::vector<RunConfig> configs;
    configs.reserve(owned.size() - replayed);
    for (std::size_t r = replayed; r < owned.size(); ++r) {
        RunConfig config = base;
        config.topology = topology;
        config.procs = proc_counts[owned[r] / machine_count];
        config.machine = machines[owned[r] % machine_count];
        configs.push_back(config);
    }

    // In-order frontier, per item: records land in positional order
    // whatever order the pool finishes in, so a crash always leaves a
    // resumable positional prefix.
    std::size_t frontier = replayed;
    auto commitItem = [&](std::size_t r) {
        if (!writer.isOpen())
            return;
        const ItemOutcome &outcome = *items[r];
        const std::size_t g = owned[r];
        const std::uint32_t procs = proc_counts[g / machine_count];
        if (outcome.failed)
            writer.append(JournalRecord{procs, true, {}, outcome.machine,
                                        outcome.error, outcome.message,
                                        outcome.trace},
                          columns);
        else
            writer.append(JournalRecord{procs, false, {outcome.value},
                                        "", "", ""},
                          {columns[g % machine_count]});
    };

    const RunManyCallback onResult = [&](std::size_t i,
                                         const RunResult &run) {
        const std::size_t r = replayed + i;
        ItemOutcome outcome;
        if (run.ok()) {
            outcome.value = metricValue(run.value(), metric);
        } else {
            outcome.failed = true;
            outcome.machine =
                mach::specFor(machines[owned[r] % machine_count]).name;
            outcome.error = toString(run.error().kind);
            outcome.message = run.error().message;
            outcome.trace = run.error().traceExcerpt;
        }
        items[r] = outcome;
        while (frontier < owned.size() && items[frontier]) {
            commitItem(frontier);
            ++frontier;
        }
    };

    (void)runManySafe(configs, options.policy, resolveJobs(options.jobs),
                      onResult);
    writer.close();

    // Partial figure: a point appears once every owned run of it
    // succeeded (unowned columns read 0.0); owned failures go to the
    // manifest and drop the point, and a point with no owned items is
    // simply absent.  The merged journal — not this figure — is the
    // sharded sweep's canonical product.
    for (std::size_t pi = 0; pi < proc_counts.size(); ++pi) {
        SeriesPoint point;
        point.procs = proc_counts[pi];
        point.values.assign(machine_count, 0.0);
        bool any_owned = false;
        bool any_failed = false;
        for (std::size_t mi = 0; mi < machine_count; ++mi) {
            const std::size_t g = pi * machine_count + mi;
            if (!shard.owns(g))
                continue;
            any_owned = true;
            const ItemOutcome &outcome =
                *items[(g - shard.index) / shard.count];
            if (outcome.failed) {
                any_failed = true;
                result.failures.push_back(
                    FailedPoint{point.procs, outcome.machine,
                                outcome.error, outcome.message,
                                outcome.trace});
            } else {
                point.values[mi] = outcome.value;
            }
        }
        if (any_owned && !any_failed)
            result.figure.points.push_back(std::move(point));
    }
    return result;
}

} // namespace

SweepResult
sweepFigureParallel(const std::string &title, const RunConfig &base,
                    net::TopologyKind topology, Metric metric,
                    const std::vector<std::uint32_t> &proc_counts,
                    const SweepOptions &options)
{
    if (!options.shard.valid())
        throw std::invalid_argument("invalid shard spec " +
                                    options.shard.str());
    if (options.shard.sharded())
        return sweepFigureSharded(title, base, topology, metric,
                                  proc_counts, options);
    const std::vector<mach::MachineKind> machines =
        resolveMachines(options.machines);
    const std::vector<std::string> columns = machineColumns(machines);
    const std::size_t machine_count = machines.size();

    SweepResult result;
    result.figure.title = title;
    result.figure.app = base.app;
    result.figure.topology = topology;
    result.figure.metric = metric;
    result.figure.machines = machines;

    // Resume: replay every point the journal already holds.  Journals
    // for the classic trio keep the legacy header (no machine list) so
    // existing checkpoints stay resumable; any other machine set is
    // stamped into the header and never resumes a mismatched sweep.
    JournalHeader header{title, base.app, net::toString(topology),
                         toString(metric), {}, {}};
    if (!isDefaultMachineSet(machines))
        header.machines = columns;
    const bool journaling = !options.journalPath.empty();
    JournalWriter writer;
    std::map<std::uint32_t, SeriesPoint> done;
    std::map<std::uint32_t, std::vector<FailedPoint>> failed;
    if (journaling) {
        std::vector<JournalRecord> records;
        JournalResume info;
        const bool resumed = loadJournal(options.journalPath, header,
                                         columns, records, &info);
        if (resumed) {
            for (JournalRecord &r : records) {
                if (r.failed) {
                    failed[r.procs].push_back(FailedPoint{
                        r.procs, r.machine, r.error, r.message, r.trace});
                } else {
                    done[r.procs] =
                        SeriesPoint{r.procs, std::move(r.values)};
                }
            }
        }
        openJournal(writer, options.journalPath, resumed, info, header);
    }

    // Points the journal does not already answer, in sweep order; one
    // work item per (point, machine) so the pool load-balances across
    // the (much) slower target-machine runs.
    std::vector<std::uint32_t> pending;
    for (const std::uint32_t p : proc_counts)
        if (done.find(p) == done.end() && failed.find(p) == failed.end())
            pending.push_back(p);

    std::vector<RunConfig> configs;
    configs.reserve(pending.size() * machine_count);
    for (const std::uint32_t p : pending) {
        RunConfig config = base;
        config.topology = topology;
        config.procs = p;
        for (const mach::MachineKind kind : machines) {
            config.machine = kind;
            configs.push_back(config);
        }
    }

    std::vector<std::optional<PointOutcome>> outcomes(pending.size());

    // Completion bookkeeping (serialized by runManySafe's callback
    // mutex): assemble a point once all its machine runs are in, and
    // commit journal records through an in-order frontier so the
    // journal's bytes — and its crash-safe prefix property — match the
    // serial sweep's exactly, whatever order the pool finishes in.
    std::vector<std::optional<RunResult>> collected(configs.size());
    std::vector<std::size_t> runsDone(pending.size(), 0);
    std::size_t frontier = 0;

    auto assemblePoint = [&](std::size_t idx) {
        PointOutcome outcome;
        outcome.point.procs = pending[idx];
        outcome.point.values.assign(machine_count, 0.0);
        for (std::size_t mi = 0; mi < machine_count; ++mi) {
            const RunResult &run = *collected[idx * machine_count + mi];
            if (run.ok())
                outcome.point.values[mi] =
                    metricValue(run.value(), metric);
            else
                outcome.failures.push_back(FailedPoint{
                    pending[idx], mach::specFor(machines[mi]).name,
                    toString(run.error().kind), run.error().message,
                    run.error().traceExcerpt});
        }
        return outcome;
    };

    auto commitPoint = [&](std::size_t idx) {
        const PointOutcome &outcome = *outcomes[idx];
        if (!writer.isOpen())
            return;
        if (outcome.failures.empty()) {
            writer.append(JournalRecord{outcome.point.procs, false,
                                        outcome.point.values, "", "", ""},
                          columns);
        } else {
            for (const FailedPoint &f : outcome.failures)
                writer.append(JournalRecord{f.procs, true, {}, f.machine,
                                            f.error, f.message, f.trace},
                              columns);
        }
    };

    const RunManyCallback onResult = [&](std::size_t i,
                                         const RunResult &run) {
        collected[i] = run;
        const std::size_t idx = i / machine_count;
        if (++runsDone[idx] < machine_count)
            return;
        outcomes[idx] = assemblePoint(idx);
        // Release the per-run results as the frontier passes: a long
        // sweep holds at most the out-of-order window's profiles.
        while (frontier < pending.size() && outcomes[frontier]) {
            commitPoint(frontier);
            for (std::size_t mi = 0; mi < machine_count; ++mi)
                collected[frontier * machine_count + mi].reset();
            ++frontier;
        }
    };

    (void)runManySafe(configs, options.policy, resolveJobs(options.jobs),
                      onResult);

    // Assemble the figure in sweep order: journal replays and fresh
    // outcomes interleave exactly as the serial sweep emitted them.
    std::size_t next_pending = 0;
    for (const std::uint32_t p : proc_counts) {
        if (const auto it = done.find(p); it != done.end()) {
            result.figure.points.push_back(it->second);
            continue;
        }
        if (const auto it = failed.find(p); it != failed.end()) {
            // The journal says this point failed; keep the verdict
            // (delete the journal to retry failed points).
            result.failures.insert(result.failures.end(),
                                   it->second.begin(), it->second.end());
            continue;
        }
        const PointOutcome &outcome = *outcomes[next_pending++];
        if (outcome.failures.empty())
            result.figure.points.push_back(outcome.point);
        else
            result.failures.insert(result.failures.end(),
                                   outcome.failures.begin(),
                                   outcome.failures.end());
    }
    return result;
}

void
printFigure(std::ostream &os, const Figure &figure)
{
    const std::vector<mach::MachineKind> machines = figureMachines(figure);
    os << "# " << figure.title << "\n"
       << "# app=" << figure.app
       << " network=" << net::toString(figure.topology)
       << " metric=" << toString(figure.metric) << " (us)\n"
       << std::setw(6) << "procs";
    for (const mach::MachineKind kind : machines)
        os << std::setw(16) << mach::specFor(kind).name;
    os << "\n";
    os << std::fixed << std::setprecision(1);
    for (const SeriesPoint &pt : figure.points) {
        os << std::setw(6) << pt.procs;
        for (std::size_t i = 0; i < machines.size(); ++i)
            os << std::setw(16)
               << (i < pt.values.size() ? pt.values[i] : 0.0);
        os << "\n";
    }
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
}

void
writeFigureCsv(std::ostream &os, const Figure &figure)
{
    const std::vector<std::string> columns =
        machineColumns(figureMachines(figure));
    os << "# " << figure.title << "\n" << "procs";
    for (const std::string &column : columns)
        os << ',' << column;
    os << "\n";
    for (const SeriesPoint &pt : figure.points) {
        os << pt.procs;
        for (std::size_t i = 0; i < columns.size(); ++i)
            os << ',' << (i < pt.values.size() ? pt.values[i] : 0.0);
        os << "\n";
    }
}

namespace {

void
writeFigureMeta(std::ostream &os, const Figure &figure)
{
    os << "\"title\":\"" << jsonEscape(figure.title) << "\","
       << "\"app\":\"" << jsonEscape(figure.app) << "\","
       << "\"topology\":\"" << jsonEscape(net::toString(figure.topology))
       << "\",\"metric\":\"" << jsonEscape(toString(figure.metric))
       << "\"";
}

void
writeFailureArray(std::ostream &os, const std::vector<FailedPoint> &failures)
{
    os << "\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const FailedPoint &f = failures[i];
        os << (i != 0 ? ",\n    " : "\n    ")
           << "{\"procs\":" << f.procs << ",\"machine\":\""
           << jsonEscape(f.machine) << "\",\"error\":\""
           << jsonEscape(f.error) << "\",\"message\":\""
           << jsonEscape(f.message) << "\"";
        // Only captured failures carry a trace: manifests written with
        // capture off keep their historical bytes.
        if (!f.trace.empty())
            os << ",\"trace\":\"" << jsonEscape(f.trace) << "\"";
        os << "}";
    }
    os << (failures.empty() ? "]" : "\n  ]");
}

} // namespace

void
writeFigureJson(std::ostream &os, const SweepResult &result)
{
    const Figure &figure = result.figure;
    const std::vector<std::string> columns =
        machineColumns(figureMachines(figure));
    os << "{\n  ";
    writeFigureMeta(os, figure);
    os << ",\n  \"complete\":" << (result.complete() ? "true" : "false");
    os << ",\n  \"points\":[";
    for (std::size_t i = 0; i < figure.points.size(); ++i) {
        const SeriesPoint &pt = figure.points[i];
        os << (i != 0 ? ",\n    " : "\n    ") << "{\"procs\":" << pt.procs;
        for (std::size_t c = 0; c < columns.size(); ++c)
            os << ",\"" << columns[c] << "\":"
               << formatDouble(c < pt.values.size() ? pt.values[c] : 0.0);
        os << "}";
    }
    os << (figure.points.empty() ? "]" : "\n  ]") << ",\n  ";
    writeFailureArray(os, result.failures);
    os << "\n}\n";
}

void
writeFailureManifest(std::ostream &os, const Figure &figure,
                     const std::vector<FailedPoint> &failures)
{
    os << "{\n  ";
    writeFigureMeta(os, figure);
    os << ",\n  ";
    writeFailureArray(os, failures);
    os << "\n}\n";
}

trace::DivergenceReport
compareFigures(const Figure &executed, const Figure &replayed)
{
    trace::DivergenceReport report;
    report.figure = executed.app + "_" + net::toString(executed.topology) +
                    "_" + toString(executed.metric);
    report.metric = toString(executed.metric);

    const std::vector<std::string> columns =
        machineColumns(figureMachines(executed));
    for (const SeriesPoint &exec_pt : executed.points) {
        const SeriesPoint *rep_pt = nullptr;
        for (const SeriesPoint &candidate : replayed.points)
            if (candidate.procs == exec_pt.procs) {
                rep_pt = &candidate;
                break;
            }
        if (rep_pt == nullptr)
            continue; // Unpaired point: nothing to compare.
        const std::size_t cols =
            std::min({columns.size(), exec_pt.values.size(),
                      rep_pt->values.size()});
        for (std::size_t c = 0; c < cols; ++c)
            report.add(columns[c], exec_pt.procs, exec_pt.values[c],
                       rep_pt->values[c]);
    }
    report.finalize();
    return report;
}

} // namespace absim::core
