#include "core/figures.hh"

#include <iomanip>
#include <map>
#include <ostream>

#include "core/journal.hh"

namespace absim::core {

std::string
toString(Metric metric)
{
    switch (metric) {
      case Metric::ExecTime:
        return "exec_time";
      case Metric::Latency:
        return "latency";
      case Metric::Contention:
        return "contention";
    }
    return "?";
}

std::vector<std::uint32_t>
defaultProcCounts()
{
    return {1, 2, 4, 8, 16, 32};
}

double
metricValue(const stats::Profile &profile, Metric metric)
{
    switch (metric) {
      case Metric::ExecTime:
        return static_cast<double>(profile.execTime()) / 1000.0;
      case Metric::Latency:
        return profile.meanLatency() / 1000.0;
      case Metric::Contention:
        return profile.meanContention() / 1000.0;
    }
    return 0.0;
}

Figure
sweepFigure(const std::string &title, const RunConfig &base,
            net::TopologyKind topology, Metric metric,
            const std::vector<std::uint32_t> &proc_counts)
{
    Figure figure;
    figure.title = title;
    figure.app = base.app;
    figure.topology = topology;
    figure.metric = metric;

    for (const std::uint32_t p : proc_counts) {
        SeriesPoint point;
        point.procs = p;
        RunConfig config = base;
        config.topology = topology;
        config.procs = p;

        config.machine = mach::MachineKind::Target;
        point.target = metricValue(runOne(config), metric);
        config.machine = mach::MachineKind::LogP;
        point.logp = metricValue(runOne(config), metric);
        config.machine = mach::MachineKind::LogPC;
        point.logpc = metricValue(runOne(config), metric);

        figure.points.push_back(point);
    }
    return figure;
}

SweepResult
sweepFigureSafe(const std::string &title, const RunConfig &base,
                net::TopologyKind topology, Metric metric,
                const std::vector<std::uint32_t> &proc_counts,
                const SweepOptions &options)
{
    SweepResult result;
    result.figure.title = title;
    result.figure.app = base.app;
    result.figure.topology = topology;
    result.figure.metric = metric;

    // Resume: replay every point the journal already holds.
    const JournalHeader header{title, base.app, net::toString(topology),
                               toString(metric)};
    std::map<std::uint32_t, SeriesPoint> done;
    std::map<std::uint32_t, std::vector<FailedPoint>> failed;
    if (!options.journalPath.empty()) {
        std::vector<JournalRecord> records;
        if (loadJournal(options.journalPath, header, records)) {
            for (const JournalRecord &r : records) {
                if (r.failed) {
                    failed[r.procs].push_back(FailedPoint{
                        r.procs, r.machine, r.error, r.message});
                } else {
                    done[r.procs] = SeriesPoint{r.procs, r.target,
                                                r.logp, r.logpc};
                }
            }
        } else {
            startJournal(options.journalPath, header);
        }
    }

    struct MachineRun
    {
        mach::MachineKind kind;
        const char *name;
        double SeriesPoint::*slot;
    };
    static constexpr MachineRun kMachines[] = {
        {mach::MachineKind::Target, "target", &SeriesPoint::target},
        {mach::MachineKind::LogP, "logp", &SeriesPoint::logp},
        {mach::MachineKind::LogPC, "logp+c", &SeriesPoint::logpc},
    };

    for (const std::uint32_t p : proc_counts) {
        if (const auto it = done.find(p); it != done.end()) {
            result.figure.points.push_back(it->second);
            continue;
        }
        if (const auto it = failed.find(p); it != failed.end()) {
            // The journal says this point failed; keep the verdict
            // (delete the journal to retry failed points).
            result.failures.insert(result.failures.end(),
                                   it->second.begin(), it->second.end());
            continue;
        }

        SeriesPoint point;
        point.procs = p;
        RunConfig config = base;
        config.topology = topology;
        config.procs = p;

        std::vector<FailedPoint> point_failures;
        for (const MachineRun &m : kMachines) {
            config.machine = m.kind;
            RunResult run = runOneSafe(config, options.policy);
            if (run.ok())
                point.*(m.slot) = metricValue(run.value(), metric);
            else
                point_failures.push_back(
                    FailedPoint{p, m.name, toString(run.error().kind),
                                run.error().message});
        }

        if (point_failures.empty()) {
            result.figure.points.push_back(point);
            if (!options.journalPath.empty())
                appendJournal(options.journalPath,
                              JournalRecord{p, false, point.target,
                                            point.logp, point.logpc,
                                            "", "", ""});
        } else {
            for (const FailedPoint &f : point_failures) {
                result.failures.push_back(f);
                if (!options.journalPath.empty())
                    appendJournal(options.journalPath,
                                  JournalRecord{p, true, 0.0, 0.0, 0.0,
                                                f.machine, f.error,
                                                f.message});
            }
        }
    }
    return result;
}

void
printFigure(std::ostream &os, const Figure &figure)
{
    os << "# " << figure.title << "\n"
       << "# app=" << figure.app
       << " network=" << net::toString(figure.topology)
       << " metric=" << toString(figure.metric) << " (us)\n"
       << std::setw(6) << "procs" << std::setw(16) << "target"
       << std::setw(16) << "logp" << std::setw(16) << "logp+c" << "\n";
    os << std::fixed << std::setprecision(1);
    for (const SeriesPoint &pt : figure.points) {
        os << std::setw(6) << pt.procs << std::setw(16) << pt.target
           << std::setw(16) << pt.logp << std::setw(16) << pt.logpc
           << "\n";
    }
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
}

void
writeFigureCsv(std::ostream &os, const Figure &figure)
{
    os << "# " << figure.title << "\n"
       << "procs,target,logp,logpc\n";
    for (const SeriesPoint &pt : figure.points)
        os << pt.procs << ',' << pt.target << ',' << pt.logp << ','
           << pt.logpc << "\n";
}

namespace {

void
writeFigureMeta(std::ostream &os, const Figure &figure)
{
    os << "\"title\":\"" << jsonEscape(figure.title) << "\","
       << "\"app\":\"" << jsonEscape(figure.app) << "\","
       << "\"topology\":\"" << jsonEscape(net::toString(figure.topology))
       << "\",\"metric\":\"" << jsonEscape(toString(figure.metric))
       << "\"";
}

void
writeFailureArray(std::ostream &os, const std::vector<FailedPoint> &failures)
{
    os << "\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const FailedPoint &f = failures[i];
        os << (i != 0 ? ",\n    " : "\n    ")
           << "{\"procs\":" << f.procs << ",\"machine\":\""
           << jsonEscape(f.machine) << "\",\"error\":\""
           << jsonEscape(f.error) << "\",\"message\":\""
           << jsonEscape(f.message) << "\"}";
    }
    os << (failures.empty() ? "]" : "\n  ]");
}

} // namespace

void
writeFigureJson(std::ostream &os, const SweepResult &result)
{
    const Figure &figure = result.figure;
    os << "{\n  ";
    writeFigureMeta(os, figure);
    os << ",\n  \"complete\":" << (result.complete() ? "true" : "false");
    os << ",\n  \"points\":[";
    for (std::size_t i = 0; i < figure.points.size(); ++i) {
        const SeriesPoint &pt = figure.points[i];
        os << (i != 0 ? ",\n    " : "\n    ")
           << "{\"procs\":" << pt.procs
           << ",\"target\":" << formatDouble(pt.target)
           << ",\"logp\":" << formatDouble(pt.logp)
           << ",\"logpc\":" << formatDouble(pt.logpc) << "}";
    }
    os << (figure.points.empty() ? "]" : "\n  ]") << ",\n  ";
    writeFailureArray(os, result.failures);
    os << "\n}\n";
}

void
writeFailureManifest(std::ostream &os, const Figure &figure,
                     const std::vector<FailedPoint> &failures)
{
    os << "{\n  ";
    writeFigureMeta(os, figure);
    os << ",\n  ";
    writeFailureArray(os, failures);
    os << "\n}\n";
}

} // namespace absim::core
