#include "core/figures.hh"

#include <iomanip>
#include <ostream>

namespace absim::core {

std::string
toString(Metric metric)
{
    switch (metric) {
      case Metric::ExecTime:
        return "exec_time";
      case Metric::Latency:
        return "latency";
      case Metric::Contention:
        return "contention";
    }
    return "?";
}

std::vector<std::uint32_t>
defaultProcCounts()
{
    return {1, 2, 4, 8, 16, 32};
}

double
metricValue(const stats::Profile &profile, Metric metric)
{
    switch (metric) {
      case Metric::ExecTime:
        return static_cast<double>(profile.execTime()) / 1000.0;
      case Metric::Latency:
        return profile.meanLatency() / 1000.0;
      case Metric::Contention:
        return profile.meanContention() / 1000.0;
    }
    return 0.0;
}

Figure
sweepFigure(const std::string &title, const RunConfig &base,
            net::TopologyKind topology, Metric metric,
            const std::vector<std::uint32_t> &proc_counts)
{
    Figure figure;
    figure.title = title;
    figure.app = base.app;
    figure.topology = topology;
    figure.metric = metric;

    for (const std::uint32_t p : proc_counts) {
        SeriesPoint point;
        point.procs = p;
        RunConfig config = base;
        config.topology = topology;
        config.procs = p;

        config.machine = mach::MachineKind::Target;
        point.target = metricValue(runOne(config), metric);
        config.machine = mach::MachineKind::LogP;
        point.logp = metricValue(runOne(config), metric);
        config.machine = mach::MachineKind::LogPC;
        point.logpc = metricValue(runOne(config), metric);

        figure.points.push_back(point);
    }
    return figure;
}

void
printFigure(std::ostream &os, const Figure &figure)
{
    os << "# " << figure.title << "\n"
       << "# app=" << figure.app
       << " network=" << net::toString(figure.topology)
       << " metric=" << toString(figure.metric) << " (us)\n"
       << std::setw(6) << "procs" << std::setw(16) << "target"
       << std::setw(16) << "logp" << std::setw(16) << "logp+c" << "\n";
    os << std::fixed << std::setprecision(1);
    for (const SeriesPoint &pt : figure.points) {
        os << std::setw(6) << pt.procs << std::setw(16) << pt.target
           << std::setw(16) << pt.logp << std::setw(16) << pt.logpc
           << "\n";
    }
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
}

void
writeFigureCsv(std::ostream &os, const Figure &figure)
{
    os << "# " << figure.title << "\n"
       << "procs,target,logp,logpc\n";
    for (const SeriesPoint &pt : figure.points)
        os << pt.procs << ',' << pt.target << ',' << pt.logp << ','
           << pt.logpc << "\n";
}

} // namespace absim::core
