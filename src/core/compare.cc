#include "core/compare.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "check/check.hh"

namespace absim::core {

namespace {

std::vector<double>
ranks(const std::vector<double> &v)
{
    std::vector<std::size_t> order(v.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return v[a] < v[b];
                     });
    std::vector<double> r(v.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos)
        r[order[pos]] = static_cast<double>(pos);
    return r;
}

} // namespace

double
trendAgreement(const std::vector<double> &a, const std::vector<double> &b)
{
    ABSIM_CHECK_EQ(a.size(), b.size(),
                   "curves must have the same number of points");
    if (a.size() < 2)
        return 1.0;
    const auto ra = ranks(a);
    const auto rb = ranks(b);
    const double n = static_cast<double>(a.size());
    const double mean = (n - 1.0) / 2.0;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = ra[i] - mean;
        const double db = rb[i] - mean;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va == 0.0 || vb == 0.0)
        return 1.0; // A flat curve agrees with anything in trend.
    return cov / std::sqrt(va * vb);
}

double
meanRatio(const std::vector<double> &a, const std::vector<double> &b)
{
    ABSIM_CHECK_EQ(a.size(), b.size(),
                   "curves must have the same number of points");
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] <= 0.0)
            continue;
        sum += b[i] / a[i];
        ++count;
    }
    return count ? sum / static_cast<double>(count) : 1.0;
}

double
maxRelGap(const std::vector<double> &a, const std::vector<double> &b)
{
    ABSIM_CHECK_EQ(a.size(), b.size(),
                   "curves must have the same number of points");
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale = std::max({a[i], b[i], 1e-12});
        worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
    }
    return worst;
}

} // namespace absim::core
