#include "core/journal.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace absim::core {

const std::vector<std::string> &
defaultJournalColumns()
{
    static const std::vector<std::string> columns = {"target", "logp",
                                                     "logpc"};
    return columns;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u':
            if (i + 4 < s.size()) {
                out += static_cast<char>(
                    std::stoul(s.substr(i + 1, 4), nullptr, 16));
                i += 4;
            }
            break;
          default:
            out += s[i];
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

namespace {

/**
 * Pull the value of @p key out of a flat JSON object line emitted by
 * this module.  Returns false if the key is absent.  String values are
 * returned unescaped; numeric values as their raw token.
 */
bool
extractField(const std::string &line, const std::string &key,
             std::string &value, bool &was_string)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + needle.size();
    if (i >= line.size())
        return false;
    if (line[i] == '"') {
        // String value: scan to the closing unescaped quote.
        std::string raw;
        for (++i; i < line.size(); ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                raw += line[i];
                raw += line[i + 1];
                ++i;
            } else if (line[i] == '"') {
                value = jsonUnescape(raw);
                was_string = true;
                return true;
            } else {
                raw += line[i];
            }
        }
        return false; // Unterminated string: torn line.
    }
    // Numeric (or bare) token: scan to the delimiter.
    const auto end = line.find_first_of(",}", i);
    if (end == std::string::npos)
        return false;
    value = line.substr(i, end - i);
    was_string = false;
    return !value.empty();
}

bool
extractString(const std::string &line, const std::string &key,
              std::string &value)
{
    bool was_string = false;
    return extractField(line, key, value, was_string) && was_string;
}

bool
extractDouble(const std::string &line, const std::string &key,
              double &value)
{
    std::string token;
    bool was_string = false;
    if (!extractField(line, key, token, was_string) || was_string)
        return false;
    char *end = nullptr;
    value = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
}

bool
extractUint(const std::string &line, const std::string &key,
            std::uint64_t &value)
{
    std::string token;
    bool was_string = false;
    if (!extractField(line, key, token, was_string) || was_string)
        return false;
    char *end = nullptr;
    value = std::strtoull(token.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

/**
 * Parse the header's optional "machines":["a","b",...] array.  Returns
 * true with an empty @p out when the field is absent (classic layout).
 */
bool
extractStringArray(const std::string &line, const std::string &key,
                   std::vector<std::string> &out)
{
    out.clear();
    const std::string needle = "\"" + key + "\":[";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return true;
    std::size_t i = pos + needle.size();
    if (i < line.size() && line[i] == ']')
        return true;
    while (i < line.size()) {
        if (line[i] != '"')
            return false;
        std::string raw;
        for (++i; i < line.size() && line[i] != '"'; ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                raw += line[i];
                raw += line[i + 1];
                ++i;
            } else {
                raw += line[i];
            }
        }
        if (i >= line.size())
            return false; // Unterminated string: torn line.
        out.push_back(jsonUnescape(raw));
        ++i; // Past the closing quote.
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        return i < line.size() && line[i] == ']';
    }
    return false;
}

std::string
encodeHeader(const JournalHeader &header)
{
    std::string out =
        "{\"absim_journal\":1,\"title\":\"" + jsonEscape(header.title) +
        "\",\"app\":\"" + jsonEscape(header.app) + "\",\"topology\":\"" +
        jsonEscape(header.topology) + "\",\"metric\":\"" +
        jsonEscape(header.metric) + "\"";
    // The classic trio keeps the legacy header line (no machine list)
    // so pre-existing journals remain resumable byte-for-byte.
    if (!header.machines.empty()) {
        out += ",\"machines\":[";
        for (std::size_t i = 0; i < header.machines.size(); ++i) {
            if (i != 0)
                out += ',';
            out += "\"" + jsonEscape(header.machines[i]) + "\"";
        }
        out += "]";
    }
    return out + "}";
}

} // namespace

std::string
encodeRecord(const JournalRecord &record,
             const std::vector<std::string> &columns)
{
    std::string out = "{\"procs\":" + std::to_string(record.procs);
    if (record.failed) {
        out += ",\"machine\":\"" + jsonEscape(record.machine) +
               "\",\"error\":\"" + jsonEscape(record.error) +
               "\",\"message\":\"" + jsonEscape(record.message) + "\"";
    } else {
        for (std::size_t i = 0; i < columns.size(); ++i) {
            const double v =
                i < record.values.size() ? record.values[i] : 0.0;
            out += ",\"" + columns[i] + "\":" + formatDouble(v);
        }
    }
    return out + "}";
}

bool
decodeRecord(const std::string &line, JournalRecord &out,
             const std::vector<std::string> &columns)
{
    if (line.empty() || line.front() != '{' || line.back() != '}')
        return false;
    std::uint64_t procs = 0;
    if (!extractUint(line, "procs", procs))
        return false;
    out = JournalRecord{};
    out.procs = static_cast<std::uint32_t>(procs);
    if (extractString(line, "error", out.error)) {
        out.failed = true;
        return extractString(line, "machine", out.machine) &&
               extractString(line, "message", out.message);
    }
    out.values.assign(columns.size(), 0.0);
    for (std::size_t i = 0; i < columns.size(); ++i)
        if (!extractDouble(line, columns[i], out.values[i]))
            return false;
    return true;
}

bool
loadJournal(const std::string &path, const JournalHeader &expect,
            const std::vector<std::string> &columns,
            std::vector<JournalRecord> &out)
{
    out.clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    JournalHeader found;
    if (line.find("\"absim_journal\":1") == std::string::npos ||
        !extractString(line, "title", found.title) ||
        !extractString(line, "app", found.app) ||
        !extractString(line, "topology", found.topology) ||
        !extractString(line, "metric", found.metric) ||
        !extractStringArray(line, "machines", found.machines) ||
        !(found == expect))
        return false;
    while (std::getline(in, line)) {
        JournalRecord record;
        if (!decodeRecord(line, record, columns))
            break; // Torn trailing write: drop it and everything after.
        out.push_back(std::move(record));
    }
    return true;
}

bool
loadJournal(const std::string &path, const JournalHeader &expect,
            std::vector<JournalRecord> &out)
{
    return loadJournal(path, expect, defaultJournalColumns(), out);
}

void
startJournal(const std::string &path, const JournalHeader &header)
{
    std::ofstream out(path, std::ios::trunc);
    out << encodeHeader(header) << "\n" << std::flush;
}

void
appendJournal(const std::string &path, const JournalRecord &record,
              const std::vector<std::string> &columns)
{
    std::ofstream out(path, std::ios::app);
    out << encodeRecord(record, columns) << "\n" << std::flush;
}

} // namespace absim::core
