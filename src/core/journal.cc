#include "core/journal.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include <unistd.h> // fsync, truncate

#include "core/env.hh"

namespace absim::core {

const std::vector<std::string> &
defaultJournalColumns()
{
    static const std::vector<std::string> columns = {"target", "logp",
                                                     "logpc"};
    return columns;
}

unsigned
journalFsyncInterval()
{
    // Re-read per open (not cached): a long-lived service that opens
    // journals over its lifetime honors the environment it was started
    // with, and tests can vary the knob without process restarts.
    return static_cast<unsigned>(envUint(
        "ABSIM_FSYNC_INTERVAL", kJournalFsyncInterval, 1, 1u << 20));
}

std::string
ShardSpec::str() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

bool
ShardSpec::parse(const std::string &text, ShardSpec &out)
{
    const auto slash = text.find('/');
    if (slash == std::string::npos)
        return false;
    std::uint64_t k = 0;
    std::uint64_t n = 0;
    if (!parseUint(text.substr(0, slash).c_str(), k) ||
        !parseUint(text.substr(slash + 1).c_str(), n))
        return false;
    if (n < 1 || k >= n || n > std::numeric_limits<std::uint32_t>::max())
        return false;
    out.index = static_cast<std::uint32_t>(k);
    out.count = static_cast<std::uint32_t>(n);
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u':
            if (i + 4 < s.size()) {
                out += static_cast<char>(
                    std::stoul(s.substr(i + 1, 4), nullptr, 16));
                i += 4;
            }
            break;
          default:
            out += s[i];
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

namespace {

/**
 * Pull the value of @p key out of a flat JSON object line emitted by
 * this module.  Returns false if the key is absent.  String values are
 * returned unescaped; numeric values as their raw token.
 */
bool
extractField(const std::string &line, const std::string &key,
             std::string &value, bool &was_string)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + needle.size();
    if (i >= line.size())
        return false;
    if (line[i] == '"') {
        // String value: scan to the closing unescaped quote.
        std::string raw;
        for (++i; i < line.size(); ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                raw += line[i];
                raw += line[i + 1];
                ++i;
            } else if (line[i] == '"') {
                value = jsonUnescape(raw);
                was_string = true;
                return true;
            } else {
                raw += line[i];
            }
        }
        return false; // Unterminated string: torn line.
    }
    // Numeric (or bare) token: scan to the delimiter.
    const auto end = line.find_first_of(",}", i);
    if (end == std::string::npos)
        return false;
    value = line.substr(i, end - i);
    was_string = false;
    return !value.empty();
}

bool
extractString(const std::string &line, const std::string &key,
              std::string &value)
{
    bool was_string = false;
    return extractField(line, key, value, was_string) && was_string;
}

bool
extractDouble(const std::string &line, const std::string &key,
              double &value)
{
    std::string token;
    bool was_string = false;
    if (!extractField(line, key, token, was_string) || was_string)
        return false;
    // The checked parser from core/env: rejects empty tokens, trailing
    // junk and non-finite values, exactly the torn-line semantics the
    // loader wants.
    return parseDouble(token.c_str(), value);
}

bool
extractUint(const std::string &line, const std::string &key,
            std::uint64_t &value)
{
    std::string token;
    bool was_string = false;
    if (!extractField(line, key, token, was_string) || was_string)
        return false;
    return parseUint(token.c_str(), value);
}

/**
 * Parse the header's optional "machines":["a","b",...] array.  Returns
 * true with an empty @p out when the field is absent (classic layout).
 */
bool
extractStringArray(const std::string &line, const std::string &key,
                   std::vector<std::string> &out)
{
    out.clear();
    const std::string needle = "\"" + key + "\":[";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return true;
    std::size_t i = pos + needle.size();
    if (i < line.size() && line[i] == ']')
        return true;
    while (i < line.size()) {
        if (line[i] != '"')
            return false;
        std::string raw;
        for (++i; i < line.size() && line[i] != '"'; ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                raw += line[i];
                raw += line[i + 1];
                ++i;
            } else {
                raw += line[i];
            }
        }
        if (i >= line.size())
            return false; // Unterminated string: torn line.
        out.push_back(jsonUnescape(raw));
        ++i; // Past the closing quote.
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        return i < line.size() && line[i] == ']';
    }
    return false;
}

std::string
encodeHeader(const JournalHeader &header)
{
    std::string out =
        "{\"absim_journal\":1,\"title\":\"" + jsonEscape(header.title) +
        "\",\"app\":\"" + jsonEscape(header.app) + "\",\"topology\":\"" +
        jsonEscape(header.topology) + "\",\"metric\":\"" +
        jsonEscape(header.metric) + "\"";
    // The classic trio keeps the legacy header line (no machine list)
    // so pre-existing journals remain resumable byte-for-byte.
    if (!header.machines.empty()) {
        out += ",\"machines\":[";
        for (std::size_t i = 0; i < header.machines.size(); ++i) {
            if (i != 0)
                out += ',';
            out += '"';
            out += jsonEscape(header.machines[i]);
            out += '"';
        }
        out += "]";
    }
    if (header.shard.sharded())
        out += ",\"shard\":\"" + header.shard.str() + "\"";
    return out + "}";
}

/**
 * The shared body of loadJournal/loadShardJournal: @p columnsFor yields
 * the column layout record r must decode against.
 */
template <typename ColumnsFor>
bool
loadJournalImpl(const std::string &path, const JournalHeader &expect,
                ColumnsFor &&columnsFor, std::vector<JournalRecord> &out,
                JournalResume *resume)
{
    out.clear();
    if (resume)
        *resume = JournalResume{};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string line;
    // The header must be intact *and* newline-terminated; a journal
    // torn inside its header holds nothing usable.
    if (!std::getline(in, line) || in.eof())
        return false;
    JournalHeader found;
    if (!decodeHeader(line, found) || !(found == expect))
        return false;
    std::uint64_t bytes = line.size() + 1;
    bool torn = false;
    while (std::getline(in, line)) {
        // A final line that lost its newline is treated as torn even if
        // it parses: appending after it would weld two records into one
        // unreadable line.  The resume point is the last intact record.
        const bool terminated = !in.eof();
        JournalRecord record;
        if (!terminated || !decodeRecord(line, record, columnsFor(out.size()))) {
            torn = true;
            break;
        }
        bytes += line.size() + 1;
        out.push_back(std::move(record));
    }
    if (resume) {
        resume->tornTail = torn;
        resume->cleanBytes = bytes;
    }
    return true;
}

} // namespace

std::string
encodeRecord(const JournalRecord &record,
             const std::vector<std::string> &columns)
{
    std::string out = "{\"procs\":" + std::to_string(record.procs);
    if (record.failed) {
        out += ",\"machine\":\"" + jsonEscape(record.machine) +
               "\",\"error\":\"" + jsonEscape(record.error) +
               "\",\"message\":\"" + jsonEscape(record.message) + "\"";
        // Only stamped when captured: journals written without trace
        // sinks keep their historical bytes.
        if (!record.trace.empty())
            out += ",\"trace\":\"" + jsonEscape(record.trace) + "\"";
    } else {
        for (std::size_t i = 0; i < columns.size(); ++i) {
            const double v =
                i < record.values.size() ? record.values[i] : 0.0;
            out += ",\"" + columns[i] + "\":" + formatDouble(v);
        }
    }
    return out + "}";
}

bool
decodeRecord(const std::string &line, JournalRecord &out,
             const std::vector<std::string> &columns)
{
    if (line.empty() || line.front() != '{' || line.back() != '}')
        return false;
    std::uint64_t procs = 0;
    if (!extractUint(line, "procs", procs))
        return false;
    out = JournalRecord{};
    out.procs = static_cast<std::uint32_t>(procs);
    if (extractString(line, "error", out.error)) {
        out.failed = true;
        // "trace" is optional (only captured failures carry it).
        (void)extractString(line, "trace", out.trace);
        return extractString(line, "machine", out.machine) &&
               extractString(line, "message", out.message);
    }
    out.values.assign(columns.size(), 0.0);
    for (std::size_t i = 0; i < columns.size(); ++i)
        if (!extractDouble(line, columns[i], out.values[i]))
            return false;
    return true;
}

bool
decodeHeader(const std::string &line, JournalHeader &out)
{
    out = JournalHeader{};
    if (line.find("\"absim_journal\":1") == std::string::npos ||
        !extractString(line, "title", out.title) ||
        !extractString(line, "app", out.app) ||
        !extractString(line, "topology", out.topology) ||
        !extractString(line, "metric", out.metric) ||
        !extractStringArray(line, "machines", out.machines))
        return false;
    std::string shard;
    if (extractString(line, "shard", shard))
        return ShardSpec::parse(shard, out.shard);
    return true;
}

bool
loadJournal(const std::string &path, const JournalHeader &expect,
            const std::vector<std::string> &columns,
            std::vector<JournalRecord> &out, JournalResume *resume)
{
    return loadJournalImpl(
        path, expect,
        [&](std::size_t) -> const std::vector<std::string> & {
            return columns;
        },
        out, resume);
}

bool
loadJournal(const std::string &path, const JournalHeader &expect,
            std::vector<JournalRecord> &out)
{
    return loadJournal(path, expect, defaultJournalColumns(), out);
}

bool
loadShardJournal(const std::string &path, const JournalHeader &expect,
                 const std::vector<std::string> &columns,
                 std::vector<JournalRecord> &out, JournalResume *resume)
{
    out.clear();
    if (!expect.shard.valid() || columns.empty())
        return false;
    const ShardSpec shard = expect.shard;
    return loadJournalImpl(
        path, expect,
        [&](std::size_t r) -> std::vector<std::string> {
            // Record r covers row-major item index + r*count; its one
            // success column is that item's machine.
            const std::uint64_t item =
                shard.index + static_cast<std::uint64_t>(r) * shard.count;
            return {columns[item % columns.size()]};
        },
        out, resume);
}

bool
JournalWriter::start(const std::string &path, const JournalHeader &header,
                     unsigned fsyncEvery)
{
    return startLine(path, encodeHeader(header), fsyncEvery);
}

bool
JournalWriter::startLine(const std::string &path,
                         const std::string &headerLine, unsigned fsyncEvery)
{
    close();
    interval_ = fsyncEvery != 0 ? fsyncEvery : journalFsyncInterval();
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        return false;
    const std::string line = headerLine + "\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
    // The header is durable before the first record: a merge or resume
    // must never see records under a lost header.
    sync();
    return true;
}

bool
JournalWriter::resume(const std::string &path, std::uint64_t cleanBytes,
                      unsigned fsyncEvery)
{
    close();
    interval_ = fsyncEvery != 0 ? fsyncEvery : journalFsyncInterval();
    // Drop any torn tail before appending: writing after a record that
    // lost its newline would weld the two into one unreadable line.
    if (::truncate(path.c_str(), static_cast<off_t>(cleanBytes)) != 0)
        return false;
    file_ = std::fopen(path.c_str(), "ab");
    return file_ != nullptr;
}

void
JournalWriter::append(const JournalRecord &record,
                      const std::vector<std::string> &columns)
{
    appendLine(encodeRecord(record, columns));
}

void
JournalWriter::appendLine(const std::string &line)
{
    if (file_ == nullptr)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fwrite("\n", 1, 1, file_);
    std::fflush(file_);
    if (++sinceSync_ >= interval_)
        sync();
}

void
JournalWriter::sync()
{
    if (file_ != nullptr) {
        ::fsync(fileno(file_));
        sinceSync_ = 0;
    }
}

void
JournalWriter::close()
{
    if (file_ == nullptr)
        return;
    std::fflush(file_);
    sync();
    std::fclose(file_);
    file_ = nullptr;
}

void
startJournal(const std::string &path, const JournalHeader &header)
{
    JournalWriter writer;
    (void)writer.start(path, header);
}

void
appendJournal(const std::string &path, const JournalRecord &record,
              const std::vector<std::string> &columns)
{
    std::FILE *file = std::fopen(path.c_str(), "ab");
    if (file == nullptr)
        return;
    const std::string line = encodeRecord(record, columns) + "\n";
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
    ::fsync(fileno(file));
    std::fclose(file);
}

} // namespace absim::core
