/**
 * @file
 * Checked numeric parsing for environment knobs and simple argv values.
 *
 * Every ABSIM_* environment variable that used to go through atoi() or
 * a bare strtol() funnels through these helpers instead: garbage,
 * negative or out-of-range values produce a named diagnostic
 * ("error: invalid ABSIM_MAX_PROCS value 'abc' ...") and exit status 2,
 * matching the run_cli flag-validation contract, instead of silently
 * becoming 0 and capping a sweep to nothing.  An unset (or empty)
 * variable always yields the caller's fallback.
 */

#ifndef ABSIM_CORE_ENV_HH
#define ABSIM_CORE_ENV_HH

#include <cstdint>
#include <limits>

#include "core/journal.hh" // ShardSpec

namespace absim::core {

/**
 * Parse a base-10 unsigned integer.  Rejects empty strings, signs,
 * leading/trailing garbage and overflow.
 * @return true and @p out on success.
 */
[[nodiscard]] bool parseUint(const char *text, std::uint64_t &out);

/** Parse a finite decimal number; rejects empty/garbage/trailing junk. */
[[nodiscard]] bool parseDouble(const char *text, double &out);

/**
 * Read an unsigned integer environment knob.  Unset/empty yields
 * @p fallback; a malformed value or one outside [min, max] prints a
 * diagnostic naming the variable and exits 2.
 */
[[nodiscard]] std::uint64_t
envUint(const char *name, std::uint64_t fallback, std::uint64_t min = 0,
        std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

/** Read a non-negative floating-point environment knob (same contract
 *  as envUint). */
[[nodiscard]] double envDouble(const char *name, double fallback,
                               double min = 0.0);

/**
 * Read a string environment knob (directory paths, feature toggles).
 * The one sanctioned getenv() outside this funnel's own implementation
 * (absim_lint rule G1 flags any other use).
 * @return nullptr when the variable is unset or empty.
 */
[[nodiscard]] const char *envString(const char *name);

/**
 * Read a shard spec ("K/N", 0 <= K < N) environment knob, e.g.
 * ABSIM_SHARD=1/4.  Unset/empty yields the unsharded default; a
 * malformed spec prints a diagnostic and exits 2.
 */
[[nodiscard]] ShardSpec envShard(const char *name);

} // namespace absim::core

#endif // ABSIM_CORE_ENV_HH
