/**
 * @file
 * The experiment driver: run one (application x machine x topology x P)
 * combination end to end and return its SPASM profile.  This is the core
 * of the reproduction — the apparatus the paper uses to compare the
 * three machine characterizations.
 */

#ifndef ABSIM_CORE_EXPERIMENT_HH
#define ABSIM_CORE_EXPERIMENT_HH

#include <string>

#include "apps/app.hh"
#include "logp/gate.hh"
#include "machines/machine.hh"
#include "net/topology.hh"
#include "stats/overheads.hh"

namespace absim::core {

/** Everything needed to reproduce one simulation run. */
struct RunConfig
{
    std::string app = "fft";
    apps::AppParams params;
    mach::MachineKind machine = mach::MachineKind::Target;
    net::TopologyKind topology = net::TopologyKind::Full;
    std::uint32_t procs = 8;
    logp::GapPolicy gapPolicy = logp::GapPolicy::Single;
    mach::CacheConfig cache; ///< Cached machines' geometry.
    mach::ProtocolKind protocol =
        mach::ProtocolKind::Berkeley; ///< Target-machine protocol.
    bool checkResult = true; ///< Validate numerics after the run.
};

/**
 * Build engine + heap + machine + runtime, run the application, validate
 * the result, and return its profile (with wall-clock cost filled in).
 *
 * @throws std::runtime_error if the application's check fails.
 */
stats::Profile runOne(const RunConfig &config);

} // namespace absim::core

#endif // ABSIM_CORE_EXPERIMENT_HH
