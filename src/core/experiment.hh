/**
 * @file
 * The experiment driver: run one (application x machine x topology x P)
 * combination end to end and return its SPASM profile.  This is the core
 * of the reproduction — the apparatus the paper uses to compare the
 * three machine characterizations.
 *
 * Two entry points exist.  runOne() is the raw driver: any failure
 * (deadlock, budget, invariant, validation) escapes as an exception.
 * runOneSafe() is the resilient driver sweeps use: it installs a run
 * budget and the deadlock watchdog, classifies every failure into the
 * RunError taxonomy, and applies a policy-driven retry (a CheckFailed
 * point is re-run with a perturbed RNG seed) so one bad point degrades
 * gracefully instead of aborting a 20-figure sweep.
 */

#ifndef ABSIM_CORE_EXPERIMENT_HH
#define ABSIM_CORE_EXPERIMENT_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/run_error.hh"
#include "logp/gate.hh"
#include "machines/machine.hh"
#include "net/topology.hh"
#include "stats/overheads.hh"

namespace absim::core {

/**
 * How the driver obtains a run's reference stream.
 *
 * Execute is the paper's execution-driven mode.  Record executes and
 * additionally captures the shared-reference trace into traceDir.
 * Replay feeds a previously recorded trace through the configured
 * machine without executing the application — with record-on-miss: a
 * missing/torn/non-matching trace file makes the point execute (and
 * record), so a replay sweep is self-priming.  A trace is recorded per
 * (app, params, procs) point and is machine-independent; see
 * docs/TRACING.md.
 */
enum class RunMode : std::uint8_t
{
    Execute,
    Record,
    Replay,
};

/** Everything needed to reproduce one simulation run. */
struct RunConfig
{
    std::string app = "fft";
    apps::AppParams params;
    mach::MachineKind machine = mach::MachineKind::Target;
    net::TopologyKind topology = net::TopologyKind::Full;
    std::uint32_t procs = 8;
    logp::GapPolicy gapPolicy = logp::GapPolicy::Single;
    mach::CacheConfig cache; ///< Cached machines' geometry.
    mach::ProtocolKind protocol =
        mach::ProtocolKind::Berkeley; ///< Target-machine protocol.
    bool checkResult = true; ///< Validate numerics after the run.
    RunMode mode = RunMode::Execute;
    std::string traceDir = "traces"; ///< Trace store for Record/Replay.
};

/** Thrown by runOne() when the application's result check fails. */
class AppValidationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Build engine + heap + machine + runtime, run the application, validate
 * the result, and return its profile (with wall-clock cost filled in).
 *
 * @throws AppValidationError (a std::runtime_error) if the
 *         application's check fails; whatever else the run raises.
 */
stats::Profile runOne(const RunConfig &config);

/** How runOneSafe() guards and retries a run. */
struct RunPolicy
{
    /**
     * Budget installed on the engine for every attempt.  The default
     * enables only the deadlock watchdog: 10M dispatches without
     * sim-time progress is far beyond anything a healthy simulation
     * does (the clock normally advances every few hundred dispatches).
     */
    sim::RunBudget budget{/*maxEvents=*/0, /*maxSimTime=*/0,
                          /*maxWallSeconds=*/0.0,
                          /*stallDispatchLimit=*/10'000'000};

    /** Total attempts (first run + retries). */
    int maxAttempts = 2;

    /** Retry CheckFailed runs with a perturbed workload seed. */
    bool retryCheckFailures = true;

    /** Also retry AppValidationFailed runs. */
    bool retryAppValidation = false;

    /** Added to params.seed on each retry (any nonzero value works;
     *  this one is the 64-bit golden-ratio increment). */
    std::uint64_t seedPerturbation = 0x9e3779b97f4a7c15ull;

    /**
     * Backoff before each retry: attempt k sleeps
     * min(retryBackoffMs << (k-1), retryBackoffCapMs) milliseconds —
     * capped deterministic exponential, no jitter (the simulator is
     * deterministic; a retry storm against a shared host is the only
     * thing being damped).  0 (the default) retries immediately.
     */
    std::uint32_t retryBackoffMs = 0;

    /** Upper bound of the exponential backoff. */
    std::uint32_t retryBackoffCapMs = 1000;

    /**
     * Trace categories (sim::TraceCategory bits) captured per attempt
     * into a bounded tail sink; on failure the excerpt lands in
     * RunError::traceExcerpt (and from there in failure manifests and
     * serve error responses).  0 (the default) captures nothing and
     * leaves the thread's ambient trace in charge.
     */
    std::uint32_t traceMask = 0;

    /** Tail bound (bytes) of the captured trace. */
    std::size_t traceLimit = 4096;
};

using RunResult = Result<stats::Profile, RunError>;

/**
 * Resilient variant of runOne(): never throws for simulation-level
 * failures.  Installs policy.budget on the engine, classifies failures
 * into the RunError taxonomy (Deadlock, BudgetExceeded, CheckFailed,
 * AppValidationFailed, Panic) and retries per policy.  ABSIM_CHECK
 * failures are captured via a scoped throwing handler, so the
 * invariant checkers degrade to a structured error instead of
 * aborting the process.
 */
[[nodiscard]] RunResult runOneSafe(const RunConfig &config,
                                   const RunPolicy &policy = {});

/**
 * Completion callback of runManySafe: invoked exactly once per config
 * with its index and result.  Calls are serialized under an internal
 * mutex but arrive in *completion* order, not index order.
 */
using RunManyCallback =
    std::function<void(std::size_t index, const RunResult &result)>;

/**
 * Run every config under runOneSafe() on a fixed pool of @p jobs
 * threads and return the results in config order.
 *
 * Each run executes inside its own RunContext (installed by
 * runOneImpl), so concurrent runs share no mutable simulator state.
 * Results are deterministic and independent of @p jobs: the simulator
 * is seeded per config, and results are keyed by index, never by
 * completion order.  Worker threads inherit the calling thread's check
 * *options*; an armed fault plan deliberately does NOT propagate
 * across threads (fault state is per-thread — see fault::injector()),
 * so with jobs > 1 every run is fault-free unless its own thread arms
 * a plan.
 *
 * @param jobs  Worker threads; 0 or 1 runs serially on the calling
 *              thread (then an armed plan and the ambient trace apply,
 *              exactly as with plain runOneSafe).  Clamped to the
 *              number of configs.
 */
[[nodiscard]] std::vector<RunResult>
runManySafe(const std::vector<RunConfig> &configs,
            const RunPolicy &policy = {}, unsigned jobs = 1,
            const RunManyCallback &onResult = {});

} // namespace absim::core

#endif // ABSIM_CORE_EXPERIMENT_HH
