/**
 * @file
 * Structured run failures and the Result type returned by
 * core::runOneSafe().
 *
 * A 20-figure sweep must survive a single bad point: instead of letting
 * a wedged fiber or a failed invariant abort the whole figure binary,
 * runOneSafe() classifies every failure into this taxonomy and returns
 * it as a value the sweep layer can journal, report and route around
 * (see docs/ROBUSTNESS.md).
 */

#ifndef ABSIM_CORE_RUN_ERROR_HH
#define ABSIM_CORE_RUN_ERROR_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/watchdog.hh"

namespace absim::core {

/** Why a simulation run failed. */
enum class RunErrorKind
{
    /** All fibers blocked / no sim-time progress (watchdog fired). */
    Deadlock,

    /** A RunBudget limit (events, sim time, wall clock) tripped. */
    BudgetExceeded,

    /** An ABSIM_CHECK invariant failed (coherence, conservation, ...). */
    CheckFailed,

    /** The application's numerical result check failed. */
    AppValidationFailed,

    /** Any other exception escaped the run. */
    Panic,
};

std::string toString(RunErrorKind kind);

/** Everything known about one failed run. */
struct RunError
{
    RunErrorKind kind = RunErrorKind::Panic;
    std::string message;

    /** Engine state when the failure surfaced (0 if unknown). */
    std::uint64_t eventsDispatched = 0;
    sim::Tick simTime = 0;

    /** Blocked-fiber dump (Deadlock / BudgetExceeded). */
    std::vector<sim::BlockedProcessInfo> blockedFibers;

    /** Attempts consumed, including retries (>= 1). */
    int attempts = 1;

    /** Bounded tail of the final attempt's trace, captured when the
     *  policy asked for it (RunPolicy::traceMask); "" otherwise. */
    std::string traceExcerpt;

    /** One-line "Kind: message" summary. */
    std::string summary() const;
};

/** Multi-line human-readable report (kind, engine state, fiber dump). */
std::ostream &operator<<(std::ostream &os, const RunError &error);

/**
 * Minimal success-or-error sum type (std::expected is C++23; this is
 * the subset the harness needs).  T and E must be distinct types.
 */
template <typename T, typename E>
class [[nodiscard]] Result
{
  public:
    Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
    Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}

    bool ok() const { return data_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &value() { return std::get<0>(data_); }
    const T &value() const { return std::get<0>(data_); }

    E &error() { return std::get<1>(data_); }
    const E &error() const { return std::get<1>(data_); }

  private:
    std::variant<T, E> data_;
};

} // namespace absim::core

#endif // ABSIM_CORE_RUN_ERROR_HH
