/**
 * @file
 * EP — the NAS "embarrassingly parallel" kernel.
 *
 * Each processor independently generates pseudo-random pairs, maps them
 * through the Marsaglia polar method to Gaussian deviates and tallies
 * them into ten concentric annuli.  Computation dominates communication
 * by orders of magnitude (the paper's highest compute-to-communication
 * ratio).  The only sharing is the final reduction, implemented as the
 * paper's appendix describes: a chain of condition-variable waits —
 * processor i spins on a shared flag until processor i-1 has deposited
 * its partial sums.  On the cache-less LogP machine every spin iteration
 * is a remote reference, which is exactly the latency inflation of
 * Figure 3.
 */

#ifndef ABSIM_APPS_EP_HH
#define ABSIM_APPS_EP_HH

#include <array>
#include <cstdint>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class EpApp : public App
{
  public:
    static constexpr std::uint32_t kAnnuli = 10;

    std::string name() const override { return "ep"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

    /** Native reference tally for @p pairs pairs under @p seed. */
    static std::array<std::uint64_t, kAnnuli>
    referenceCounts(std::uint64_t pairs, std::uint64_t seed,
                    std::uint32_t procs);

  private:
    std::uint64_t pairs_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;

    /** Shared tally, ten annulus counters (written under the chain). */
    rt::SharedArray<std::uint64_t> sums_;
    /** Completion chain: holds the id of the next processor to deposit. */
    std::unique_ptr<rt::Flag> turn_;
};

} // namespace absim::apps

#endif // ABSIM_APPS_EP_HH
