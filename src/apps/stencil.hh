/**
 * @file
 * STENCIL — 2-D Jacobi relaxation (extension beyond the paper's suite).
 *
 * The paper's Section 7 calls for "further study with a wider suite of
 * applications" to probe which characteristics suit the abstractions.
 * A near-neighbor stencil is the canonical *communication-local*
 * workload: with rows block-distributed, each processor exchanges only
 * its boundary rows with its two neighbors.  On the real machine those
 * messages traverse one link; the bisection-bandwidth g charges them as
 * if they crossed the bisection — so the stencil maximizes the g
 * pessimism the paper demonstrates with EP, while having FFT-like
 * regular structure.
 *
 * The kernel really relaxes the grid and is checked against a native
 * double-precision reference.
 */

#ifndef ABSIM_APPS_STENCIL_HH
#define ABSIM_APPS_STENCIL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class StencilApp : public App
{
  public:
    std::string name() const override { return "stencil"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

    /** Native reference: @p sweeps Jacobi sweeps over the same grid. */
    static std::vector<double> reference(std::uint64_t n,
                                         std::uint64_t seed,
                                         std::uint32_t sweeps);

  private:
    std::uint64_t n_ = 0;       ///< Grid is n x n.
    std::uint32_t sweeps_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;

    rt::SharedArray<double> gridA_;
    rt::SharedArray<double> gridB_;
    std::unique_ptr<rt::Barrier> barrier_;
    bool resultInA_ = true;
};

} // namespace absim::apps

#endif // ABSIM_APPS_STENCIL_HH
