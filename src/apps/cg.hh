/**
 * @file
 * CG — the NAS conjugate-gradient kernel.
 *
 * Solves A x = b for a randomly structured sparse symmetric positive-
 * definite matrix using a fixed number of CG iterations.  Rows are
 * statically block-assigned to processors (the paper's "certain number
 * of rows ... assigned at compile time"), but the sparse structure makes
 * the gather of p[col] in the matrix-vector product *irregular and input
 * dependent* — the communication cannot be optimized statically, which
 * is why CG shows the big LogP-vs-LogP+C gaps of Figures 15/17.
 *
 * Dot products use a shared partial-sum array and barriers; the scalars
 * (alpha, beta, rho) are written by processor 0 and read by everyone —
 * classic producer-consumer sharing.
 */

#ifndef ABSIM_APPS_CG_HH
#define ABSIM_APPS_CG_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class CgApp : public App
{
  public:
    std::string name() const override { return "cg"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

    /** Sparse matrix in CSR form (native; see DESIGN.md on read-only
     *  program data). */
    struct Csr
    {
        std::uint64_t n = 0;
        std::vector<std::uint64_t> rowPtr;
        std::vector<std::uint32_t> col;
        std::vector<double> val;
    };

    /** Deterministic random sparse SPD matrix. */
    static Csr makeMatrix(std::uint64_t n, std::uint64_t seed);

  private:
    std::uint64_t n_ = 0;
    std::uint32_t iters_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;

    Csr a_;

    // CG vectors, block-distributed by row.
    rt::SharedArray<double> x_, r_, pvec_, q_;
    // Sparse matrix in shared memory (read-only after setup).
    rt::SharedArray<double> aval_;
    rt::SharedArray<std::uint32_t> acol_;
    // Reduction scratch: one slot per processor (padded to a block).
    rt::SharedArray<double> partial_;
    // Scalars: [0]=rho, [1]=alpha, [2]=beta, [3]=rho_new.
    rt::SharedArray<double> scalars_;
    std::unique_ptr<rt::Barrier> barrier_;
};

} // namespace absim::apps

#endif // ABSIM_APPS_CG_HH
