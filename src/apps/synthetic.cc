#include "apps/synthetic.hh"

#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultOps = 512;
constexpr std::uint64_t kCyclesBetweenOps = 20;

} // namespace

void
SyntheticApp::setup(rt::Runtime &rt, rt::SharedHeap &heap,
                    const AppParams &params)
{
    opsPerProc_ = params.n ? params.n : kDefaultOps;
    seed_ = params.seed;
    procs_ = rt.procs();

    if (params.variant.empty() || params.variant == "uniform")
        pattern_ = Pattern::Uniform;
    else if (params.variant == "private")
        pattern_ = Pattern::Private;
    else if (params.variant == "neighbor")
        pattern_ = Pattern::Neighbor;
    else if (params.variant == "hotspot")
        pattern_ = Pattern::Hotspot;
    else
        throw std::invalid_argument("unknown synthetic variant: " +
                                    params.variant);

    // Blocked placement: slot s belongs to node s / kSlotsPerNode.
    slots_ = rt::SharedArray<std::uint64_t>(
        heap, kSlotsPerNode * procs_, rt::Placement::Blocked);
    for (std::uint64_t s = 0; s < slots_.size(); ++s)
        slots_.raw(s) = 0;
}

void
SyntheticApp::worker(rt::Proc &p)
{
    const std::uint32_t me = p.node();
    sim::Rng rng(seed_ * 999331 + me);
    for (std::uint64_t i = 0; i < opsPerProc_; ++i) {
        std::uint32_t target_node = me;
        switch (pattern_) {
          case Pattern::Private:
            break;
          case Pattern::Neighbor:
            target_node = (me + 1) % procs_;
            break;
          case Pattern::Uniform:
            target_node = static_cast<std::uint32_t>(rng.below(procs_));
            break;
          case Pattern::Hotspot:
            target_node = 0;
            break;
        }
        const std::uint64_t slot = target_node * kSlotsPerNode +
                                   rng.below(kSlotsPerNode);
        slots_.fetchAdd(p, slot, 1);
        p.compute(kCyclesBetweenOps);
    }
}

void
SyntheticApp::check() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s = 0; s < slots_.size(); ++s)
        total += slots_.raw(s);
    if (total != opsPerProc_ * procs_) {
        std::ostringstream msg;
        msg << "SYNTHETIC lost updates: " << total << " of "
            << opsPerProc_ * procs_;
        throw std::runtime_error(msg.str());
    }
}

} // namespace absim::apps
