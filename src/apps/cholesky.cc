#include "apps/cholesky.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/check.hh"
#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultOrder = 192;
constexpr std::uint32_t kOffDiagPerCol = 4;
constexpr std::uint64_t kCyclesPerMacc = 3;
constexpr std::uint64_t kCyclesPerSqrtDiv = 20;

} // namespace

CholeskyApp::Symbolic
CholeskyApp::makeProblem(std::uint64_t n, std::uint64_t seed)
{
    sim::Rng rng(seed * 292929 + 5);

    // Random symmetric pattern, then force diagonal dominance => SPD.
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    for (std::uint64_t j = 0; j < n; ++j) {
        for (std::uint32_t k = 0; k < kOffDiagPerCol; ++k) {
            const auto i = static_cast<std::uint64_t>(rng.below(n));
            if (i == j)
                continue;
            const double v = -(0.01 + 0.49 * rng.uniform());
            a[i][j] += v;
            a[j][i] += v;
        }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        double mag = 0.0;
        for (std::uint64_t j = 0; j < n; ++j)
            mag += std::abs(a[i][j]);
        a[i][i] = mag + 1.0;
    }

    // Fill pattern by simulated elimination on the boolean lower
    // triangle: if L[k][j] and L[i][j] (i >= k > j) then L[i][k].
    std::vector<std::vector<bool>> pat(n, std::vector<bool>(n, false));
    for (std::uint64_t j = 0; j < n; ++j) {
        pat[j][j] = true;
        for (std::uint64_t i = j + 1; i < n; ++i)
            if (a[i][j] != 0.0)
                pat[i][j] = true;
    }
    for (std::uint64_t j = 0; j < n; ++j)
        for (std::uint64_t k = j + 1; k < n; ++k)
            if (pat[k][j])
                for (std::uint64_t i = k; i < n; ++i)
                    if (pat[i][j])
                        pat[i][k] = true;

    Symbolic sym;
    sym.n = n;
    sym.colPtr.assign(n + 1, 0);
    sym.rowPos.assign(n, std::vector<std::int32_t>(n, -1));
    sym.depCount.assign(n, 0);
    sym.dense = a;
    for (std::uint64_t j = 0; j < n; ++j) {
        sym.colPtr[j + 1] = sym.colPtr[j];
        for (std::uint64_t i = j; i < n; ++i) {
            if (!pat[i][j])
                continue;
            sym.rowPos[j][i] =
                static_cast<std::int32_t>(sym.rowIdx.size() -
                                          sym.colPtr[j]);
            sym.rowIdx.push_back(static_cast<std::uint32_t>(i));
            sym.initial.push_back(a[i][j]);
            ++sym.colPtr[j + 1];
            if (i > j)
                ++sym.depCount[i]; // cmod(i, j) will arrive.
        }
    }
    return sym;
}

void
CholeskyApp::setup(rt::Runtime &rt, rt::SharedHeap &heap,
                   const AppParams &params)
{
    n_ = params.n ? params.n : kDefaultOrder;
    seed_ = params.seed;
    procs_ = rt.procs();

    sym_ = makeProblem(n_, seed_);

    val_ = rt::SharedArray<double>(heap, sym_.initial.size(),
                                   rt::Placement::Interleaved);
    dep_ = rt::SharedArray<std::uint64_t>(heap, n_,
                                          rt::Placement::Interleaved);
    queue_ = rt::SharedArray<std::int32_t>(heap, n_,
                                           rt::Placement::Interleaved);
    qHead_ = rt::SharedArray<std::uint64_t>(heap, 1,
                                            rt::Placement::OnNode, 0);
    qTail_ = rt::SharedArray<std::uint64_t>(heap, 1,
                                            rt::Placement::OnNode, 0);
    done_ = rt::SharedArray<std::uint64_t>(heap, 1, rt::Placement::OnNode,
                                           0);
    qLock_ = std::make_unique<rt::SpinLock>(heap, 0);
    colLock_.clear();
    for (std::uint64_t j = 0; j < n_; ++j)
        colLock_.push_back(std::make_unique<rt::SpinLock>(
            heap, static_cast<net::NodeId>(j % procs_)));

    for (std::size_t k = 0; k < sym_.initial.size(); ++k)
        val_.raw(k) = sym_.initial[k];
    for (std::uint64_t j = 0; j < n_; ++j)
        dep_.raw(j) = sym_.depCount[j];

    // Seed the queue with the initially ready columns (no dependencies).
    std::uint64_t tail = 0;
    for (std::uint64_t j = 0; j < n_; ++j)
        if (sym_.depCount[j] == 0)
            queue_.raw(tail++) = static_cast<std::int32_t>(j);
    qHead_.raw(0) = 0;
    qTail_.raw(0) = tail;
    done_.raw(0) = 0;
}

std::int32_t
CholeskyApp::tryPop(rt::Proc &p)
{
    qLock_->lock(p);
    const std::uint64_t head = qHead_.read(p, 0);
    const std::uint64_t tail = qTail_.read(p, 0);
    std::int32_t job = -1;
    if (head < tail) {
        job = queue_.read(p, head % n_);
        qHead_.write(p, 0, head + 1);
    }
    qLock_->unlock(p);
    return job;
}

void
CholeskyApp::push(rt::Proc &p, std::uint32_t column)
{
    qLock_->lock(p);
    const std::uint64_t tail = qTail_.read(p, 0);
    queue_.write(p, tail % n_, static_cast<std::int32_t>(column));
    qTail_.write(p, 0, tail + 1);
    qLock_->unlock(p);
}

void
CholeskyApp::worker(rt::Proc &p)
{
    rt::Backoff idle;
    for (;;) {
        p.beginPhase("schedule");
        if (done_.read(p, 0) == n_)
            return;
        const std::int32_t job = tryPop(p);
        if (job < 0) {
            idle.pause(p);
            continue;
        }
        idle = rt::Backoff{};
        p.beginPhase("factor");
        const auto j = static_cast<std::uint64_t>(job);
        const std::uint64_t base = sym_.colPtr[j];
        const std::uint64_t count = sym_.colPtr[j + 1] - base;

        // cdiv(j): scale the column by the square root of its diagonal.
        const double diag = val_.read(p, base);
        const double root = std::sqrt(diag);
        p.compute(kCyclesPerSqrtDiv);
        val_.write(p, base, root);
        std::vector<double> lcol(count);
        lcol[0] = root;
        for (std::uint64_t s = 1; s < count; ++s) {
            const double v = val_.read(p, base + s) / root;
            p.compute(kCyclesPerSqrtDiv);
            val_.write(p, base + s, v);
            lcol[s] = v;
        }

        // cmod(k, j) for every k in struct(j): right-looking updates.
        for (std::uint64_t s = 1; s < count; ++s) {
            const std::uint32_t k = sym_.rowIdx[base + s];
            const double ljk = lcol[s];
            colLock_[k]->lock(p);
            for (std::uint64_t t = s; t < count; ++t) {
                const std::uint32_t i = sym_.rowIdx[base + t];
                const std::int32_t pos = sym_.rowPos[k][i];
                ABSIM_CHECK(pos >= 0,
                            "fill closure violated: L(" << i << "," << k
                                                        << ") missing");
                const std::uint64_t slot =
                    sym_.colPtr[k] + static_cast<std::uint64_t>(pos);
                const double cur = val_.read(p, slot);
                val_.write(p, slot, cur - lcol[t] * ljk);
                p.compute(kCyclesPerMacc);
            }
            colLock_[k]->unlock(p);
            // Column k has received one of its pending updates.
            const std::uint64_t before =
                dep_.fetchAdd(p, k, static_cast<std::uint64_t>(-1));
            if (before == 1)
                push(p, k);
        }

        done_.fetchAdd(p, 0, 1);
    }
}

void
CholeskyApp::check() const
{
    // Reconstruct dense L and verify L * L^T == A.
    std::vector<std::vector<double>> l(n_, std::vector<double>(n_, 0.0));
    for (std::uint64_t j = 0; j < n_; ++j)
        for (std::uint64_t s = sym_.colPtr[j]; s < sym_.colPtr[j + 1];
             ++s)
            l[sym_.rowIdx[s]][j] = val_.raw(s);

    double max_err = 0.0, scale = 1.0;
    for (std::uint64_t i = 0; i < n_; ++i) {
        for (std::uint64_t j = 0; j <= i; ++j) {
            double s = 0.0;
            for (std::uint64_t k = 0; k <= j; ++k)
                s += l[i][k] * l[j][k];
            max_err = std::max(max_err, std::abs(s - sym_.dense[i][j]));
            scale = std::max(scale, std::abs(sym_.dense[i][j]));
        }
    }
    if (max_err > 1e-8 * scale) {
        std::ostringstream msg;
        msg << "CHOLESKY reconstruction error " << max_err
            << " exceeds tolerance";
        throw std::runtime_error(msg.str());
    }
}

} // namespace absim::apps
