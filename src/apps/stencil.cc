#include "apps/stencil.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultGrid = 48;
constexpr std::uint32_t kDefaultSweeps = 4;

/** Cycle charge per 5-point update: four adds and a multiply. */
constexpr std::uint64_t kCyclesPerPoint = 10;

std::vector<double>
makeGrid(std::uint64_t n, std::uint64_t seed)
{
    sim::Rng rng(seed * 48611 + 29);
    std::vector<double> grid(n * n);
    for (auto &v : grid)
        v = rng.uniform();
    return grid;
}

} // namespace

std::vector<double>
StencilApp::reference(std::uint64_t n, std::uint64_t seed,
                      std::uint32_t sweeps)
{
    std::vector<double> a = makeGrid(n, seed);
    std::vector<double> b(n * n, 0.0);
    for (std::uint32_t s = 0; s < sweeps; ++s) {
        for (std::uint64_t i = 0; i < n; ++i) {
            for (std::uint64_t j = 0; j < n; ++j) {
                if (i == 0 || j == 0 || i == n - 1 || j == n - 1) {
                    b[i * n + j] = a[i * n + j]; // Fixed boundary.
                    continue;
                }
                b[i * n + j] = 0.25 * (a[(i - 1) * n + j] +
                                       a[(i + 1) * n + j] +
                                       a[i * n + j - 1] +
                                       a[i * n + j + 1]);
            }
        }
        a.swap(b);
    }
    return a;
}

void
StencilApp::setup(rt::Runtime &rt, rt::SharedHeap &heap,
                  const AppParams &params)
{
    n_ = params.n ? params.n : kDefaultGrid;
    sweeps_ = params.iterations ? params.iterations : kDefaultSweeps;
    seed_ = params.seed;
    procs_ = rt.procs();
    if (n_ % procs_ != 0)
        throw std::invalid_argument(
            "stencil grid rows must be divisible by P");

    gridA_ = rt::SharedArray<double>(heap, n_ * n_,
                                     rt::Placement::Blocked);
    gridB_ = rt::SharedArray<double>(heap, n_ * n_,
                                     rt::Placement::Blocked);
    barrier_ = std::make_unique<rt::Barrier>(heap, procs_);

    const auto init = makeGrid(n_, seed_);
    for (std::uint64_t i = 0; i < n_ * n_; ++i) {
        gridA_.raw(i) = init[i];
        gridB_.raw(i) = 0.0;
    }
    resultInA_ = (sweeps_ % 2) == 0;
}

void
StencilApp::worker(rt::Proc &p)
{
    const std::uint64_t rows = n_ / procs_;
    const std::uint64_t lo = p.node() * rows;
    const std::uint64_t hi = lo + rows;

    rt::SharedArray<double> *src = &gridA_;
    rt::SharedArray<double> *dst = &gridB_;

    for (std::uint32_t s = 0; s < sweeps_; ++s) {
        for (std::uint64_t i = lo; i < hi; ++i) {
            for (std::uint64_t j = 0; j < n_; ++j) {
                const std::uint64_t at = i * n_ + j;
                if (i == 0 || j == 0 || i == n_ - 1 || j == n_ - 1) {
                    dst->write(p, at, src->read(p, at));
                    continue;
                }
                // Rows i-1 / i+1 are remote only at chunk boundaries:
                // pure near-neighbor communication.
                const double up = src->read(p, at - n_);
                const double down = src->read(p, at + n_);
                const double left = src->read(p, at - 1);
                const double right = src->read(p, at + 1);
                dst->write(p, at, 0.25 * (up + down + left + right));
                p.compute(kCyclesPerPoint);
            }
        }
        std::swap(src, dst);
        barrier_->arrive(p);
    }
}

void
StencilApp::check() const
{
    const auto expect = reference(n_, seed_, sweeps_);
    const rt::SharedArray<double> &result = resultInA_ ? gridA_ : gridB_;
    double max_err = 0.0;
    for (std::uint64_t i = 0; i < n_ * n_; ++i)
        max_err = std::max(max_err, std::abs(result.raw(i) - expect[i]));
    if (max_err > 1e-12) {
        std::ostringstream msg;
        msg << "STENCIL error " << max_err;
        throw std::runtime_error(msg.str());
    }
}

} // namespace absim::apps
