#include "apps/app.hh"

#include <stdexcept>

#include "apps/cg.hh"
#include "apps/cholesky.hh"
#include "apps/ep.hh"
#include "apps/fft.hh"
#include "apps/is.hh"
#include "apps/radix.hh"
#include "apps/stencil.hh"
#include "apps/synthetic.hh"

namespace absim::apps {

std::unique_ptr<App>
makeApp(const std::string &name)
{
    if (name == "ep")
        return std::make_unique<EpApp>();
    if (name == "fft")
        return std::make_unique<FftApp>();
    if (name == "is")
        return std::make_unique<IsApp>();
    if (name == "cg")
        return std::make_unique<CgApp>();
    if (name == "cholesky")
        return std::make_unique<CholeskyApp>();
    if (name == "stencil")
        return std::make_unique<StencilApp>();
    if (name == "radix")
        return std::make_unique<RadixApp>();
    if (name == "synthetic")
        return std::make_unique<SyntheticApp>();
    throw std::invalid_argument("unknown application: " + name);
}

std::vector<std::string>
appNames()
{
    return {"ep", "is", "cg", "cholesky", "fft"};
}

std::vector<std::string>
extensionAppNames()
{
    return {"stencil", "radix", "synthetic"};
}

} // namespace absim::apps
