#include "apps/fft.hh"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultPoints = 1024;

/** Cycle charge per butterfly output: a complex multiply-add plus the
 *  twiddle evaluation, ~20 cycles of the 33 MHz FPU. */
constexpr std::uint64_t kCyclesPerButterfly = 20;

std::uint32_t
log2u(std::uint64_t x)
{
    std::uint32_t r = 0;
    while ((std::uint64_t{1} << r) < x)
        ++r;
    return r;
}

std::uint64_t
bitReverse(std::uint64_t x, std::uint32_t bits)
{
    std::uint64_t r = 0;
    for (std::uint32_t b = 0; b < bits; ++b)
        r |= ((x >> b) & 1u) << (bits - 1 - b);
    return r;
}

} // namespace

std::vector<std::complex<double>>
FftApp::makeInput(std::uint64_t n, std::uint64_t seed)
{
    sim::Rng rng(seed * 7919 + 17);
    std::vector<std::complex<double>> input(n);
    for (auto &v : input)
        v = {2.0 * rng.uniform() - 1.0, 2.0 * rng.uniform() - 1.0};
    return input;
}

std::vector<std::complex<double>>
FftApp::referenceFft(std::vector<std::complex<double>> a)
{
    const std::uint64_t n = a.size();
    const std::uint32_t bits = log2u(n);
    std::vector<std::complex<double>> b(n);
    for (std::uint64_t t = 0; t < n; ++t)
        b[t] = a[bitReverse(t, bits)];
    a.swap(b);
    for (std::uint64_t len = 2; len <= n; len <<= 1) {
        const std::uint64_t half = len / 2;
        for (std::uint64_t t = 0; t < n; ++t) {
            const std::uint64_t pos = t & (len - 1);
            if (pos < half) {
                const double ang =
                    -2.0 * std::numbers::pi * static_cast<double>(pos) /
                    static_cast<double>(len);
                const std::complex<double> w{std::cos(ang), std::sin(ang)};
                b[t] = a[t] + w * a[t + half];
            } else {
                const std::uint64_t j = pos - half;
                const double ang =
                    -2.0 * std::numbers::pi * static_cast<double>(j) /
                    static_cast<double>(len);
                const std::complex<double> w{std::cos(ang), std::sin(ang)};
                b[t] = a[t - half] - w * a[t];
            }
        }
        a.swap(b);
    }
    return a;
}

void
FftApp::setup(rt::Runtime &rt, rt::SharedHeap &heap, const AppParams &params)
{
    n_ = params.n ? params.n : kDefaultPoints;
    if ((n_ & (n_ - 1)) != 0 || n_ < 2)
        throw std::invalid_argument("FFT size must be a power of two >= 2");
    seed_ = params.seed;
    procs_ = rt.procs();
    stages_ = log2u(n_);
    if (n_ % procs_ != 0)
        throw std::invalid_argument("FFT size must be divisible by P");

    bufA_ = rt::SharedArray<Cplx>(heap, n_, rt::Placement::Blocked);
    bufB_ = rt::SharedArray<Cplx>(heap, n_, rt::Placement::Blocked);
    barrier_ = std::make_unique<rt::Barrier>(heap, procs_);

    const auto input = makeInput(n_, seed_);
    for (std::uint64_t i = 0; i < n_; ++i)
        bufA_.raw(i) = Cplx(static_cast<float>(input[i].real()),
                            static_cast<float>(input[i].imag()));

    // Permutation + log2(n) butterfly stages; result lands in A when the
    // number of ping-pong transfers is even.
    resultInA_ = ((stages_ + 1) % 2) == 0;
}

void
FftApp::worker(rt::Proc &p)
{
    const std::uint64_t chunk = n_ / procs_;
    const std::uint64_t lo = p.node() * chunk;
    const std::uint64_t hi = lo + chunk;

    rt::SharedArray<Cplx> *src = &bufA_;
    rt::SharedArray<Cplx> *dst = &bufB_;

    // Phase 0: bit-reversal permutation (static, scattered reads).
    p.beginPhase("bit-reverse");
    for (std::uint64_t t = lo; t < hi; ++t) {
        const Cplx v = src->read(p, bitReverse(t, stages_));
        dst->write(p, t, v);
        p.compute(4);
    }
    std::swap(src, dst);
    barrier_->arrive(p);

    p.beginPhase("butterflies");
    for (std::uint64_t len = 2; len <= n_; len <<= 1) {
        const std::uint64_t half = len / 2;
        for (std::uint64_t t = lo; t < hi; ++t) {
            const std::uint64_t pos = t & (len - 1);
            Cplx out;
            if (pos < half) {
                // Partner above: for exchange stages (half >= chunk) this
                // is a remote gather of consecutive items.
                const Cplx u = src->read(p, t);
                const Cplx v = src->read(p, t + half);
                const float ang = static_cast<float>(
                    -2.0 * std::numbers::pi * static_cast<double>(pos) /
                    static_cast<double>(len));
                const Cplx w{std::cos(ang), std::sin(ang)};
                out = u + w * v;
            } else {
                const std::uint64_t j = pos - half;
                const Cplx u = src->read(p, t - half);
                const Cplx v = src->read(p, t);
                const float ang = static_cast<float>(
                    -2.0 * std::numbers::pi * static_cast<double>(j) /
                    static_cast<double>(len));
                const Cplx w{std::cos(ang), std::sin(ang)};
                out = u - w * v;
            }
            dst->write(p, t, out);
            p.compute(kCyclesPerButterfly);
        }
        std::swap(src, dst);
        barrier_->arrive(p);
    }
}

void
FftApp::check() const
{
    const auto expect = referenceFft(makeInput(n_, seed_));
    const rt::SharedArray<Cplx> &result = resultInA_ ? bufA_ : bufB_;

    double max_err = 0.0, scale = 0.0;
    for (std::uint64_t i = 0; i < n_; ++i) {
        const std::complex<double> got{result.raw(i).real(),
                                       result.raw(i).imag()};
        max_err = std::max(max_err, std::abs(got - expect[i]));
        scale = std::max(scale, std::abs(expect[i]));
    }
    if (max_err > 1e-3 * std::max(scale, 1.0)) {
        std::ostringstream msg;
        msg << "FFT result error " << max_err << " exceeds tolerance"
            << " (scale " << scale << ")";
        throw std::runtime_error(msg.str());
    }
}

} // namespace absim::apps
