/**
 * @file
 * CHOLESKY — sparse Cholesky factorization in the style of the SPLASH
 * benchmark: a right-looking (fan-out) column factorization scheduled
 * through a *dynamically maintained queue of runnable tasks* (paper
 * Section 4).
 *
 * The symbolic factorization (fill pattern, dependency counts, elimination
 * order) is computed natively during setup — it is static program
 * structure.  The numeric factorization runs in the simulator: workers
 * pop ready columns from a lock-protected shared queue, perform cdiv on
 * the column, then apply cmod updates to every dependent column under
 * per-column locks, decrementing dependency counters and enqueueing
 * columns that become ready.  Accesses are input-dependent and cannot be
 * optimized statically — CHOLESKY and CG are the paper's dynamic
 * applications with the largest model gaps (Figures 16/18/20).
 */

#ifndef ABSIM_APPS_CHOLESKY_HH
#define ABSIM_APPS_CHOLESKY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class CholeskyApp : public App
{
  public:
    std::string name() const override { return "cholesky"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

    /** Filled sparse lower-triangular pattern in column-compressed form
     *  plus the dense original for checking. */
    struct Symbolic
    {
        std::uint64_t n = 0;
        std::vector<std::uint64_t> colPtr;   ///< n+1 entries.
        std::vector<std::uint32_t> rowIdx;   ///< Ascending, diag first.
        /** rowPos[j] maps row -> slot within column j. */
        std::vector<std::vector<std::int32_t>> rowPos;
        std::vector<std::uint32_t> depCount; ///< cmods targeting column.
        std::vector<double> initial;         ///< A values (fill = 0).
        std::vector<std::vector<double>> dense; ///< Original dense A.
    };

    /** Build a deterministic sparse SPD matrix and its filled pattern. */
    static Symbolic makeProblem(std::uint64_t n, std::uint64_t seed);

  private:
    /** Pop the next ready column or -1 if the queue is empty. */
    std::int32_t tryPop(rt::Proc &p);
    void push(rt::Proc &p, std::uint32_t column);

    std::uint64_t n_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;

    Symbolic sym_;

    rt::SharedArray<double> val_;            ///< Numeric values (CCS).
    rt::SharedArray<std::uint64_t> dep_;     ///< Remaining dependencies.
    rt::SharedArray<std::int32_t> queue_;    ///< Ready-column ring.
    rt::SharedArray<std::uint64_t> qHead_;
    rt::SharedArray<std::uint64_t> qTail_;
    rt::SharedArray<std::uint64_t> done_;    ///< Columns finished.
    std::unique_ptr<rt::SpinLock> qLock_;
    std::vector<std::unique_ptr<rt::SpinLock>> colLock_;
};

} // namespace absim::apps

#endif // ABSIM_APPS_CHOLESKY_HH
