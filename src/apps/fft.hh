/**
 * @file
 * FFT — 1-D radix-2 Cooley-Tukey transform with binary-exchange
 * parallelization.
 *
 * The array of complex single-precision points (8 bytes each, so a
 * 32-byte cache block holds exactly four data items — the ratio behind
 * the paper's Figure 1 observation) is block-distributed.  The transform
 * ping-pongs between two shared arrays; each stage every processor
 * writes its own contiguous chunk and gathers its butterfly partners,
 * which for the first log2(P) exchange stages live in another
 * processor's chunk and are read as *consecutive* remote items (spatial
 * locality).  A barrier separates stages.  Communication is regular and
 * statically determinable, with a lower compute-to-communication ratio
 * than EP.
 */

#ifndef ABSIM_APPS_FFT_HH
#define ABSIM_APPS_FFT_HH

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class FftApp : public App
{
  public:
    using Cplx = std::complex<float>;

    std::string name() const override { return "fft"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

    /** The deterministic input signal. */
    static std::vector<std::complex<double>>
    makeInput(std::uint64_t n, std::uint64_t seed);

    /** Native double-precision reference transform (same algorithm). */
    static std::vector<std::complex<double>>
    referenceFft(std::vector<std::complex<double>> a);

  private:
    std::uint64_t n_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;
    std::uint32_t stages_ = 0;

    rt::SharedArray<Cplx> bufA_;
    rt::SharedArray<Cplx> bufB_;
    std::unique_ptr<rt::Barrier> barrier_;
    bool resultInA_ = false; ///< Which buffer holds the final result.
};

} // namespace absim::apps

#endif // ABSIM_APPS_FFT_HH
