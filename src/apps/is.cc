#include "apps/is.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultKeys = 4096;
constexpr std::uint32_t kBucketsShift = 3; ///< buckets = keys >> 3.
constexpr std::uint32_t kMinBuckets = 16;

/** Cycle charge for the per-key arithmetic in each phase. */
constexpr std::uint64_t kCyclesPerKey = 6;

} // namespace

void
IsApp::setup(rt::Runtime &rt, rt::SharedHeap &heap, const AppParams &params)
{
    keys_ = params.n ? params.n : kDefaultKeys;
    seed_ = params.seed;
    procs_ = rt.procs();
    buckets_ = std::max<std::uint32_t>(
        kMinBuckets, static_cast<std::uint32_t>(keys_ >> kBucketsShift));
    if (keys_ % procs_ != 0)
        throw std::invalid_argument("IS keys must be divisible by P");

    in_ = rt::SharedArray<std::uint32_t>(heap, keys_,
                                         rt::Placement::Blocked);
    out_ = rt::SharedArray<std::uint32_t>(heap, keys_,
                                          rt::Placement::Blocked);
    hist_ = rt::SharedArray<std::uint64_t>(heap, buckets_,
                                           rt::Placement::Blocked);
    offsets_ = rt::SharedArray<std::uint64_t>(heap, buckets_,
                                              rt::Placement::Blocked);
    locks_.clear();
    for (std::uint32_t i = 0; i < procs_; ++i)
        locks_.push_back(std::make_unique<rt::SpinLock>(
            heap, static_cast<net::NodeId>(i)));
    barrier_ = std::make_unique<rt::Barrier>(heap, procs_);

    sim::Rng rng(seed_ * 31337 + 7);
    for (std::uint64_t i = 0; i < keys_; ++i)
        in_.raw(i) = static_cast<std::uint32_t>(rng.below(buckets_));
    for (std::uint32_t b = 0; b < buckets_; ++b) {
        hist_.raw(b) = 0;
        offsets_.raw(b) = 0;
    }
}

void
IsApp::worker(rt::Proc &p)
{
    const std::uint32_t me = p.node();
    const std::uint64_t chunk = keys_ / procs_;
    const std::uint64_t lo = me * chunk;
    const std::uint64_t hi = lo + chunk;

    // Phase 1a: private histogram of the local key chunk (reads are
    // local and spatially sequential: 8 keys per cache block).
    p.beginPhase("histogram");
    std::vector<std::uint64_t> mine(buckets_, 0);
    for (std::uint64_t i = lo; i < hi; ++i) {
        ++mine[in_.read(p, i)];
        p.compute(kCyclesPerKey);
    }

    // Phase 1b: merge into the shared histogram under striped locks
    // (mutual exclusion, as in the paper's IS).  Each processor walks
    // the stripes starting at its own to avoid lock convoying.
    for (std::uint32_t s = 0; s < procs_; ++s) {
        const std::uint32_t stripe = (me + s) % procs_;
        locks_[stripe]->lock(p);
        for (std::uint32_t b = stripe; b < buckets_; b += procs_) {
            if (mine[b] == 0)
                continue;
            const std::uint64_t cur = hist_.read(p, b);
            hist_.write(p, b, cur + mine[b]);
        }
        locks_[stripe]->unlock(p);
    }
    barrier_->arrive(p);

    // Phase 2: serial prefix sum by processor 0 (algorithmic serial
    // fraction).
    p.beginPhase("scan");
    if (me == 0) {
        std::uint64_t running = 0;
        for (std::uint32_t b = 0; b < buckets_; ++b) {
            const std::uint64_t count = hist_.read(p, b);
            offsets_.write(p, b, running);
            running += count;
            p.compute(2);
        }
    }
    barrier_->arrive(p);

    // Phase 3: rank local keys by claiming output slots atomically and
    // scattering into the output array (heavy, all-to-all writes).
    p.beginPhase("rank");
    for (std::uint64_t i = lo; i < hi; ++i) {
        const std::uint32_t key = in_.read(p, i);
        const std::uint64_t slot = offsets_.fetchAdd(p, key, 1);
        out_.write(p, slot, key);
        p.compute(kCyclesPerKey);
    }
    barrier_->arrive(p);
}

void
IsApp::check() const
{
    // The output must be an ascending permutation of the input.
    std::vector<std::uint64_t> in_counts(buckets_, 0);
    for (std::uint64_t i = 0; i < keys_; ++i)
        ++in_counts[in_.raw(i)];

    std::uint64_t pos = 0;
    for (std::uint32_t b = 0; b < buckets_; ++b) {
        for (std::uint64_t k = 0; k < in_counts[b]; ++k, ++pos) {
            if (out_.raw(pos) != b) {
                std::ostringstream msg;
                msg << "IS output[" << pos << "] = " << out_.raw(pos)
                    << ", want " << b;
                throw std::runtime_error(msg.str());
            }
        }
    }
    if (pos != keys_)
        throw std::runtime_error("IS output length mismatch");
}

} // namespace absim::apps
