/**
 * @file
 * RADIX — parallel radix sort (extension, SPLASH-2 style).
 *
 * A second "wider suite" application (paper Section 7): multi-pass
 * counting sort over digit groups.  Each pass histograms local keys,
 * exchanges histograms through shared memory, and permutes keys into
 * globally computed slots — an all-to-all scatter whose destinations
 * change every pass, heavier and more irregular than IS's single-pass
 * ranking, but still statically schedulable.
 */

#ifndef ABSIM_APPS_RADIX_HH
#define ABSIM_APPS_RADIX_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class RadixApp : public App
{
  public:
    /** Digit width: 6 bits -> 64 buckets per pass. */
    static constexpr std::uint32_t kDigitBits = 6;
    static constexpr std::uint32_t kDigits = 1u << kDigitBits;
    /** Key width: 12 bits -> two passes. */
    static constexpr std::uint32_t kKeyBits = 12;

    std::string name() const override { return "radix"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

  private:
    std::uint64_t keys_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;
    std::uint32_t passes_ = 0;

    rt::SharedArray<std::uint32_t> bufA_;
    rt::SharedArray<std::uint32_t> bufB_;
    /** Per (digit, proc) counts, then exclusive global offsets. */
    rt::SharedArray<std::uint64_t> histo_;
    std::unique_ptr<rt::Barrier> barrier_;
    bool resultInA_ = true;
};

} // namespace absim::apps

#endif // ABSIM_APPS_RADIX_HH
