/**
 * @file
 * IS — the NAS integer-sort kernel (bucket-sort ranking).
 *
 * Keys are block-distributed.  Phase 1: each processor histograms its
 * keys privately, then merges into the shared histogram under a striped
 * set of spin locks (the mutual-exclusion locks the paper calls out for
 * IS).  Phase 2: processor 0 turns the histogram into bucket offsets
 * (the serial fraction).  Phase 3: every processor ranks its keys by
 * atomically claiming slots (fetch&add on the shared offsets) and
 * scatters them into the output array.  Communication is regular but
 * substantially heavier than FFT or EP, which is why the paper sees the
 * LogP-vs-LogP+C execution-time gap on every topology (Figure 14).
 */

#ifndef ABSIM_APPS_IS_HH
#define ABSIM_APPS_IS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class IsApp : public App
{
  public:
    std::string name() const override { return "is"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

  private:
    std::uint64_t keys_ = 0;
    std::uint32_t buckets_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;

    rt::SharedArray<std::uint32_t> in_;       ///< Input keys, blocked.
    rt::SharedArray<std::uint32_t> out_;      ///< Ranked output.
    rt::SharedArray<std::uint64_t> hist_;     ///< Shared histogram.
    rt::SharedArray<std::uint64_t> offsets_;  ///< Bucket start offsets.
    std::vector<std::unique_ptr<rt::SpinLock>> locks_; ///< Striped.
    std::unique_ptr<rt::Barrier> barrier_;
};

} // namespace absim::apps

#endif // ABSIM_APPS_IS_HH
