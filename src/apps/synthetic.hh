/**
 * @file
 * SYNTHETIC — parameterized access-pattern microworkloads (extension).
 *
 * The authors' companion work (the paper's reference [26], "On
 * characterizing bandwidth requirements of parallel applications") uses
 * exactly this style of controlled kernel to expose how architectural
 * abstractions respond to specific communication behaviours.  Each
 * variant isolates one pattern:
 *
 *  - "private"  every processor touches only its own partition
 *               (no communication; all machines must agree),
 *  - "neighbor" each processor updates its ring successor's partition
 *               (maximum communication locality; the g abstraction's
 *               worst case),
 *  - "uniform"  uniformly random remote partners (matches the uniform-
 *               traffic assumption behind the bisection-bandwidth g),
 *  - "hotspot"  everyone hammers node 0's memory (node-bandwidth bound;
 *               g underestimates nothing, link contention dominates).
 *
 * Every variant increments shared counters via fetch&add, so the result
 * check is exact on all machines.
 */

#ifndef ABSIM_APPS_SYNTHETIC_HH
#define ABSIM_APPS_SYNTHETIC_HH

#include <cstdint>

#include "apps/app.hh"
#include "runtime/sync.hh"

namespace absim::apps {

class SyntheticApp : public App
{
  public:
    std::string name() const override { return "synthetic"; }
    void setup(rt::Runtime &rt, rt::SharedHeap &heap,
               const AppParams &params) override;
    void worker(rt::Proc &p) override;
    void check() const override;

  private:
    enum class Pattern
    {
        Private,
        Neighbor,
        Uniform,
        Hotspot,
    };

    std::uint64_t opsPerProc_ = 0;
    std::uint64_t seed_ = 0;
    std::uint32_t procs_ = 0;
    Pattern pattern_ = Pattern::Uniform;

    static constexpr std::uint64_t kSlotsPerNode = 64;

    rt::SharedArray<std::uint64_t> slots_;
};

} // namespace absim::apps

#endif // ABSIM_APPS_SYNTHETIC_HH
