#include "apps/radix.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultKeys = 2048;
constexpr std::uint64_t kCyclesPerKey = 6;

} // namespace

void
RadixApp::setup(rt::Runtime &rt, rt::SharedHeap &heap,
                const AppParams &params)
{
    keys_ = params.n ? params.n : kDefaultKeys;
    seed_ = params.seed;
    procs_ = rt.procs();
    passes_ = (kKeyBits + kDigitBits - 1) / kDigitBits;
    if (keys_ % procs_ != 0)
        throw std::invalid_argument("RADIX keys must be divisible by P");

    bufA_ = rt::SharedArray<std::uint32_t>(heap, keys_,
                                           rt::Placement::Blocked);
    bufB_ = rt::SharedArray<std::uint32_t>(heap, keys_,
                                           rt::Placement::Blocked);
    histo_ = rt::SharedArray<std::uint64_t>(heap, kDigits * procs_,
                                            rt::Placement::Blocked);
    barrier_ = std::make_unique<rt::Barrier>(heap, procs_);

    sim::Rng rng(seed_ * 77773 + 13);
    for (std::uint64_t i = 0; i < keys_; ++i)
        bufA_.raw(i) =
            static_cast<std::uint32_t>(rng.below(1u << kKeyBits));
    resultInA_ = (passes_ % 2) == 0;
}

void
RadixApp::worker(rt::Proc &p)
{
    const std::uint32_t me = p.node();
    const std::uint64_t chunk = keys_ / procs_;
    const std::uint64_t lo = me * chunk;
    const std::uint64_t hi = lo + chunk;

    rt::SharedArray<std::uint32_t> *src = &bufA_;
    rt::SharedArray<std::uint32_t> *dst = &bufB_;

    for (std::uint32_t pass = 0; pass < passes_; ++pass) {
        const std::uint32_t shift = pass * kDigitBits;

        // Phase 1: local histogram (sequential local reads).
        p.beginPhase("histogram");
        std::vector<std::uint64_t> mine(kDigits, 0);
        for (std::uint64_t i = lo; i < hi; ++i) {
            ++mine[(src->read(p, i) >> shift) & (kDigits - 1)];
            p.compute(kCyclesPerKey);
        }
        // Publish it: slot (digit, me).
        for (std::uint32_t d = 0; d < kDigits; ++d)
            histo_.write(p, d * procs_ + me, mine[d]);
        barrier_->arrive(p);

        // Phase 2: processor 0 turns counts into exclusive global
        // offsets, ordered by (digit, processor) — the serial fraction.
        p.beginPhase("scan");
        if (me == 0) {
            std::uint64_t running = 0;
            for (std::uint32_t d = 0; d < kDigits; ++d) {
                for (std::uint32_t q = 0; q < procs_; ++q) {
                    const std::uint64_t count =
                        histo_.read(p, d * procs_ + q);
                    histo_.write(p, d * procs_ + q, running);
                    running += count;
                    p.compute(2);
                }
            }
        }
        barrier_->arrive(p);

        // Phase 3: permute.  Our own offsets are private: fetch the
        // column once, then scatter keys (all-to-all remote writes,
        // destinations change every pass).
        p.beginPhase("permute");
        std::vector<std::uint64_t> offsets(kDigits);
        for (std::uint32_t d = 0; d < kDigits; ++d)
            offsets[d] = histo_.read(p, d * procs_ + me);
        for (std::uint64_t i = lo; i < hi; ++i) {
            const std::uint32_t key = src->read(p, i);
            const std::uint32_t d = (key >> shift) & (kDigits - 1);
            dst->write(p, offsets[d]++, key);
            p.compute(kCyclesPerKey);
        }
        std::swap(src, dst);
        barrier_->arrive(p);
    }
}

void
RadixApp::check() const
{
    // Recompute the input and compare against a sorted copy.
    sim::Rng rng(seed_ * 77773 + 13);
    std::vector<std::uint32_t> expect(keys_);
    for (std::uint64_t i = 0; i < keys_; ++i)
        expect[i] =
            static_cast<std::uint32_t>(rng.below(1u << kKeyBits));
    std::stable_sort(expect.begin(), expect.end());

    const rt::SharedArray<std::uint32_t> &result =
        resultInA_ ? bufA_ : bufB_;
    for (std::uint64_t i = 0; i < keys_; ++i) {
        if (result.raw(i) != expect[i]) {
            std::ostringstream msg;
            msg << "RADIX output[" << i << "] = " << result.raw(i)
                << ", want " << expect[i];
            throw std::runtime_error(msg.str());
        }
    }
}

} // namespace absim::apps
