#include "apps/ep.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultPairs = 16384;

/** Cycle charge per generated pair: two uniforms, the polar-method
 *  rejection test, a log/sqrt, two multiplies and the annulus binning —
 *  roughly a hundred 33 MHz FPU cycles. */
constexpr std::uint64_t kCyclesPerPair = 100;

/**
 * Tally one processor's slice of pairs.  Shared by the simulated worker
 * and the native reference so the streams match bit for bit.
 */
std::array<std::uint64_t, EpApp::kAnnuli>
tallySlice(std::uint64_t seed, std::uint32_t proc, std::uint64_t count)
{
    std::array<std::uint64_t, EpApp::kAnnuli> counts{};
    sim::Rng rng(seed * 1000003 + proc);
    for (std::uint64_t i = 0; i < count; ++i) {
        const double x = 2.0 * rng.uniform() - 1.0;
        const double y = 2.0 * rng.uniform() - 1.0;
        const double t = x * x + y * y;
        if (t >= 1.0 || t == 0.0)
            continue; // Polar-method rejection.
        const double f = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = std::abs(f * x);
        const double gy = std::abs(f * y);
        const auto annulus =
            static_cast<std::uint32_t>(std::max(gx, gy));
        if (annulus < EpApp::kAnnuli)
            ++counts[annulus];
    }
    return counts;
}

} // namespace

void
EpApp::setup(rt::Runtime &rt, rt::SharedHeap &heap, const AppParams &params)
{
    pairs_ = params.n ? params.n : kDefaultPairs;
    seed_ = params.seed;
    procs_ = rt.procs();

    sums_ = rt::SharedArray<std::uint64_t>(heap, kAnnuli,
                                           rt::Placement::OnNode, 0);
    for (std::uint32_t a = 0; a < kAnnuli; ++a)
        sums_.raw(a) = 0;
    turn_ = std::make_unique<rt::Flag>(heap, 0);
}

void
EpApp::worker(rt::Proc &p)
{
    const std::uint32_t me = p.node();
    const std::uint64_t per = pairs_ / procs_;
    const std::uint64_t mine =
        per + (me == procs_ - 1 ? pairs_ % procs_ : 0);

    // The embarrassingly parallel phase: all computation, no sharing.
    p.beginPhase("generate");
    const auto counts = tallySlice(seed_, me, mine);
    p.compute(mine * kCyclesPerPair);

    // Reduction chain (the paper's condition-variable idiom): wait until
    // it is our turn, deposit, then signal the next processor.
    p.beginPhase("reduce");
    if (me > 0)
        turn_->waitFor(p, me);
    for (std::uint32_t a = 0; a < kAnnuli; ++a) {
        const std::uint64_t cur = sums_.read(p, a);
        sums_.write(p, a, cur + counts[a]);
    }
    turn_->set(p, me + 1);
}

std::array<std::uint64_t, EpApp::kAnnuli>
EpApp::referenceCounts(std::uint64_t pairs, std::uint64_t seed,
                       std::uint32_t procs)
{
    std::array<std::uint64_t, kAnnuli> total{};
    const std::uint64_t per = pairs / procs;
    for (std::uint32_t proc = 0; proc < procs; ++proc) {
        const std::uint64_t mine =
            per + (proc == procs - 1 ? pairs % procs : 0);
        const auto counts = tallySlice(seed, proc, mine);
        for (std::uint32_t a = 0; a < kAnnuli; ++a)
            total[a] += counts[a];
    }
    return total;
}

void
EpApp::check() const
{
    const auto expect = referenceCounts(pairs_, seed_, procs_);
    for (std::uint32_t a = 0; a < kAnnuli; ++a) {
        if (sums_.raw(a) != expect[a]) {
            std::ostringstream msg;
            msg << "EP annulus " << a << ": got " << sums_.raw(a)
                << ", want " << expect[a];
            throw std::runtime_error(msg.str());
        }
    }
}

} // namespace absim::apps
