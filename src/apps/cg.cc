#include "apps/cg.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace absim::apps {

namespace {

constexpr std::uint64_t kDefaultOrder = 512;
constexpr std::uint32_t kDefaultIters = 6;
constexpr std::uint32_t kOffDiagPerRow = 6;

/** Cycle charge for one multiply-add of the 33 MHz FPU. */
constexpr std::uint64_t kCyclesPerMacc = 3;

} // namespace

CgApp::Csr
CgApp::makeMatrix(std::uint64_t n, std::uint64_t seed)
{
    sim::Rng rng(seed * 65537 + 3);
    // Random symmetric pattern with diagonal dominance (=> SPD).
    std::vector<std::map<std::uint32_t, double>> rows(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint32_t k = 0; k < kOffDiagPerRow / 2; ++k) {
            const auto j = static_cast<std::uint32_t>(rng.below(n));
            if (j == i)
                continue;
            const double v = -(0.01 + 0.99 * rng.uniform());
            rows[i][j] += v;
            rows[j][static_cast<std::uint32_t>(i)] += v;
        }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        double mag = 0.0;
        for (const auto &[j, v] : rows[i])
            mag += std::abs(v);
        rows[i][static_cast<std::uint32_t>(i)] = mag + 1.0;
    }

    Csr a;
    a.n = n;
    a.rowPtr.resize(n + 1, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        a.rowPtr[i + 1] = a.rowPtr[i] + rows[i].size();
        for (const auto &[j, v] : rows[i]) {
            a.col.push_back(j);
            a.val.push_back(v);
        }
    }
    return a;
}

void
CgApp::setup(rt::Runtime &rt, rt::SharedHeap &heap, const AppParams &params)
{
    n_ = params.n ? params.n : kDefaultOrder;
    iters_ = params.iterations ? params.iterations : kDefaultIters;
    seed_ = params.seed;
    procs_ = rt.procs();
    if (n_ % procs_ != 0)
        throw std::invalid_argument("CG order must be divisible by P");

    a_ = makeMatrix(n_, seed_);

    x_ = rt::SharedArray<double>(heap, n_, rt::Placement::Blocked);
    r_ = rt::SharedArray<double>(heap, n_, rt::Placement::Blocked);
    pvec_ = rt::SharedArray<double>(heap, n_, rt::Placement::Blocked);
    q_ = rt::SharedArray<double>(heap, n_, rt::Placement::Blocked);
    aval_ = rt::SharedArray<double>(heap, a_.val.size(),
                                    rt::Placement::Blocked);
    acol_ = rt::SharedArray<std::uint32_t>(heap, a_.col.size(),
                                           rt::Placement::Blocked);
    partial_ = rt::SharedArray<double>(heap, procs_,
                                       rt::Placement::OnNode, 0);
    scalars_ = rt::SharedArray<double>(heap, 4, rt::Placement::OnNode, 0);
    barrier_ = std::make_unique<rt::Barrier>(heap, procs_);

    // b is random; x0 = 0 so r = p = b.
    sim::Rng rng(seed_ * 104729 + 11);
    for (std::uint64_t i = 0; i < n_; ++i) {
        const double b = rng.uniform();
        x_.raw(i) = 0.0;
        r_.raw(i) = b;
        pvec_.raw(i) = b;
        q_.raw(i) = 0.0;
    }
    for (std::size_t k = 0; k < a_.val.size(); ++k) {
        aval_.raw(k) = a_.val[k];
        acol_.raw(k) = a_.col[k];
    }
}

void
CgApp::worker(rt::Proc &p)
{
    const std::uint32_t me = p.node();
    const std::uint64_t chunk = n_ / procs_;
    const std::uint64_t lo = me * chunk;
    const std::uint64_t hi = lo + chunk;

    auto reduce = [&](double local, std::uint32_t slot) -> double {
        // All-reduce through the shared partial array; processor 0
        // combines and publishes through the scalars block.
        partial_.write(p, me, local);
        barrier_->arrive(p);
        if (me == 0) {
            double sum = 0.0;
            for (std::uint32_t k = 0; k < procs_; ++k)
                sum += partial_.read(p, k);
            p.compute(procs_ * kCyclesPerMacc);
            scalars_.write(p, slot, sum);
        }
        barrier_->arrive(p);
        return scalars_.read(p, slot);
    };

    // rho = r . r
    double local = 0.0;
    for (std::uint64_t i = lo; i < hi; ++i) {
        const double ri = r_.read(p, i);
        local += ri * ri;
        p.compute(kCyclesPerMacc);
    }
    double rho = reduce(local, 0);

    for (std::uint32_t it = 0; it < iters_; ++it) {
        // q = A p  — the irregular gather of p[col].
        p.beginPhase("spmv");
        for (std::uint64_t i = lo; i < hi; ++i) {
            double s = 0.0;
            for (std::uint64_t k = a_.rowPtr[i]; k < a_.rowPtr[i + 1];
                 ++k) {
                const std::uint32_t c = acol_.read(p, k);
                const double v = aval_.read(p, k);
                s += v * pvec_.read(p, c);
                p.compute(kCyclesPerMacc);
            }
            q_.write(p, i, s);
        }

        // alpha = rho / (p . q)
        p.beginPhase("dot");
        local = 0.0;
        for (std::uint64_t i = lo; i < hi; ++i) {
            local += pvec_.read(p, i) * q_.read(p, i);
            p.compute(kCyclesPerMacc);
        }
        const double pq = reduce(local, 1);
        const double alpha = rho / pq;

        // x += alpha p ; r -= alpha q
        p.beginPhase("axpy");
        for (std::uint64_t i = lo; i < hi; ++i) {
            x_.write(p, i, x_.read(p, i) + alpha * pvec_.read(p, i));
            r_.write(p, i, r_.read(p, i) - alpha * q_.read(p, i));
            p.compute(2 * kCyclesPerMacc);
        }

        // rho_new = r . r ; beta = rho_new / rho
        p.beginPhase("dot");
        local = 0.0;
        for (std::uint64_t i = lo; i < hi; ++i) {
            const double ri = r_.read(p, i);
            local += ri * ri;
            p.compute(kCyclesPerMacc);
        }
        const double rho_new = reduce(local, 2);
        const double beta = rho_new / rho;
        rho = rho_new;

        // p = r + beta p
        p.beginPhase("axpy");
        for (std::uint64_t i = lo; i < hi; ++i) {
            pvec_.write(p, i, r_.read(p, i) + beta * pvec_.read(p, i));
            p.compute(kCyclesPerMacc);
        }
        // Everyone must finish updating p before the next gather.
        barrier_->arrive(p);
    }
}

void
CgApp::check() const
{
    // Native reference: the identical algorithm with the identical
    // chunked summation order is bitwise-reproducible up to FP noise.
    const Csr a = makeMatrix(n_, seed_);
    sim::Rng rng(seed_ * 104729 + 11);
    std::vector<double> x(n_, 0.0), r(n_), pv(n_), q(n_, 0.0);
    for (std::uint64_t i = 0; i < n_; ++i) {
        const double b = rng.uniform();
        r[i] = b;
        pv[i] = b;
    }
    const std::uint64_t chunk = n_ / procs_;
    auto reduce = [&](auto term) {
        double sum = 0.0;
        for (std::uint32_t me = 0; me < procs_; ++me) {
            double local = 0.0;
            for (std::uint64_t i = me * chunk; i < (me + 1) * chunk; ++i)
                local += term(i);
            sum += local;
        }
        return sum;
    };
    double rho = reduce([&](std::uint64_t i) { return r[i] * r[i]; });
    for (std::uint32_t it = 0; it < iters_; ++it) {
        for (std::uint64_t i = 0; i < n_; ++i) {
            double s = 0.0;
            for (std::uint64_t k = a.rowPtr[i]; k < a.rowPtr[i + 1]; ++k)
                s += a.val[k] * pv[a.col[k]];
            q[i] = s;
        }
        const double pq =
            reduce([&](std::uint64_t i) { return pv[i] * q[i]; });
        const double alpha = rho / pq;
        for (std::uint64_t i = 0; i < n_; ++i) {
            x[i] += alpha * pv[i];
            r[i] -= alpha * q[i];
        }
        const double rho_new =
            reduce([&](std::uint64_t i) { return r[i] * r[i]; });
        const double beta = rho_new / rho;
        rho = rho_new;
        for (std::uint64_t i = 0; i < n_; ++i)
            pv[i] = r[i] + beta * pv[i];
    }

    double max_err = 0.0, scale = 1.0;
    for (std::uint64_t i = 0; i < n_; ++i) {
        max_err = std::max(max_err, std::abs(x_.raw(i) - x[i]));
        scale = std::max(scale, std::abs(x[i]));
    }
    if (max_err > 1e-9 * scale) {
        std::ostringstream msg;
        msg << "CG solution error " << max_err << " exceeds tolerance";
        throw std::runtime_error(msg.str());
    }
}

} // namespace absim::apps
