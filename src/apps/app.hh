/**
 * @file
 * The application suite interface (paper Section 4).
 *
 * Five parallel scientific applications drive the study: EP, IS and CG
 * from the NAS parallel benchmarks, CHOLESKY from SPLASH, and FFT.  Each
 * is a *real* computation — the kernels produce verifiable numerical
 * results — whose shared-memory references go through the simulated
 * machine, exactly like SPASM's execution-driven applications.
 *
 * Lifecycle: construct -> setup() (allocate shared data, build inputs,
 * deterministic under params.seed) -> every worker runs worker() ->
 * check() validates the numerical result and throws on corruption.
 */

#ifndef ABSIM_APPS_APP_HH
#define ABSIM_APPS_APP_HH

#include <memory>
#include <string>
#include <vector>

#include "runtime/context.hh"
#include "runtime/shared.hh"

namespace absim::apps {

/** Workload knobs common to all applications. */
struct AppParams
{
    /**
     * Main problem size; 0 selects the app's default.  Meaning per app:
     * EP: random pairs; FFT: points; IS: keys; CG: matrix order;
     * CHOLESKY: matrix order.
     */
    std::uint64_t n = 0;

    /** Workload RNG seed (identical streams on every machine model). */
    std::uint64_t seed = 12345;

    /** Iteration count where applicable (CG). 0 selects the default. */
    std::uint32_t iterations = 0;

    /** App-specific variant selector (synthetic: access pattern). */
    std::string variant;
};

/**
 * One application of the suite.
 */
class App
{
  public:
    virtual ~App() = default;

    virtual std::string name() const = 0;

    /**
     * Allocate shared data and generate the input.  Runs natively (no
     * simulated cost): it models the state of memory before the timed
     * parallel section, like SPASM's untimed initialization.
     */
    virtual void setup(rt::Runtime &rt, rt::SharedHeap &heap,
                       const AppParams &params) = 0;

    /** Body of processor @p p; called once per worker process. */
    virtual void worker(rt::Proc &p) = 0;

    /**
     * Validate the computed result against a native reference.
     * @throws std::runtime_error on mismatch.
     */
    virtual void check() const = 0;
};

/**
 * Instantiate an application by name ("ep", "fft", "is", "cg",
 * "cholesky", plus the "stencil" extension).
 * @throws std::invalid_argument for unknown names.
 */
std::unique_ptr<App> makeApp(const std::string &name);

/** Names of the paper's five applications, in the paper's order. */
std::vector<std::string> appNames();

/** Additional applications beyond the paper's suite (Section 7's call
 *  for a wider suite): the near-neighbor stencil and radix sort. */
std::vector<std::string> extensionAppNames();

} // namespace absim::apps

#endif // ABSIM_APPS_APP_HH
