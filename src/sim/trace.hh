/**
 * @file
 * Lightweight category-based tracing (the gem5 DPRINTF idiom).
 *
 * Tracing is off by default and costs one branch per site.  Tests and
 * debugging sessions enable categories and install a sink:
 *
 *     sim::Trace::instance().enable(sim::TraceCategory::Protocol);
 *     sim::Trace::instance().setSink(&std::cerr);
 *     ...
 *     ABSIM_TRACE(eq, Protocol, "read miss blk=" << blk);
 */

#ifndef ABSIM_SIM_TRACE_HH
#define ABSIM_SIM_TRACE_HH

#include <cstdint>
#include <iostream>
#include <sstream>

#include "sim/types.hh"

namespace absim::sim {

/** Trace categories, one bit each. */
enum class TraceCategory : std::uint32_t
{
    Protocol = 1u << 0, ///< Directory/coherence transactions.
    Network = 1u << 1,  ///< Link-level transfers.
    LogP = 1u << 2,     ///< LogP message timing.
    Runtime = 1u << 3,  ///< Processor-level events.
};

/**
 * Trace configuration and sink.
 *
 * Exactly one Trace is *current* per thread at any time: the thread's
 * ambient default (what instance() returns on a fresh thread), or
 * whatever a ScopedTrace — usually a core::RunContext — installed.
 * Keeping the current-trace pointer thread_local lets N concurrent
 * simulations trace to N different sinks without interleaving.
 */
class Trace
{
  public:
    Trace() = default;

    /** The current thread's active trace. */
    static Trace &instance();

    void
    enable(TraceCategory category)
    {
        mask_ |= static_cast<std::uint32_t>(category);
    }

    void
    disable(TraceCategory category)
    {
        mask_ &= ~static_cast<std::uint32_t>(category);
    }

    void disableAll() { mask_ = 0; }

    bool
    enabled(TraceCategory category) const
    {
        return (mask_ & static_cast<std::uint32_t>(category)) != 0;
    }

    /** The raw category bitmask (for snapshotting into a run context). */
    std::uint32_t mask() const { return mask_; }
    void setMask(std::uint32_t mask) { mask_ = mask; }

    /** Sink defaults to std::cerr; never null. */
    void setSink(std::ostream *sink) { sink_ = sink ? sink : &std::cerr; }
    std::ostream &sink() { return *sink_; }

    /** Emit one line: "<tick>: <category>: <message>". */
    void
    emit(Tick now, const char *category, const std::string &message)
    {
        (*sink_) << now << ": " << category << ": " << message << "\n";
    }

  private:
    std::uint32_t mask_ = 0;
    std::ostream *sink_ = &std::cerr;
};

namespace detail {
/** The thread's current trace; nullptr until first use (constinit keeps
 *  the trace-site load free of a TLS init guard). */
inline thread_local constinit Trace *tl_trace = nullptr;

/** The thread's ambient fallback trace. */
inline Trace &
threadDefaultTrace()
{
    static thread_local Trace trace;
    return trace;
}
} // namespace detail

inline Trace &
Trace::instance()
{
    if (detail::tl_trace == nullptr) [[unlikely]]
        detail::tl_trace = &detail::threadDefaultTrace();
    return *detail::tl_trace;
}

/**
 * RAII: install @p trace as the current thread's trace and restore the
 * previous one on destruction.  core::RunContext uses this to give
 * every simulation run its own trace configuration.
 */
class ScopedTrace
{
  public:
    explicit ScopedTrace(Trace &trace) : prev_(&Trace::instance())
    {
        detail::tl_trace = &trace;
    }

    ~ScopedTrace() { detail::tl_trace = prev_; }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    Trace *prev_;
};

/**
 * Trace site macro: evaluates the streamed expression only when the
 * category is enabled.
 *
 * @param eq   An EventQueue (for the timestamp).
 * @param cat  A TraceCategory enumerator name (unqualified).
 * @param expr An ostream expression chain.
 */
#define ABSIM_TRACE(eq, cat, expr) ABSIM_TRACE_AT((eq).now(), cat, expr)

/** Like ABSIM_TRACE but with an explicit timestamp. */
#define ABSIM_TRACE_AT(tick, cat, expr)                                    \
    do {                                                                   \
        auto &trace_ = ::absim::sim::Trace::instance();                    \
        if (trace_.enabled(::absim::sim::TraceCategory::cat)) {            \
            std::ostringstream oss_;                                       \
            oss_ << expr;                                                  \
            trace_.emit((tick), #cat, oss_.str());                         \
        }                                                                  \
    } while (0)

} // namespace absim::sim

#endif // ABSIM_SIM_TRACE_HH
