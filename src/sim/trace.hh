/**
 * @file
 * Lightweight category-based tracing (the gem5 DPRINTF idiom).
 *
 * Tracing is off by default and costs one branch per site.  Tests and
 * debugging sessions enable categories and install a sink:
 *
 *     sim::Trace::instance().enable(sim::TraceCategory::Protocol);
 *     sim::Trace::instance().setSink(&std::cerr);
 *     ...
 *     ABSIM_TRACE(eq, Protocol, "read miss blk=" << blk);
 */

#ifndef ABSIM_SIM_TRACE_HH
#define ABSIM_SIM_TRACE_HH

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace absim::sim {

/** Trace categories, one bit each. */
enum class TraceCategory : std::uint32_t
{
    Protocol = 1u << 0, ///< Directory/coherence transactions.
    Network = 1u << 1,  ///< Link-level transfers.
    LogP = 1u << 2,     ///< LogP message timing.
    Runtime = 1u << 3,  ///< Processor-level events.
};

/** All four category bits, the "all" spelling of parseTraceMask(). */
inline constexpr std::uint32_t kAllTraceCategories = 0xf;

/**
 * Parse a comma-separated category list ("protocol,logp", or "all")
 * into a bitmask.  Used by the ABSIM_FAIL_TRACE env knob, run_cli's
 * --trace-fail and the serve request "trace" field.
 * @return false on an empty list or an unknown name.
 */
[[nodiscard]] inline bool
parseTraceMask(std::string_view text, std::uint32_t &mask)
{
    std::uint32_t out = 0;
    while (!text.empty()) {
        const auto comma = text.find(',');
        const std::string_view name = text.substr(0, comma);
        if (name == "protocol")
            out |= static_cast<std::uint32_t>(TraceCategory::Protocol);
        else if (name == "network")
            out |= static_cast<std::uint32_t>(TraceCategory::Network);
        else if (name == "logp")
            out |= static_cast<std::uint32_t>(TraceCategory::LogP);
        else if (name == "runtime")
            out |= static_cast<std::uint32_t>(TraceCategory::Runtime);
        else if (name == "all")
            out |= kAllTraceCategories;
        else
            return false;
        if (comma == std::string_view::npos)
            break;
        text.remove_prefix(comma + 1);
    }
    if (out == 0)
        return false;
    mask = out;
    return true;
}

/**
 * Trace configuration and sink.
 *
 * Exactly one Trace is *current* per thread at any time: the thread's
 * ambient default (what instance() returns on a fresh thread), or
 * whatever a ScopedTrace — usually a core::RunContext — installed.
 * Keeping the current-trace pointer thread_local lets N concurrent
 * simulations trace to N different sinks without interleaving.
 */
class Trace
{
  public:
    Trace() = default;

    /** The current thread's active trace. */
    static Trace &instance();

    void
    enable(TraceCategory category)
    {
        mask_ |= static_cast<std::uint32_t>(category);
    }

    void
    disable(TraceCategory category)
    {
        mask_ &= ~static_cast<std::uint32_t>(category);
    }

    void disableAll() { mask_ = 0; }

    bool
    enabled(TraceCategory category) const
    {
        return (mask_ & static_cast<std::uint32_t>(category)) != 0;
    }

    /** The raw category bitmask (for snapshotting into a run context). */
    std::uint32_t mask() const { return mask_; }
    void setMask(std::uint32_t mask) { mask_ = mask; }

    /** Sink defaults to std::cerr; never null. */
    void setSink(std::ostream *sink) { sink_ = sink ? sink : &std::cerr; }
    std::ostream &sink() { return *sink_; }

    /** Emit one line: "<tick>: <category>: <message>". */
    void
    emit(Tick now, const char *category, const std::string &message)
    {
        (*sink_) << now << ": " << category << ": " << message << "\n";
    }

  private:
    std::uint32_t mask_ = 0;
    std::ostream *sink_ = &std::cerr;
};

namespace detail {
/** The thread's current trace; nullptr until first use (constinit keeps
 *  the trace-site load free of a TLS init guard). */
inline thread_local constinit Trace *tl_trace = nullptr;

/** The thread's ambient fallback trace. */
inline Trace &
threadDefaultTrace()
{
    static thread_local Trace trace;
    return trace;
}
} // namespace detail

inline Trace &
Trace::instance()
{
    if (detail::tl_trace == nullptr) [[unlikely]]
        detail::tl_trace = &detail::threadDefaultTrace();
    return *detail::tl_trace;
}

/**
 * A trace sink that keeps only the *tail* of what was written, bounded
 * to @p limit bytes.  Failure forensics want the last events before
 * the watchdog fired, not the first megabyte of a wedged run — the
 * resilient sweep attaches one of these per run attempt and embeds
 * excerpt() in the failure manifest (see core::RunPolicy::traceMask).
 */
class BoundedTraceSink : private std::streambuf
{
  public:
    static constexpr std::size_t kDefaultLimit = 4096;

    explicit BoundedTraceSink(std::size_t limit = kDefaultLimit)
        : limit_(limit != 0 ? limit : 1), out_(this)
    {
    }

    BoundedTraceSink(const BoundedTraceSink &) = delete;
    BoundedTraceSink &operator=(const BoundedTraceSink &) = delete;

    /** The ostream to install via Trace::setSink(). */
    std::ostream &stream() { return out_; }

    /** True once writes have overflowed the limit and the head was
     *  dropped. */
    bool truncated() const { return truncated_; }

    /**
     * The captured tail.  When truncated, the (likely partial) first
     * line is dropped and a marker line prepended, so the excerpt
     * always starts on a line boundary.
     */
    std::string excerpt() const
    {
        if (!truncated_)
            return data_;
        std::string out = "[trace tail; head dropped at " +
                          std::to_string(limit_) + " bytes]\n";
        const auto newline = data_.find('\n');
        out += newline == std::string::npos
                   ? data_
                   : data_.substr(newline + 1);
        return out;
    }

    bool empty() const { return data_.empty(); }

  protected:
    int_type overflow(int_type ch) override
    {
        if (ch != traits_type::eof()) {
            data_ += static_cast<char>(ch);
            trim();
        }
        return ch;
    }

    std::streamsize xsputn(const char *s, std::streamsize n) override
    {
        // Oversized writes keep only their own tail.
        if (static_cast<std::size_t>(n) > limit_) {
            truncated_ = true;
            s += n - static_cast<std::streamsize>(limit_);
            data_.append(s, limit_);
        } else {
            data_.append(s, static_cast<std::size_t>(n));
        }
        trim();
        return n;
    }

  private:
    void trim()
    {
        if (data_.size() > limit_) {
            data_.erase(0, data_.size() - limit_);
            truncated_ = true;
        }
    }

    std::size_t limit_;
    std::string data_;
    bool truncated_ = false;
    std::ostream out_;
};

/**
 * RAII: install @p trace as the current thread's trace and restore the
 * previous one on destruction.  core::RunContext uses this to give
 * every simulation run its own trace configuration.
 */
class ScopedTrace
{
  public:
    explicit ScopedTrace(Trace &trace) : prev_(&Trace::instance())
    {
        detail::tl_trace = &trace;
    }

    ~ScopedTrace() { detail::tl_trace = prev_; }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    Trace *prev_;
};

/**
 * Trace site macro: evaluates the streamed expression only when the
 * category is enabled.
 *
 * @param eq   An EventQueue (for the timestamp).
 * @param cat  A TraceCategory enumerator name (unqualified).
 * @param expr An ostream expression chain.
 */
#define ABSIM_TRACE(eq, cat, expr) ABSIM_TRACE_AT((eq).now(), cat, expr)

/** Like ABSIM_TRACE but with an explicit timestamp. */
#define ABSIM_TRACE_AT(tick, cat, expr)                                    \
    do {                                                                   \
        auto &trace_ = ::absim::sim::Trace::instance();                    \
        if (trace_.enabled(::absim::sim::TraceCategory::cat)) {            \
            std::ostringstream oss_;                                       \
            oss_ << expr;                                                  \
            trace_.emit((tick), #cat, oss_.str());                         \
        }                                                                  \
    } while (0)

} // namespace absim::sim

#endif // ABSIM_SIM_TRACE_HH
