/**
 * @file
 * Deterministic discrete-event engine.
 *
 * This is the CSIM substitute at the bottom of the simulator: a priority
 * queue of (tick, sequence, callback) events.  Two events scheduled for the
 * same tick fire in scheduling order, which makes every simulation run
 * bit-for-bit reproducible.
 */

#ifndef ABSIM_SIM_EVENT_QUEUE_HH
#define ABSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace absim::sim {

/**
 * A deterministic discrete-event simulation engine.
 *
 * The engine owns the global simulated clock.  Client code (processes,
 * resources, networks) schedules callbacks at absolute ticks; run()
 * dispatches them in (tick, insertion) order until the queue drains.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now().
     * @param cb    Callback invoked when the clock reaches @p when.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback @p delay ticks from now. */
    void scheduleAfter(Duration delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Run events until the queue is empty. */
    void run();

    /**
     * Run events until the clock would pass @p limit.
     *
     * Events at exactly @p limit still fire.
     * @return true if the queue drained, false if stopped at the limit.
     */
    bool runUntil(Tick limit);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Tick of the earliest pending event, or kTickMax if none. */
    Tick nextEventTime() const;

    /** Number of pending events. */
    std::size_t pending() const { return queue_.size(); }

    /** Total number of events dispatched so far (simulation-cost metric). */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Install a runaway guard: run()/runUntil() throw std::runtime_error
     * once this many events have been dispatched.  0 disables (default).
     * Livelocked simulations (e.g. an application spinning on a flag
     * that is never set) otherwise run forever.
     */
    void setEventCap(std::uint64_t cap) { eventCap_ = cap; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void checkCap() const;

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t eventCap_ = 0;
};

} // namespace absim::sim

#endif // ABSIM_SIM_EVENT_QUEUE_HH
