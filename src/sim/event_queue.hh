/**
 * @file
 * Deterministic discrete-event engine.
 *
 * This is the CSIM substitute at the bottom of the simulator: events are
 * dispatched in (tick, sequence) order, so two events scheduled for the
 * same tick fire in scheduling order and every simulation run is
 * bit-for-bit reproducible.
 *
 * Internally the queue is built for the near-now tick distribution that
 * process-oriented simulation produces (almost every event lands within
 * a few microseconds of the clock):
 *
 *  - Events live in pooled EventNode slots with a fixed inline buffer
 *    for the callable (no std::function heap churn on the hot path);
 *    nodes come from an arena owned by the queue and are recycled onto
 *    a freelist as they dispatch.
 *  - A single-tick calendar tier — kBuckets circular one-tick buckets
 *    tracked by a two-level bitmap — holds the near-now events; each
 *    bucket is a FIFO list, which *is* (tick, seq) order because a
 *    bucket covers exactly one tick.
 *  - A sorted overflow tier (binary min-heap on (tick, seq)) holds
 *    far-future events; when the calendar drains, the window re-bases
 *    onto the earliest overflow event and pulls the next window's
 *    events across.
 *
 * The engine also hosts the run watchdog: a RunBudget bounds events,
 * simulated time, wall-clock time and clock stalls, and every Process
 * registers itself so the watchdog can dump what each blocked process
 * waits on when a budget trips (see sim/watchdog.hh).
 */

#ifndef ABSIM_SIM_EVENT_QUEUE_HH
#define ABSIM_SIM_EVENT_QUEUE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "sim/watchdog.hh"

namespace absim::sim {

class Process;

/**
 * A deterministic discrete-event simulation engine.
 *
 * The engine owns the global simulated clock.  Client code (processes,
 * resources, networks) schedules callbacks at absolute ticks; run()
 * dispatches them in (tick, insertion) order until the queue drains.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callable at absolute time @p when.
     *
     * Accepts any nullary callable.  Callables up to kInlineBytes are
     * stored inline in a pooled event node (the zero-allocation hot
     * path); larger ones fall back to a heap-backed std::function.
     *
     * @param when  Absolute tick; must be >= now().
     * @param fn    Callable invoked when the clock reaches @p when.
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        checkSchedule(when);
        emplace(when, std::forward<F>(fn));
    }

    /** Schedule a callable @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Duration delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Run events until the queue is empty.
     * @throws BudgetExceededError / DeadlockError if the budget trips.
     */
    void run();

    /**
     * Run events until the clock would pass @p limit.
     *
     * Events at exactly @p limit still fire.
     * @return true if the queue drained, false if stopped at the limit.
     */
    bool runUntil(Tick limit);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Tick of the earliest pending event, or kTickMax if none. */
    Tick nextEventTime() const;

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /** Total number of events dispatched so far (simulation-cost metric). */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Install a run budget; run()/runUntil() raise BudgetExceededError
     * or DeadlockError (stall limit) once a limit trips.  The wall
     * clock starts at the first dispatch after the budget is set.
     */
    void setBudget(const RunBudget &budget);

    const RunBudget &budget() const { return budget_; }

    /**
     * Stop dispatching at the next event boundary; run()/runUntil()
     * return with the queue still populated.  Used by the runtime when
     * a worker dies mid-run: its peers would otherwise spin in
     * simulated time until a budget trips (or forever, with no budget
     * armed).  Sticky for the lifetime of the engine.
     */
    void requestStop() { stopRequested_ = true; }

    bool stopRequested() const { return stopRequested_; }

    /** @name Process registry (used by sim::Process).
     *
     * Every live Process registers itself so the watchdog can report
     * which processes are blocked, and on what, when a run wedges.
     */
    /// @{
    void registerProcess(Process *p) { processes_.push_back(p); }
    void unregisterProcess(Process *p);
    /// @}

    /**
     * Diagnostic snapshot of every registered, unfinished process: its
     * name, scheduling state and the wait reason recorded at the
     * blocking site.
     */
    std::vector<BlockedProcessInfo> blockedProcesses() const;

    /** Inline callable capacity of a pooled event node. */
    static constexpr std::size_t kInlineBytes = 64;

  private:
    /** Calendar width: one-tick buckets spanning a kBuckets-tick
     *  window.  Power of two so the bucket index is a mask. */
    static constexpr std::size_t kBuckets = 4096;
    static constexpr std::size_t kBucketWords = kBuckets / 64;
    static constexpr std::size_t kNodesPerBlock = 256;

    /**
     * One pooled event: intrusive FIFO link + type-erased callable in
     * a fixed inline buffer.  invoke/destroy are plain function
     * pointers (no std::function dispatch on the hot path).
     */
    struct EventNode
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        EventNode *next = nullptr;
        void (*invoke)(void *) = nullptr;
        void (*destroy)(void *) = nullptr; ///< Null: trivially destructible.
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    /** A one-tick calendar bucket: FIFO list == (tick, seq) order. */
    struct Bucket
    {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    template <typename D>
    static void
    invokeAs(void *p)
    {
        (*static_cast<D *>(p))();
    }

    template <typename D>
    static void
    destroyAs(void *p)
    {
        static_cast<D *>(p)->~D();
    }

    /** Causality validation half of schedule() (out of line: needs the
     *  check machinery, which this header must not drag in). */
    void checkSchedule(Tick when) const;

    /** Construct the callable into a pooled node and enqueue it. */
    template <typename F>
    void
    emplace(Tick when, F &&fn)
    {
        using D = std::decay_t<F>;
        EventNode *node = acquireNode();
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t)) {
            try {
                ::new (static_cast<void *>(node->storage))
                    D(std::forward<F>(fn));
            } catch (...) {
                releaseNode(node);
                throw;
            }
            node->invoke = &invokeAs<D>;
            node->destroy = std::is_trivially_destructible_v<D>
                                ? nullptr
                                : &destroyAs<D>;
        } else {
            // Oversized capture: box it in a std::function (heap), the
            // exact cost every schedule used to pay.
            static_assert(sizeof(Callback) <= kInlineBytes);
            try {
                ::new (static_cast<void *>(node->storage))
                    Callback(std::forward<F>(fn));
            } catch (...) {
                releaseNode(node);
                throw;
            }
            node->invoke = &invokeAs<Callback>;
            node->destroy = &destroyAs<Callback>;
        }
        node->when = when;
        node->seq = nextSeq_++;
        enqueueNode(node);
    }

    EventNode *acquireNode();
    void releaseNode(EventNode *node); ///< Callable already destroyed.
    void destroyNode(EventNode *node); ///< Destroy callable + release.

    /** Route a filled node into the calendar or the overflow tier. */
    void enqueueNode(EventNode *node);
    void pushBucket(EventNode *node);
    void pushOverflow(EventNode *node);
    EventNode *popOverflowTop();

    /**
     * Re-base the calendar window onto the earliest overflow event and
     * pull everything inside the new window across.  Precondition: the
     * calendar tier is empty and the overflow tier is not.
     */
    void advanceWindow();

    /** Earliest bucketed node, or nullptr if the calendar is empty. */
    EventNode *calendarFront() const;

    /**
     * Detach and return the earliest pending event ((when, seq) order
     * across both tiers), re-basing the window as needed.  Returns
     * nullptr when the queue is empty.
     */
    EventNode *popNext();

    /** The (when, seq) of the earliest pending event without popping. */
    const EventNode *peekNext() const;

    /** Dispatch @p node: advance the clock, invoke, recycle. */
    void dispatch(EventNode *node);

    /** Throw if the budget (events / wall clock / stall) has tripped. */
    void enforceBudget();

    /** One link of the StallQueue fault-injection chain. */
    void stallStep();

    /** @name Two-level occupancy bitmap over the calendar buckets. */
    /// @{
    void markBucket(std::size_t idx);
    void clearBucket(std::size_t idx);
    /** First occupied bucket in circular order from @p start. */
    std::size_t firstBucketFrom(std::size_t start) const;
    /// @}

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t size_ = 0;

    /** Calendar tier: buckets cover [windowBase_, windowLimit_). */
    std::unique_ptr<Bucket[]> buckets_;
    std::uint64_t summary_ = 0; ///< Which bitmap words are non-zero.
    std::unique_ptr<std::uint64_t[]> words_;
    Tick windowBase_ = 0;
    Tick windowLimit_ = kBuckets;
    std::size_t calendarCount_ = 0;

    /** Overflow tier: (when, seq) min-heap of far-future (and, with
     *  causality checks off, past) events. */
    std::vector<EventNode *> overflow_;

    /** Node pool: arena blocks + freelist threaded through next. */
    std::vector<std::unique_ptr<EventNode[]>> blocks_;
    EventNode *freeList_ = nullptr;

    RunBudget budget_;
    bool stopRequested_ = false;
    /** dispatched() value at the last simulated-clock advance. */
    std::uint64_t lastProgressDispatch_ = 0;
    bool wallArmed_ = false;
    std::chrono::steady_clock::time_point wallDeadline_;

    std::vector<Process *> processes_;
};

} // namespace absim::sim

#endif // ABSIM_SIM_EVENT_QUEUE_HH
