/**
 * @file
 * Deterministic discrete-event engine.
 *
 * This is the CSIM substitute at the bottom of the simulator: a priority
 * queue of (tick, sequence, callback) events.  Two events scheduled for the
 * same tick fire in scheduling order, which makes every simulation run
 * bit-for-bit reproducible.
 *
 * The engine also hosts the run watchdog: a RunBudget bounds events,
 * simulated time, wall-clock time and clock stalls, and every Process
 * registers itself so the watchdog can dump what each blocked process
 * waits on when a budget trips (see sim/watchdog.hh).
 */

#ifndef ABSIM_SIM_EVENT_QUEUE_HH
#define ABSIM_SIM_EVENT_QUEUE_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"
#include "sim/watchdog.hh"

namespace absim::sim {

class Process;

/**
 * A deterministic discrete-event simulation engine.
 *
 * The engine owns the global simulated clock.  Client code (processes,
 * resources, networks) schedules callbacks at absolute ticks; run()
 * dispatches them in (tick, insertion) order until the queue drains.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now().
     * @param cb    Callback invoked when the clock reaches @p when.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback @p delay ticks from now. */
    void scheduleAfter(Duration delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue is empty.
     * @throws BudgetExceededError / DeadlockError if the budget trips.
     */
    void run();

    /**
     * Run events until the clock would pass @p limit.
     *
     * Events at exactly @p limit still fire.
     * @return true if the queue drained, false if stopped at the limit.
     */
    bool runUntil(Tick limit);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Tick of the earliest pending event, or kTickMax if none. */
    Tick nextEventTime() const;

    /** Number of pending events. */
    std::size_t pending() const { return queue_.size(); }

    /** Total number of events dispatched so far (simulation-cost metric). */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Install a run budget; run()/runUntil() raise BudgetExceededError
     * or DeadlockError (stall limit) once a limit trips.  The wall
     * clock starts at the first dispatch after the budget is set.
     */
    void setBudget(const RunBudget &budget);

    const RunBudget &budget() const { return budget_; }

    /**
     * Legacy runaway guard: equivalent to a budget with only maxEvents
     * set.  The violation surfaces as a structured BudgetExceededError
     * (which derives from std::runtime_error).  0 disables.
     */
    void setEventCap(std::uint64_t cap) { budget_.maxEvents = cap; }

    /**
     * Stop dispatching at the next event boundary; run()/runUntil()
     * return with the queue still populated.  Used by the runtime when
     * a worker dies mid-run: its peers would otherwise spin in
     * simulated time until a budget trips (or forever, with no budget
     * armed).  Sticky for the lifetime of the engine.
     */
    void requestStop() { stopRequested_ = true; }

    bool stopRequested() const { return stopRequested_; }

    /** @name Process registry (used by sim::Process).
     *
     * Every live Process registers itself so the watchdog can report
     * which processes are blocked, and on what, when a run wedges.
     */
    /// @{
    void registerProcess(Process *p) { processes_.push_back(p); }
    void unregisterProcess(Process *p);
    /// @}

    /**
     * Diagnostic snapshot of every registered, unfinished process: its
     * name, scheduling state and the wait reason recorded at the
     * blocking site.
     */
    std::vector<BlockedProcessInfo> blockedProcesses() const;

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Throw if the budget (events / wall clock / stall) has tripped. */
    void enforceBudget();

    /** One link of the StallQueue fault-injection chain. */
    void stallStep();

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;

    RunBudget budget_;
    bool stopRequested_ = false;
    /** dispatched() value at the last simulated-clock advance. */
    std::uint64_t lastProgressDispatch_ = 0;
    bool wallArmed_ = false;
    std::chrono::steady_clock::time_point wallDeadline_;

    std::vector<Process *> processes_;
};

} // namespace absim::sim

#endif // ABSIM_SIM_EVENT_QUEUE_HH
