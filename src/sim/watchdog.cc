#include "sim/watchdog.hh"

#include <sstream>

namespace absim::sim {

std::string
formatBlockedDump(const std::vector<BlockedProcessInfo> &blocked)
{
    std::ostringstream oss;
    oss << blocked.size() << " unfinished process(es):";
    for (const BlockedProcessInfo &info : blocked) {
        oss << "\n  - " << info.name << ": " << info.state;
        if (info.state == "delayed")
            oss << " until " << info.delayedUntil << " ns";
        if (!info.waitReason.empty())
            oss << " (" << info.waitReason << ")";
    }
    return oss.str();
}

namespace {

std::string
composeWhat(const std::string &what, std::uint64_t events, Tick sim_time,
            const std::vector<BlockedProcessInfo> &blocked)
{
    std::ostringstream oss;
    oss << what << " [events=" << events << " sim_time=" << sim_time
        << " ns]";
    if (!blocked.empty())
        oss << "\n" << formatBlockedDump(blocked);
    return oss.str();
}

} // namespace

WatchdogError::WatchdogError(const std::string &what, std::uint64_t events,
                             Tick sim_time,
                             std::vector<BlockedProcessInfo> blocked)
    : std::runtime_error(composeWhat(what, events, sim_time, blocked)),
      events_(events), simTime_(sim_time), blocked_(std::move(blocked))
{
}

} // namespace absim::sim
