/**
 * @file
 * Simulated processes: fibers driven by the discrete-event engine.
 *
 * A Process couples a Fiber with an EventQueue so that code running inside
 * the fiber can block in simulated time (delay, suspend) and be woken by
 * events.  This is the process-oriented simulation primitive that CSIM
 * provided to SPASM.
 */

#ifndef ABSIM_SIM_PROCESS_HH
#define ABSIM_SIM_PROCESS_HH

#include <functional>
#include <memory>
#include <string>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/types.hh"

namespace absim::sim {

/**
 * Scheduling state of a Process, tracked for watchdog diagnostics:
 * when a run deadlocks, the blocked-process dump reports each
 * process's state and the wait reason recorded at the blocking site.
 */
enum class ProcState : std::uint8_t
{
    Created,   ///< Constructed, never started.
    Runnable,  ///< A resume event is scheduled.
    Running,   ///< Currently executing on its fiber.
    Delayed,   ///< Blocked until a known tick (delayUntil()).
    Suspended, ///< Blocked until wake(); see waitReason().
    Finished,  ///< Entry function returned.
};

std::string toString(ProcState state);

/**
 * What a suspended process waits on, formatted lazily.
 *
 * Suspends are the hottest blocking path in the simulator (every mutex
 * acquire, latch await and message receive goes through one), but the
 * reason text is only ever read by the watchdog's blocked-process dump
 * when a run wedges.  So the reason is carried as a string literal
 * plus up to two named numeric arguments, and the string is built only
 * in str() — a suspend never allocates for diagnostics it will almost
 * never print.
 */
class WaitReason
{
  public:
    constexpr WaitReason() = default;

    /** Plain reason: str() is @p what verbatim. */
    constexpr WaitReason(const char *what) : what_(what) {}

    /** One argument: str() is "what (key=value)". */
    constexpr WaitReason(const char *what, const char *key,
                         std::uint64_t value)
        : what_(what), key0_(key), value0_(value)
    {
    }

    /** Two arguments: str() is "what (key0=value0 key1=value1)". */
    constexpr WaitReason(const char *what, const char *key0,
                         std::uint64_t value0, const char *key1,
                         std::uint64_t value1)
        : what_(what), key0_(key0), value0_(value0), key1_(key1),
          value1_(value1)
    {
    }

    bool empty() const { return what_[0] == '\0'; }

    /** Render the reason (the only place that allocates). */
    std::string str() const;

  private:
    const char *what_ = "";
    const char *key0_ = nullptr;
    std::uint64_t value0_ = 0;
    const char *key1_ = nullptr;
    std::uint64_t value1_ = 0;
};

/**
 * A simulated process.
 *
 * The entry function runs on a private fiber.  Inside it, the process may
 * call delay()/delayUntil() to advance simulated time, or suspend() to
 * block until another party calls wake().
 */
class Process
{
  public:
    /**
     * Create a process.
     *
     * @param eq     Engine that drives this process.
     * @param name   Debug name.
     * @param entry  Body of the process; runs on the private fiber.
     */
    Process(EventQueue &eq, std::string name, std::function<void()> entry);
    ~Process();

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** Schedule the first activation of the process at tick @p when. */
    void start(Tick when = 0);

    /**
     * Block the calling process until the engine clock reaches @p when.
     * Must be called from inside this process's fiber.
     */
    void delayUntil(Tick when);

    /** Block the calling process for @p d ticks. */
    void delay(Duration d) { delayUntil(eq_.now() + d); }

    /**
     * Block until wake() is called.  Must be called from inside this
     * process's fiber.
     *
     * @param reason  What the process waits on (e.g. "fifo-mutex
     *                acquire"); surfaced by the deadlock watchdog's
     *                blocked-process dump.
     */
    void suspend(WaitReason reason = {});

    /**
     * Wake a suspended process; it resumes at the current engine time.
     * Must be called from the scheduler context or another fiber (the
     * wake-up is delivered through the event queue either way).
     */
    void wake();

    /** The process currently running on this thread, if any. */
    static Process *current();

    /**
     * Install a hook invoked from the scheduler context right after the
     * process's entry function returns.  The hook may delete the process
     * (this is how detached helpers clean themselves up).
     */
    void setOnFinish(std::function<void(Process *)> f)
    {
        onFinish_ = std::move(f);
    }

    const std::string &name() const { return name_; }
    bool finished() const { return fiber_.finished(); }
    EventQueue &engine() { return eq_; }

    /** @name Watchdog diagnostics. */
    /// @{
    ProcState state() const { return state_; }

    /** What the process waits on while Suspended ("" if unset). */
    std::string waitReason() const { return waitReason_.str(); }

    /** Wake-up tick while Delayed. */
    Tick delayedUntil() const { return delayedUntil_; }
    /// @}

  private:
    void scheduleResume(Tick when);

    EventQueue &eq_;
    std::string name_;
    Fiber fiber_;
    bool suspended_ = false;
    ProcState state_ = ProcState::Created;
    WaitReason waitReason_;
    Tick delayedUntil_ = 0;
    std::function<void(Process *)> onFinish_;
};

/**
 * Spawn a detached helper process that deletes itself on completion.
 *
 * Used for concurrent activities with no owner that must outlive the
 * spawning call frame (e.g. parallel invalidation messages).  The caller
 * can rendezvous with helpers via Counter / Condition primitives.
 *
 * @return A non-owning pointer, valid until the entry function returns.
 */
Process *spawnDetached(EventQueue &eq, std::string name,
                       std::function<void()> entry, Tick when);

} // namespace absim::sim

#endif // ABSIM_SIM_PROCESS_HH
