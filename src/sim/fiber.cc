#include "sim/fiber.hh"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "check/check.hh"
#include "check/sanitizer.hh"

#if defined(__x86_64__)

extern "C" void absimFiberSwitch(void **save_sp, void *restore_sp);

// System V x86-64 cooperative context switch: save the callee-saved
// GPRs and the SSE/x87 control words (everything a function call must
// preserve), publish the old stack pointer, adopt the peer's, restore,
// and return onto the peer's stack.  This replaces swapcontext(),
// whose two mandatory sigprocmask() system calls per switch dominated
// fiber cost; the simulator never changes signal masks per fiber, so
// nothing is lost.  Exceptions never unwind across a switch (worker
// exceptions are caught on the fiber's own stack and rethrown on the
// scheduler's), so the missing CFI here is unreachable by design.
asm(R"(
        .text
        .align  16
        .globl  absimFiberSwitch
        .type   absimFiberSwitch, @function
absimFiberSwitch:
        pushq   %rbp
        pushq   %rbx
        pushq   %r12
        pushq   %r13
        pushq   %r14
        pushq   %r15
        subq    $16, %rsp
        stmxcsr (%rsp)
        fnstcw  4(%rsp)
        movq    %rsp, (%rdi)
        movq    %rsi, %rsp
        ldmxcsr (%rsp)
        fldcw   4(%rsp)
        addq    $16, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        retq
        .size   absimFiberSwitch, .-absimFiberSwitch
)");

#endif // __x86_64__

namespace absim::sim {

namespace {

/// The fiber currently executing on this thread (nullptr = scheduler).
thread_local Fiber *tl_current = nullptr;

/**
 * Canary word written at the overflow end (lowest addresses) of every
 * fiber stack.  Stacks grow downwards, so an overflow scribbles here
 * before escaping the buffer; the word is verified on every switch out
 * of the fiber, catching the overflow before it can corrupt the heap.
 */
constexpr std::uint64_t kStackCanary = 0xF1BE25AFE57AC000ull;

} // namespace

FiberStackPool &
FiberStackPool::forThisThread()
{
    thread_local FiberStackPool pool;
    return pool;
}

std::unique_ptr<unsigned char[]>
FiberStackPool::acquire(std::size_t bytes)
{
    if (bytes == kPooledStackBytes && !pool_.empty()) {
        ++reused_;
        auto stack = std::move(pool_.back());
        pool_.pop_back();
        return stack;
    }
    ++allocated_;
    // new[] of char leaves the memory uninitialized; a fiber stack needs
    // no zeroing.
    return std::unique_ptr<unsigned char[]>(new unsigned char[bytes]);
}

FiberStackPool::~FiberStackPool()
{
    // The thread is going away with stacks still pooled.  Hand the
    // memory back to the allocator with its shadow clean: a stack
    // poisoned by a fiber's ASan instrumentation must not leak its
    // poison into whatever the allocator hands out at these addresses
    // next (the allocator only scrubs shadow for the exact chunks it
    // re-issues, not for arbitrary interior regions).
    for (const auto &stack : pool_)
        check::unpoisonStackMemory(stack.get(), kPooledStackBytes);
}

void
FiberStackPool::recycle(std::unique_ptr<unsigned char[]> stack,
                        std::size_t bytes)
{
    // Unpoison on every return path — including stacks this pool is
    // about to *drop* (odd-sized, or pool at capacity).  Freeing a
    // still-poisoned buffer used to leave stale shadow behind the
    // allocator's back.
    check::unpoisonStackMemory(stack.get(), bytes);
    if (bytes == kPooledStackBytes && pool_.size() < kMaxPooled)
        pool_.push_back(std::move(stack));
}

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stackBytes_(stack_bytes),
      stack_(FiberStackPool::forThisThread().acquire(stack_bytes))
{
    ABSIM_CHECK(entry_ != nullptr, "fiber needs an entry function");
    ABSIM_CHECK(stackBytes_ > sizeof(kStackCanary),
                "fiber stack of " << stackBytes_
                                  << " bytes cannot hold the canary");
    std::memcpy(stack_.get(), &kStackCanary, sizeof(kStackCanary));
}

Fiber::~Fiber()
{
    // A fiber destroyed mid-flight simply abandons its execution state;
    // its stack memory is still recyclable.
    check::tsanDestroyFiber(tsanFiber_);
    FiberStackPool::forThisThread().recycle(std::move(stack_),
                                            stackBytes_);
}

void
Fiber::checkCanary() const
{
    std::uint64_t word = 0;
    std::memcpy(&word, stack_.get(), sizeof(word));
    ABSIM_CHECK(word == kStackCanary,
                "fiber stack overflow: canary at the bottom of the "
                    << stackBytes_
                    << "-byte stack was clobbered (0x" << std::hex << word
                    << std::dec << ")");
}

void
Fiber::corruptStackCanaryForTest()
{
    std::memset(stack_.get(), 0x5c, sizeof(kStackCanary));
}

void
Fiber::initContext()
{
#if defined(__x86_64__)
    // Build the frame absimFiberSwitch restores from, so the first
    // switch in "returns" into trampoline() on this stack.  Matching
    // the switch's save layout, from the top down: a null fake return
    // address (trampoline never returns), the entry address the final
    // retq pops, six zeroed callee-saved slots, and a 16-byte control
    // area holding the power-on MXCSR/x87 control words.
    const auto top =
        reinterpret_cast<std::uintptr_t>(stack_.get() + stackBytes_) &
        ~std::uintptr_t{15};
    auto *sp = reinterpret_cast<std::uint64_t *>(top);
    *--sp = 0;
    *--sp = reinterpret_cast<std::uint64_t>(&Fiber::trampoline);
    for (int i = 0; i < 6; ++i)
        *--sp = 0; // rbp, rbx, r12-r15
    *--sp = 0;
    *--sp = 0;
    const std::uint32_t mxcsr = 0x1f80;
    const std::uint16_t fcw = 0x037f;
    std::memcpy(sp, &mxcsr, sizeof(mxcsr));
    std::memcpy(reinterpret_cast<unsigned char *>(sp) + 4, &fcw,
                sizeof(fcw));
    fiberSp_ = sp;
#else
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stackBytes_;
    context_.uc_link = &returnContext_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
#endif
}

void
Fiber::switchToFiber()
{
#if defined(__x86_64__)
    absimFiberSwitch(&schedulerSp_, fiberSp_);
#else
    swapcontext(&returnContext_, &context_);
#endif
}

void
Fiber::switchToScheduler()
{
#if defined(__x86_64__)
    absimFiberSwitch(&fiberSp_, schedulerSp_);
#else
    swapcontext(&context_, &returnContext_);
#endif
}

void
Fiber::trampoline()
{
    Fiber *self = tl_current;
    ABSIM_CHECK(self != nullptr, "fiber trampoline without a current fiber");
    // First instruction on this stack: finish the switch resume() began
    // and learn the scheduler stack's bounds for the switches back.
    check::annotateSwitchFinish(nullptr, &self->switchFromBottom_,
                                &self->switchFromSize_);
    self->entry_();
    self->finished_ = true;
    // Return to the resumer for good.  The nullptr handle tells ASan
    // this stack is abandoned.
    tl_current = nullptr;
    check::annotateSwitchStart(nullptr, self->switchFromBottom_,
                               self->switchFromSize_);
    check::tsanSwitchFiber(self->tsanReturnFiber_);
    self->switchToScheduler();
    // Never reached.
    std::abort();
}

void
Fiber::resume()
{
    ABSIM_CHECK(!finished_, "resume of a finished fiber");
    ABSIM_CHECK(tl_current == nullptr,
                "fibers may only be resumed from the scheduler context");

    if (!started_) {
        started_ = true;
        initContext();
        tsanFiber_ = check::tsanCreateFiber();
    }
    tl_current = this;
    tsanReturnFiber_ = check::tsanCurrentFiber();
    void *fake_stack = nullptr;
    check::annotateSwitchStart(&fake_stack, stack_.get(), stackBytes_);
    check::tsanSwitchFiber(tsanFiber_);
    switchToFiber();
    check::annotateSwitchFinish(fake_stack, nullptr, nullptr);
    // Back in the scheduler: either the fiber yielded (tl_current reset in
    // yield()) or it finished (reset in trampoline()).
    checkCanary();
    ABSIM_DCHECK(tl_current == nullptr,
                 "fiber switch left a stale current fiber");
}

void
Fiber::yield()
{
    Fiber *self = tl_current;
    ABSIM_CHECK(self != nullptr, "yield() called outside any fiber");
    self->checkCanary();
    tl_current = nullptr;
    void *fake_stack = nullptr;
    check::annotateSwitchStart(&fake_stack, self->switchFromBottom_,
                               self->switchFromSize_);
    check::tsanSwitchFiber(self->tsanReturnFiber_);
    self->switchToScheduler();
    check::annotateSwitchFinish(fake_stack, &self->switchFromBottom_,
                                &self->switchFromSize_);
    // Resumed again.
    ABSIM_DCHECK(tl_current == self, "resume handshake out of sync");
}

Fiber *
Fiber::current()
{
    return tl_current;
}

} // namespace absim::sim
