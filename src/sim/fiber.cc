#include "sim/fiber.hh"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "check/check.hh"
#include "check/sanitizer.hh"

namespace absim::sim {

namespace {

/// The fiber currently executing on this thread (nullptr = scheduler).
thread_local Fiber *tl_current = nullptr;

/// Recycled default-sized stacks (bounded).
thread_local std::vector<std::unique_ptr<unsigned char[]>> tl_stack_pool;
constexpr std::size_t kMaxPooledStacks = 128;

/**
 * Canary word written at the overflow end (lowest addresses) of every
 * fiber stack.  Stacks grow downwards, so an overflow scribbles here
 * before escaping the buffer; the word is verified on every switch out
 * of the fiber, catching the overflow before it can corrupt the heap.
 */
constexpr std::uint64_t kStackCanary = 0xF1BE25AFE57AC000ull;

} // namespace

std::unique_ptr<unsigned char[]>
Fiber::acquireStack(std::size_t bytes)
{
    if (bytes == kDefaultStackBytes && !tl_stack_pool.empty()) {
        auto stack = std::move(tl_stack_pool.back());
        tl_stack_pool.pop_back();
        return stack;
    }
    // new[] of char leaves the memory uninitialized; a fiber stack needs
    // no zeroing.
    return std::unique_ptr<unsigned char[]>(new unsigned char[bytes]);
}

void
Fiber::recycleStack(std::unique_ptr<unsigned char[]> stack,
                    std::size_t bytes)
{
    if (bytes == kDefaultStackBytes &&
        tl_stack_pool.size() < kMaxPooledStacks)
        tl_stack_pool.push_back(std::move(stack));
}

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stackBytes_(stack_bytes),
      stack_(acquireStack(stack_bytes))
{
    ABSIM_CHECK(entry_ != nullptr, "fiber needs an entry function");
    ABSIM_CHECK(stackBytes_ > sizeof(kStackCanary),
                "fiber stack of " << stackBytes_
                                  << " bytes cannot hold the canary");
    std::memcpy(stack_.get(), &kStackCanary, sizeof(kStackCanary));
}

Fiber::~Fiber()
{
    // A fiber destroyed mid-flight simply abandons its execution state;
    // its stack memory is still recyclable.
    check::tsanDestroyFiber(tsanFiber_);
    recycleStack(std::move(stack_), stackBytes_);
}

void
Fiber::checkCanary() const
{
    std::uint64_t word = 0;
    std::memcpy(&word, stack_.get(), sizeof(word));
    ABSIM_CHECK(word == kStackCanary,
                "fiber stack overflow: canary at the bottom of the "
                    << stackBytes_
                    << "-byte stack was clobbered (0x" << std::hex << word
                    << std::dec << ")");
}

void
Fiber::corruptStackCanaryForTest()
{
    std::memset(stack_.get(), 0x5c, sizeof(kStackCanary));
}

void
Fiber::trampoline()
{
    Fiber *self = tl_current;
    ABSIM_CHECK(self != nullptr, "fiber trampoline without a current fiber");
    // First instruction on this stack: finish the switch resume() began
    // and learn the scheduler stack's bounds for the switches back.
    check::annotateSwitchFinish(nullptr, &self->switchFromBottom_,
                                &self->switchFromSize_);
    self->entry_();
    self->finished_ = true;
    // Return to the resumer; uc_link is set up to do this, but swapping
    // explicitly keeps tl_current coherent.  The nullptr handle tells
    // ASan this stack is abandoned for good.
    tl_current = nullptr;
    check::annotateSwitchStart(nullptr, self->switchFromBottom_,
                               self->switchFromSize_);
    check::tsanSwitchFiber(self->tsanReturnFiber_);
    swapcontext(&self->context_, &self->returnContext_);
    // Never reached.
    std::abort();
}

void
Fiber::resume()
{
    ABSIM_CHECK(!finished_, "resume of a finished fiber");
    ABSIM_CHECK(tl_current == nullptr,
                "fibers may only be resumed from the scheduler context");

    if (!started_) {
        started_ = true;
        getcontext(&context_);
        context_.uc_stack.ss_sp = stack_.get();
        context_.uc_stack.ss_size = stackBytes_;
        context_.uc_link = &returnContext_;
        makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
        tsanFiber_ = check::tsanCreateFiber();
    }
    tl_current = this;
    tsanReturnFiber_ = check::tsanCurrentFiber();
    void *fake_stack = nullptr;
    check::annotateSwitchStart(&fake_stack, stack_.get(), stackBytes_);
    check::tsanSwitchFiber(tsanFiber_);
    swapcontext(&returnContext_, &context_);
    check::annotateSwitchFinish(fake_stack, nullptr, nullptr);
    // Back in the scheduler: either the fiber yielded (tl_current reset in
    // yield()) or it finished (reset in trampoline()).
    checkCanary();
    ABSIM_DCHECK(tl_current == nullptr,
                 "fiber switch left a stale current fiber");
}

void
Fiber::yield()
{
    Fiber *self = tl_current;
    ABSIM_CHECK(self != nullptr, "yield() called outside any fiber");
    self->checkCanary();
    tl_current = nullptr;
    void *fake_stack = nullptr;
    check::annotateSwitchStart(&fake_stack, self->switchFromBottom_,
                               self->switchFromSize_);
    check::tsanSwitchFiber(self->tsanReturnFiber_);
    swapcontext(&self->context_, &self->returnContext_);
    check::annotateSwitchFinish(fake_stack, &self->switchFromBottom_,
                                &self->switchFromSize_);
    // Resumed again.
    ABSIM_DCHECK(tl_current == self, "resume handshake out of sync");
}

Fiber *
Fiber::current()
{
    return tl_current;
}

} // namespace absim::sim
