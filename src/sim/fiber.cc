#include "sim/fiber.hh"

#include <cassert>
#include <cstdlib>
#include <utility>

namespace absim::sim {

namespace {

/// The fiber currently executing on this thread (nullptr = scheduler).
thread_local Fiber *tl_current = nullptr;

/// Recycled default-sized stacks (bounded).
thread_local std::vector<std::unique_ptr<unsigned char[]>> tl_stack_pool;
constexpr std::size_t kMaxPooledStacks = 128;

} // namespace

std::unique_ptr<unsigned char[]>
Fiber::acquireStack(std::size_t bytes)
{
    if (bytes == kDefaultStackBytes && !tl_stack_pool.empty()) {
        auto stack = std::move(tl_stack_pool.back());
        tl_stack_pool.pop_back();
        return stack;
    }
    // new[] of char leaves the memory uninitialized; a fiber stack needs
    // no zeroing.
    return std::unique_ptr<unsigned char[]>(new unsigned char[bytes]);
}

void
Fiber::recycleStack(std::unique_ptr<unsigned char[]> stack,
                    std::size_t bytes)
{
    if (bytes == kDefaultStackBytes &&
        tl_stack_pool.size() < kMaxPooledStacks)
        tl_stack_pool.push_back(std::move(stack));
}

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stackBytes_(stack_bytes),
      stack_(acquireStack(stack_bytes))
{
    assert(entry_ && "fiber needs an entry function");
}

Fiber::~Fiber()
{
    // A fiber destroyed mid-flight simply abandons its execution state;
    // its stack memory is still recyclable.
    recycleStack(std::move(stack_), stackBytes_);
}

void
Fiber::trampoline()
{
    Fiber *self = tl_current;
    assert(self != nullptr);
    self->entry_();
    self->finished_ = true;
    // Return to the resumer; uc_link is set up to do this, but swapping
    // explicitly keeps tl_current coherent.
    tl_current = nullptr;
    swapcontext(&self->context_, &self->returnContext_);
    // Never reached.
    std::abort();
}

void
Fiber::resume()
{
    assert(!finished_ && "cannot resume a finished fiber");
    assert(tl_current == nullptr &&
           "fibers may only be resumed from the scheduler context");

    if (!started_) {
        started_ = true;
        getcontext(&context_);
        context_.uc_stack.ss_sp = stack_.get();
        context_.uc_stack.ss_size = stackBytes_;
        context_.uc_link = &returnContext_;
        makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
    }
    tl_current = this;
    swapcontext(&returnContext_, &context_);
    // Back in the scheduler: either the fiber yielded (tl_current reset in
    // yield()) or it finished (reset in trampoline()).
    assert(tl_current == nullptr);
}

void
Fiber::yield()
{
    Fiber *self = tl_current;
    assert(self != nullptr && "yield() called outside any fiber");
    tl_current = nullptr;
    swapcontext(&self->context_, &self->returnContext_);
    // Resumed again.
    assert(tl_current == self);
}

Fiber *
Fiber::current()
{
    return tl_current;
}

} // namespace absim::sim
