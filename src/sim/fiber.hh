/**
 * @file
 * Minimal cooperative fibers built on POSIX ucontext.
 *
 * Each simulated process runs on its own fiber so that application code can
 * make *blocking* calls into the memory system and network (the CSIM
 * process-oriented style the paper's SPASM simulator is built on).  Fibers
 * only ever switch to/from the scheduler fiber owned by the engine, never
 * directly between each other; this keeps the switching discipline trivial
 * to reason about.
 */

#ifndef ABSIM_SIM_FIBER_HH
#define ABSIM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace absim::sim {

/**
 * A single cooperative fiber with its own stack.
 *
 * The fiber starts executing its entry function on the first resume() and
 * must eventually return from it; after that it is finished() and may not
 * be resumed again.  Inside the entry function, Fiber::yield() suspends
 * the fiber and returns control to whoever called resume().
 */
class Fiber
{
  public:
    /** Default stack size: generous, since application code runs here. */
    static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

    explicit Fiber(std::function<void()> entry,
                   std::size_t stack_bytes = kDefaultStackBytes);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch from the calling context into this fiber.  Returns when the
     * fiber yields or its entry function returns.  Must not be called from
     * inside any fiber other than the scheduler context.
     */
    void resume();

    /**
     * Suspend the currently running fiber, returning control to the
     * context that called resume().  Must be called from inside a fiber.
     */
    static void yield();

    /** The fiber currently executing, or nullptr if in the scheduler. */
    static Fiber *current();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /**
     * Clobber the stack-overflow canary, simulating an overflow without
     * undefined behaviour.  Test-only: the next canary check fires.
     */
    void corruptStackCanaryForTest();

  private:
    static void trampoline();

    /** Verify the canary word at the overflow end of the stack. */
    void checkCanary() const;

    /**
     * Fiber stacks are recycled through a thread-local pool: simulations
     * spawn thousands of short-lived helper processes (e.g. parallel
     * invalidations) and allocating + faulting a fresh stack each time
     * dominates the simulation cost otherwise.  Only default-sized
     * stacks are pooled.
     */
    static std::unique_ptr<unsigned char[]> acquireStack(std::size_t bytes);
    static void recycleStack(std::unique_ptr<unsigned char[]> stack,
                             std::size_t bytes);

    std::function<void()> entry_;
    std::size_t stackBytes_;
    std::unique_ptr<unsigned char[]> stack_;
    ucontext_t context_;
    ucontext_t returnContext_;
    bool started_ = false;
    bool finished_ = false;

    /**
     * Bounds of the stack this fiber last switched from, captured by the
     * ASan fiber annotations so the return switch can name its target.
     * Unused (but cheap) when ASan is off.
     */
    const void *switchFromBottom_ = nullptr;
    std::size_t switchFromSize_ = 0;

    /**
     * TSan's fiber objects: this fiber's own context and the scheduler
     * context that resumed it, so yield/finish can announce the switch
     * back.  Null (and unused) when TSan is off.
     */
    void *tsanFiber_ = nullptr;
    void *tsanReturnFiber_ = nullptr;
};

} // namespace absim::sim

#endif // ABSIM_SIM_FIBER_HH
