/**
 * @file
 * Minimal cooperative fibers.
 *
 * Each simulated process runs on its own fiber so that application code can
 * make *blocking* calls into the memory system and network (the CSIM
 * process-oriented style the paper's SPASM simulator is built on).  Fibers
 * only ever switch to/from the scheduler fiber owned by the engine, never
 * directly between each other; this keeps the switching discipline trivial
 * to reason about.
 *
 * On x86-64 the switch is a hand-rolled save/restore of the callee-saved
 * register set (see absimFiberSwitch in fiber.cc): swapcontext() makes two
 * sigprocmask() system calls per switch, which dominated the cost of the
 * millions of switches a detailed-machine sweep performs.  Other
 * architectures keep the portable ucontext path.
 */

#ifndef ABSIM_SIM_FIBER_HH
#define ABSIM_SIM_FIBER_HH

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace absim::sim {

/**
 * A bounded pool of recycled fiber stacks with reuse accounting.
 *
 * Simulations spawn thousands of short-lived helper processes (e.g.
 * parallel invalidations), and repeated runs in a sweep each spawn a
 * full machine's worth of workers; allocating + faulting a fresh stack
 * every time dominates simulation cost.  The pool lives per thread and
 * deliberately *outlives* individual runs — persistence across the
 * runs of a sweep is what turns stack allocation into reuse (see
 * core::RunContext, which snapshots the counters per run).
 *
 * Only default-sized stacks are pooled; odd sizes are one-offs.
 */
class FiberStackPool
{
  public:
    /** Only stacks of exactly this size are pooled (the Fiber default). */
    static constexpr std::size_t kPooledStackBytes = 512 * 1024;

    /** Upper bound on retained stacks (64 MiB of 512 KiB stacks). */
    static constexpr std::size_t kMaxPooled = 128;

    /** The executing thread's persistent pool. */
    static FiberStackPool &forThisThread();

    /** Unpoisons every retained stack before the memory is freed (the
     *  pool dies with its thread; see the implementation note). */
    ~FiberStackPool();

    /** A recycled stack when one fits, else a fresh allocation. */
    std::unique_ptr<unsigned char[]> acquire(std::size_t bytes);

    /** Return a stack; kept only if pool-sized and under the cap. */
    void recycle(std::unique_ptr<unsigned char[]> stack,
                 std::size_t bytes);

    /** @name Lifetime counters (monotone; snapshot to get per-run deltas). */
    /// @{
    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t reused() const { return reused_; }
    /// @}

    /** Stacks currently held for reuse. */
    std::size_t pooled() const { return pool_.size(); }

  private:
    std::vector<std::unique_ptr<unsigned char[]>> pool_;
    std::uint64_t allocated_ = 0;
    std::uint64_t reused_ = 0;
};

/**
 * A single cooperative fiber with its own stack.
 *
 * The fiber starts executing its entry function on the first resume() and
 * must eventually return from it; after that it is finished() and may not
 * be resumed again.  Inside the entry function, Fiber::yield() suspends
 * the fiber and returns control to whoever called resume().
 */
class Fiber
{
  public:
    /** Default stack size: generous, since application code runs here. */
    static constexpr std::size_t kDefaultStackBytes =
        FiberStackPool::kPooledStackBytes;

    explicit Fiber(std::function<void()> entry,
                   std::size_t stack_bytes = kDefaultStackBytes);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch from the calling context into this fiber.  Returns when the
     * fiber yields or its entry function returns.  Must not be called from
     * inside any fiber other than the scheduler context.
     */
    void resume();

    /**
     * Suspend the currently running fiber, returning control to the
     * context that called resume().  Must be called from inside a fiber.
     */
    static void yield();

    /** The fiber currently executing, or nullptr if in the scheduler. */
    static Fiber *current();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /**
     * Clobber the stack-overflow canary, simulating an overflow without
     * undefined behaviour.  Test-only: the next canary check fires.
     */
    void corruptStackCanaryForTest();

  private:
    static void trampoline();

    /** Verify the canary word at the overflow end of the stack. */
    void checkCanary() const;

    /** Prepare the suspended context for the first switch in. */
    void initContext();

    /** Scheduler side of the switch: save here, enter the fiber. */
    void switchToFiber();

    /** Fiber side of the switch: save here, reenter the scheduler. */
    void switchToScheduler();

    std::function<void()> entry_;
    std::size_t stackBytes_;
    std::unique_ptr<unsigned char[]> stack_;
#if defined(__x86_64__)
    /**
     * With the raw switch, all callee-saved state lives on the owning
     * stack; a suspended context is nothing but its stack pointer.
     */
    void *fiberSp_ = nullptr;     ///< Fiber's sp while suspended.
    void *schedulerSp_ = nullptr; ///< Scheduler's sp while fiber runs.
#else
    ucontext_t context_;
    ucontext_t returnContext_;
#endif
    bool started_ = false;
    bool finished_ = false;

    /**
     * Bounds of the stack this fiber last switched from, captured by the
     * ASan fiber annotations so the return switch can name its target.
     * Unused (but cheap) when ASan is off.
     */
    const void *switchFromBottom_ = nullptr;
    std::size_t switchFromSize_ = 0;

    /**
     * TSan's fiber objects: this fiber's own context and the scheduler
     * context that resumed it, so yield/finish can announce the switch
     * back.  Null (and unused) when TSan is off.
     */
    void *tsanFiber_ = nullptr;
    void *tsanReturnFiber_ = nullptr;
};

} // namespace absim::sim

#endif // ABSIM_SIM_FIBER_HH
