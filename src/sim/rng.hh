/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Applications must produce identical reference streams on every machine
 * characterization and across runs, so they use this self-contained
 * SplitMix64/xoshiro256** implementation instead of std::mt19937 (whose
 * distributions are not guaranteed bit-stable across standard libraries).
 */

#ifndef ABSIM_SIM_RNG_HH
#define ABSIM_SIM_RNG_HH

#include <cstdint>

namespace absim::sim {

/** SplitMix64 step, used for seeding. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator: fast, high quality, trivially reproducible.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free-enough reduction; bias is < 2^-64
        // per draw, irrelevant for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace absim::sim

#endif // ABSIM_SIM_RNG_HH
