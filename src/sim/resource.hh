/**
 * @file
 * Blocking resources in simulated time: a FIFO mutex, a condition, and a
 * countdown latch.  These are *simulator* primitives (used by the network
 * and coherence protocol); application-level synchronization (spin locks,
 * barriers) is built on simulated shared memory in src/runtime instead, so
 * that its cost is visible to the machine models exactly as the paper
 * requires.
 */

#ifndef ABSIM_SIM_RESOURCE_HH
#define ABSIM_SIM_RESOURCE_HH

#include <cstdint>
#include <deque>

#include "sim/process.hh"
#include "sim/types.hh"

namespace absim::sim {

/**
 * A mutex with strict FIFO grant order in simulated time.
 *
 * acquire() blocks the calling process until the mutex is free and every
 * earlier requester has been served.  The return value reports how long the
 * caller waited, which the network uses as its contention measure.
 */
class FifoMutex
{
  public:
    FifoMutex() = default;
    FifoMutex(const FifoMutex &) = delete;
    FifoMutex &operator=(const FifoMutex &) = delete;

    /**
     * Acquire the mutex, blocking in simulated time.
     * @return Ticks spent waiting (0 if the mutex was free).
     */
    Duration acquire();

    /** Release the mutex, waking the next waiter if any. */
    void release();

    bool locked() const { return locked_; }
    std::size_t waiters() const { return waiters_.size(); }

    /** Cumulative ticks all acquirers have spent waiting. */
    Duration totalWait() const { return totalWait_; }

  private:
    bool locked_ = false;
    std::deque<Process *> waiters_;
    Duration totalWait_ = 0;
};

/**
 * A broadcast condition: processes block on wait() until someone calls
 * notifyAll().  There is no predicate; callers re-check their own state.
 */
class Condition
{
  public:
    /** Block the calling process until the next notifyAll(). */
    void wait();

    /** Wake every currently blocked process. */
    void notifyAll();

    std::size_t waiters() const { return waiters_.size(); }

  private:
    std::deque<Process *> waiters_;
};

/**
 * Countdown latch: await() blocks until the internal count reaches zero.
 * Used to rendezvous with detached helper processes (e.g. a write miss
 * waiting for all its parallel invalidations to be acknowledged).
 */
class Latch
{
  public:
    explicit Latch(std::uint32_t count) : count_(count) {}

    /** Decrement; wakes the waiter when the count hits zero. */
    void countDown();

    /** Block the calling process until the count is zero. */
    void await();

  private:
    std::uint32_t count_;
    Process *waiter_ = nullptr;
};

} // namespace absim::sim

#endif // ABSIM_SIM_RESOURCE_HH
