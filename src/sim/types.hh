/**
 * @file
 * Fundamental simulated-time types and machine constants shared by every
 * subsystem of the simulator.
 *
 * The simulator counts time in integer nanoseconds.  The paper's baseline
 * processor is a 33 MHz SPARC; we round the cycle to 30 ns so that all
 * derived quantities stay exact integers (the 1% clock error is irrelevant
 * to every result, which depends only on relative costs).
 */

#ifndef ABSIM_SIM_TYPES_HH
#define ABSIM_SIM_TYPES_HH

#include <cstdint>

namespace absim::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** A simulated-time duration, also in nanoseconds. */
using Duration = std::uint64_t;

/** Largest representable tick, used as "never". */
inline constexpr Tick kTickMax = ~Tick{0};

/** One processor cycle of the paper's 33 MHz baseline CPU (Section 5). */
inline constexpr Duration kCycleNs = 30;

/** Convert a cycle count into ticks. */
constexpr Duration
cycles(std::uint64_t n)
{
    return n * kCycleNs;
}

/** Convert microseconds into ticks. */
constexpr Duration
micros(std::uint64_t n)
{
    return n * 1000;
}

} // namespace absim::sim

#endif // ABSIM_SIM_TYPES_HH
