#include "sim/resource.hh"

#include <cassert>

namespace absim::sim {

Duration
FifoMutex::acquire()
{
    Process *self = Process::current();
    assert(self && "FifoMutex::acquire outside a process");
    if (!locked_ && waiters_.empty()) {
        locked_ = true;
        return 0;
    }
    Tick began = self->engine().now();
    waiters_.push_back(self);
    self->suspend();
    // Woken by release(): the mutex was handed to us directly.
    assert(locked_);
    Duration waited = self->engine().now() - began;
    totalWait_ += waited;
    return waited;
}

void
FifoMutex::release()
{
    assert(locked_ && "release of an unlocked FifoMutex");
    if (waiters_.empty()) {
        locked_ = false;
        return;
    }
    // Hand-off: stays locked, next waiter becomes the owner.
    Process *next = waiters_.front();
    waiters_.pop_front();
    next->wake();
}

void
Condition::wait()
{
    Process *self = Process::current();
    assert(self && "Condition::wait outside a process");
    waiters_.push_back(self);
    self->suspend();
}

void
Condition::notifyAll()
{
    std::deque<Process *> woken;
    woken.swap(waiters_);
    for (Process *p : woken)
        p->wake();
}

void
Latch::countDown()
{
    assert(count_ > 0);
    if (--count_ == 0 && waiter_ != nullptr) {
        Process *w = waiter_;
        waiter_ = nullptr;
        w->wake();
    }
}

void
Latch::await()
{
    Process *self = Process::current();
    assert(self && "Latch::await outside a process");
    assert(waiter_ == nullptr && "Latch supports a single waiter");
    if (count_ == 0)
        return;
    waiter_ = self;
    self->suspend();
}

} // namespace absim::sim
