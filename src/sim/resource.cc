#include "sim/resource.hh"

#include "check/check.hh"

namespace absim::sim {

Duration
FifoMutex::acquire()
{
    Process *self = Process::current();
    ABSIM_CHECK(self != nullptr, "FifoMutex::acquire outside a process");
    if (!locked_ && waiters_.empty()) {
        locked_ = true;
        return 0;
    }
    Tick began = self->engine().now();
    waiters_.push_back(self);
    self->suspend("fifo-mutex acquire");
    // Woken by release(): the mutex was handed to us directly.
    ABSIM_DCHECK(locked_, "FifoMutex hand-off lost the lock");
    Duration waited = self->engine().now() - began;
    totalWait_ += waited;
    return waited;
}

void
FifoMutex::release()
{
    ABSIM_CHECK(locked_, "release of an unlocked FifoMutex");
    if (waiters_.empty()) {
        locked_ = false;
        return;
    }
    // Hand-off: stays locked, next waiter becomes the owner.
    Process *next = waiters_.front();
    waiters_.pop_front();
    next->wake();
}

void
Condition::wait()
{
    Process *self = Process::current();
    ABSIM_CHECK(self != nullptr, "Condition::wait outside a process");
    waiters_.push_back(self);
    self->suspend("condition wait");
}

void
Condition::notifyAll()
{
    std::deque<Process *> woken;
    woken.swap(waiters_);
    for (Process *p : woken)
        p->wake();
}

void
Latch::countDown()
{
    ABSIM_CHECK(count_ > 0, "countDown of an exhausted Latch");
    if (--count_ == 0 && waiter_ != nullptr) {
        Process *w = waiter_;
        waiter_ = nullptr;
        w->wake();
    }
}

void
Latch::await()
{
    Process *self = Process::current();
    ABSIM_CHECK(self != nullptr, "Latch::await outside a process");
    ABSIM_CHECK(waiter_ == nullptr, "Latch supports a single waiter");
    if (count_ == 0)
        return;
    waiter_ = self;
    self->suspend({"latch await", "count", count_});
}

} // namespace absim::sim
