/**
 * @file
 * Watchdog machinery for the event kernel: run budgets, deadlock
 * diagnostics and the structured errors they raise.
 *
 * A long figure sweep must never hang forever or die without saying why.
 * The engine therefore enforces a RunBudget (events, simulated time,
 * wall-clock time, and a no-progress dispatch limit) and, when a budget
 * trips or the queue drains with processes still blocked, raises a
 * structured error carrying the engine state and a dump of every
 * blocked process — what it waits on, and since when — instead of a
 * bare string.  core::runOneSafe() maps these onto the RunError
 * taxonomy (see docs/ROBUSTNESS.md).
 */

#ifndef ABSIM_SIM_WATCHDOG_HH
#define ABSIM_SIM_WATCHDOG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace absim::sim {

/**
 * Resource limits for one engine run.  Zero means unlimited; the
 * default budget is fully unlimited, preserving the raw engine
 * semantics for callers that opt out.
 */
struct RunBudget
{
    /** Maximum events dispatched before BudgetExceededError. */
    std::uint64_t maxEvents = 0;

    /** Maximum simulated time (ns) the engine may reach. */
    Tick maxSimTime = 0;

    /** Maximum host wall-clock seconds for the run. */
    double maxWallSeconds = 0.0;

    /**
     * Deadlock watchdog: if this many consecutive events dispatch
     * without the simulated clock advancing, the run is declared
     * livelocked/stalled and a DeadlockError is raised with a blocked
     * process dump.  Healthy simulations advance the clock at least
     * every few hundred dispatches.
     */
    std::uint64_t stallDispatchLimit = 0;

    bool
    unlimited() const
    {
        return maxEvents == 0 && maxSimTime == 0 &&
               maxWallSeconds == 0.0 && stallDispatchLimit == 0;
    }
};

/** Diagnostic snapshot of one simulated process at watchdog time. */
struct BlockedProcessInfo
{
    std::string name;

    /** "created", "runnable", "running", "delayed" or "suspended". */
    std::string state;

    /** What the process waits on (set at the blocking site), or "". */
    std::string waitReason;

    /** Wake-up tick for a delayed process, 0 otherwise. */
    Tick delayedUntil = 0;
};

/** Render a blocked-process dump, one indented line per process. */
std::string formatBlockedDump(const std::vector<BlockedProcessInfo> &blocked);

/**
 * Base of the watchdog error family: carries the engine state at the
 * moment the watchdog fired plus the blocked-process dump.  Derives
 * from std::runtime_error so legacy catch sites keep working.
 */
class WatchdogError : public std::runtime_error
{
  public:
    WatchdogError(const std::string &what, std::uint64_t events,
                  Tick sim_time, std::vector<BlockedProcessInfo> blocked);

    std::uint64_t eventsDispatched() const { return events_; }
    Tick simTime() const { return simTime_; }
    const std::vector<BlockedProcessInfo> &blocked() const
    {
        return blocked_;
    }

  private:
    std::uint64_t events_;
    Tick simTime_;
    std::vector<BlockedProcessInfo> blocked_;
};

/**
 * The simulation can make no further progress: either the event queue
 * drained with processes still blocked, or the clock stopped advancing
 * for RunBudget::stallDispatchLimit dispatches (livelock).
 */
class DeadlockError : public WatchdogError
{
  public:
    using WatchdogError::WatchdogError;
};

/** A RunBudget limit (events, sim time or wall clock) was exceeded. */
class BudgetExceededError : public WatchdogError
{
  public:
    using WatchdogError::WatchdogError;
};

} // namespace absim::sim

#endif // ABSIM_SIM_WATCHDOG_HH
