#include "sim/event_queue.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "check/check.hh"
#include "fault/fault.hh"
#include "sim/process.hh"

namespace absim::sim {

void
EventQueue::setBudget(const RunBudget &budget)
{
    budget_ = budget;
    lastProgressDispatch_ = dispatched_;
    wallArmed_ = false;
}

void
EventQueue::unregisterProcess(Process *p)
{
    const auto it = std::find(processes_.begin(), processes_.end(), p);
    if (it != processes_.end())
        processes_.erase(it);
}

std::vector<BlockedProcessInfo>
EventQueue::blockedProcesses() const
{
    std::vector<BlockedProcessInfo> out;
    for (const Process *p : processes_) {
        if (p->finished())
            continue;
        BlockedProcessInfo info;
        info.name = p->name();
        info.state = toString(p->state());
        info.waitReason = p->waitReason();
        if (p->state() == ProcState::Delayed)
            info.delayedUntil = p->delayedUntil();
        out.push_back(std::move(info));
    }
    return out;
}

void
EventQueue::enforceBudget()
{
    if (budget_.maxEvents != 0 && dispatched_ >= budget_.maxEvents) {
        std::ostringstream oss;
        oss << "event budget exceeded: " << dispatched_ << " events "
            << "dispatched (limit " << budget_.maxEvents
            << "); runaway or livelocked simulation?";
        throw BudgetExceededError(oss.str(), dispatched_, now_,
                                  blockedProcesses());
    }
    if (budget_.stallDispatchLimit != 0 &&
        dispatched_ - lastProgressDispatch_ >=
            budget_.stallDispatchLimit) {
        std::ostringstream oss;
        oss << "deadlock watchdog: no sim-time progress for "
            << dispatched_ - lastProgressDispatch_
            << " dispatches (limit " << budget_.stallDispatchLimit
            << "); the clock is stuck at " << now_ << " ns";
        throw DeadlockError(oss.str(), dispatched_, now_,
                            blockedProcesses());
    }
    if (budget_.maxWallSeconds > 0.0 && (dispatched_ & 0x3ff) == 0) {
        const auto host_now = std::chrono::steady_clock::now();
        if (!wallArmed_) {
            wallArmed_ = true;
            wallDeadline_ =
                host_now + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   budget_.maxWallSeconds));
        } else if (host_now >= wallDeadline_) {
            std::ostringstream oss;
            oss << "wall-clock budget exceeded: run passed "
                << budget_.maxWallSeconds << " s of host time after "
                << dispatched_ << " events";
            throw BudgetExceededError(oss.str(), dispatched_, now_,
                                      blockedProcesses());
        }
    }
}

void
EventQueue::stallStep()
{
    // Fault injection (StallQueue): a self-perpetuating zero-delay
    // event.  Simulated time stops advancing, which the stall watchdog
    // must detect.
    schedule(now_, [this] { stallStep(); });
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (check::options().causality)
        ABSIM_CHECK(when >= now_, "event scheduled " << now_ - when
                                      << " ns in the past (now=" << now_
                                      << ")");
    queue_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::run()
{
    while (!queue_.empty() && !stopRequested_) {
        enforceBudget();
        // priority_queue::top() returns a const ref; the callback must be
        // moved out before pop, so copy the cheap fields and steal the
        // std::function via const_cast (safe: the element is removed
        // immediately afterwards and never re-compared).
        auto &top = const_cast<Event &>(queue_.top());
        if (check::options().causality)
            ABSIM_CHECK(top.when >= now_,
                        "engine clock would run backwards: now=" << now_
                            << " next event at " << top.when);
        if (budget_.maxSimTime != 0 && top.when > budget_.maxSimTime) {
            std::ostringstream oss;
            oss << "sim-time budget exceeded: next event at " << top.when
                << " ns passes the " << budget_.maxSimTime
                << " ns limit";
            throw BudgetExceededError(oss.str(), dispatched_, now_,
                                      blockedProcesses());
        }
        if (top.when > now_)
            lastProgressDispatch_ = dispatched_;
        now_ = top.when;
        Callback cb = std::move(top.cb);
        queue_.pop();
        ++dispatched_;
        if (fault::armed() && fault::injector().shouldStallQueue(
                                  dispatched_)) [[unlikely]]
            stallStep();
        cb();
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!queue_.empty() && !stopRequested_) {
        enforceBudget();
        if (queue_.top().when > limit)
            return false;
        auto &top = const_cast<Event &>(queue_.top());
        if (check::options().causality)
            ABSIM_CHECK(top.when >= now_,
                        "engine clock would run backwards: now=" << now_
                            << " next event at " << top.when);
        if (top.when > now_)
            lastProgressDispatch_ = dispatched_;
        now_ = top.when;
        Callback cb = std::move(top.cb);
        queue_.pop();
        ++dispatched_;
        if (fault::armed() && fault::injector().shouldStallQueue(
                                  dispatched_)) [[unlikely]]
            stallStep();
        cb();
    }
    return queue_.empty();
}

Tick
EventQueue::nextEventTime() const
{
    return queue_.empty() ? kTickMax : queue_.top().when;
}

} // namespace absim::sim
