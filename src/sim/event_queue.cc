#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "check/check.hh"
#include "fault/fault.hh"
#include "sim/process.hh"

namespace absim::sim {

EventQueue::EventQueue()
    : buckets_(new Bucket[kBuckets]),
      words_(new std::uint64_t[kBucketWords]())
{
    static_assert(kBucketWords == 64,
                  "summary_ is a single word: exactly 64 bitmap words");
    static_assert((kBuckets & (kBuckets - 1)) == 0);
}

EventQueue::~EventQueue()
{
    // Destroy the callables of every still-pending event (requestStop
    // and thrown budgets leave the queue populated).  Node memory is
    // owned by blocks_ and freed with it.
    for (std::size_t i = 0; i < kBuckets; ++i) {
        for (EventNode *n = buckets_[i].head; n != nullptr; n = n->next)
            if (n->destroy)
                n->destroy(n->storage);
    }
    for (EventNode *n : overflow_)
        if (n->destroy)
            n->destroy(n->storage);
}

void
EventQueue::setBudget(const RunBudget &budget)
{
    budget_ = budget;
    lastProgressDispatch_ = dispatched_;
    wallArmed_ = false;
}

void
EventQueue::unregisterProcess(Process *p)
{
    const auto it = std::find(processes_.begin(), processes_.end(), p);
    if (it != processes_.end())
        processes_.erase(it);
}

std::vector<BlockedProcessInfo>
EventQueue::blockedProcesses() const
{
    std::vector<BlockedProcessInfo> out;
    for (const Process *p : processes_) {
        if (p->finished())
            continue;
        BlockedProcessInfo info;
        info.name = p->name();
        info.state = toString(p->state());
        info.waitReason = p->waitReason();
        if (p->state() == ProcState::Delayed)
            info.delayedUntil = p->delayedUntil();
        out.push_back(std::move(info));
    }
    return out;
}

void
EventQueue::enforceBudget()
{
    if (budget_.maxEvents != 0 && dispatched_ >= budget_.maxEvents) {
        std::ostringstream oss;
        oss << "event budget exceeded: " << dispatched_ << " events "
            << "dispatched (limit " << budget_.maxEvents
            << "); runaway or livelocked simulation?";
        throw BudgetExceededError(oss.str(), dispatched_, now_,
                                  blockedProcesses());
    }
    if (budget_.stallDispatchLimit != 0 &&
        dispatched_ - lastProgressDispatch_ >=
            budget_.stallDispatchLimit) {
        std::ostringstream oss;
        oss << "deadlock watchdog: no sim-time progress for "
            << dispatched_ - lastProgressDispatch_
            << " dispatches (limit " << budget_.stallDispatchLimit
            << "); the clock is stuck at " << now_ << " ns";
        throw DeadlockError(oss.str(), dispatched_, now_,
                            blockedProcesses());
    }
    if (budget_.maxWallSeconds > 0.0 && (dispatched_ & 0x3ff) == 0) {
        const auto host_now = std::chrono::steady_clock::now();
        if (!wallArmed_) {
            wallArmed_ = true;
            wallDeadline_ =
                host_now + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   budget_.maxWallSeconds));
        } else if (host_now >= wallDeadline_) {
            std::ostringstream oss;
            oss << "wall-clock budget exceeded: run passed "
                << budget_.maxWallSeconds << " s of host time after "
                << dispatched_ << " events";
            throw BudgetExceededError(oss.str(), dispatched_, now_,
                                      blockedProcesses());
        }
    }
}

void
EventQueue::stallStep()
{
    // Fault injection (StallQueue): a self-perpetuating zero-delay
    // event.  Simulated time stops advancing, which the stall watchdog
    // must detect.
    schedule(now_, [this] { stallStep(); });
}

void
EventQueue::checkSchedule(Tick when) const
{
    if (check::options().causality)
        ABSIM_CHECK(when >= now_, "event scheduled " << now_ - when
                                      << " ns in the past (now=" << now_
                                      << ")");
}

EventQueue::EventNode *
EventQueue::acquireNode()
{
    if (freeList_ == nullptr) {
        auto block = std::make_unique<EventNode[]>(kNodesPerBlock);
        for (std::size_t i = kNodesPerBlock; i-- > 0;) {
            block[i].next = freeList_;
            freeList_ = &block[i];
        }
        blocks_.push_back(std::move(block));
    }
    EventNode *node = freeList_;
    freeList_ = node->next;
    return node;
}

void
EventQueue::releaseNode(EventNode *node)
{
    node->invoke = nullptr;
    node->destroy = nullptr;
    node->next = freeList_;
    freeList_ = node;
}

void
EventQueue::destroyNode(EventNode *node)
{
    if (node->destroy)
        node->destroy(node->storage);
    releaseNode(node);
}

void
EventQueue::markBucket(std::size_t idx)
{
    const std::size_t word = idx >> 6;
    words_[word] |= std::uint64_t{1} << (idx & 63);
    summary_ |= std::uint64_t{1} << word;
}

void
EventQueue::clearBucket(std::size_t idx)
{
    const std::size_t word = idx >> 6;
    words_[word] &= ~(std::uint64_t{1} << (idx & 63));
    if (words_[word] == 0)
        summary_ &= ~(std::uint64_t{1} << word);
}

std::size_t
EventQueue::firstBucketFrom(std::size_t start) const
{
    // The window spans exactly kBuckets ticks, so circular bitmap
    // order from the bucket of the earliest possible tick *is* tick
    // order.  Three probes: the tail of start's word, whole later
    // words, then the wrapped-around prefix.
    const std::size_t start_word = start >> 6;
    const std::size_t start_bit = start & 63;

    const std::uint64_t head =
        words_[start_word] & (~std::uint64_t{0} << start_bit);
    if (head != 0)
        return (start_word << 6) +
               static_cast<std::size_t>(std::countr_zero(head));

    const std::uint64_t later =
        start_word == 63
            ? 0
            : summary_ & (~std::uint64_t{0} << (start_word + 1));
    if (later != 0) {
        const auto word =
            static_cast<std::size_t>(std::countr_zero(later));
        return (word << 6) +
               static_cast<std::size_t>(std::countr_zero(words_[word]));
    }

    // Wrap-around: words below start's, then start's own low bits.
    const std::uint64_t below =
        summary_ & ((std::uint64_t{1} << start_word) - 1);
    if (below != 0) {
        const auto word =
            static_cast<std::size_t>(std::countr_zero(below));
        return (word << 6) +
               static_cast<std::size_t>(std::countr_zero(words_[word]));
    }
    const std::uint64_t low =
        words_[start_word] & ((std::uint64_t{1} << start_bit) - 1);
    if (low != 0)
        return (start_word << 6) +
               static_cast<std::size_t>(std::countr_zero(low));
    return kBuckets; // Empty calendar.
}

void
EventQueue::pushBucket(EventNode *node)
{
    const std::size_t idx =
        static_cast<std::size_t>(node->when) & (kBuckets - 1);
    Bucket &b = buckets_[idx];
    node->next = nullptr;
    if (b.tail != nullptr) {
        b.tail->next = node;
    } else {
        b.head = node;
        markBucket(idx);
    }
    b.tail = node;
    ++calendarCount_;
}

void
EventQueue::pushOverflow(EventNode *node)
{
    const auto later = [](const EventNode *a, const EventNode *b) {
        return a->when > b->when ||
               (a->when == b->when && a->seq > b->seq);
    };
    overflow_.push_back(node);
    std::push_heap(overflow_.begin(), overflow_.end(), later);
}

EventQueue::EventNode *
EventQueue::popOverflowTop()
{
    const auto later = [](const EventNode *a, const EventNode *b) {
        return a->when > b->when ||
               (a->when == b->when && a->seq > b->seq);
    };
    EventNode *top = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(), later);
    overflow_.pop_back();
    return top;
}

void
EventQueue::enqueueNode(EventNode *node)
{
    ++size_;
    // Bucket events must be inside the window AND not in the simulated
    // past: past events (legal with causality checks off) would break
    // the circular-scan-from-now ordering, so they ride the overflow
    // heap, which orders them globally.
    if (node->when >= windowBase_ && node->when < windowLimit_ &&
        node->when >= now_)
        pushBucket(node);
    else
        pushOverflow(node);
}

void
EventQueue::advanceWindow()
{
    // Pre: calendar empty, overflow non-empty, overflow top >= now_.
    const Tick base = overflow_.front()->when;
    windowBase_ = base;
    windowLimit_ = base > kTickMax - Tick{kBuckets} ? kTickMax
                                                    : base + kBuckets;
    // The heap pops in (when, seq) order, so same-tick events arrive
    // at their bucket in seq order — FIFO append preserves it.
    while (!overflow_.empty() &&
           overflow_.front()->when < windowLimit_)
        pushBucket(popOverflowTop());
}

EventQueue::EventNode *
EventQueue::calendarFront() const
{
    if (calendarCount_ == 0)
        return nullptr;
    const Tick start_tick = now_ > windowBase_ ? now_ : windowBase_;
    const std::size_t idx = firstBucketFrom(
        static_cast<std::size_t>(start_tick) & (kBuckets - 1));
    return buckets_[idx].head;
}

const EventQueue::EventNode *
EventQueue::peekNext() const
{
    const EventNode *cal = calendarFront();
    const EventNode *ovf = overflow_.empty() ? nullptr : overflow_.front();
    if (cal == nullptr)
        return ovf;
    if (ovf == nullptr)
        return cal;
    if (ovf->when < cal->when ||
        (ovf->when == cal->when && ovf->seq < cal->seq))
        return ovf;
    return cal;
}

EventQueue::EventNode *
EventQueue::popNext()
{
    if (size_ == 0)
        return nullptr;
    // Re-base the window onto the overflow tier when the calendar has
    // drained.  Past-dated overflow events (causality off) stay put:
    // re-basing on a past tick would put them behind the scan start.
    if (calendarCount_ == 0 && !overflow_.empty() &&
        overflow_.front()->when >= now_)
        advanceWindow();

    EventNode *cal = calendarFront();
    EventNode *ovf = overflow_.empty() ? nullptr : overflow_.front();
    --size_;
    if (cal == nullptr ||
        (ovf != nullptr &&
         (ovf->when < cal->when ||
          (ovf->when == cal->when && ovf->seq < cal->seq))))
        return popOverflowTop();

    const std::size_t idx =
        static_cast<std::size_t>(cal->when) & (kBuckets - 1);
    Bucket &b = buckets_[idx];
    b.head = cal->next;
    if (b.head == nullptr) {
        b.tail = nullptr;
        clearBucket(idx);
    }
    --calendarCount_;
    return cal;
}

void
EventQueue::dispatch(EventNode *node)
{
    now_ = node->when;
    ++dispatched_;
    if (fault::armed() &&
        fault::injector().shouldStallQueue(dispatched_)) [[unlikely]]
        stallStep();
    // Recycle on every exit path: ABSIM_CHECK failures inside
    // callbacks throw through here.
    struct Recycle
    {
        EventQueue *q;
        EventNode *n;
        ~Recycle() { q->destroyNode(n); }
    } guard{this, node};
    node->invoke(node->storage);
}

void
EventQueue::run()
{
    while (size_ != 0 && !stopRequested_) {
        enforceBudget();
        const EventNode *next = peekNext();
        if (check::options().causality)
            ABSIM_CHECK(next->when >= now_,
                        "engine clock would run backwards: now=" << now_
                            << " next event at " << next->when);
        if (budget_.maxSimTime != 0 && next->when > budget_.maxSimTime) {
            std::ostringstream oss;
            oss << "sim-time budget exceeded: next event at "
                << next->when << " ns passes the " << budget_.maxSimTime
                << " ns limit";
            throw BudgetExceededError(oss.str(), dispatched_, now_,
                                      blockedProcesses());
        }
        if (next->when > now_)
            lastProgressDispatch_ = dispatched_;
        dispatch(popNext());
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (size_ != 0 && !stopRequested_) {
        enforceBudget();
        const EventNode *next = peekNext();
        if (next->when > limit)
            return false;
        if (check::options().causality)
            ABSIM_CHECK(next->when >= now_,
                        "engine clock would run backwards: now=" << now_
                            << " next event at " << next->when);
        if (next->when > now_)
            lastProgressDispatch_ = dispatched_;
        dispatch(popNext());
    }
    return size_ == 0;
}

Tick
EventQueue::nextEventTime() const
{
    const EventNode *next = peekNext();
    return next == nullptr ? kTickMax : next->when;
}

} // namespace absim::sim
