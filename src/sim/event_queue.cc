#include "sim/event_queue.hh"

#include <stdexcept>
#include <utility>

#include "check/check.hh"

namespace absim::sim {

void
EventQueue::checkCap() const
{
    if (eventCap_ != 0 && dispatched_ >= eventCap_)
        throw std::runtime_error(
            "simulation exceeded its event cap (livelock?)");
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (check::options().causality)
        ABSIM_CHECK(when >= now_, "event scheduled " << now_ - when
                                      << " ns in the past (now=" << now_
                                      << ")");
    queue_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::run()
{
    while (!queue_.empty()) {
        checkCap();
        // priority_queue::top() returns a const ref; the callback must be
        // moved out before pop, so copy the cheap fields and steal the
        // std::function via const_cast (safe: the element is removed
        // immediately afterwards and never re-compared).
        auto &top = const_cast<Event &>(queue_.top());
        if (check::options().causality)
            ABSIM_CHECK(top.when >= now_,
                        "engine clock would run backwards: now=" << now_
                            << " next event at " << top.when);
        now_ = top.when;
        Callback cb = std::move(top.cb);
        queue_.pop();
        ++dispatched_;
        cb();
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!queue_.empty()) {
        checkCap();
        if (queue_.top().when > limit)
            return false;
        auto &top = const_cast<Event &>(queue_.top());
        if (check::options().causality)
            ABSIM_CHECK(top.when >= now_,
                        "engine clock would run backwards: now=" << now_
                            << " next event at " << top.when);
        now_ = top.when;
        Callback cb = std::move(top.cb);
        queue_.pop();
        ++dispatched_;
        cb();
    }
    return true;
}

Tick
EventQueue::nextEventTime() const
{
    return queue_.empty() ? kTickMax : queue_.top().when;
}

} // namespace absim::sim
