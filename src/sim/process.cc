#include "sim/process.hh"

#include <utility>

#include "check/check.hh"

namespace absim::sim {

namespace {

thread_local Process *tl_current_process = nullptr;

} // namespace

Process::Process(EventQueue &eq, std::string name,
                 std::function<void()> entry)
    : eq_(eq), name_(std::move(name)),
      fiber_([this, entry = std::move(entry)] {
          tl_current_process = this;
          entry();
          tl_current_process = nullptr;
      })
{
}

void
Process::start(Tick when)
{
    scheduleResume(when);
}

void
Process::scheduleResume(Tick when)
{
    eq_.schedule(when, [this] {
        Process *prev = tl_current_process;
        fiber_.resume();
        tl_current_process = prev;
        if (fiber_.finished() && onFinish_) {
            auto fin = std::move(onFinish_);
            onFinish_ = nullptr;
            fin(this); // May delete this; no member access after.
        }
    });
}

void
Process::delayUntil(Tick when)
{
    ABSIM_CHECK(current() == this,
                "delayUntil from outside process \"" << name_ << "\"");
    ABSIM_CHECK(when >= eq_.now(),
                "process \"" << name_ << "\" delayed into the past ("
                    << when << " < " << eq_.now() << ")");
    scheduleResume(when);
    tl_current_process = nullptr;
    Fiber::yield();
    tl_current_process = this;
}

void
Process::suspend()
{
    ABSIM_CHECK(current() == this,
                "suspend from outside process \"" << name_ << "\"");
    suspended_ = true;
    tl_current_process = nullptr;
    Fiber::yield();
    tl_current_process = this;
    ABSIM_DCHECK(!suspended_, "woken process still marked suspended");
}

void
Process::wake()
{
    ABSIM_CHECK(suspended_,
                "wake of process \"" << name_
                                     << "\" that is not suspended");
    suspended_ = false;
    scheduleResume(eq_.now());
}

Process *
Process::current()
{
    return tl_current_process;
}

Process *
spawnDetached(EventQueue &eq, std::string name, std::function<void()> entry,
              Tick when)
{
    auto *proc = new Process(eq, std::move(name), std::move(entry));
    proc->setOnFinish([](Process *p) { delete p; });
    proc->start(when);
    return proc;
}

} // namespace absim::sim
