#include "sim/process.hh"

#include <utility>

#include "check/check.hh"

namespace absim::sim {

namespace {

thread_local Process *tl_current_process = nullptr;

} // namespace

std::string
WaitReason::str() const
{
    std::string out = what_;
    if (key0_ != nullptr) {
        out += " (";
        out += key0_;
        out += '=';
        out += std::to_string(value0_);
        if (key1_ != nullptr) {
            out += ' ';
            out += key1_;
            out += '=';
            out += std::to_string(value1_);
        }
        out += ')';
    }
    return out;
}

std::string
toString(ProcState state)
{
    switch (state) {
      case ProcState::Created:
        return "created";
      case ProcState::Runnable:
        return "runnable";
      case ProcState::Running:
        return "running";
      case ProcState::Delayed:
        return "delayed";
      case ProcState::Suspended:
        return "suspended";
      case ProcState::Finished:
        return "finished";
    }
    return "?";
}

Process::Process(EventQueue &eq, std::string name,
                 std::function<void()> entry)
    : eq_(eq), name_(std::move(name)),
      fiber_([this, entry = std::move(entry)] {
          tl_current_process = this;
          entry();
          tl_current_process = nullptr;
      })
{
    eq_.registerProcess(this);
}

Process::~Process()
{
    eq_.unregisterProcess(this);
}

void
Process::start(Tick when)
{
    state_ = ProcState::Runnable;
    scheduleResume(when);
}

void
Process::scheduleResume(Tick when)
{
    eq_.schedule(when, [this] {
        Process *prev = tl_current_process;
        state_ = ProcState::Running;
        fiber_.resume();
        tl_current_process = prev;
        if (fiber_.finished()) {
            state_ = ProcState::Finished;
            if (onFinish_) {
                auto fin = std::move(onFinish_);
                onFinish_ = nullptr;
                fin(this); // May delete this; no member access after.
            }
        }
    });
}

void
Process::delayUntil(Tick when)
{
    ABSIM_CHECK(current() == this,
                "delayUntil from outside process \"" << name_ << "\"");
    ABSIM_CHECK(when >= eq_.now(),
                "process \"" << name_ << "\" delayed into the past ("
                    << when << " < " << eq_.now() << ")");
    scheduleResume(when);
    state_ = ProcState::Delayed;
    delayedUntil_ = when;
    tl_current_process = nullptr;
    Fiber::yield();
    tl_current_process = this;
}

void
Process::suspend(WaitReason reason)
{
    ABSIM_CHECK(current() == this,
                "suspend from outside process \"" << name_ << "\"");
    suspended_ = true;
    state_ = ProcState::Suspended;
    waitReason_ = reason;
    tl_current_process = nullptr;
    Fiber::yield();
    tl_current_process = this;
    waitReason_ = WaitReason{};
    ABSIM_DCHECK(!suspended_, "woken process still marked suspended");
}

void
Process::wake()
{
    ABSIM_CHECK(suspended_,
                "wake of process \"" << name_
                                     << "\" that is not suspended");
    suspended_ = false;
    state_ = ProcState::Runnable;
    scheduleResume(eq_.now());
}

Process *
Process::current()
{
    return tl_current_process;
}

Process *
spawnDetached(EventQueue &eq, std::string name, std::function<void()> entry,
              Tick when)
{
    auto *proc = new Process(eq, std::move(name), std::move(entry));
    proc->setOnFinish([](Process *p) { delete p; });
    proc->start(when);
    return proc;
}

} // namespace absim::sim
