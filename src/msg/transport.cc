#include "msg/transport.hh"

#include "check/check.hh"
#include "sim/process.hh"

namespace absim::msg {

DetailedTransport::DetailedTransport(sim::EventQueue &eq,
                                     net::TopologyKind topo,
                                     std::uint32_t nodes)
    : eq_(eq), net_(std::make_unique<net::DetailedNetwork>(
                   eq, net::Topology::make(topo, nodes)))
{
}

SendTiming
DetailedTransport::send(net::NodeId src, net::NodeId dst,
                        std::uint32_t bytes)
{
    ABSIM_CHECK(sim::Process::current() != nullptr,
                "send outside a simulated process");
    // Circuit switching holds the sender for the whole transfer: the
    // payload is delivered exactly when the sender is freed, and all
    // cost lands on the sender.
    const net::TransferResult r = net_->transfer(src, dst, bytes);
    SendTiming t;
    t.senderFreeAt = eq_.now();
    t.deliveredAt = eq_.now();
    t.senderLatency = r.latency;
    t.senderContention = r.contention;
    return t;
}

LogPTransport::LogPTransport(sim::EventQueue &eq, net::TopologyKind topo,
                             std::uint32_t nodes, logp::GapPolicy policy)
    : eq_(eq), net_(std::make_unique<logp::LogPNetwork>(
                   logp::paramsFor(topo, nodes), policy))
{
}

SendTiming
LogPTransport::send(net::NodeId src, net::NodeId dst, std::uint32_t bytes)
{
    (void)bytes; // LogP messages are fixed-size; L already assumes 32 B.
    sim::Process *self = sim::Process::current();
    ABSIM_CHECK(self != nullptr, "send outside a simulated process");

    const sim::Tick now = eq_.now();
    const logp::LogPTiming m = net_->message(src, dst, now);

    // The sender is occupied only until its send slot is granted (plus
    // the o overhead); the L flight time and the receive-gate wait
    // belong to the message and are charged to a blocked receiver.
    SendTiming t;
    t.senderFreeAt = now + m.sourceWait + net_->params().o;
    t.deliveredAt = m.deliveredAt;
    // The o overhead is processor time spent injecting the message;
    // charge it on the latency side so sender buckets exactly cover the
    // blocked interval (o is zero for the paper's shared-memory NI).
    t.senderLatency = net_->params().o;
    t.senderContention = m.sourceWait;
    t.msgLatency = m.latency;
    t.msgContention = m.sinkWait;

    if (t.senderFreeAt > now)
        self->delayUntil(t.senderFreeAt);
    return t;
}

} // namespace absim::msg
